//! Quickstart: watch Mesh compact a fragmented heap (Figure 1 in action).
//!
//! Run with: `cargo run --release --example quickstart`

use mesh::core::{Mesh, MeshConfig};

fn main() -> Result<(), mesh::core::MeshError> {
    // A heap with a 256 MiB virtual arena and a fixed seed (deterministic).
    let mesh = Mesh::new(MeshConfig::default().arena_bytes(256 << 20).seed(42))?;
    println!("release strategy: {:?}", mesh.release_strategy());

    // Allocate 64k 256-byte objects (~16 MiB across ~4k spans)…
    let ptrs: Vec<*mut u8> = (0..65_536).map(|_| mesh.malloc(256)).collect();
    for (i, &p) in ptrs.iter().enumerate() {
        assert!(!p.is_null());
        unsafe { std::ptr::write_bytes(p, (i % 251) as u8, 256) };
    }
    println!(
        "after allocation: heap = {:.1} MiB, live = {:.1} MiB",
        mesh.heap_bytes() as f64 / (1 << 20) as f64,
        mesh.stats().live_bytes as f64 / (1 << 20) as f64
    );

    // …then free 7 of every 8, leaving each span ~12.5% full. A classical
    // allocator is stuck with every span; none can be returned to the OS.
    for (i, &p) in ptrs.iter().enumerate() {
        if i % 8 != 0 {
            unsafe { mesh.free(p) };
        }
    }
    println!(
        "after frees:      heap = {:.1} MiB, live = {:.1} MiB  (fragmentation {:.1}x)",
        mesh.heap_bytes() as f64 / (1 << 20) as f64,
        mesh.stats().live_bytes as f64 / (1 << 20) as f64,
        mesh.stats().fragmentation_ratio().unwrap_or(1.0)
    );

    // Meshing merges spans whose survivors occupy disjoint offsets —
    // compaction *without relocation*: no pointer below changes.
    let summary = mesh.mesh_now();
    println!(
        "mesh pass:        {} pairs meshed, {:.1} MiB released, {:.1} MiB copied",
        summary.pairs_meshed,
        summary.bytes_released() as f64 / (1 << 20) as f64,
        summary.bytes_copied as f64 / (1 << 20) as f64
    );
    println!(
        "after meshing:    heap = {:.1} MiB (fragmentation {:.1}x)",
        mesh.heap_bytes() as f64 / (1 << 20) as f64,
        mesh.stats().fragmentation_ratio().unwrap_or(1.0)
    );

    // Every surviving object is still readable at its ORIGINAL address
    // with its original contents — virtual addresses never changed.
    for (i, &p) in ptrs.iter().enumerate() {
        if i % 8 == 0 {
            unsafe {
                assert_eq!(*p, (i % 251) as u8, "object {i} corrupted by meshing!");
                mesh.free(p);
            }
        }
    }
    println!("all survivors verified intact and freed — done.");
    Ok(())
}
