//! The paper's Redis experiment (§6.2.2) as a runnable example: an LRU
//! cache whose evictions shred the heap, compacted either by Redis-style
//! application-level "activedefrag" or transparently by Mesh.
//!
//! Run with: `cargo run --release --example redis_cache`

use mesh::workloads::driver::AllocatorKind;
use mesh::workloads::redis::{run_redis, RedisConfig};

fn main() {
    // 1/10 of the paper's scale: 70k + 17k inserts, 10 MB LRU cap.
    let cfg = RedisConfig::paper().scaled(0.1);
    println!("Redis-style LRU cache: {} + {} inserts, {} MiB cap\n",
        cfg.phase1_keys, cfg.phase2_keys, cfg.max_memory >> 20);

    let mut rows = Vec::new();
    for (kind, defrag) in [
        (AllocatorKind::MeshNoMesh, false),
        (AllocatorKind::MeshNoMesh, true),
        (AllocatorKind::MeshFull, false),
    ] {
        let mut alloc = kind.build(1 << 30, 42);
        let report = run_redis(&mut alloc, &cfg.clone().with_activedefrag(defrag));
        println!(
            "{:<26} final heap {:>6.1} MiB | inserts {:>6.2?} | compaction {:>7.2?} (longest pause {:?})",
            report.label,
            report.final_heap_bytes as f64 / (1 << 20) as f64,
            report.phase1_time + report.phase2_time,
            report.compaction_time,
            report.longest_pause,
        );
        rows.push(report);
    }

    let baseline = rows[0].final_heap_bytes as f64;
    println!(
        "\nMesh saves {:.0}% of the heap with zero application changes (paper: 39%),",
        (1.0 - rows[2].final_heap_bytes as f64 / baseline) * 100.0
    );
    println!(
        "matching activedefrag's savings ({:.0}%) while compacting {:.1}x faster.",
        (1.0 - rows[1].final_heap_bytes as f64 / baseline) * 100.0,
        rows[1].compaction_time.as_secs_f64() / rows[2].compaction_time.as_secs_f64().max(1e-9)
    );
}
