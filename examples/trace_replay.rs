//! Apples-to-apples fragmentation comparison on one fixed trace.
//!
//! A recorded allocation trace is the cleanest way to compare placement
//! policies: identical input stream, different allocators. This example
//! generates a fragmentation-heavy sawtooth trace (the §6 Ruby/perlbench
//! shape) whose scattered survivors stay live at the end, prints its
//! signature, round-trips it through the text format, and replays it
//! against Mesh, Mesh-without-meshing, and the simulated classical
//! allocators. The survivors pin a slot in nearly every span, so the
//! final footprint each allocator needs for the same few hundred KiB of
//! live data is exactly the §1 fragmentation story.
//!
//! Run with: `cargo run --release --example trace_replay`

use mesh::core::MeshConfig;
use mesh::workloads::buddy::BuddySim;
use mesh::workloads::driver::{AllocatorKind, TestAllocator};
use mesh::workloads::firstfit::{FitPolicy, FreeListSim};
use mesh::workloads::trace::{generate, Trace, TraceEvent};
use std::collections::HashMap;

fn main() {
    // Eight phases of 48–256 B objects, 5% random survivors per phase.
    let trace = generate::sawtooth_pinned(8, 20_000, 48, 256, 50, 0xace);
    trace.validate().expect("generator produced a well-formed trace");
    let stats = trace.stats();
    println!("trace signature:");
    println!("  events:        {}", stats.events);
    println!("  mallocs/frees: {}/{}", stats.mallocs, stats.frees);
    println!("  peak live:     {:.2} MiB", stats.peak_live_bytes as f64 / (1 << 20) as f64);
    println!("  final live:    {:.2} MiB (pinned survivors)", stats.final_live_bytes as f64 / (1 << 20) as f64);
    println!("  mean size:     {:.0} B", stats.mean_size);

    // The text format round-trips, so traces can be stored and shared.
    let text = trace.to_text();
    assert_eq!(Trace::from_text(&text).expect("round trip"), trace);
    println!("  text size:     {:.1} KiB\n", text.len() as f64 / 1024.0);

    println!(
        "{:<26} {:>14} {:>22}",
        "allocator", "final footprint", "× final live bytes"
    );

    // Real heaps: replay, meshing on a deterministic cadence, then read
    // the survivor-pinned footprint. The third configuration raises the
    // per-MiniHeap alias budget (default 3) — the knob that caps how far
    // repeated meshing can fold survivor spans together (§4.1).
    let configs: [(&str, TestAllocator); 3] = [
        (
            "Mesh (no meshing)",
            AllocatorKind::MeshNoMesh.build(1 << 30, 0xace),
        ),
        ("Mesh", AllocatorKind::MeshFull.build(1 << 30, 0xace)),
        (
            "Mesh (alias budget 8)",
            TestAllocator::from_config(
                MeshConfig::default()
                    .arena_bytes(1 << 30)
                    .seed(0xace)
                    .max_span_count(8),
            ),
        ),
    ];
    for (label, mut alloc) in configs {
        let mut ptrs: HashMap<u64, usize> = HashMap::new();
        for (at, ev) in trace.events().iter().enumerate() {
            match *ev {
                TraceEvent::Malloc { id, size } => {
                    ptrs.insert(id, alloc.malloc(size) as usize);
                }
                TraceEvent::Free { id } => unsafe {
                    alloc.free(ptrs.remove(&id).expect("live id") as *mut u8);
                },
            }
            if at % 10_000 == 9_999 {
                alloc.mesh_now();
            }
        }
        alloc.mesh_now();
        alloc.purge();
        let footprint = alloc.heap_bytes().unwrap_or(0);
        println!(
            "{:<26} {:>10.2} MiB {:>21.1}×",
            label,
            footprint as f64 / (1 << 20) as f64,
            footprint as f64 / alloc.live_bytes().max(1) as f64,
        );
        for (_, p) in ptrs.drain() {
            unsafe { alloc.free(p as *mut u8) };
        }
    }

    // Simulated classical heaps on the identical stream.
    for policy in [FitPolicy::FirstFit, FitPolicy::BestFit, FitPolicy::NextFit] {
        let mut sim = FreeListSim::new(policy);
        let mut ptrs: HashMap<u64, usize> = HashMap::new();
        for ev in trace.events() {
            match *ev {
                TraceEvent::Malloc { id, size } => {
                    ptrs.insert(id, sim.alloc(size));
                }
                TraceEvent::Free { id } => sim.free(ptrs.remove(&id).expect("live id")),
            }
        }
        println!(
            "{:<26} {:>10.2} MiB {:>21.1}×",
            format!("{policy:?} (simulated)"),
            sim.footprint() as f64 / (1 << 20) as f64,
            sim.fragmentation(),
        );
    }
    {
        let mut sim = BuddySim::new();
        let mut ptrs: HashMap<u64, usize> = HashMap::new();
        for ev in trace.events() {
            match *ev {
                TraceEvent::Malloc { id, size } => {
                    ptrs.insert(id, sim.alloc(size));
                }
                TraceEvent::Free { id } => sim.free(ptrs.remove(&id).expect("live id")),
            }
        }
        println!(
            "{:<26} {:>10.2} MiB {:>21.1}×",
            "BinaryBuddy (simulated)",
            sim.footprint() as f64 / (1 << 20) as f64,
            sim.fragmentation(),
        );
    }
    println!("\nsame stream, different placement: survivors pin a slot in nearly");
    println!("every span, and only meshing merges those spans back together.");
}
