//! Mesh as the process-wide Rust allocator — the analog of the paper's
//! `LD_PRELOAD=libmesh.so` deployment (§4): every `Vec`, `String`, `Box`
//! and `HashMap` below is served by Mesh without code changes.
//!
//! Run with: `cargo run --release --example global_allocator`

use mesh::core::MeshGlobalAlloc;
use std::collections::HashMap;

#[global_allocator]
static ALLOC: MeshGlobalAlloc = MeshGlobalAlloc;

fn main() {
    // Ordinary Rust data structures, now allocated by Mesh.
    let mut index: HashMap<u64, Vec<String>> = HashMap::new();
    for i in 0..50_000u64 {
        let bucket = index.entry(i % 1024).or_default();
        bucket.push(format!("value-{i}-{}", "x".repeat((i % 200) as usize)));
    }
    // Drop three quarters of the strings, fragmenting the heap.
    for (k, bucket) in index.iter_mut() {
        bucket.retain(|_| k % 4 == 0);
    }

    let mesh = MeshGlobalAlloc::mesh();
    let before = mesh.heap_bytes();
    let summary = mesh.mesh_now();
    let stats = mesh.stats();
    println!("allocations served by Mesh: {}", stats.mallocs);
    println!(
        "heap before meshing: {:.1} MiB, after: {:.1} MiB ({} pairs meshed)",
        before as f64 / (1 << 20) as f64,
        mesh.heap_bytes() as f64 / (1 << 20) as f64,
        summary.pairs_meshed
    );

    // The data is still fully usable after compaction.
    let survivors: usize = index.values().map(Vec::len).sum();
    let sample = index[&0].first().cloned().unwrap_or_default();
    println!("{survivors} strings survive; sample: {:.32}…", sample);
    drop(index);
    println!(
        "after drop: live = {:.1} MiB, heap = {:.1} MiB",
        mesh.stats().live_bytes as f64 / (1 << 20) as f64,
        mesh.heap_bytes() as f64 / (1 << 20) as f64
    );
}
