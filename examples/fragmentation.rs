//! The Robson worst case (§1): drive a classical first-fit allocator to
//! catastrophic fragmentation, then show Mesh shrugging off the
//! within-size-class equivalent.
//!
//! Run with: `cargo run --release --example fragmentation`

use mesh::graph::probability::robson_factor;
use mesh::workloads::driver::AllocatorKind;
use mesh::workloads::firstfit::FitPolicy;
use mesh::workloads::robson::{robson_adversary, within_class_adversary};

fn main() {
    // Paper example: 16-byte to 128 KB objects ⇒ up to 13× blowup.
    println!(
        "Robson bound for 16 B … 128 KB objects: {:.0}× (paper §1: 13×)\n",
        robson_factor(16, 128 * 1024)
    );

    let report = robson_adversary(FitPolicy::FirstFit, 16, 128 * 1024, 8 << 20);
    println!("doubling adversary vs simulated first fit (8 MiB live budget):");
    println!("{:>10} {:>12} {:>12} {:>8}", "size", "live MiB", "heap MiB", "factor");
    for p in report.phases.iter().step_by(3) {
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>7.1}×",
            p.size,
            p.live_bytes as f64 / (1 << 20) as f64,
            p.footprint as f64 / (1 << 20) as f64,
            p.footprint as f64 / p.live_bytes.max(1) as f64
        );
    }
    println!("final factor: {:.1}× of live data\n", report.final_factor);

    // The within-class worst case against real heaps: one live object per
    // span. Without meshing the spans are pinned forever; with meshing
    // they compact (alias-limit-bounded) each pass.
    println!("within-size-class worst case (1 live 256 B object per 4 KiB span):");
    for kind in [AllocatorKind::MeshNoMesh, AllocatorKind::MeshFull] {
        let mut alloc = kind.build(1 << 30, 7);
        let r = within_class_adversary(&mut alloc, 256, 512, 7);
        println!(
            "  {:<20} fragmented {:>6.1} MiB ({:>5.1}×)  → after meshing {:>6.1} MiB ({:>5.1}×)",
            kind.label(),
            r.fragmented_bytes as f64 / (1 << 20) as f64,
            r.fragmented_factor(),
            r.compacted_bytes as f64 / (1 << 20) as f64,
            r.compacted_factor(),
        );
    }
    println!("\nMesh breaks the Robson bound with high probability (§5.4).");
}
