//! Concurrent meshing (§4.5.2): application threads keep reading and
//! *writing* live objects while the allocator meshes the spans under
//! them. Writes that race a copy are fenced by the mprotect/SIGSEGV
//! write barrier; reads are always safe thanks to atomic remapping.
//!
//! Run with: `cargo run --release --example concurrent_meshing`

use mesh::core::{Mesh, MeshConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), mesh::core::MeshError> {
    let mesh = Mesh::new(MeshConfig::default().arena_bytes(512 << 20).seed(9))?;

    // Build a fragmented heap: 16k spans' worth of 128-byte counters,
    // 1/8 surviving at random offsets.
    let mut heap = mesh.thread_heap();
    let all: Vec<usize> = (0..131_072)
        .map(|_| {
            let p = heap.malloc(128);
            assert!(!p.is_null());
            unsafe { std::ptr::write_bytes(p, 0, 128) };
            p as usize
        })
        .collect();
    // Free 7 of 8 *after* the fact so spans are genuinely fragmented
    // (immediate frees would just recycle slots in the attached span).
    let mut survivors: Vec<usize> = Vec::new();
    for (i, &p) in all.iter().enumerate() {
        if i % 8 == 0 {
            survivors.push(p);
        } else {
            unsafe { heap.free(p as *mut u8) };
        }
    }
    println!("fragmented heap: {:.1} MiB for {:.1} MiB live",
        mesh.heap_bytes() as f64 / (1 << 20) as f64,
        mesh.stats().live_bytes as f64 / (1 << 20) as f64);

    // Writer threads hammer the survivors while meshing runs.
    let stop = Arc::new(AtomicBool::new(false));
    let writes = Arc::new(AtomicU64::new(0));
    let survivors = Arc::new(survivors);
    let mut writers = Vec::new();
    for t in 0..3usize {
        let stop = Arc::clone(&stop);
        let writes = Arc::clone(&writes);
        let survivors = Arc::clone(&survivors);
        writers.push(std::thread::spawn(move || {
            // Writers own disjoint survivor subsets so the only thing
            // that could lose an update is a meshing race.
            let mine: Vec<usize> = survivors
                .iter()
                .copied()
                .skip(t)
                .step_by(3)
                .collect();
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let addr = mine[i % mine.len()] as *mut u64;
                unsafe {
                    // Read-modify-write through the object's original
                    // address — racing any concurrent mesh of its span.
                    let v = addr.read();
                    addr.write(v + 1);
                }
                writes.fetch_add(1, Ordering::Relaxed);
                i += 1;
            }
        }));
    }

    // Mesh repeatedly while the writers run.
    let mut total_pairs = 0usize;
    for pass in 0..6 {
        let summary = mesh.mesh_now();
        total_pairs += summary.pairs_meshed;
        println!(
            "mesh pass {pass}: {} pairs, heap now {:.1} MiB (writers: {} writes so far)",
            summary.pairs_meshed,
            mesh.heap_bytes() as f64 / (1 << 20) as f64,
            writes.load(Ordering::Relaxed)
        );
        std::thread::sleep(Duration::from_millis(30));
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }

    // No write was lost: the sum of all counters equals the write count.
    let sum: u64 = survivors
        .iter()
        .map(|&a| unsafe { (a as *const u64).read() })
        .sum();
    println!(
        "\n{} writes performed across {} meshed pairs — counter sum {} ({})",
        writes.load(Ordering::Relaxed),
        total_pairs,
        sum,
        if sum == writes.load(Ordering::Relaxed) {
            "no write lost ✓"
        } else {
            "WRITES LOST ✗"
        }
    );
    assert_eq!(sum, writes.load(Ordering::Relaxed));
    for &p in survivors.iter() {
        unsafe { mesh.free(p as *mut u8) };
    }
    Ok(())
}
