/* Basic malloc-family smoke test, run under LD_PRELOAD=libmesh.so by
 * tests/c_abi.rs (and also expected to pass on plain glibc). */
#include <assert.h>
#include <malloc.h>
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

int main(void) {
    /* malloc/free with content verification across many sizes. */
    for (size_t size = 1; size < 100000; size = size * 3 + 7) {
        unsigned char *p = malloc(size);
        assert(p != NULL);
        assert(malloc_usable_size(p) >= size);
        memset(p, (int)(size & 0xFF), size);
        assert(p[0] == (unsigned char)(size & 0xFF));
        assert(p[size - 1] == (unsigned char)(size & 0xFF));
        free(p);
    }

    /* calloc zeroes. */
    unsigned char *z = calloc(1000, 10);
    assert(z != NULL);
    for (size_t i = 0; i < 10000; i++)
        assert(z[i] == 0);
    free(z);

    /* realloc preserves contents while growing and shrinking. */
    char *r = malloc(100);
    memset(r, 0x5A, 100);
    r = realloc(r, 100000);
    assert(r != NULL);
    for (int i = 0; i < 100; i++)
        assert(r[i] == 0x5A);
    r = realloc(r, 10);
    assert(r != NULL);
    for (int i = 0; i < 10; i++)
        assert(r[i] == 0x5A);
    free(r);

    /* strdup routes through the interposed malloc. */
    char *dup = strdup("mesh interposition smoke");
    assert(dup && strcmp(dup, "mesh interposition smoke") == 0);
    free(dup);

    /* The aligned family, including alignments far above the page size
     * (the satellite fix: these used to be unobtainable). */
    size_t aligns[] = {16, 64, 256, 4096, 1 << 16, 2 << 20};
    for (size_t i = 0; i < sizeof(aligns) / sizeof(aligns[0]); i++) {
        void *p = NULL;
        assert(posix_memalign(&p, aligns[i], 1234) == 0);
        assert(p != NULL && ((uintptr_t)p % aligns[i]) == 0);
        memset(p, 0x11, 1234);
        free(p);

        p = aligned_alloc(aligns[i], 512);
        assert(p != NULL && ((uintptr_t)p % aligns[i]) == 0);
        free(p);

        p = memalign(aligns[i], 99);
        assert(p != NULL && ((uintptr_t)p % aligns[i]) == 0);
        free(p);
    }
    void *v = valloc(100);
    assert(v != NULL && ((uintptr_t)v % 4096) == 0);
    free(v);
    v = pvalloc(4097);
    assert(v != NULL && ((uintptr_t)v % 4096) == 0);
    assert(malloc_usable_size(v) >= 8192);
    free(v);

    /* malloc_trim / mallopt are at least callable. */
    malloc_trim(0);
    mallopt(1, 1);

    puts("smoke OK");
    return 0;
}
