/* glibc edge-semantics conformance for the interposed malloc family:
 * realloc(p, 0), realloc(NULL, n), calloc overflow, posix_memalign
 * EINVAL, malloc(0) uniqueness. Passes on plain glibc too — that is the
 * point: programs must not be able to tell the allocators apart.
 *
 * When running on Mesh (detected via the weak mesh_stats_print symbol the
 * preload exports) it additionally exercises the hostile frees glibc
 * aborts on: Mesh's page-map free routing detects double frees and
 * misaligned/never-allocated pointers on every path and discards them. */
#include <assert.h>
#include <errno.h>
#include <malloc.h>
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

/* Non-NULL only when libmesh.so is preloaded. */
__attribute__((weak)) extern void mesh_stats_print(void);

int main(void) {
    /* malloc(0): unique, freeable pointers. */
    void *a = malloc(0);
    void *b = malloc(0);
    assert(a != NULL && b != NULL && a != b);
    free(a);
    free(b);

    /* realloc(NULL, n) behaves as malloc(n). */
    char *p = realloc(NULL, 64);
    assert(p != NULL);
    memset(p, 0x77, 64);

    /* realloc(p, 0) frees p and returns NULL. */
    assert(realloc(p, 0) == NULL);

    /* calloc overflow: NULL, and the errno glibc documents. (volatile
     * keeps -Walloc-size-larger-than from flagging the intentional
     * overflow at compile time.) */
    volatile size_t huge = SIZE_MAX;
    errno = 0;
    assert(calloc(huge, 2) == NULL);
    assert(errno == ENOMEM);
    errno = 0;
    assert(calloc(huge / 2, 3) == NULL);
    assert(errno == ENOMEM);

    /* reallocarray overflow leaves the old block valid. */
    char *q = malloc(32);
    memset(q, 0x2B, 32);
    errno = 0;
    assert(reallocarray(q, huge / 4, 5) == NULL);
    assert(errno == ENOMEM);
    for (int i = 0; i < 32; i++)
        assert(q[i] == 0x2B);
    free(q);

    /* posix_memalign: EINVAL for non-power-of-two or non-pointer-multiple
     * alignment, memptr untouched; 0 and an aligned pointer otherwise. */
    void *m = (void *)0x1234;
    assert(posix_memalign(&m, 3, 100) == EINVAL);
    assert(posix_memalign(&m, 24, 100) == EINVAL);
    assert(posix_memalign(&m, sizeof(void *) / 2, 100) == EINVAL);
    assert(m == (void *)0x1234);
    assert(posix_memalign(&m, 4096, 100) == 0);
    assert(m != NULL && ((uintptr_t)m % 4096) == 0);
    free(m);

    /* aligned_alloc rejects non-power-of-two alignment with EINVAL. */
    errno = 0;
    assert(aligned_alloc(48, 96) == NULL);
    assert(errno == EINVAL);

    /* malloc_usable_size(NULL) is 0; for live pointers it covers the
     * request and the reported bytes are fully writable. */
    assert(malloc_usable_size(NULL) == 0);
    char *u = malloc(100);
    size_t usable = malloc_usable_size(u);
    assert(usable >= 100);
    memset(u, 0x6E, usable);
    free(u);

    /* Hostile frees: only under Mesh (glibc aborts on all of these).
     * Each must be detected, counted, and discarded — the process keeps
     * running and the victim object stays intact. */
    if (mesh_stats_print) {
        /* (A pointer *outside* the Mesh arena is delegated to the real
         * allocator by provenance routing — it may genuinely be glibc's —
         * so only in-arena hostility can be absorbed here.) */
        char *v = malloc(64);
        memset(v, 0x3C, 64);
        free(v + 1);              /* misaligned interior pointer */
        free(v + 33);             /* interior pointer, another slot offset */
        for (int i = 0; i < 64; i++)
            assert(v[i] == 0x3C); /* victim untouched by the bad frees */
        free(v);
        free(v);                  /* double free: detected and discarded */
        char *w = malloc(64);     /* heap still fully usable */
        assert(w != NULL);
        free(w);
    }

    puts("edge_semantics OK");
    return 0;
}
