/* Fork safety: the arena is MAP_SHARED memory files, which fork does NOT
 * copy-on-write — without the atfork protocol (quiesce locks, child
 * privatizes its segment copies while the parent waits) the child's heap
 * writes would corrupt the parent's memory. This test makes that failure
 * mode loud:
 *
 *   1. parent fills buffers with a pattern,
 *   2. child (after fork) verifies them, overwrites them with ITS pattern,
 *      churns thousands of fresh allocations, re-verifies, exits,
 *   3. parent waits, then verifies its buffers still hold the ORIGINAL
 *      pattern (under shared pages the child's writes would show through),
 *   4. a second fork happens while a sibling thread is allocating, so a
 *      prepare-phase lock hand-off mid-refill is exercised too.
 */
#include <assert.h>
#include <pthread.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#define KEEP 256
#define KEEP_SIZE 2048
#define CHILD_CHURN 20000

static unsigned char parent_tag(int i) { return (unsigned char)(0x40 | (i & 0x3F)); }
static unsigned char child_tag(int i) { return (unsigned char)(0x80 | (i & 0x3F)); }

static void churn(int rounds) {
    unsigned rng = 0xF0F0;
    for (int i = 0; i < rounds; i++) {
        rng = rng * 1103515245 + 12345;
        size_t size = 1 + (rng >> 16) % 4000;
        unsigned char *p = malloc(size);
        assert(p != NULL);
        memset(p, 0xEE, size);
        free(p);
    }
}

static volatile int keep_allocating = 1;
static void *background_allocator(void *arg) {
    (void)arg;
    while (keep_allocating)
        churn(64);
    return NULL;
}

int main(void) {
    unsigned char *keep[KEEP];
    for (int i = 0; i < KEEP; i++) {
        keep[i] = malloc(KEEP_SIZE);
        assert(keep[i] != NULL);
        memset(keep[i], parent_tag(i), KEEP_SIZE);
    }

    /* ---- fork #1: single-threaded, full integrity check ---- */
    pid_t pid = fork();
    assert(pid >= 0);
    if (pid == 0) {
        /* Child: sees the parent's data... */
        for (int i = 0; i < KEEP; i++)
            for (int j = 0; j < KEEP_SIZE; j += 13)
                assert(keep[i][j] == parent_tag(i));
        /* ...overwrites it with its own pattern (must NOT leak into the
         * parent), and churns the allocator hard. */
        for (int i = 0; i < KEEP; i++)
            memset(keep[i], child_tag(i), KEEP_SIZE);
        churn(CHILD_CHURN);
        for (int i = 0; i < KEEP; i++)
            for (int j = 0; j < KEEP_SIZE; j += 13)
                assert(keep[i][j] == child_tag(i));
        for (int i = 0; i < KEEP; i++)
            free(keep[i]);
        exit(0); /* not _exit: the atexit stats dump must run */
    }
    int status = -1;
    assert(waitpid(pid, &status, 0) == pid);
    assert(WIFEXITED(status) && WEXITSTATUS(status) == 0);

    /* Parent: its pattern must be untouched by everything the child did. */
    for (int i = 0; i < KEEP; i++)
        for (int j = 0; j < KEEP_SIZE; j += 13)
            assert(keep[i][j] == parent_tag(i));

    /* ---- fork #2: while another thread is allocating ---- */
    pthread_t bg;
    assert(pthread_create(&bg, NULL, background_allocator, NULL) == 0);
    for (int round = 0; round < 4; round++) {
        pid = fork();
        assert(pid >= 0);
        if (pid == 0) {
            /* The background thread does not exist here; the heap must
             * still be consistent and usable. */
            churn(2000);
            for (int i = 0; i < KEEP; i++)
                for (int j = 0; j < KEEP_SIZE; j += 29)
                    assert(keep[i][j] == parent_tag(i));
            exit(0); /* not _exit: the atexit stats dump must run */
        }
        assert(waitpid(pid, &status, 0) == pid);
        assert(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }
    keep_allocating = 0;
    assert(pthread_join(bg, NULL) == 0);

    for (int i = 0; i < KEEP; i++)
        for (int j = 0; j < KEEP_SIZE; j += 13)
            assert(keep[i][j] == parent_tag(i));
    for (int i = 0; i < KEEP; i++)
        free(keep[i]);

    puts("fork_alloc OK");
    return 0;
}
