/* leak.c — a deliberate leak for the sampled heap profiler (E20).
 *
 * Two allocation sites with opposite fates:
 *   - scratch_one(): heavy churn, every object freed (live ≈ 0 at exit);
 *   - leak_one():    LEAK_COUNT × LEAK_SIZE bytes, never freed.
 *
 * Run under LD_PRELOAD=libmesh.so with MESH_PROF=1 and a small
 * MESH_PROF_SAMPLE_BYTES: the at-exit JSON dump (MESH_PROF_PATH) must
 * attribute ≥90% of live bytes to leak_one's call site. Both functions
 * are noinline (and this file compiles with -fno-omit-frame-pointer) so
 * the frame-pointer walk sees two distinct return-address chains.
 *
 * Also raises SIGUSR2 at itself mid-run: with MESH_PROF=1 the preload
 * installs a dump-request handler, so surviving the signal is the
 * end-to-end proof the handler is in place (without the preload the
 * default action would kill us).
 */
#include <signal.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>
#include <unistd.h>

#define SCRATCH_ITERS 4000
#define SCRATCH_SIZE 3000
#define LEAK_COUNT 1500
#define LEAK_SIZE 4000

__attribute__((noinline)) static void *leak_one(size_t n) {
  void *p = malloc(n);
  if (!p) {
    fprintf(stderr, "leak_one: malloc failed\n");
    exit(1);
  }
  memset(p, 0x11, n);
  return p;
}

__attribute__((noinline)) static void *scratch_one(size_t n) {
  void *p = malloc(n);
  if (!p) {
    fprintf(stderr, "scratch_one: malloc failed\n");
    exit(1);
  }
  memset(p, 0x22, n);
  return p;
}

int main(void) {
  /* Churn from the innocent site: allocated and always freed. */
  for (int i = 0; i < SCRATCH_ITERS; i++) {
    void *p = scratch_one(SCRATCH_SIZE);
    free(p);
  }
  /* The leak: LEAK_COUNT objects that stay live to process exit. */
  void *sink = NULL;
  for (int i = 0; i < LEAK_COUNT; i++) {
    void **p = leak_one(LEAK_SIZE);
    *p = sink; /* chain them so the compiler cannot elide the loop */
    sink = p;
  }
  /* More innocent churn after the leak, so "last writer" ordering cannot
   * fake the attribution. */
  for (int i = 0; i < SCRATCH_ITERS; i++) {
    void *p = scratch_one(SCRATCH_SIZE);
    free(p);
  }
  /* SIGUSR2 must be handled (dump request), not fatal. */
  raise(SIGUSR2);
  struct timespec ts = {0, 50 * 1000 * 1000};
  nanosleep(&ts, NULL);
  if (!sink) {
    return 1;
  }
  printf("leak OK\n");
  return 0;
}
