/* mesh-ctl over a live interposed heap: exercised by tests/c_ctl.rs.
 *
 * Runs under LD_PRELOAD=libmesh.so with MESH_CTL set, so this process
 * both OWNS the heap and connects to its own control socket (served by
 * the heap's background thread). It drives every envelope command plus
 * the mutating ones and prints each payload between `<<tag>>`/`<<end>>`
 * markers for the Rust side to validate.
 *
 * Reentrancy pin: between the profile-a and profile-b requests this
 * program performs NO allocation at all — the request plumbing uses
 * static buffers, and stdio is warmed before profile-a. The server
 * renders stats/prom/profile/sense/spectrum/ledger/trace in between;
 * if any of those exposition paths allocated outside the internal-alloc
 * guard, the allocation would be sampled by the profiler of this very
 * process and the `samples` counter would drift between a and b.
 */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>

/* Mesh extensions exported by libmesh.so; weak so the binary links
 * without the preload (the test always supplies it). */
extern int mesh_ctl_active(void) __attribute__((weak));
extern int mesh_ctl_path(char *buf, size_t len) __attribute__((weak));

static char payload[1 << 20];

static int fail(const char *msg) {
  fprintf(stderr, "ctl.c: %s\n", msg);
  exit(1);
}

static int read_line(int fd, char *buf, size_t cap) {
  size_t n = 0;
  while (n + 1 < cap) {
    char c;
    if (read(fd, &c, 1) != 1)
      return -1;
    if (c == '\n') {
      buf[n] = 0;
      return (int)n;
    }
    buf[n++] = c;
  }
  return -1;
}

/* Sends one command and fills `payload` (NUL-terminated). Returns the
 * payload length for an `ok` reply, -1 with the error text in `payload`
 * for an `err` reply; any framing violation aborts the program. */
static long request(int fd, const char *cmd) {
  char header[128];
  if (write(fd, cmd, strlen(cmd)) < 0 || write(fd, "\n", 1) < 0)
    fail("request write");
  if (read_line(fd, header, sizeof header) < 0)
    fail("response header");
  if (!strncmp(header, "err ", 4)) {
    snprintf(payload, sizeof payload, "%s", header + 4);
    return -1;
  }
  if (strncmp(header, "ok ", 3))
    fail("response header is neither ok nor err");
  long len = atol(header + 3);
  if (len < 0 || (size_t)len + 1 > sizeof payload)
    fail("payload too large for the static buffer");
  size_t got = 0;
  while (got < (size_t)len + 1) { /* body + trailing newline */
    ssize_t r = read(fd, payload + got, (size_t)len + 1 - got);
    if (r <= 0)
      fail("payload read");
    got += (size_t)r;
  }
  if (payload[len] != '\n')
    fail("missing binary-safe frame terminator");
  payload[len] = 0;
  return len;
}

static void show(int fd, const char *tag, const char *cmd) {
  long n = request(fd, cmd);
  printf("<<%s rc=%s>>\n%s\n<<end>>\n", tag, n < 0 ? "err" : "ok", payload);
}

int main(void) {
  /* Fragmentation bait: small objects with 7/8 freed leave spans whose
   * live offsets are near-disjoint — mesh_now must find pairs. The
   * larger churn feeds the sampling profiler (64 KiB rate from the
   * test harness). Survivors stay live so profile envelopes are
   * non-empty. */
  static void *bait[4096];
  static void *survivors[1024];
  for (int i = 0; i < 4096; i++) {
    bait[i] = malloc(64);
    if (!bait[i])
      fail("malloc bait");
    memset(bait[i], 0x5A, 64);
  }
  for (int i = 0; i < 4096; i++)
    if (i % 8 != 0)
      free(bait[i]);
  for (int i = 0; i < 1024; i++) {
    survivors[i] = malloc(8192);
    if (!survivors[i])
      fail("malloc survivor");
    memset(survivors[i], 0xA5, 8192);
  }

  if (!mesh_ctl_active || !mesh_ctl_path)
    fail("mesh extensions missing (not running under libmesh.so?)");
  if (mesh_ctl_active() != 1)
    fail("mesh_ctl_active() != 1 under MESH_CTL");
  char path[108];
  if (mesh_ctl_path(path, sizeof path) <= 0)
    fail("mesh_ctl_path");
  const char *env_path = getenv("MESH_CTL");
  if (!env_path || strcmp(path, env_path))
    fail("mesh_ctl_path disagrees with MESH_CTL");
  printf("path=%s\n", path); /* also warms stdio's buffer allocation */

  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    fail("socket");
  struct sockaddr_un addr;
  memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path);
  if (connect(fd, (struct sockaddr *)&addr, sizeof addr) < 0)
    fail("connect");
  char greeting[64];
  if (read_line(fd, greeting, sizeof greeting) < 0 ||
      strcmp(greeting, "mesh-ctl 1"))
    fail("bad greeting");
  printf("greeting=%s\n", greeting);

  /* --- no allocation from here to profile-b (see header comment) --- */
  show(fd, "profile-a", "profile");
  show(fd, "stats", "stats");
  show(fd, "prom", "prom");
  show(fd, "sense", "sense");
  show(fd, "spectrum", "spectrum");
  show(fd, "ledger", "ledger");
  show(fd, "trace", "trace");
  show(fd, "profile-b", "profile");
  /* --- allocation allowed again --- */

  show(fd, "set-sample", "set prof_sample_bytes 131072");
  show(fd, "profile-c", "profile");
  show(fd, "set-probe", "set probe_limit 32");
  show(fd, "set-err", "set bogus 1");
  show(fd, "mesh-now", "mesh_now");
  show(fd, "stats-after-mesh", "stats");
  show(fd, "madvise-now", "madvise_now");
  show(fd, "help", "help");

  long n = request(fd, "pprof");
  if (n < 0)
    fail("pprof request failed");
  const char *out = getenv("MESH_PPROF_OUT");
  if (!out)
    fail("MESH_PPROF_OUT unset");
  int pf = open(out, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (pf < 0)
    fail("open pprof out");
  if (write(pf, payload, (size_t)n) != n)
    fail("write pprof out");
  close(pf);
  printf("<<pprof rc=ok>>\nbytes=%ld\n<<end>>\n", n);

  close(fd);
  for (int i = 0; i < 1024; i++)
    free(survivors[i]);
  for (int i = 0; i < 4096; i += 8)
    free(bait[i]);
  printf("ctl-done\n");
  return 0;
}
