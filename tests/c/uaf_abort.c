/* Deliberate use-after-free write. Under MESH_HARDEN=abort (with the
 * quarantine disabled so the slot can recycle) the hardened allocator
 * must detect the corrupted poison fill when the slot is handed out
 * again, print its one-line diagnostic, and SIGABRT — this program
 * reaching its final printf is the failure mode the harness asserts
 * against. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

int main(void) {
    unsigned char *p = malloc(64);
    if (!p)
        return 1;
    memset(p, 0x5A, 64);
    free(p);
    /* The UAF write proper; volatile so the compiler cannot elide the
     * (undefined-behaviour) store into freed memory. */
    *(volatile unsigned char *)(p + 16) = 0xAA;
    /* The freed slot sits in the attached span's shuffle vector, so it
     * must be reissued within one span's worth of allocations. */
    for (int i = 0; i < 512; i++) {
        if (!malloc(64))
            return 1;
    }
    printf("uaf_abort UNEXPECTED: hardened allocator missed the UAF\n");
    return 0;
}
