/* Drives slow-path churn under LD_PRELOAD=libmesh.so with MESH_TRACE=1:
 * enough allocation/free traffic to force shuffle-vector refills (and,
 * with the small arena the test configures, remote drains and meshing),
 * then exercises the two dump entry points — SIGUSR2 (asynchronous) and
 * the weak mesh_trace_dump() symbol (synchronous). The Rust side
 * validates the resulting Chrome trace JSON against the schema. */
#include <signal.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

extern int mesh_trace_dump(void) __attribute__((weak));

int main(void) {
    enum { SLOTS = 512, ROUNDS = 200 };
    static char *live[SLOTS];
    for (int round = 0; round < ROUNDS; round++) {
        for (int i = 0; i < SLOTS; i++) {
            size_t sz = 16 + (size_t)((i * 37 + round) % 2000);
            char *p = malloc(sz);
            if (!p) {
                fprintf(stderr, "oom at round %d\n", round);
                return 1;
            }
            memset(p, (char)i, sz);
            free(live[i]);
            live[i] = p;
        }
    }
    /* With MESH_TRACE=1 the preload installs a SIGUSR2 handler; the
     * default action would kill us, so surviving is the proof. */
    raise(SIGUSR2);
    for (int i = 0; i < SLOTS; i++)
        free(live[i]);
    if (mesh_trace_dump) {
        if (mesh_trace_dump() != 0) {
            fprintf(stderr, "mesh_trace_dump failed\n");
            return 1;
        }
    }
    printf("trace OK\n");
    return 0;
}
