/* Multithreaded churn: producer/consumer pairs exchange buffers through
 * a mutex-guarded ring (every consumed buffer is freed by a different
 * thread than allocated it — the §4.4.4 remote-free path), then each
 * worker leaves behind sparsely occupied spans and exits (the pthread TSD
 * destructor detaches them). Finally the main thread forces a meshing
 * pass via the weak `mesh_mesh_now` diagnostic and requires pairs > 0.
 *
 * Runs (without the meshing assertion) on plain glibc too: the mesh_*
 * symbols are declared weak and resolve to 0 without the preload. */
#include <assert.h>
#include <pthread.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

extern unsigned long long mesh_mesh_now(void) __attribute__((weak));

#define WORKERS 4
#define RING 1024
#define EXCHANGED 20000
#define SURVIVOR_SLOTS 8192

static pthread_mutex_t ring_lock = PTHREAD_MUTEX_INITIALIZER;
static void *ring[RING];
static int ring_head, ring_tail, ring_len;
static int produced, consumed;

static void *producer(void *arg) {
    (void)arg;
    unsigned rng = (unsigned)(size_t)pthread_self();
    for (;;) {
        pthread_mutex_lock(&ring_lock);
        if (produced >= EXCHANGED) {
            pthread_mutex_unlock(&ring_lock);
            return NULL;
        }
        if (ring_len < RING) {
            rng = rng * 1103515245 + 12345;
            size_t size = 16 + (rng >> 16) % 500;
            unsigned char *p = malloc(size);
            assert(p != NULL);
            memset(p, 0xC5, size);
            ring[ring_head] = p;
            ring_head = (ring_head + 1) % RING;
            ring_len++;
            produced++;
        }
        pthread_mutex_unlock(&ring_lock);
    }
}

static void *consumer(void *arg) {
    (void)arg;
    for (;;) {
        pthread_mutex_lock(&ring_lock);
        if (consumed >= EXCHANGED) {
            pthread_mutex_unlock(&ring_lock);
            return NULL;
        }
        void *p = NULL;
        if (ring_len > 0) {
            p = ring[ring_tail];
            ring_tail = (ring_tail + 1) % RING;
            ring_len--;
            consumed++;
        }
        pthread_mutex_unlock(&ring_lock);
        if (p) {
            assert(*(unsigned char *)p == 0xC5);
            free(p); /* freed by a different thread than allocated it */
        }
    }
}

/* Survivors (1 in 8 of a dense 64 B allocation run) kept across thread
 * exit so the detached spans are sparsely, randomly occupied — prime
 * meshing candidates. Allocation and freeing are two separate phases:
 * freeing inline would hand slots straight back to the attached span's
 * shuffle vector and every span would detach full of survivors. */
static void *fragment(void *slot_base) {
    unsigned char **keep = slot_base;
    unsigned char *all[SURVIVOR_SLOTS]; /* 64 KiB of stack: fine */
    for (int i = 0; i < SURVIVOR_SLOTS; i++) {
        unsigned char *p = malloc(64);
        assert(p != NULL);
        memset(p, 0xF2, 64);
        all[i] = p;
    }
    for (int i = 0; i < SURVIVOR_SLOTS; i++) {
        if (i % 8 == 0)
            keep[i / 8] = all[i];
        else
            free(all[i]);
    }
    return NULL;
}

int main(void) {
    pthread_t threads[2 * WORKERS];
    for (int i = 0; i < WORKERS; i++) {
        assert(pthread_create(&threads[2 * i], NULL, producer, NULL) == 0);
        assert(pthread_create(&threads[2 * i + 1], NULL, consumer, NULL) == 0);
    }
    for (int i = 0; i < 2 * WORKERS; i++)
        assert(pthread_join(threads[i], NULL) == 0);
    assert(produced == EXCHANGED && consumed == EXCHANGED);

    static unsigned char *survivors[WORKERS][SURVIVOR_SLOTS / 8];
    pthread_t frag[WORKERS];
    for (int i = 0; i < WORKERS; i++)
        assert(pthread_create(&frag[i], NULL, fragment, survivors[i]) == 0);
    for (int i = 0; i < WORKERS; i++)
        assert(pthread_join(frag[i], NULL) == 0);

    if (mesh_mesh_now) {
        /* Force one more pass; inline passes on the free path usually
         * meshed the fragmented spans already, so this one may find
         * nothing new. The harness asserts the *cumulative* pairs_meshed
         * counter from the exit stats dump instead. */
        unsigned long long pairs = mesh_mesh_now();
        fprintf(stderr, "mt_churn: pairs meshed by the explicit pass: %llu\n", pairs);
    }

    /* Survivors are intact (meshing must never move an object's address
     * contents) and freeable from the main thread (remote frees again). */
    for (int w = 0; w < WORKERS; w++) {
        for (int i = 0; i < SURVIVOR_SLOTS / 8; i++) {
            for (int j = 0; j < 64; j += 7)
                assert(survivors[w][i][j] == 0xF2);
            free(survivors[w][i]);
        }
    }

    puts("mt_churn OK");
    return 0;
}
