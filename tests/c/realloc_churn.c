/* realloc churn: grow and shrink a population of buffers through many
 * size classes (and across the small/large boundary), verifying a
 * checksum pattern survives every move. */
#include <assert.h>
#include <malloc.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define SLOTS 256
#define ROUNDS 200

static unsigned char tag(int slot, int round) {
    return (unsigned char)(((slot * 37) ^ (round * 101)) | 1);
}

int main(void) {
    unsigned char *bufs[SLOTS] = {0};
    size_t sizes[SLOTS] = {0};
    unsigned rng = 0x6d657368; /* "mesh" */

    for (int round = 0; round < ROUNDS; round++) {
        for (int slot = 0; slot < SLOTS; slot++) {
            rng = rng * 1103515245 + 12345;
            /* Walk sizes across classes: 1 B … ~128 KiB. */
            size_t size = 1 + (rng >> 8) % (1 << (7 + (slot % 11)));
            if (bufs[slot]) {
                /* Verify the previous round's fill survived. */
                unsigned char expect = tag(slot, round - 1);
                for (size_t i = 0; i < sizes[slot]; i += 17)
                    assert(bufs[slot][i] == expect);
            }
            unsigned char *next = realloc(bufs[slot], size);
            assert(next != NULL);
            /* The preserved prefix must match before we refill. */
            if (bufs[slot] != NULL && sizes[slot] > 0) {
                size_t keep = sizes[slot] < size ? sizes[slot] : size;
                unsigned char expect = tag(slot, round - 1);
                for (size_t i = 0; i < keep; i += 17)
                    assert(next[i] == expect);
            }
            memset(next, tag(slot, round), size);
            bufs[slot] = next;
            sizes[slot] = size;
        }
    }
    for (int slot = 0; slot < SLOTS; slot++)
        free(bufs[slot]);

    /* In-place fast path: a realloc the current block already satisfies
     * must return the original pointer with no copy. Holds on glibc too
     * (the chunk suffices), and on Mesh it exercises the same-size-class
     * and large-span-tail cases of realloc_in_place. */
    {
        unsigned char *small = malloc(100);
        memset(small, 0x5D, 100);
        size_t us = malloc_usable_size(small);
        assert(us >= 100);
        unsigned char *grown = realloc(small, us); /* grow within the class */
        assert(grown == small);
        for (size_t i = 0; i < 100; i++)
            assert(grown[i] == 0x5D);
        free(grown);

        unsigned char *big = malloc(200 * 1024);
        memset(big, 0x7B, 200 * 1024);
        size_t ub = malloc_usable_size(big);
        unsigned char *grown_big = realloc(big, ub); /* grow into the span tail */
        assert(grown_big == big);
        unsigned char *shrunk = realloc(grown_big, 150 * 1024); /* in-span shrink */
        assert(shrunk == grown_big);
        for (size_t i = 0; i < 150 * 1024; i += 4096)
            assert(shrunk[i] == 0x7B);
        free(shrunk);
    }

    puts("realloc_churn OK");
    return 0;
}
