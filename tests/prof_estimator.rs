//! E21 — seeded property test for the sampled live-bytes estimator.
//!
//! The profiler claims its geometric byte-sampling yields an *unbiased*
//! live-heap estimate (weight = size / (1 − e^(−size/rate)) per sample;
//! DESIGN.md "Telemetry & profiling"). This harness drives churn
//! workloads — random sizes across every size class plus the large path,
//! handoffs to a second thread heap so remote frees retire samples too —
//! and checks at every checkpoint that the estimate stays within a
//! statistical error bound of the allocator's exact live-byte counter.
//!
//! The bound: the live estimate is a sum of ~live/rate independent
//! sample weights of ~rate bytes each, so its standard deviation is
//! ≈ √(live × rate). We allow 8σ plus a small absolute slack — far
//! outside seeded-run noise, far inside the 2× error a weighting bug
//! (e.g. forgetting the inverse-probability scaling) would cause.

use mesh::core::rng::Rng;
use mesh::core::{Mesh, MeshConfig};

const SAMPLE_BYTES: usize = 8 << 10;

fn error_bound(exact: f64) -> f64 {
    8.0 * (exact.max(0.0) * SAMPLE_BYTES as f64).sqrt() + 16.0 * SAMPLE_BYTES as f64
}

#[test]
fn live_byte_estimate_converges_across_churn() {
    for seed in [11u64, 42, 1337] {
        let mesh = Mesh::new(
            MeshConfig::default()
                .arena_bytes(256 << 20)
                .seed(seed)
                .profiling(true)
                .prof_sample_bytes(SAMPLE_BYTES),
        )
        .unwrap();
        let mut heaps = [mesh.thread_heap(), mesh.thread_heap()];
        let mut rng = Rng::with_seed(seed ^ 0xe571_ae70);
        let mut live: Vec<(usize, usize)> = Vec::new(); // (addr, owner)
        let mut checkpoints = 0;
        for op in 0..60_000usize {
            // Bias toward allocation until a ~3000-object window fills.
            if live.len() < 3000 && (live.is_empty() || rng.below(100) < 55) {
                let who = rng.below(2) as usize;
                let size = match rng.below(10) {
                    0..=3 => 16 + rng.below(1000) as usize,  // small classes
                    4..=6 => 1000 + rng.below(7000) as usize, // mid classes
                    7 | 8 => 8000 + rng.below(8384) as usize, // top classes
                    _ => 20_000 + rng.below(80_000) as usize, // large path
                };
                let p = heaps[who].malloc(size);
                assert!(!p.is_null(), "seed {seed}: oom at op {op}");
                live.push((p as usize, who));
            } else {
                let pick = rng.below(live.len() as u32) as usize;
                let (addr, owner) = live.swap_remove(pick);
                // A third of frees are handed to the other thread heap:
                // sampled objects must retire on the remote path too.
                let who = if rng.below(3) == 0 { 1 - owner } else { owner };
                unsafe { heaps[who].free(addr as *mut u8) };
            }
            if op % 10_000 == 9_999 {
                let exact = mesh.stats().live_bytes as f64;
                let prof = mesh.profile_stats().expect("profiling is on");
                assert_eq!(prof.samples_dropped, 0, "seed {seed}: sampled set overflowed");
                let estimate = prof.live_bytes_estimate as f64;
                let bound = error_bound(exact);
                assert!(
                    (estimate - exact).abs() <= bound,
                    "seed {seed} op {op}: estimate {estimate} vs exact {exact} \
                     (|Δ| {} > bound {bound})",
                    (estimate - exact).abs()
                );
                checkpoints += 1;
            }
        }
        assert!(checkpoints >= 6, "seed {seed}: churn too short");
        // Drain everything: the estimator must return exactly to zero —
        // every sampled object was tracked through its free.
        for (addr, owner) in live.drain(..) {
            unsafe { heaps[owner].free(addr as *mut u8) };
        }
        let exact = mesh.stats().live_bytes;
        let prof = mesh.profile_stats().unwrap();
        assert_eq!(exact, 0, "seed {seed}: accounting imbalance");
        assert_eq!(
            prof.live_bytes_estimate, 0,
            "seed {seed}: estimator leaked {} bytes over {} samples",
            prof.live_bytes_estimate, prof.samples
        );
        assert_eq!(prof.live_samples, 0, "seed {seed}");
        assert_eq!(prof.sampled_frees, prof.samples, "seed {seed}");
        assert!(
            prof.samples > 1000,
            "seed {seed}: only {} samples — the workload barely sampled",
            prof.samples
        );
    }
}
