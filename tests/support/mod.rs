//! Shared plumbing for the C-preload integration tests (`c_abi.rs`,
//! `c_prof.rs`, `c_trace.rs`): locating the workspace, building
//! `libmesh.so`, compiling C helpers, and a minimal JSON parser for
//! validating dump schemas (no serde in the offline build).

#![allow(dead_code)] // each test binary uses its own subset

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

pub fn target_dir() -> PathBuf {
    std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| workspace_root().join("target"))
}

pub fn have_cc() -> bool {
    Command::new("cc")
        .arg("--version")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .is_ok()
}

/// Builds the interposition library once (cargo dedupes concurrent
/// builds via its own lock) and returns its path.
pub fn build_libmesh() -> PathBuf {
    let cargo = std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    let status = Command::new(cargo)
        .args(["build", "--release", "-p", "mesh-abi"])
        .current_dir(workspace_root())
        .env_remove("LD_PRELOAD")
        .status()
        .expect("failed to invoke cargo");
    assert!(status.success(), "building libmesh.so failed");
    let so = target_dir().join("release").join("libmesh.so");
    assert!(so.exists(), "missing {}", so.display());
    so
}

/// Compiles `tests/c/<name>.c` to `<out_dir>/<name>` with the given
/// extra flags (frame pointers, optimization level, …).
pub fn compile_c(name: &str, out_dir: &Path, flags: &[&str]) -> PathBuf {
    let src = workspace_root().join(format!("tests/c/{name}.c"));
    let bin = out_dir.join(name);
    let status = Command::new("cc")
        .args(flags)
        .arg(&src)
        .arg("-o")
        .arg(&bin)
        .status()
        .expect("failed to invoke cc");
    assert!(status.success(), "cc failed for {name}.c");
    bin
}

// ---------------------------------------------------------------------
// Minimal JSON parser. Supports the dumps' grammar: objects, arrays,
// strings without escapes, and non-negative numbers — integers plus the
// `123.456` decimals the Chrome trace format uses for ts/dur.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> &Json {
        self.opt(key)
            .unwrap_or_else(|| panic!("missing key {key:?} in {self:?}"))
    }

    pub fn opt(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => panic!("key lookup {key:?} on non-object {self:?}"),
        }
    }

    /// The value as a non-negative integer (panics on fractional values:
    /// schema fields documented as integers must serialize as integers).
    pub fn num(&self) -> u64 {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 => *n as u64,
            _ => panic!("expected integer, got {self:?}"),
        }
    }

    pub fn float(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            _ => panic!("expected number, got {self:?}"),
        }
    }

    pub fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            _ => panic!("expected string, got {self:?}"),
        }
    }

    pub fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            _ => panic!("expected array, got {self:?}"),
        }
    }
}

pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub fn parse(text: &'a str) -> Json {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value();
        p.skip_ws();
        assert_eq!(p.pos, p.bytes.len(), "trailing garbage in JSON");
        v
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) {
        self.skip_ws();
        assert_eq!(
            self.bytes.get(self.pos),
            Some(&b),
            "expected {:?} at byte {}",
            b as char,
            self.pos
        );
        self.pos += 1;
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        *self.bytes.get(self.pos).expect("unexpected end of JSON")
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b'0'..=b'9' => self.number(),
            other => panic!("unexpected {:?} at byte {}", other as char, self.pos),
        }
    }

    fn object(&mut self) -> Json {
        self.expect(b'{');
        let mut fields = Vec::new();
        if self.peek() != b'}' {
            loop {
                let key = self.string();
                self.expect(b':');
                fields.push((key, self.value()));
                match self.peek() {
                    b',' => self.pos += 1,
                    b'}' => break,
                    other => panic!("bad object separator {:?}", other as char),
                }
            }
        }
        self.expect(b'}');
        Json::Obj(fields)
    }

    fn array(&mut self) -> Json {
        self.expect(b'[');
        let mut items = Vec::new();
        if self.peek() != b']' {
            loop {
                items.push(self.value());
                match self.peek() {
                    b',' => self.pos += 1,
                    b']' => break,
                    other => panic!("bad array separator {:?}", other as char),
                }
            }
        }
        self.expect(b']');
        Json::Arr(items)
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let start = self.pos;
        while self.bytes[self.pos] != b'"' {
            assert_ne!(self.bytes[self.pos], b'\\', "dump strings never escape");
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("valid utf8")
            .to_string();
        self.pos += 1;
        s
    }

    fn number(&mut self) -> Json {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || *b == b'.')
        {
            self.pos += 1;
        }
        Json::Num(
            std::str::from_utf8(&self.bytes[start..self.pos])
                .unwrap()
                .parse()
                .expect("number"),
        )
    }
}
