//! mesh-ctl end to end from an interposed C program (`tests/c/ctl.c`):
//! the process runs with `libmesh.so` preloaded and `MESH_CTL` set, then
//! connects to its *own* control socket and drives every envelope plus
//! the mutating commands. The Rust side validates the captured payloads.
//!
//! This is also the reentrancy regression pin for the exposition paths:
//! the C program performs no allocation between its `profile-a` and
//! `profile-b` requests while the server renders every other envelope in
//! between, so any allocation escaping `with_internal_alloc` on those
//! paths shows up as profiler-counter drift between the two envelopes.

mod support;

use std::collections::HashMap;
use std::process::Command;
use support::{build_libmesh, compile_c, have_cc, target_dir, Parser};

/// Extracts every `<<tag rc=..>>\n..\n<<end>>` section from stdout.
fn sections(stdout: &str) -> HashMap<String, (String, String)> {
    let mut out = HashMap::new();
    let mut rest = stdout;
    while let Some(start) = rest.find("<<") {
        let Some(hdr_end) = rest[start..].find(">>\n") else {
            break;
        };
        let header = &rest[start + 2..start + hdr_end];
        let body_start = start + hdr_end + 3;
        let Some(end) = rest[body_start..].find("\n<<end>>") else {
            break;
        };
        let (tag, rc) = header
            .split_once(" rc=")
            .expect("marker header carries an rc");
        out.insert(
            tag.to_string(),
            (rc.to_string(), rest[body_start..body_start + end].to_string()),
        );
        rest = &rest[body_start + end + 8..];
    }
    out
}

/// Looks up a section that must have completed with an `ok` frame.
fn ok_body<'a>(sections: &'a HashMap<String, (String, String)>, tag: &str) -> &'a str {
    let (rc, body) = sections
        .get(tag)
        .unwrap_or_else(|| panic!("missing section {tag:?}"));
    assert_eq!(rc, "ok", "{tag} failed: {body}");
    body
}

#[test]
fn interposed_process_serves_its_own_ctl_socket() {
    if !have_cc() {
        eprintln!("skipping: no `cc` in PATH");
        return;
    }
    let so = build_libmesh();
    let out_dir = target_dir().join("c-ctl-tests");
    std::fs::create_dir_all(&out_dir).unwrap();
    let bin = compile_c("ctl", &out_dir, &["-O1"]);

    let sock = std::env::temp_dir().join(format!("mesh-c-ctl-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let pprof_out = out_dir.join("ctl.pb");
    let _ = std::fs::remove_file(&pprof_out);

    let output = Command::new(&bin)
        .env("LD_PRELOAD", &so)
        .env("MESH_SEED", "17")
        .env("MESH_CTL", &sock)
        .env("MESH_PROF", "1")
        .env("MESH_PROF_SAMPLE_BYTES", "64K")
        .env("MESH_TRACE", "1")
        .env("MESH_PPROF_OUT", &pprof_out)
        .output()
        .expect("failed to run ctl client");
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "ctl client failed: {}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status
    );
    assert!(stdout.ends_with("ctl-done\n"), "truncated run:\n{stdout}");
    assert!(
        stdout.contains("greeting=mesh-ctl 1"),
        "protocol greeting missing:\n{stdout}"
    );

    let s = sections(&stdout);

    // Text envelopes over the wire match their in-process shapes.
    let stats = ok_body(&s, "stats");
    assert!(stats.starts_with("mesh: "), "stats envelope: {stats}");
    assert!(stats.contains(" mallocs="), "stats envelope: {stats}");
    let prom = ok_body(&s, "prom");
    assert!(prom.contains("# HELP mesh_"), "prom envelope: {prom}");
    assert!(prom.contains("mesh_live_bytes"), "prom envelope: {prom}");
    assert!(
        ok_body(&s, "sense").contains("\"mesh_sense_version\":1"),
        "sense envelope"
    );
    assert!(
        ok_body(&s, "spectrum").contains("\"mesh_spectrum_version\":1"),
        "spectrum envelope"
    );
    assert!(
        ok_body(&s, "ledger").contains("\"mesh_ledger_version\":1"),
        "ledger envelope"
    );
    assert!(
        ok_body(&s, "trace").starts_with("{\"traceEvents\":["),
        "trace envelope"
    );
    let help = ok_body(&s, "help");
    assert!(help.contains("stats") && help.contains("set "), "help: {help}");

    // Reentrancy pin: the client allocated nothing between profile-a and
    // profile-b while the server rendered every envelope above, so the
    // profiler counters must not move — any drift means an exposition
    // path allocated outside the internal-alloc guard and sampled its
    // own machinery.
    let a = Parser::parse(ok_body(&s, "profile-a"));
    let b = Parser::parse(ok_body(&s, "profile-b"));
    assert!(
        a.get("samples").num() > 0,
        "8 MiB of churn at a 64 KiB rate never sampled"
    );
    for key in ["samples", "sampled_frees", "live_samples", "sites"] {
        assert_eq!(
            a.get(key).num(),
            b.get(key).num(),
            "{key} drifted while the server rendered envelopes: \
             an exposition path allocates outside with_internal_alloc"
        );
    }

    // `set` effects are visible in the very next envelope.
    let ack = Parser::parse(ok_body(&s, "set-sample"));
    assert_eq!(ack.get("knob").str(), "prof_sample_bytes");
    assert_eq!(ack.get("value").num(), 131072);
    let c = Parser::parse(ok_body(&s, "profile-c"));
    assert_eq!(
        c.get("sample_bytes").num(),
        131072,
        "retuned sample rate missing from the next profile envelope"
    );
    let ack = Parser::parse(ok_body(&s, "set-probe"));
    assert_eq!(ack.get("value").num(), 32);
    let (rc, body) = &s["set-err"];
    assert_eq!(rc, "err", "bogus knob must be rejected");
    assert!(body.contains("unknown knob"), "set-err: {body}");

    // mesh_now over the wire compacts the 7/8-freed bait spans (bare
    // `true`/`false` keeps this envelope out of the mini JSON parser).
    let mesh_now = ok_body(&s, "mesh-now");
    let pairs: u64 = mesh_now
        .split("\"pairs_meshed\":")
        .nth(1)
        .and_then(|t| t.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|d| d.parse().ok())
        .unwrap_or_else(|| panic!("mesh_now envelope: {mesh_now}"));
    assert!(pairs > 0, "mesh_now found no pairs: {mesh_now}");
    assert!(mesh_now.contains("\"meshing_enabled\":true"));
    let after = ok_body(&s, "stats-after-mesh");
    let passes: u64 = after
        .split(" mesh_passes=")
        .nth(1)
        .and_then(|t| t.split_whitespace().next())
        .and_then(|d| d.parse().ok())
        .unwrap_or_else(|| panic!("stats envelope: {after}"));
    assert!(passes > 0, "mesh_now pass missing from stats: {after}");
    assert!(
        ok_body(&s, "madvise-now").contains("\"purged\":true"),
        "madvise_now ack"
    );

    // The pprof dump fetched over the socket parses and carries the
    // retuned period plus the live samples.
    let raw = std::fs::read(&pprof_out).expect("pprof dump written");
    let (rc, body) = &s["pprof"];
    assert_eq!(rc, "ok");
    assert_eq!(*body, format!("bytes={}", raw.len()));
    let summary = mesh::core::parse_pprof(&raw).expect("pprof dump parses");
    assert_eq!(
        summary.sample_types,
        vec![
            ("inuse_objects".to_string(), "count".to_string()),
            ("inuse_space".to_string(), "bytes".to_string()),
        ]
    );
    assert_eq!(summary.period_type, ("space".to_string(), "bytes".to_string()));
    assert_eq!(summary.period, 131072, "pprof period tracks the live retune");
    assert!(summary.samples > 0, "no live sites in the pprof dump");
    assert!(summary.totals[0] > 0 && summary.totals[1] > 0);

    // The socket vanished with the process (atexit shutdown). The pprof
    // dump is left behind deliberately: CI uploads it as an artifact.
    assert!(!sock.exists(), "exited process left its socket behind");
}
