//! Segmented-arena integration tests: on-demand growth under concurrency,
//! the ≥ 32× live-set acceptance scenario, retirement shrinking the
//! mapped footprint, and stale frees into retired ranges.
//!
//! The long soak loop at the bottom is gated behind `MESH_SOAK=1` so CI
//! can opt into it without taxing every local `cargo test`.

use mesh::core::{Mesh, MeshConfig};
use std::collections::HashSet;
use std::time::Duration;

/// A heap whose initial segment is tiny (1 MiB) so growth starts
/// immediately, with small growth segments to maximize segment churn.
fn tiny_segment_heap(seed: u64) -> Mesh {
    Mesh::new(
        MeshConfig::default()
            .max_heap_bytes(256 << 20)
            .initial_segment_bytes(1 << 20)
            .segment_bytes(2 << 20)
            .seed(seed),
    )
    .unwrap()
}

#[test]
fn concurrent_growth_races_with_frees_and_meshing() {
    // N threads hammer a 1 MiB initial segment with mixed sizes, so
    // segment creation races span allocation, remote-free drains, and the
    // aggressive background mesher. Afterwards: no lost frees, settled
    // accounting, and monotonically assigned segment ids.
    const THREADS: usize = 8;
    const OPS: usize = 20_000;
    const SIZES: [usize; 8] = [64, 192, 448, 1024, 2048, 4096, 8192, 100_000];
    let mesh = Mesh::new(
        MeshConfig::default()
            .max_heap_bytes(256 << 20)
            .initial_segment_bytes(1 << 20)
            .segment_bytes(2 << 20)
            .seed(27)
            .mesh_period(Duration::from_millis(2))
            .background_meshing(true),
    )
    .unwrap();

    let (tx, rx) = std::sync::mpsc::channel::<usize>();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let mesh = mesh.clone();
            let tx = tx.clone();
            s.spawn(move || {
                let mut heap = mesh.thread_heap();
                let mut rng = mesh::core::rng::Rng::with_seed(t as u64 + 1);
                let mut live: Vec<usize> = Vec::new();
                for i in 0..OPS {
                    let size = SIZES[(i + t) % SIZES.len()];
                    let p = heap.malloc(size);
                    assert!(!p.is_null(), "cap is 256 MiB; growth must not fail");
                    unsafe { std::ptr::write_bytes(p, t as u8 + 1, size.min(64)) };
                    if i % 16 == 0 {
                        // Hand off for a remote free (lock-free queue push).
                        tx.send(p as usize).unwrap();
                    } else {
                        live.push(p as usize);
                    }
                    if live.len() > 256 {
                        let idx = rng.below(live.len() as u32) as usize;
                        let addr = live.swap_remove(idx);
                        unsafe { heap.free(addr as *mut u8) };
                    }
                }
                for addr in live {
                    unsafe { heap.free(addr as *mut u8) };
                }
            });
        }
        drop(tx);
        // Sampler doubles as the remote freer: every received pointer is a
        // cross-thread free, and segment snapshots taken mid-churn must
        // always show unique, monotonically assigned ids.
        let mesh2 = mesh.clone();
        s.spawn(move || {
            let mut heap = mesh2.thread_heap();
            let mut n = 0u64;
            while let Ok(addr) = rx.recv() {
                unsafe { heap.free(addr as *mut u8) };
                n += 1;
                if n.is_multiple_of(1024) {
                    let segs = mesh2.segment_stats();
                    let ids: HashSet<u64> = segs.iter().map(|s| s.id).collect();
                    assert_eq!(ids.len(), segs.len(), "duplicate segment ids");
                }
            }
        });
    });

    let stats = mesh.stats();
    assert_eq!(stats.mallocs, (THREADS * OPS) as u64);
    assert_eq!(stats.mallocs, stats.frees, "lost frees: {stats:?}");
    assert_eq!(stats.live_bytes, 0, "occupancy accounting drifted");
    assert_eq!(stats.double_frees, 0);
    assert_eq!(stats.invalid_frees, 0);
    assert_eq!(stats.remote_free_queued, stats.remote_free_drained);

    // The tiny initial segment cannot hold the live set: growth must have
    // happened, and ids must be assigned monotonically (never reused).
    assert!(stats.segments_created > 1, "no segment growth under churn");
    let segs = mesh.segment_stats();
    let ids: Vec<u64> = segs.iter().map(|s| s.id).collect();
    assert!(ids.iter().all(|&id| id < stats.segments_created));
    assert_eq!(
        ids.iter().collect::<HashSet<_>>().len(),
        ids.len(),
        "segment ids reused"
    );

    // Everything is free: a purge retires every non-initial segment.
    mesh.purge_dirty();
    let stats = mesh.stats();
    assert_eq!(stats.committed_pages, 0, "pages leaked");
    assert_eq!(stats.segment_count, 1, "only the initial segment survives");
    assert_eq!(
        stats.segments_retired,
        stats.segments_created - 1,
        "every growth segment retired"
    );
    assert_eq!(stats.mapped_bytes(), 1 << 20, "mapped footprint back to 1 MiB");
}

#[test]
fn live_set_32x_initial_segment_grows_meshes_and_retires() {
    // The acceptance scenario: a live set ≥ 32× the 1 MiB initial segment
    // completes with no exhaustion, meshing still reclaims pages within
    // the grown heap, and after everything is freed, retirement shrinks
    // the committed AND mapped footprints back down.
    let mesh = Mesh::new(
        MeshConfig::default()
            .max_heap_bytes(256 << 20)
            .initial_segment_bytes(1 << 20)
            .segment_bytes(2 << 20)
            .seed(31)
            .mesh_period(Duration::from_secs(3600)), // only explicit passes
    )
    .unwrap();

    let initial_bytes = 1 << 20;
    let mut th = mesh.thread_heap();

    // 16 Ki × 2 KiB small objects (32 MiB) + 64 × 128 KiB large objects
    // (8 MiB) + one 4 MiB object that needs a dedicated oversized segment.
    let mut small: Vec<usize> = Vec::new();
    for _ in 0..16_384 {
        let p = th.malloc(2048);
        assert!(!p.is_null(), "growth must carry the live set");
        unsafe { std::ptr::write_bytes(p, 0xAB, 2048) };
        small.push(p as usize);
    }
    let large: Vec<usize> = (0..64)
        .map(|_| {
            let p = th.malloc(128 * 1024);
            assert!(!p.is_null());
            unsafe { std::ptr::write_bytes(p, 0xCD, 128 * 1024) };
            p as usize
        })
        .collect();
    let huge = th.malloc(4 << 20);
    assert!(!huge.is_null(), "oversized request gets a dedicated segment");

    let stats = mesh.stats();
    assert!(
        stats.live_bytes >= 32 * initial_bytes,
        "live set {} is not ≥ 32× the initial segment",
        stats.live_bytes
    );
    assert!(stats.segments_created > 16, "expected many growth segments");
    assert_eq!(stats.invalid_frees, 0);

    // Contents survived the growth and remapping traffic.
    assert_eq!(unsafe { *(small[0] as *const u8) }, 0xAB);
    assert_eq!(unsafe { *(large[63] as *const u8) }, 0xCD);

    // Fragment: keep every 8th small object, then mesh. Compaction must
    // still work inside a segmented heap.
    for (i, &p) in small.iter().enumerate() {
        if i % 8 != 0 {
            unsafe { th.free(p as *mut u8) };
        }
    }
    let survivors: Vec<usize> = small.iter().copied().step_by(8).collect();
    // Detach so the fragmented spans become mesh candidates.
    drop(th);
    let before = mesh.heap_bytes();
    let summary = mesh.mesh_now();
    assert!(summary.pairs_meshed > 0, "meshing dead inside segments");
    assert!(
        mesh.heap_bytes() < before,
        "meshing did not reclaim pages ({before} -> {})",
        mesh.heap_bytes()
    );
    // Survivors are intact at their original addresses after meshing.
    for &p in &survivors {
        assert_eq!(unsafe { *(p as *const u8) }, 0xAB, "object lost in mesh");
    }

    // Free everything; retirement must shrink the committed footprint and
    // unmap the growth segments.
    for &p in &survivors {
        unsafe { mesh.free(p as *mut u8) };
    }
    for &p in &large {
        unsafe { mesh.free(p as *mut u8) };
    }
    unsafe { mesh.free(huge) };
    let _ = mesh.stats(); // settle the remote-free queues
    mesh.purge_dirty();

    let stats = mesh.stats();
    assert_eq!(stats.live_bytes, 0);
    assert_eq!(stats.committed_pages, 0, "committed footprint did not shrink");
    assert!(stats.segments_retired > 0, "no segment was retired");
    assert_eq!(stats.segment_count, 1, "growth segments still mapped");
    assert_eq!(
        stats.mapped_bytes(),
        initial_bytes,
        "mapped footprint did not shrink to the initial segment"
    );
    assert!(stats.heap_bytes() < stats.peak_heap_bytes() / 32);
}

#[test]
fn stale_frees_into_retired_ranges_are_discarded() {
    // A pointer whose segment has been retired must read as a wild free
    // (page map entry gone), never corrupt state or crash.
    let mesh = tiny_segment_heap(33);
    // Larger than the whole 1 MiB initial segment: must land in a
    // dedicated growth segment.
    let p = mesh.malloc(2 << 20);
    assert!(!p.is_null());
    let interior = unsafe { p.add(4096) };
    unsafe { mesh.free(p) };
    mesh.purge_dirty(); // retires the large object's segment
    let stats = mesh.stats();
    assert!(stats.segments_retired >= 1);
    // Both the base and an interior page of the retired range: discarded.
    unsafe { mesh.free(p) };
    unsafe { mesh.free(interior) };
    let stats = mesh.stats();
    assert_eq!(stats.invalid_frees, 2);
    assert_eq!(stats.double_frees, 0);
    // The heap still works, and the retired range is reusable.
    let q = mesh.malloc(2 << 20);
    assert!(!q.is_null());
    unsafe { mesh.free(q) };
    assert_eq!(mesh.stats().live_bytes, 0);
}

#[test]
fn soak_grow_retire_cycles() {
    // Long grow→drain→retire soak; opt in with MESH_SOAK=1.
    if std::env::var("MESH_SOAK").as_deref() != Ok("1") {
        eprintln!("soak_grow_retire_cycles: skipped (set MESH_SOAK=1 to run)");
        return;
    }
    let mesh = tiny_segment_heap(37);
    let mut created_last = 0;
    for round in 0..40u64 {
        let mut th = mesh.thread_heap();
        let mut ptrs: Vec<usize> = Vec::new();
        // ~24 MiB live per round, mixed small/large.
        for i in 0..6_000usize {
            let size = if i % 50 == 0 { 64 * 1024 } else { 3000 };
            let p = th.malloc(size);
            assert!(!p.is_null(), "round {round}: growth failed");
            unsafe { std::ptr::write_bytes(p, round as u8, size.min(128)) };
            ptrs.push(p as usize);
        }
        for (i, addr) in ptrs.iter().enumerate() {
            if i % 4 != 0 {
                unsafe { th.free(*addr as *mut u8) };
            }
        }
        drop(th);
        mesh.mesh_now();
        for (i, addr) in ptrs.iter().enumerate() {
            if i % 4 == 0 {
                unsafe { mesh.free(*addr as *mut u8) };
            }
        }
        let _ = mesh.stats();
        mesh.purge_dirty();
        let stats = mesh.stats();
        assert_eq!(stats.live_bytes, 0, "round {round}: leak");
        assert_eq!(stats.committed_pages, 0, "round {round}: pages leaked");
        assert_eq!(stats.segment_count, 1, "round {round}: retirement stalled");
        assert!(
            stats.segments_created > created_last,
            "round {round}: no growth happened"
        );
        created_last = stats.segments_created;
    }
    let stats = mesh.stats();
    assert_eq!(stats.segments_retired, stats.segments_created - 1);
    assert_eq!(stats.double_frees + stats.invalid_frees, 0);
}
