//! Hardened-mode (`MESH_HARDEN`) end-to-end properties: quarantine
//! delays reuse, clean workloads never trip a detector, each violation
//! class is counted under its kind in count mode, and each aborts the
//! process with a one-line diagnostic in die mode.
//!
//! Abort-mode tests re-exec the current test binary with a marker env
//! var: the child role builds an abort-policy heap and commits the
//! violation, the parent role asserts the death signal and the stderr
//! diagnostic.

use mesh::core::{HardenKind, HardenPolicy, Mesh, MeshConfig, SizeClass, PAGE_SIZE};
use std::collections::HashSet;
use std::os::unix::process::ExitStatusExt;
use std::process::Command;

const SIGABRT: i32 = 6;
const SIGSEGV: i32 = 11;

fn hardened(seed: u64, policy: HardenPolicy) -> MeshConfig {
    MeshConfig::default()
        .arena_bytes(16 << 20)
        .seed(seed)
        .background_meshing(false)
        .harden_policy(policy)
}

/// Satellite 4 (part 1): no quarantined slot is reissued by malloc
/// before the FIFO caps force a drain, across three seeds.
#[test]
fn quarantine_delays_reuse_until_cap_forces_drain() {
    for seed in [41u64, 42, 43] {
        let mesh = Mesh::new(hardened(seed, HardenPolicy::Count).harden_quarantine_slots(32))
            .expect("hardened heap");
        let mut th = mesh.thread_heap();
        let freed: Vec<usize> = (0..24).map(|_| th.malloc(64) as usize).collect();
        assert!(freed.iter().all(|&p| p != 0));
        for &p in &freed {
            unsafe { th.free(p as *mut u8) };
        }
        // 24 frees sit below both caps (32 slots / 256 KiB): every one is
        // parked, none may come back — not from the shuffle vector, and
        // not from a refill either, because parked slots stay
        // bitmap-claimed.
        let parked: HashSet<usize> = freed.iter().copied().collect();
        let fresh: Vec<usize> = (0..60).map(|_| th.malloc(64) as usize).collect();
        for &p in &fresh {
            assert!(p != 0);
            assert!(
                !parked.contains(&p),
                "seed {seed}: quarantined slot {p:#x} reissued before drain"
            );
        }
        // Push past the slot cap: evictions route the oldest parked
        // slots through the normal free path, so nothing leaks.
        for &p in &fresh {
            unsafe { th.free(p as *mut u8) };
        }
        drop(th); // detach drains the quarantine like the transfer cache
        let s = mesh.stats();
        assert_eq!(s.live_bytes, 0, "seed {seed}: quarantine leaked on detach");
        assert_eq!(s.total_harden_violations(), 0, "seed {seed}: false positive");
        assert_eq!(s.double_frees, 0);
        assert_eq!(s.invalid_frees, 0);
    }
}

/// Satellite 4 (part 2): 30k clean churn operations across three seeds
/// produce zero poison/guard/canary false positives with every hardening
/// feature enabled.
#[test]
fn clean_churn_has_zero_false_positives() {
    const SIZES: [usize; 10] = [24, 64, 100, 256, 300, 1024, 2000, 4096, 8192, 20_000];
    for seed in [7u64, 8, 9] {
        let mesh = Mesh::new(hardened(seed, HardenPolicy::Count)).expect("hardened heap");
        let mut rng = seed | 1;
        let mut step = || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) as usize
        };
        let mut live: Vec<*mut u8> = Vec::new();
        for _ in 0..10_000 {
            let r = step();
            if (r % 3 == 0 && !live.is_empty()) || live.len() > 400 {
                let p = live.swap_remove(step() % live.len());
                unsafe { mesh.free(p) };
            } else if r % 17 == 0 && !live.is_empty() {
                let i = step() % live.len();
                let q = unsafe { mesh.realloc(live[i], SIZES[step() % SIZES.len()]) };
                assert!(!q.is_null());
                live[i] = q;
            } else {
                let size = SIZES[r % SIZES.len()];
                let p = mesh.malloc(size);
                assert!(!p.is_null());
                // Write the full usable extent: a hardened heap must let
                // the application use every byte it handed out.
                let usable = mesh.usable_size(p).expect("own pointer");
                unsafe { std::ptr::write_bytes(p, (r & 0xFF) as u8, usable) };
                live.push(p);
            }
        }
        for p in live {
            unsafe { mesh.free(p) };
        }
        let s = mesh.stats();
        assert_eq!(
            s.total_harden_violations(),
            0,
            "seed {seed}: clean churn tripped a detector: {:?}",
            s.harden_violations
        );
        assert_eq!(s.double_frees, 0, "seed {seed}");
        assert_eq!(s.invalid_frees, 0, "seed {seed}");
    }
}

/// Count mode: a same-thread double free of a quarantined pointer is
/// deterministically caught under `kind=double_free`.
#[test]
fn count_mode_double_free_of_quarantined_pointer() {
    let mesh = Mesh::new(hardened(50, HardenPolicy::Count)).unwrap();
    let p = mesh.malloc(128);
    assert!(!p.is_null());
    unsafe {
        mesh.free(p);
        mesh.free(p);
    }
    let s = mesh.stats();
    assert_eq!(s.harden_violations[HardenKind::DoubleFree as usize], 1);
    assert_eq!(s.double_frees, 1, "legacy counter still bumps");
}

/// Count mode: a use-after-free write into a quarantined slot is caught
/// under `kind=poison` when the quarantine drains.
#[test]
fn count_mode_uaf_write_into_quarantined_slot() {
    let mesh = Mesh::new(hardened(51, HardenPolicy::Count)).unwrap();
    let mut th = mesh.thread_heap();
    let p = th.malloc(64);
    assert!(!p.is_null());
    unsafe {
        th.free(p); // parked and poisoned
        *p.add(16) = 0xAA; // dangling write lands in the poison fill
    }
    drop(th); // detach drains the quarantine, verifying every slot
    let s = mesh.stats();
    assert_eq!(
        s.harden_violations[HardenKind::Poison as usize],
        1,
        "UAF write survived the drain-time poison check"
    );
}

/// Count mode: a UAF write is also caught at reallocation time when the
/// tampered slot is reissued (quarantine off, so the slot can recycle).
#[test]
fn count_mode_uaf_write_caught_on_reissue() {
    let mesh = Mesh::new(hardened(52, HardenPolicy::Count).harden_quarantine(false)).unwrap();
    let p = mesh.malloc(64);
    assert!(!p.is_null());
    unsafe {
        mesh.free(p);
        *p.add(16) = 0xAA;
    }
    // The freed offset went back into the shuffle vector; with a 64-slot
    // class the tampered slot must resurface within a bounded number of
    // allocations, and the malloc-time verify must flag it.
    let mut reissued = false;
    for _ in 0..256 {
        let q = mesh.malloc(64);
        assert!(!q.is_null());
        if q == p {
            reissued = true;
            break;
        }
    }
    assert!(reissued, "tampered slot never reissued — test setup broken");
    assert_eq!(
        mesh.stats().harden_violations[HardenKind::Poison as usize],
        1
    );
}

/// Count mode: a linear overflow off the end of a guarded large object
/// is caught under `kind=guard` when the object is freed.
#[test]
fn count_mode_guarded_large_overflow() {
    let mesh = Mesh::new(hardened(53, HardenPolicy::Count)).unwrap();
    let p = mesh.malloc(20_000);
    assert!(!p.is_null());
    let usable = mesh.usable_size(p).expect("own pointer");
    assert!(usable >= 20_000);
    unsafe {
        std::ptr::write_bytes(p, 0x11, usable); // full extent is fair game
        *p.add(usable) = 0xAA; // one byte past the end: into the tail page
        mesh.free(p);
    }
    let s = mesh.stats();
    assert_eq!(
        s.harden_violations[HardenKind::Guard as usize],
        1,
        "tail-page scribble not detected at free"
    );
    assert_eq!(s.live_bytes, 0);
}

/// Builds two detached, complementary half-full spans of the 256-byte
/// class (even slots freed in one, odd in the other) plus two fully-live
/// spans that are not mesh candidates, and returns one freed slot
/// address from the first span. With exactly two candidates the mesher
/// must probe this pair, so the canary sweep deterministically covers
/// the returned slot.
fn complementary_spans(mesh: &Mesh) -> usize {
    let class = SizeClass::for_size(256).unwrap();
    assert_eq!(class.span_bytes(), PAGE_SIZE, "one-page spans assumed");
    let count = class.object_count();
    let ptrs: Vec<usize> = (0..4 * count).map(|_| mesh.malloc(256) as usize).collect();
    assert!(ptrs.iter().all(|&p| p != 0));
    let span_of = |p: usize| p & !(PAGE_SIZE - 1);
    let spans: HashSet<usize> = ptrs.iter().map(|&p| span_of(p)).collect();
    assert_eq!(spans.len(), 4, "four full spans expected");
    // The shuffle vector serves one span at a time, so each run of
    // `count` pointers shares a span; the first two runs are detached by
    // the later refills.
    let (a, b) = (span_of(ptrs[0]), span_of(ptrs[count]));
    let mut victim = 0usize;
    for &p in &ptrs {
        let slot = (p - span_of(p)) / 256;
        let free = (span_of(p) == a && slot % 2 == 0) || (span_of(p) == b && slot % 2 == 1);
        if free {
            unsafe { mesh.free(p as *mut u8) };
            if span_of(p) == a && victim == 0 {
                victim = p;
            }
        }
    }
    // Detached-span frees travel the remote path; stats() flushes every
    // sender buffer so the poison+canary writes have landed.
    let _ = mesh.stats();
    victim
}

/// Count mode: a corrupted canary in a free slot rejects the mesh (the
/// copy would smear attacker-controlled bytes into the surviving span),
/// counted under `kind=canary` and in the pass ledger as `canary_trip`.
#[test]
fn count_mode_canary_trip_rejects_mesh() {
    let mesh = Mesh::new(hardened(54, HardenPolicy::Count).harden_quarantine(false)).unwrap();
    let victim = complementary_spans(&mesh);
    unsafe { std::ptr::write_bytes(victim as *mut u8, 0xAA, 8) };
    let summary = mesh.mesh_now();
    assert_eq!(summary.pairs_meshed, 0, "corrupted pair must not mesh");
    let s = mesh.stats();
    assert_eq!(s.harden_violations[HardenKind::Canary as usize], 1);
    let prom = mesh.prom_text();
    assert!(
        prom.contains("mesh_pass_rejected_total{reason=\"canary_trip\"} 1"),
        "ledger missing the canary_trip reject:\n{prom}"
    );
    assert!(prom.contains("mesh_harden_violations_total{kind=\"canary\"} 1"));
}

/// Control for the trip test: the same complementary setup with intact
/// canaries meshes fine — the free-path poison writes are not mistaken
/// for corruption.
#[test]
fn intact_canaries_do_not_block_meshing() {
    let mesh = Mesh::new(hardened(55, HardenPolicy::Count).harden_quarantine(false)).unwrap();
    let _ = complementary_spans(&mesh);
    let summary = mesh.mesh_now();
    assert!(summary.pairs_meshed >= 1, "clean pair failed to mesh");
    let s = mesh.stats();
    assert_eq!(s.harden_violations[HardenKind::Canary as usize], 0);
}

// ---------------------------------------------------------------------
// Abort-mode (die) tests: each runs itself as a subprocess.
// ---------------------------------------------------------------------

const CHILD_ENV: &str = "MESH_HARDEN_TEST_CHILD";

fn child_role(name: &str) -> bool {
    std::env::var(CHILD_ENV).as_deref() == Ok(name)
}

fn run_child(name: &str) -> std::process::Output {
    Command::new(std::env::current_exe().expect("test binary path"))
        .args(["--exact", name, "--nocapture", "--test-threads=1"])
        .env(CHILD_ENV, name)
        .output()
        .expect("spawn test binary")
}

fn assert_abort(out: &std::process::Output, kind: &str) {
    assert_eq!(
        out.status.signal(),
        Some(SIGABRT),
        "expected SIGABRT, got {:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let diag = format!("mesh: harden abort kind={kind} addr=0x");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains(&diag),
        "missing diagnostic {diag:?} in stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn abort_mode_double_free_dies_with_diagnostic() {
    if child_role("abort_mode_double_free_dies_with_diagnostic") {
        let mesh = Mesh::new(hardened(60, HardenPolicy::Abort)).unwrap();
        let p = mesh.malloc(64);
        unsafe {
            mesh.free(p);
            mesh.free(p); // aborts here
        }
        unreachable!("double free must abort in die mode");
    }
    let out = run_child("abort_mode_double_free_dies_with_diagnostic");
    assert_abort(&out, "double_free");
}

#[test]
fn abort_mode_uaf_poison_dies_with_diagnostic() {
    if child_role("abort_mode_uaf_poison_dies_with_diagnostic") {
        let mesh = Mesh::new(hardened(61, HardenPolicy::Abort)).unwrap();
        let mut th = mesh.thread_heap();
        let p = th.malloc(64);
        unsafe {
            th.free(p);
            *p.add(16) = 0xAA;
        }
        drop(th); // drain verifies the tampered slot and aborts
        unreachable!("UAF write must abort on quarantine drain");
    }
    let out = run_child("abort_mode_uaf_poison_dies_with_diagnostic");
    assert_abort(&out, "poison");
}

#[test]
fn abort_mode_canary_trip_dies_with_diagnostic() {
    if child_role("abort_mode_canary_trip_dies_with_diagnostic") {
        let mesh =
            Mesh::new(hardened(62, HardenPolicy::Abort).harden_quarantine(false)).unwrap();
        let victim = complementary_spans(&mesh);
        unsafe { std::ptr::write_bytes(victim as *mut u8, 0xAA, 8) };
        let _ = mesh.mesh_now(); // aborts inside the canary sweep
        unreachable!("canary corruption must abort the mesh");
    }
    let out = run_child("abort_mode_canary_trip_dies_with_diagnostic");
    assert_abort(&out, "canary");
}

#[test]
fn abort_mode_guarded_overflow_faults_deterministically() {
    if child_role("abort_mode_guarded_overflow_faults_deterministically") {
        let mesh = Mesh::new(hardened(63, HardenPolicy::Abort)).unwrap();
        let p = mesh.malloc(20_000);
        let usable = mesh.usable_size(p).expect("own pointer");
        unsafe { *p.add(usable) = 0xAA }; // lands on the PROT_NONE tail
        unreachable!("overflow into the guard page must fault");
    }
    // The kernel delivers the fault, so the death is SIGSEGV with no
    // diagnostic line — the deterministic-fault contract of guard pages.
    let out = run_child("abort_mode_guarded_overflow_faults_deterministically");
    assert_eq!(
        out.status.signal(),
        Some(SIGSEGV),
        "expected SIGSEGV from the guard page, got {:?}",
        out.status
    );
}
