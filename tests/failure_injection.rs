//! Failure-injection and adversarial-input tests: the allocator must
//! stay coherent (and §4.4.4 requires it to *discard* memory-management
//! errors, not crash) under every hostile input a C program can produce.

use mesh::core::{HardenKind, HardenPolicy, Mesh, MeshConfig, MeshError};
use std::time::Duration;

fn small_heap(seed: u64) -> Mesh {
    Mesh::new(MeshConfig::default().arena_bytes(16 << 20).seed(seed)).unwrap()
}

fn hardened_heap(seed: u64) -> Mesh {
    Mesh::new(
        MeshConfig::default()
            .arena_bytes(16 << 20)
            .seed(seed)
            .background_meshing(false)
            .harden_policy(HardenPolicy::Count),
    )
    .unwrap()
}

#[test]
fn zero_size_malloc_and_free_null() {
    let mesh = small_heap(1);
    // C malloc(0) may return null or a unique pointer; either way free
    // must accept the result.
    let p = mesh.malloc(0);
    unsafe { mesh.free(p) };
    unsafe { mesh.free(std::ptr::null_mut()) };
    assert_eq!(mesh.stats().invalid_frees, 0, "null free is not an error");
}

#[test]
fn oversized_requests_fail_cleanly() {
    let mesh = small_heap(2);
    // Larger than the whole arena: null, not a panic or abort.
    assert!(mesh.malloc(1 << 30).is_null());
    assert!(mesh.malloc(usize::MAX / 2).is_null());
    // calloc overflow path.
    assert!(mesh.calloc(usize::MAX, 2).is_null());
    // The heap is still usable afterwards.
    let p = mesh.malloc(64);
    assert!(!p.is_null());
    unsafe { mesh.free(p) };
    assert_eq!(mesh.stats().live_bytes, 0);
}

#[test]
fn foreign_pointer_frees_are_discarded() {
    let mesh = small_heap(3);
    let stack_var = 5u64;
    unsafe { mesh.free(&stack_var as *const u64 as *mut u8) };
    let boxed = Box::new(7u64);
    unsafe { mesh.free(Box::into_raw(boxed) as *mut u8) };
    assert!(mesh.stats().invalid_frees >= 1, "foreign frees counted");
    assert_eq!(mesh.stats().double_frees, 0);
    // Interior arena addresses that were never allocated are discarded
    // too (page-table lookup misses, §4.4.4).
    let p = mesh.malloc(128);
    let far = unsafe { p.add(64 * 1024) };
    unsafe { mesh.free(far) };
    unsafe { mesh.free(p) };
    assert_eq!(mesh.stats().live_bytes, 0);
}

#[test]
fn double_frees_are_detected_and_discarded_on_the_global_path() {
    // §4.4.4's bitmap check detects double frees on the global path (the
    // local fast path is bitmap-less by design — Fig 4 — and documented
    // as C-style undefined behaviour). Free through a thread heap that
    // does not own the pointer, so every free is global.
    let mesh = small_heap(4);
    let p = mesh.malloc(256);
    let mut other = mesh.thread_heap();
    unsafe {
        other.free(p);
        other.free(p);
        other.free(p);
    }
    // Remote frees buffer in the sender until a batch fills; `stats()`
    // flushes every live sender's buffers through the registry, so the
    // shard-side validation has run by the time we read the counters.
    let stats = mesh.stats();
    assert_eq!(stats.frees, 1, "only the first free lands");
    assert!(stats.double_frees >= 2);
    assert_eq!(stats.live_bytes, 0);
}

#[test]
fn misaligned_interior_free_does_not_corrupt() {
    let mesh = small_heap(5);
    let ptrs: Vec<*mut u8> = (0..64).map(|_| mesh.malloc(512)).collect();
    // Frees at interior offsets resolve to the same slot as the base
    // pointer (C programs sometimes free base + k where k < size; Mesh's
    // offset math rounds down to the slot) — or are discarded; either
    // way the heap must remain consistent and later legitimate frees of
    // other objects must work.
    unsafe { mesh.free(ptrs[0].add(17)) };
    for &p in &ptrs[1..] {
        unsafe { mesh.free(p) };
    }
    let stats = mesh.stats();
    assert_eq!(stats.double_frees, 0);
    assert!(stats.live_bytes <= 512, "at most the probed slot survives");
}

#[test]
fn invalid_configs_are_rejected_not_ub() {
    assert!(matches!(
        Mesh::new(MeshConfig::default().arena_bytes(1)),
        Err(MeshError::InvalidConfig(_))
    ));
    assert!(Mesh::new(MeshConfig::default().probe_limit(0)).is_err());
    assert!(Mesh::new(MeshConfig::default().occupancy_cutoff(2.0)).is_err());
    assert!(Mesh::new(MeshConfig::default().max_span_count(1)).is_err());
}

#[test]
fn exhaustion_mid_workload_is_survivable() {
    // A 4 MiB arena: fill it, verify null, free half, verify recovery —
    // repeatedly, so clean/dirty span reuse paths all get exercised.
    let mesh = Mesh::new(MeshConfig::default().arena_bytes(4 << 20).seed(6)).unwrap();
    for round in 0..4 {
        let mut ptrs = Vec::new();
        loop {
            let p = mesh.malloc(1024);
            if p.is_null() {
                break;
            }
            unsafe { std::ptr::write_bytes(p, round as u8, 1024) };
            ptrs.push(p as usize);
        }
        assert!(
            ptrs.len() * 1024 > 3 << 20,
            "round {round}: arena should mostly fill ({} allocated)",
            ptrs.len()
        );
        // Contents survived the fill.
        for &p in &ptrs {
            assert_eq!(unsafe { *(p as *const u8) }, round as u8);
        }
        for p in ptrs {
            unsafe { mesh.free(p as *mut u8) };
        }
        mesh.purge_dirty();
        assert_eq!(mesh.stats().live_bytes, 0, "round {round}");
    }
}

#[test]
fn runtime_control_changes_mid_flight() {
    let mesh = small_heap(7);
    let mut ptrs: Vec<usize> = (0..4096).map(|_| mesh.malloc(128) as usize).collect();
    for i in (0..ptrs.len()).rev() {
        if i % 4 != 0 {
            unsafe { mesh.free(ptrs.swap_remove(i) as *mut u8) };
        }
    }
    // Flip every runtime knob while the heap is fragmented and meshable.
    mesh.set_meshing_enabled(false);
    assert_eq!(mesh.mesh_now().pairs_meshed, 0, "disabled means disabled");
    mesh.set_probe_limit(1);
    mesh.set_meshing_enabled(true);
    let low_t = mesh.mesh_now().pairs_meshed;
    mesh.set_probe_limit(256);
    let high_t = mesh.mesh_now().pairs_meshed;
    // With t=1 some pairs are found; raising t finds more of what's left
    // (or nothing if t=1 already got everything — both fine, no crash).
    let _ = (low_t, high_t);
    mesh.set_mesh_period(Duration::from_secs(3600));
    mesh.set_mesh_period(Duration::ZERO);
    for p in ptrs {
        unsafe { mesh.free(p as *mut u8) };
    }
    assert_eq!(mesh.stats().live_bytes, 0);
}

#[test]
fn usable_size_contract() {
    let mesh = small_heap(8);
    let p = mesh.malloc(100);
    let usable = mesh.usable_size(p).expect("own pointer");
    assert!(usable >= 100, "usable {usable} < requested");
    // The full usable size is writable.
    unsafe { std::ptr::write_bytes(p, 0xEE, usable) };
    // Foreign pointers have no usable size.
    let x = 3u32;
    assert_eq!(mesh.usable_size(&x as *const u32 as *mut u8), None);
    unsafe { mesh.free(p) };
}

#[test]
fn realloc_edge_cases() {
    let mesh = small_heap(9);
    // realloc(null, n) == malloc(n).
    let p = unsafe { mesh.realloc(std::ptr::null_mut(), 64) };
    assert!(!p.is_null());
    // Grow with content preservation.
    unsafe { std::ptr::write_bytes(p, 0x5C, 64) };
    let q = unsafe { mesh.realloc(p, 50_000) };
    assert!(!q.is_null());
    for i in 0..64 {
        assert_eq!(unsafe { *q.add(i) }, 0x5C, "byte {i} lost in realloc");
    }
    // Shrink far enough to change class: content prefix again preserved.
    let r = unsafe { mesh.realloc(q, 16) };
    assert!(!r.is_null());
    for i in 0..16 {
        assert_eq!(unsafe { *r.add(i) }, 0x5C);
    }
    // Unsatisfiable growth leaves the original allocation intact.
    let s = unsafe { mesh.realloc(r, 1 << 30) };
    assert!(s.is_null());
    assert_eq!(unsafe { *r }, 0x5C, "failed realloc must not free the input");
    unsafe { mesh.free(r) };
    assert_eq!(mesh.stats().live_bytes, 0);
}

#[test]
fn aligned_allocation_contract() {
    let mesh = small_heap(10);
    for align in [16usize, 32, 64, 128, 1024, 4096] {
        let p = mesh.malloc_aligned(100, align);
        assert!(!p.is_null(), "align {align}");
        assert_eq!(p as usize % align, 0, "align {align} violated");
        unsafe { mesh.free(p) };
    }
    // Beyond a page: served on the large path (over-allocate + align).
    let p = mesh.malloc_aligned(100, 8192);
    assert!(!p.is_null(), "over-page alignment must not fail");
    assert_eq!(p as usize % 8192, 0);
    unsafe { mesh.free(p) };
    assert_eq!(mesh.stats().live_bytes, 0);
}

#[test]
fn thread_heap_outliving_frees_from_other_threads() {
    // Allocate on a thread heap, free everything from the main handle
    // while the thread heap is still attached, then keep allocating from
    // it: the bitmap/shuffle-vector reconciliation (§4.1) must hold.
    let mesh = small_heap(11);
    let mut th = mesh.thread_heap();
    let ptrs: Vec<usize> = (0..512).map(|_| th.malloc(64) as usize).collect();
    for &p in &ptrs {
        unsafe { mesh.free(p as *mut u8) };
    }
    // All those frees were remote (bitmap-only); the attached shuffle
    // vector must not hand out stale duplicates.
    let mut fresh: Vec<usize> = (0..512).map(|_| th.malloc(64) as usize).collect();
    fresh.sort_unstable();
    fresh.dedup();
    assert_eq!(fresh.len(), 512, "duplicate pointers after remote frees");
    for p in fresh {
        unsafe { mesh.free(p as *mut u8) };
    }
    assert_eq!(mesh.stats().live_bytes, 0);
}

#[test]
fn hostile_free_of_pointer_into_quarantined_slot() {
    // Hardening off: freeing the same slot twice on the local fast path
    // is C-style UB the bitmap-less path is documented not to catch; an
    // *interior* pointer into it is misaligned and discarded. The heap
    // must stay coherent either way.
    let mesh = small_heap(20);
    let p = mesh.malloc(64);
    unsafe {
        mesh.free(p);
        mesh.free(p.add(8));
    }
    assert_eq!(mesh.stats().invalid_frees, 1, "misaligned free discarded");
    let q = mesh.malloc(64);
    assert!(!q.is_null());
    unsafe { mesh.free(q) };

    // Hardening on: the base pointer is deterministically a double free
    // (quarantine membership), the interior pointer an invalid free, and
    // both are attributed to their hardened kinds.
    let mesh = hardened_heap(21);
    let p = mesh.malloc(64);
    unsafe {
        mesh.free(p); // parked
        mesh.free(p); // hostile: free of a quarantined pointer
        mesh.free(p.add(8)); // hostile: pointer *into* the quarantined slot
    }
    let s = mesh.stats();
    assert_eq!(s.harden_violations[HardenKind::DoubleFree as usize], 1);
    assert_eq!(s.harden_violations[HardenKind::InvalidFree as usize], 1);
    let q = mesh.malloc(64);
    assert!(!q.is_null());
    unsafe { mesh.free(q) };
    assert_eq!(
        mesh.stats().total_harden_violations(),
        2,
        "legitimate traffic after the attack adds no violations"
    );
}

#[test]
fn hostile_realloc_of_quarantined_pointer() {
    // Hardening off: realloc-after-free is UB; the classic heap resolves
    // the stale slot and must at least not corrupt itself.
    let mesh = small_heap(22);
    let p = mesh.malloc(128);
    unsafe {
        mesh.free(p);
        let q = mesh.realloc(p, 256);
        if !q.is_null() {
            mesh.free(q);
        }
    }

    // Hardening on: the quarantined slot is still claimed, so realloc
    // can size it — but its internal free of the old pointer hits the
    // quarantine membership check and is counted as the double free it
    // is. The new allocation is real and usable.
    let mesh = hardened_heap(23);
    let p = mesh.malloc(128);
    unsafe {
        mesh.free(p); // parked
        let q = mesh.realloc(p, 256); // hostile: realloc of freed pointer
        assert!(!q.is_null());
        std::ptr::write_bytes(q, 0x3C, 256);
        mesh.free(q);
    }
    let s = mesh.stats();
    assert_eq!(
        s.harden_violations[HardenKind::DoubleFree as usize],
        1,
        "realloc of a quarantined pointer counted as double free"
    );
}

#[test]
fn hostile_interior_free_on_guarded_large_object() {
    // Hardening off (no guard pages): the classic path is C-lenient —
    // any pointer into the live span resolves to the owning singleton
    // and releases it; the next interior free is then a counted miss.
    let mesh = small_heap(24);
    let p = mesh.malloc(50_000);
    unsafe { mesh.free(p.add(4096)) };
    let s = mesh.stats();
    assert_eq!(s.frees, 1, "interior pointer released the object");
    assert_eq!(s.live_bytes, 0);
    unsafe { mesh.free(p.add(17)) };
    assert_eq!(mesh.stats().invalid_frees, 1, "now-dangling free discarded");

    // Hardening on: same discard contract with the guard page in place,
    // attributed to kind=invalid_free; the base free then passes the
    // tail-page scan (nothing was overflowed).
    let mesh = hardened_heap(25);
    let p = mesh.malloc(50_000);
    let usable = mesh.usable_size(p).expect("own pointer");
    unsafe {
        std::ptr::write_bytes(p, 0x77, usable);
        mesh.free(p.add(4096)); // hostile: interior page of a guarded object
        mesh.free(p.add(17)); // hostile: unaligned interior pointer
    }
    let s = mesh.stats();
    assert!(s.harden_violations[HardenKind::InvalidFree as usize] >= 2);
    assert_eq!(s.harden_violations[HardenKind::Guard as usize], 0);
    unsafe { mesh.free(p) };
    let s = mesh.stats();
    assert_eq!(s.live_bytes, 0, "base free of the guarded object lands");
    assert_eq!(s.harden_violations[HardenKind::Guard as usize], 0);
}

#[test]
fn heaps_are_isolated_from_each_other() {
    // Pointers from one heap freed into another are foreign — discarded,
    // counted, and harmless.
    let a = small_heap(12);
    let b = small_heap(13);
    let pa = a.malloc(256);
    unsafe { b.free(pa) };
    assert_eq!(b.stats().invalid_frees, 1);
    assert_eq!(a.stats().frees, 0, "a's object is still live");
    assert!(a.contains(pa) && !b.contains(pa));
    unsafe { a.free(pa) };
    assert_eq!(a.stats().live_bytes, 0);
}
