//! Concurrency stress tests: §4.3's lock-free fast path, §4.4.4's remote
//! frees, and §4.5.2's concurrent meshing under adversarial schedules.

use mesh::core::{Mesh, MeshConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn heap(seed: u64) -> Mesh {
    Mesh::new(MeshConfig::default().arena_bytes(1 << 30).seed(seed)).unwrap()
}

#[test]
fn producer_consumer_remote_frees() {
    // Producers allocate, consumers free other threads' pointers: every
    // consumer free takes the §4.4.4 global path.
    let mesh = heap(21);
    let (tx, rx) = std::sync::mpsc::channel::<usize>();
    let producers: Vec<_> = (0..3)
        .map(|t| {
            let mesh = mesh.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut heap = mesh.thread_heap();
                for i in 0..20_000usize {
                    let size = 16 + ((i * 37 + t * 13) % 1000);
                    let p = heap.malloc(size);
                    assert!(!p.is_null());
                    unsafe { std::ptr::write_bytes(p, 0x33, size.min(64)) };
                    tx.send(p as usize).unwrap();
                }
            })
        })
        .collect();
    drop(tx);
    let consumer = {
        let mesh = mesh.clone();
        std::thread::spawn(move || {
            let mut heap = mesh.thread_heap();
            let mut count = 0u64;
            while let Ok(addr) = rx.recv() {
                unsafe { heap.free(addr as *mut u8) };
                count += 1;
            }
            count
        })
    };
    for p in producers {
        p.join().unwrap();
    }
    let freed = consumer.join().unwrap();
    assert_eq!(freed, 60_000);
    let stats = mesh.stats();
    assert_eq!(stats.mallocs, 60_000);
    assert_eq!(stats.frees, 60_000);
    assert_eq!(stats.live_bytes, 0);
    assert!(stats.remote_frees > 50_000, "consumer frees must be remote");
    assert_eq!(stats.double_frees, 0);
    assert_eq!(stats.invalid_frees, 0);
}

#[test]
fn concurrent_meshing_with_racing_writers_loses_nothing() {
    // The §4.5.2 write-barrier guarantee, asserted via counters: writers
    // increment disjoint u64 counters inside mesh candidates while the
    // main thread meshes continuously. Any lost write breaks the sum.
    //
    // Auto-meshing is disabled (huge period): on a slow machine the setup
    // frees can outlast the default 100ms rate limit, letting an automatic
    // pass consume the meshable pairs before the explicit mesh_now() calls
    // below get to race with the writers.
    let mesh = Mesh::new(
        MeshConfig::default()
            .arena_bytes(1 << 30)
            .seed(22)
            .mesh_period(Duration::from_secs(3600)),
    )
    .unwrap();
    let mut th = mesh.thread_heap();
    let all: Vec<usize> = (0..65_536)
        .map(|_| {
            let p = th.malloc(64);
            unsafe { std::ptr::write_bytes(p, 0, 64) };
            p as usize
        })
        .collect();
    let mut survivors = Vec::new();
    for (i, &p) in all.iter().enumerate() {
        if i % 8 == 0 {
            survivors.push(p);
        } else {
            unsafe { th.free(p as *mut u8) };
        }
    }
    let survivors = Arc::new(survivors);
    let stop = Arc::new(AtomicBool::new(false));
    let writes = Arc::new(AtomicU64::new(0));
    let writers: Vec<_> = (0..4usize)
        .map(|t| {
            let survivors = Arc::clone(&survivors);
            let stop = Arc::clone(&stop);
            let writes = Arc::clone(&writes);
            std::thread::spawn(move || {
                let mine: Vec<usize> =
                    survivors.iter().copied().skip(t).step_by(4).collect();
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let addr = mine[i % mine.len()] as *mut u64;
                    unsafe { addr.write(addr.read() + 1) };
                    writes.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            })
        })
        .collect();

    let mut meshed_total = 0usize;
    for _ in 0..8 {
        meshed_total += mesh.mesh_now().pairs_meshed;
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    assert!(meshed_total > 100, "stress needs real meshing traffic");
    let sum: u64 = survivors
        .iter()
        .map(|&a| unsafe { (a as *const u64).read() })
        .sum();
    assert_eq!(
        sum,
        writes.load(Ordering::Relaxed),
        "writes lost during concurrent meshing"
    );
    for &p in survivors.iter() {
        unsafe { mesh.free(p as *mut u8) };
    }
}

#[test]
fn allocation_proceeds_while_meshing_hammers() {
    // §4.5.3: threads needing fresh spans wait on the global lock, but
    // allocation from attached spans proceeds; nothing deadlocks.
    let mesh = heap(23);
    let stop = Arc::new(AtomicBool::new(false));
    let mesher = {
        let mesh = mesh.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                mesh.mesh_now();
            }
        })
    };
    let workers: Vec<_> = (0..4)
        .map(|t| {
            let mesh = mesh.clone();
            std::thread::spawn(move || {
                let mut heap = mesh.thread_heap();
                let mut live: Vec<(usize, usize)> = Vec::new();
                let mut rng = mesh::core::rng::Rng::with_seed(t);
                for _ in 0..30_000 {
                    if live.len() < 500 || rng.chance(1, 2) {
                        let size = 16 + rng.below(500) as usize;
                        let p = heap.malloc(size);
                        assert!(!p.is_null());
                        unsafe { std::ptr::write_bytes(p, 0x44, size.min(32)) };
                        live.push((p as usize, size));
                    } else {
                        let i = rng.below(live.len() as u32) as usize;
                        let (addr, _) = live.swap_remove(i);
                        unsafe { heap.free(addr as *mut u8) };
                    }
                }
                for (addr, _) in live {
                    unsafe { heap.free(addr as *mut u8) };
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    mesher.join().unwrap();
    let stats = mesh.stats();
    assert_eq!(stats.live_bytes, 0);
    assert_eq!(stats.double_frees, 0);
}

#[test]
fn thread_heap_drop_returns_spans_for_meshing() {
    let mesh = heap(24);
    let mut keepers: Vec<usize> = Vec::new();
    for t in 0..8 {
        let mesh = mesh.clone();
        let kept = std::thread::spawn(move || {
            let mut heap = mesh.thread_heap();
            let ptrs: Vec<usize> = (0..4096).map(|_| heap.malloc(256) as usize).collect();
            let mut kept = Vec::new();
            for (i, &p) in ptrs.iter().enumerate() {
                if i % 8 == t % 8 {
                    kept.push(p);
                } else {
                    unsafe { heap.free(p as *mut u8) };
                }
            }
            kept
            // heap drops here: all spans return to the global heap.
        })
        .join()
        .unwrap();
        keepers.extend(kept);
    }
    // All spans are detached now; meshing should compact across the
    // remains of all eight threads.
    let before = mesh.heap_bytes();
    let summary = mesh.mesh_now();
    assert!(summary.pairs_meshed > 0, "no cross-thread meshing happened");
    assert!(mesh.heap_bytes() < before);
    for p in keepers {
        unsafe { mesh.free(p as *mut u8) };
    }
    assert_eq!(mesh.stats().live_bytes, 0);
}

#[test]
fn sharded_heap_stress_distinct_classes_with_background_mesher() {
    // The sharded-heap acceptance test: N threads hammer *distinct* size
    // classes (their refills take disjoint class locks), a remote-free
    // thread frees other threads' pointers (lock-free queue pushes), and
    // the background mesher runs aggressively the whole time. Afterwards
    // every free must be accounted for (no lost frees) and occupancy
    // accounting must settle to exactly zero.
    const CLASS_SIZES: [usize; 6] = [16, 48, 128, 320, 768, 2048];
    const OPS: usize = 30_000;
    let mesh = Mesh::new(
        MeshConfig::default()
            .arena_bytes(1 << 30)
            .seed(26)
            .mesh_period(Duration::from_millis(2))
            .background_meshing(true),
    )
    .unwrap();
    let (tx, rx) = std::sync::mpsc::channel::<usize>();
    let workers: Vec<_> = CLASS_SIZES
        .iter()
        .enumerate()
        .map(|(t, &size)| {
            let mesh = mesh.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut heap = mesh.thread_heap();
                let mut rng = mesh::core::rng::Rng::with_seed(t as u64);
                let mut live: Vec<usize> = Vec::new();
                for i in 0..OPS {
                    match i % 4 {
                        // Allocate and keep (freed locally later).
                        0 | 1 => {
                            let p = heap.malloc(size);
                            assert!(!p.is_null(), "class {size} exhausted");
                            unsafe { std::ptr::write_bytes(p, t as u8 + 1, size.min(32)) };
                            live.push(p as usize);
                        }
                        // Allocate and hand off for a remote free.
                        2 => {
                            let p = heap.malloc(size);
                            assert!(!p.is_null());
                            tx.send(p as usize).unwrap();
                        }
                        // Free one of our own (local fast path).
                        _ => {
                            if !live.is_empty() {
                                let idx = rng.below(live.len() as u32) as usize;
                                let addr = live.swap_remove(idx);
                                unsafe { heap.free(addr as *mut u8) };
                            }
                        }
                    }
                }
                for addr in live {
                    unsafe { heap.free(addr as *mut u8) };
                }
            })
        })
        .collect();
    drop(tx);
    let remote_freer = {
        let mesh = mesh.clone();
        std::thread::spawn(move || {
            let mut heap = mesh.thread_heap();
            let mut n = 0u64;
            while let Ok(addr) = rx.recv() {
                unsafe { heap.free(addr as *mut u8) };
                n += 1;
            }
            n
        })
    };
    for w in workers {
        w.join().unwrap();
    }
    let remote = remote_freer.join().unwrap();
    assert_eq!(remote as usize, CLASS_SIZES.len() * OPS.div_ceil(4));

    // stats() flushes every remote-free queue: accounting must settle.
    let stats = mesh.stats();
    assert_eq!(stats.mallocs, stats.frees, "lost frees: {stats:?}");
    assert_eq!(stats.live_bytes, 0, "occupancy accounting drifted");
    assert_eq!(stats.double_frees, 0);
    assert_eq!(stats.invalid_frees, 0);
    assert_eq!(
        stats.remote_free_queued, stats.remote_free_drained,
        "queued remote frees never applied"
    );
    assert!(stats.remote_free_queued >= remote, "remote frees bypassed the queues");

    // The background mesher had fragmented detached spans and an
    // aggressive period: it must actually have run.
    assert!(stats.mesh_passes > 0, "background mesher never ran");

    // With everything freed and drained, a purge releases every page.
    mesh.purge_dirty();
    let _ = mesh.mesh_now();
    mesh.purge_dirty();
    assert_eq!(mesh.stats().committed_pages, 0, "pages leaked");
}

#[test]
fn mesh_handle_is_usable_from_many_threads_at_once() {
    let mesh = heap(25);
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let mesh = mesh.clone();
            std::thread::spawn(move || {
                for _ in 0..2000 {
                    let p = mesh.malloc(300);
                    assert!(!p.is_null());
                    unsafe { mesh.free(p) };
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(mesh.stats().live_bytes, 0);
}
