//! E20 — sampled heap-profiling end to end: compiles `tests/c/leak.c`
//! (with frame pointers), runs it under `LD_PRELOAD=libmesh.so` with
//! `MESH_PROF=1`, and validates the at-exit JSON dump against the
//! documented schema (DESIGN.md "Telemetry & profiling"):
//!
//! * the dump parses and carries every schema field;
//! * entries are sorted by live bytes, and the top entry attributes
//!   ≥ 90% of leaked bytes to the leaking call site;
//! * the live-byte estimate agrees with the allocator's exact counter;
//! * when frame-pointer capture worked, the leak site and the churn site
//!   intern as distinct fingerprints.
//!
//! The C program also raises SIGUSR2 at itself: with `MESH_PROF=1` the
//! preload installs the dump-request handler, so a zero exit status is
//! the proof the handler was in place (the default action would kill it).
//!
//! Skips (loudly) when no `cc` is available, like `tests/c_abi.rs`.

mod support;

use std::process::{Command, Stdio};
use support::{build_libmesh, compile_c, have_cc, target_dir, Parser};

#[test]
fn leak_profile_attributes_the_leaking_site() {
    if !have_cc() {
        eprintln!("skipping heap-profile preload test: no `cc` in this environment");
        return;
    }
    let so = build_libmesh();
    let out_dir = target_dir().join("c-prof-tests");
    std::fs::create_dir_all(&out_dir).unwrap();
    let bin = compile_c("leak", &out_dir, &["-O1", "-fno-omit-frame-pointer"]);
    let dump_path = out_dir.join("leak-profile.json");
    std::fs::remove_file(&dump_path).ok();

    let out = Command::new(&bin)
        .env("LD_PRELOAD", &so)
        .env("MESH_PROF", "1")
        .env("MESH_PROF_SAMPLE_BYTES", "16K")
        .env("MESH_PROF_PATH", &dump_path)
        .env("MESH_SEED", "17")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn failed");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "leak exited {:?} (SIGUSR2 unhandled?)\nstdout:\n{stdout}\nstderr:\n{stderr}",
        out.status
    );
    assert!(stdout.contains("leak OK"), "missing OK line:\n{stdout}");

    // --- schema ---------------------------------------------------------
    let raw = std::fs::read_to_string(&dump_path)
        .unwrap_or_else(|e| panic!("no dump at {}: {e}\nstderr:\n{stderr}", dump_path.display()));
    let dump = Parser::parse(raw.trim());
    assert_eq!(dump.get("mesh_profile_version").num(), 1);
    assert_eq!(dump.get("sample_bytes").num(), 16 << 10, "16K knob honoured");
    for field in [
        "uptime_ms",
        "samples",
        "samples_dropped",
        "sampled_frees",
        "sites",
        "live_samples",
        "live_bytes_exact",
        "live_bytes_estimate",
    ] {
        dump.get(field).num(); // present and numeric
    }
    assert_eq!(dump.get("samples_dropped").num(), 0, "sampled set overflowed");
    let entries = dump.get("entries").arr();
    assert!(!entries.is_empty(), "no profile entries:\n{raw}");
    for e in entries {
        for field in [
            "site",
            "live_bytes",
            "live_samples",
            "alloc_bytes",
            "alloc_samples",
            "freed_bytes",
            "free_samples",
        ] {
            e.get(field).num();
        }
        e.get("frames").arr();
    }

    // --- attribution ----------------------------------------------------
    // ~6.1 MB leaked through one site at a 16 KiB sampling rate: the top
    // entry must hold ≥ 90% of all live sampled bytes (acceptance
    // criterion), and entries must arrive sorted live-first.
    let live: Vec<u64> = entries.iter().map(|e| e.get("live_bytes").num()).collect();
    assert!(live.windows(2).all(|w| w[0] >= w[1]), "not sorted: {live:?}");
    let total: u64 = live.iter().sum();
    let top = &entries[0];
    let top_live = live[0];
    assert!(
        top_live * 10 >= total * 9,
        "top entry holds {top_live} of {total} live bytes (< 90%):\n{raw}"
    );
    assert!(
        top.get("alloc_samples").num() >= 50,
        "leak site barely sampled:\n{raw}"
    );

    // --- estimator vs exact ---------------------------------------------
    // ~370 expected samples on the leak → ~5% standard error; 30% bounds
    // ≈ 6σ while still catching weighting bugs (2× is far outside).
    let exact = dump.get("live_bytes_exact").num() as f64;
    let estimate = dump.get("live_bytes_estimate").num() as f64;
    assert!(exact > 6.0 * 1024.0 * 1024.0 * 0.9, "leak not live at exit: {exact}");
    assert!(
        (estimate - exact).abs() <= exact * 0.30,
        "estimate {estimate} vs exact {exact}: off by more than 30%"
    );

    // --- site distinction -----------------------------------------------
    // When frame-pointer capture produced chains, the leak and churn
    // sites must be distinct fingerprints. (On targets without frame
    // pointers every chain is empty and collapses into one site — the
    // attribution assertions above still ran, so only this refinement is
    // skipped.)
    if !top.get("frames").arr().is_empty() {
        assert!(
            entries.len() >= 2,
            "frames captured but only one site interned:\n{raw}"
        );
        let freed_somewhere = entries
            .iter()
            .any(|e| e.get("free_samples").num() > 0 && e.get("live_bytes").num() < top_live / 10);
        assert!(
            freed_somewhere,
            "churn site (freed allocations) missing from the profile:\n{raw}"
        );
    } else {
        eprintln!("note: empty call chains — frame-pointer capture unavailable here");
    }
}
