//! End-to-end meshing correctness: the §4.5 machinery validated through
//! the public API, including theory cross-validation against §5.

use mesh::core::{Mesh, MeshConfig, SpanSnapshot};
use mesh::graph::matching::greedy_matching;
use mesh::graph::probability::mesh_probability;
use mesh::graph::MeshGraph;
use mesh::graph::SpanString;

fn heap(seed: u64) -> Mesh {
    // A huge mesh period disables the auto-trigger: these tests measure
    // *explicit* passes, and a rate-limited background pass firing during
    // a slow parallel test run would skew their before/after numbers.
    Mesh::new(
        MeshConfig::default()
            .arena_bytes(512 << 20)
            .seed(seed)
            .mesh_period(std::time::Duration::from_secs(3600)),
    )
    .unwrap()
}

/// Fragment: allocate `n` objects of `size`, keep every `keep`-th.
fn fragment(mesh: &Mesh, n: usize, size: usize, keep: usize) -> Vec<*mut u8> {
    let ptrs: Vec<*mut u8> = (0..n).map(|_| mesh.malloc(size)).collect();
    let mut kept = Vec::new();
    for (i, &p) in ptrs.iter().enumerate() {
        assert!(!p.is_null());
        unsafe { std::ptr::write_bytes(p, (i % 250) as u8 + 1, size) };
        if i % keep == 0 {
            kept.push(p);
        } else {
            unsafe { mesh.free(p) };
        }
    }
    kept
}

#[test]
fn repeated_meshing_converges_and_preserves_data() {
    let mesh = heap(10);
    let kept = fragment(&mesh, 32768, 256, 8);
    let expected: Vec<u8> = (0..32768)
        .filter(|i| i % 8 == 0)
        .map(|i| (i % 250) as u8 + 1)
        .collect();
    let mut last = mesh.heap_bytes();
    for pass in 0..5 {
        let summary = mesh.mesh_now();
        let now = mesh.heap_bytes();
        assert!(now <= last, "pass {pass} grew the heap");
        last = now;
        // Data survives every pass.
        for (&p, &fill) in kept.iter().zip(&expected) {
            unsafe {
                assert_eq!(*p, fill, "pass {pass} corrupted an object");
                assert_eq!(*p.add(255), fill);
            }
        }
        if summary.pairs_meshed == 0 {
            break;
        }
    }
    for p in kept {
        unsafe { mesh.free(p) };
    }
    assert_eq!(mesh.stats().live_bytes, 0);
}

#[test]
fn meshed_spans_report_multiple_aliases_and_die_cleanly() {
    let mesh = heap(11);
    let kept = fragment(&mesh, 8192, 128, 16);
    mesh.mesh_now();
    let snaps = mesh.span_snapshots();
    let meshed: Vec<&SpanSnapshot> =
        snaps.iter().filter(|s| s.virtual_span_count > 1).collect();
    assert!(!meshed.is_empty(), "no spans were meshed");
    assert!(
        meshed.iter().all(|s| s.virtual_span_count <= 3),
        "alias limit violated"
    );
    // Free every survivor: all MiniHeaps must die, identity mappings
    // restored, and the whole footprint collapse.
    for p in kept {
        unsafe { mesh.free(p) };
    }
    mesh.purge_dirty();
    let snaps = mesh.span_snapshots();
    assert!(
        snaps.iter().all(|s| s.attached || s.in_use > 0 || s.large),
        "dead MiniHeaps survived: {snaps:?}"
    );
    assert_eq!(mesh.stats().live_bytes, 0);
}

#[test]
fn no_rand_heap_with_regular_pattern_cannot_mesh() {
    let mesh = Mesh::new(
        MeshConfig::default()
            .arena_bytes(256 << 20)
            .seed(12)
            .randomize(false),
    )
    .unwrap();
    let kept = fragment(&mesh, 16384, 256, 16);
    let summary = mesh.mesh_now();
    assert_eq!(
        summary.pairs_meshed, 0,
        "identical survivor offsets must be unmeshable (§6.3)"
    );
    for p in kept {
        unsafe { mesh.free(p) };
    }
}

#[test]
fn empirical_mesh_rate_matches_closed_form() {
    // Cross-validate §5.2's probability model against REAL heap bitmaps:
    // build spans at ~1/16 occupancy, snapshot them, and compare the
    // pairwise mesh rate with q = C(b−r, r)/C(b, r).
    let mesh = heap(13);
    let kept = fragment(&mesh, 65536, 256, 16);
    let snaps: Vec<SpanSnapshot> = mesh
        .span_snapshots()
        .into_iter()
        .filter(|s| !s.attached && !s.large && s.in_use > 0 && s.object_count == 16)
        .collect();
    assert!(snaps.len() > 100);
    // For each pair, compare the observed meshability rate against the
    // closed form for that pair's actual occupancies: if randomized
    // allocation really scatters objects uniformly, the rates agree.
    let mut pairs = 0usize;
    let mut meshable = 0usize;
    let mut predicted = 0.0f64;
    for i in 0..snaps.len().min(400) {
        for j in (i + 1)..snaps.len().min(400) {
            pairs += 1;
            if snaps[i].meshes_with(&snaps[j]) {
                meshable += 1;
            }
            predicted += mesh_probability(16, snaps[i].in_use, snaps[j].in_use);
        }
    }
    let empirical = meshable as f64 / pairs as f64;
    let predicted = predicted / pairs as f64;
    assert!(
        (empirical - predicted).abs() < 0.1,
        "empirical mesh rate {empirical:.3} vs occupancy-mixture closed form {predicted:.3}"
    );
    for p in kept {
        unsafe { mesh.free(p) };
    }
}

#[test]
fn splitmesher_quality_tracks_graph_matching_on_real_bitmaps() {
    // Extract real span strings from a fragmented heap, compute the
    // graph-theoretic greedy matching, and check the allocator's actual
    // pass released a comparable number of pages.
    let mesh = heap(14);
    let kept = fragment(&mesh, 32768, 512, 8);
    let snaps: Vec<SpanSnapshot> = mesh
        .span_snapshots()
        .into_iter()
        .filter(|s| !s.attached && !s.large && s.in_use > 0 && s.object_size == 512)
        .collect();
    let strings: Vec<SpanString> = snaps
        .iter()
        .map(|s| {
            let mut str = SpanString::zeros(s.object_count);
            for bit in 0..s.object_count {
                if s.bitmap_words[bit / 64] & (1 << (bit % 64)) != 0 {
                    str.set(bit);
                }
            }
            str
        })
        .collect();
    let g = MeshGraph::from_strings(strings);
    let graph_matching = greedy_matching(&g).len();
    let summary = mesh.mesh_now();
    assert!(
        summary.pairs_meshed * 2 >= graph_matching / 2,
        "allocator found {} pairs, graph greedy found {}",
        summary.pairs_meshed,
        graph_matching
    );
    for p in kept {
        unsafe { mesh.free(p) };
    }
}

#[test]
fn meshing_disabled_is_truly_inert() {
    let mesh = Mesh::new(
        MeshConfig::default()
            .arena_bytes(128 << 20)
            .seed(15)
            .meshing(false),
    )
    .unwrap();
    let kept = fragment(&mesh, 16384, 256, 8);
    let before = mesh.heap_bytes();
    let summary = mesh.mesh_now();
    assert_eq!(summary.pairs_meshed, 0);
    assert_eq!(mesh.heap_bytes(), before);
    assert_eq!(mesh.stats().mesh_passes, 0);
    for p in kept {
        unsafe { mesh.free(p) };
    }
}

#[test]
fn runtime_reenabling_meshing_works() {
    let mesh = Mesh::new(
        MeshConfig::default()
            .arena_bytes(128 << 20)
            .seed(16)
            .meshing(false),
    )
    .unwrap();
    let kept = fragment(&mesh, 16384, 256, 8);
    assert_eq!(mesh.mesh_now().pairs_meshed, 0);
    // The mallctl analog (§4.5): flip meshing on at runtime.
    mesh.set_meshing_enabled(true);
    let summary = mesh.mesh_now();
    assert!(summary.pairs_meshed > 0, "meshing did not wake up");
    for p in kept {
        unsafe { mesh.free(p) };
    }
}

#[test]
fn large_objects_bypass_meshing_entirely() {
    let mesh = heap(17);
    let big: Vec<*mut u8> = (0..64).map(|_| mesh.malloc(100_000)).collect();
    for (i, &p) in big.iter().enumerate() {
        if i % 2 == 0 {
            unsafe { mesh.free(p) };
        }
    }
    let summary = mesh.mesh_now();
    assert_eq!(summary.pairs_meshed, 0, "large singletons must never mesh");
    let snaps = mesh.span_snapshots();
    assert!(snaps.iter().filter(|s| s.large).all(|s| s.virtual_span_count == 1));
    for (i, &p) in big.iter().enumerate() {
        if i % 2 == 1 {
            unsafe { mesh.free(p) };
        }
    }
}
