//! Property test: `occupancy_spectrum()` stays coherent while worker
//! threads churn the heap.
//!
//! The spectrum walk holds one class shard lock at a time, so each
//! class's numbers must be internally consistent at the instant of its
//! walk no matter what the other threads are doing: every span of the
//! class sits in exactly one bin (or is attached), which makes the bin
//! totals equal the class's span count and `total_slots` exactly
//! `spans × object_count`. After the churn quiesces, the spectrum must
//! also reconcile with ground truth the test tracked itself: per-class
//! live-object counts and the heap's `live_bytes`.

use mesh::core::{Mesh, MeshConfig, SizeClass};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Sizes that map to distinct small classes; churned in rotation.
const SIZES: [usize; 4] = [32, 64, 256, 1024];

fn churn_property(seed: u64) {
    let mesh = Arc::new(
        Mesh::new(
            MeshConfig::default()
                .arena_bytes(256 << 20)
                .seed(seed)
                .write_barrier(false),
        )
        .unwrap(),
    );
    let stop = Arc::new(AtomicBool::new(false));

    // Worker threads: allocate a few thousand objects, free most, loop.
    let workers: Vec<_> = (0..3)
        .map(|w| {
            let mesh = Arc::clone(&mesh);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut th = mesh.thread_heap();
                let mut rounds = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let ptrs: Vec<usize> = (0..2048)
                        .map(|i| th.malloc(SIZES[(w + i) % SIZES.len()]) as usize)
                        .collect();
                    for (i, &p) in ptrs.iter().enumerate() {
                        if i % 8 != (w + rounds as usize) % 8 {
                            unsafe { th.free(p as *mut u8) };
                        }
                    }
                    // Survivors freed next round, keeping a rolling
                    // fragmented residue alive across snapshots.
                    for (i, &p) in ptrs.iter().enumerate() {
                        if i % 8 == (w + rounds as usize) % 8 {
                            unsafe { th.free(p as *mut u8) };
                        }
                    }
                    rounds += 1;
                }
            })
        })
        .collect();

    // Main thread: snapshot the spectrum repeatedly mid-churn and check
    // the per-class coherence contract on every snapshot.
    let mut snapshots = 0usize;
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(400);
    while std::time::Instant::now() < deadline {
        let spec = mesh.occupancy_spectrum();
        for class in SizeClass::all() {
            let c = &spec.classes[class.index()];
            if c.total_slots == 0 {
                continue;
            }
            // Bin totals equal live span counts: every span is in
            // exactly one bin (or attached), so slot capacity is exactly
            // spans × per-span object count.
            assert_eq!(
                c.total_slots,
                c.spans() * class.object_count() as u64,
                "seed {seed}: class {} bins disagree with span count: {c:?}",
                class.object_size()
            );
            assert!(
                c.live_objects <= c.total_slots,
                "seed {seed}: class {} holds more objects than slots: {c:?}",
                class.object_size()
            );
            // Full-bin spans alone cannot exceed the live count's slots.
            assert!(
                (c.bins[4] as u64) * class.object_count() as u64 <= c.live_objects,
                "seed {seed}: full bin overcounts: {c:?}"
            );
        }
        snapshots += 1;
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    assert!(snapshots > 0, "seed {seed}: no mid-churn snapshots taken");

    // Quiesced: everything the workers allocated was freed, so the
    // settled spectrum must carry zero live objects and reconcile with
    // the heap's own live-byte ledger. Freed objects parked in the
    // transfer cache still hold their bitmap bits (they pin spans until
    // purged), so run a mesh pass to flush them before the zero check.
    let stats = mesh.stats();
    assert_eq!(stats.live_bytes, 0, "seed {seed}");
    mesh.mesh_now();
    let spec = mesh.occupancy_spectrum();
    let live: u64 = spec.classes.iter().map(|c| c.live_objects).sum();
    assert_eq!(live, 0, "seed {seed}: settled spectrum shows live objects");
    for class in SizeClass::all() {
        let c = &spec.classes[class.index()];
        if c.total_slots > 0 {
            assert_eq!(c.total_slots, c.spans() * class.object_count() as u64, "seed {seed}");
        }
    }
}

#[test]
fn spectrum_coherent_under_churn_seed_a() {
    churn_property(0xA11CE);
}

#[test]
fn spectrum_coherent_under_churn_seed_b() {
    churn_property(0xB0B);
}

#[test]
fn spectrum_coherent_under_churn_seed_c() {
    churn_property(0xC0FFEE);
}
