//! Property tests for the §5 theory kit: blossom matching, graph
//! realization, Erdős–Renyi sampling, and trace round-trips.
//!
//! Deterministic seeded-RNG property loops (the offline build has no
//! `proptest`); each property runs `CASES` randomized cases with the case
//! number carried in every assertion message.

use mesh::core::rng::Rng;
use mesh::graph::blossom::blossom_matching;
use mesh::graph::clique_cover::min_clique_cover_size;
use mesh::graph::erdos_renyi::sample_gnp;
use mesh::graph::matching::{greedy_matching, is_valid_matching, maximum_matching_size};
use mesh::graph::MeshGraph;
use mesh::workloads::trace::{Trace, TraceEvent};

const CASES: u64 = 64;

fn case_rng(test_id: u64, case: u64) -> Rng {
    Rng::with_seed(test_id ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Generator: an arbitrary edge set over `n ≤ 12` nodes.
fn small_graph(gen: &mut Rng) -> (usize, Vec<(usize, usize)>) {
    let n = 2 + gen.below(11) as usize;
    let max_edges = n * (n - 1) / 2;
    let count = gen.below(max_edges as u32 + 1) as usize;
    let edges = (0..count)
        .map(|_| (gen.below(n as u32) as usize, gen.below(n as u32) as usize))
        .collect();
    (n, edges)
}

/// `from_edge_list` realizes exactly the requested edge relation (minus
/// self-loops), for arbitrary edge sets.
#[test]
fn edge_list_realization_is_exact() {
    for case in 0..CASES {
        let (n, edges) = small_graph(&mut case_rng(0x61, case));
        let g = MeshGraph::from_edge_list(n, &edges);
        assert_eq!(g.node_count(), n, "case {case}");
        for i in 0..n {
            assert!(!g.has_edge(i, i), "case {case}");
            for j in 0..n {
                if i != j {
                    let wanted = edges
                        .iter()
                        .any(|&(a, b)| (a, b) == (i, j) || (b, a) == (i, j));
                    assert_eq!(g.has_edge(i, j), wanted, "edge ({i}, {j}), case {case}");
                }
            }
        }
    }
}

/// Blossom output is always a valid matching, is optimal (vs the subset
/// DP), and dominates the greedy matcher.
#[test]
fn blossom_is_optimal_on_arbitrary_graphs() {
    for case in 0..CASES {
        let (n, edges) = small_graph(&mut case_rng(0x62, case));
        let g = MeshGraph::from_edge_list(n, &edges);
        let m = blossom_matching(&g);
        assert!(is_valid_matching(&g, &m), "case {case}");
        assert!(m.len() <= n / 2, "case {case}");
        let opt = maximum_matching_size(&g);
        assert_eq!(m.len(), opt, "case {case}");
        let greedy = greedy_matching(&g);
        assert!(greedy.len() <= m.len(), "case {case}");
        assert!(2 * greedy.len() >= m.len(), "greedy below 1/2-approx, case {case}");
    }
}

/// An optimal cover of `k` cliques releases `n − k` spans; a maximum
/// matching of `m` pairs releases `m`. The optimal cover dominates the
/// matching but never releases more than 2× as much: a clique of size `s`
/// releases `s − 1` spans yet contains `⌊s/2⌋ ≥ (s−1)/2` disjoint pairs —
/// the quantitative backbone of §5.2's claim.
#[test]
fn cover_dominates_matching_but_not_by_much() {
    for case in 0..CASES {
        let (n, edges) = small_graph(&mut case_rng(0x63, case));
        let g = MeshGraph::from_edge_list(n, &edges);
        let match_released = blossom_matching(&g).len();
        let cover_released = n - min_clique_cover_size(&g);
        assert!(cover_released >= match_released, "case {case}");
        assert!(cover_released <= 2 * match_released, "case {case}");
    }
}

/// Erdős–Renyi degenerate cases and edge-count bounds (cases 0/1 of each
/// triple pin the exact p = 0 and p = 1 endpoints).
#[test]
fn gnp_edge_counts_bounded() {
    for case in 0..CASES {
        let mut gen = case_rng(0x64, case);
        let n = 2 + gen.below(38) as usize;
        let p = match case % 3 {
            0 => 0.0,
            1 => 1.0,
            _ => gen.next_u64() as f64 / u64::MAX as f64,
        };
        let mut rng = Rng::with_seed(gen.next_u64());
        let g = sample_gnp(n, p, &mut rng);
        let max = n * (n - 1) / 2;
        assert!(g.edge_count() <= max, "case {case}");
        if p == 0.0 {
            assert_eq!(g.edge_count(), 0, "case {case}");
        }
        if p == 1.0 {
            assert_eq!(g.edge_count(), max, "case {case}");
        }
    }
}

/// Any well-formed trace round-trips through the text format.
#[test]
fn trace_text_round_trip() {
    for case in 0..CASES {
        let mut gen = case_rng(0x65, case);
        let ops: Vec<(u8, u64, usize)> = (0..gen.below(200))
            .map(|_| {
                (
                    gen.below(2) as u8,
                    gen.below(8) as u64,
                    1 + gen.below(4095) as usize,
                )
            })
            .collect();
        // Build a well-formed trace from the op stream: malloc if the id
        // is free, free if it is live.
        let mut live = std::collections::HashSet::new();
        let mut events = Vec::new();
        for (op, id, size) in ops {
            if op == 0 && !live.contains(&id) {
                live.insert(id);
                events.push(TraceEvent::Malloc { id, size });
            } else if op == 1 && live.contains(&id) {
                live.remove(&id);
                events.push(TraceEvent::Free { id });
            }
        }
        let trace = Trace::from_events(events);
        assert!(trace.validate().is_ok(), "case {case}");
        let back = Trace::from_text(&trace.to_text()).unwrap();
        assert_eq!(back, trace, "case {case}");
    }
}

/// Trace statistics are internally consistent.
#[test]
fn trace_stats_consistent() {
    for case in 0..CASES {
        let mut gen = case_rng(0x66, case);
        let sizes: Vec<usize> = (0..1 + gen.below(99))
            .map(|_| 1 + gen.below(9999) as usize)
            .collect();
        let mut trace = Trace::default();
        for (i, &s) in sizes.iter().enumerate() {
            trace.push_malloc(i as u64, s);
        }
        for i in 0..sizes.len() / 2 {
            trace.push_free(i as u64);
        }
        let stats = trace.stats();
        assert_eq!(stats.mallocs, sizes.len(), "case {case}");
        assert_eq!(stats.frees, sizes.len() / 2, "case {case}");
        let total: usize = sizes.iter().sum();
        assert_eq!(stats.peak_live_bytes, total, "case {case}");
        let freed: usize = sizes[..sizes.len() / 2].iter().sum();
        assert_eq!(stats.final_live_bytes, total - freed, "case {case}");
    }
}

/// The blossom matcher on larger random meshing graphs: validity plus the
/// Lemma 5.3 sanity relation (optimum ≥ greedy ≥ optimum/2).
#[test]
fn blossom_on_large_random_meshing_graphs() {
    let mut rng = Rng::with_seed(0xb0b);
    for &(n, b, r) in &[(100usize, 32usize, 6usize), (200, 64, 10), (300, 64, 16)] {
        let g = MeshGraph::random(n, b, r, &mut rng);
        let m = blossom_matching(&g);
        assert!(is_valid_matching(&g, &m));
        let greedy = greedy_matching(&g);
        assert!(greedy.len() <= m.len());
        assert!(2 * greedy.len() >= m.len());
    }
}
