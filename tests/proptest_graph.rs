//! Property tests for the §5 theory kit: blossom matching, graph
//! realization, Erdős–Renyi sampling, and trace round-trips.

use mesh::graph::blossom::blossom_matching;
use mesh::graph::clique_cover::min_clique_cover_size;
use mesh::graph::erdos_renyi::sample_gnp;
use mesh::graph::matching::{greedy_matching, is_valid_matching, maximum_matching_size};
use mesh::graph::MeshGraph;
use mesh::workloads::trace::{Trace, TraceEvent};
use mesh::core::rng::Rng;
use proptest::prelude::*;

/// Strategy: an arbitrary edge set over `n ≤ 12` nodes.
fn small_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..=12).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n), 0..=max_edges),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `from_edge_list` realizes exactly the requested edge relation
    /// (minus self-loops), for arbitrary edge sets.
    #[test]
    fn edge_list_realization_is_exact((n, edges) in small_graph()) {
        let g = MeshGraph::from_edge_list(n, &edges);
        prop_assert_eq!(g.node_count(), n);
        for i in 0..n {
            prop_assert!(!g.has_edge(i, i));
            for j in 0..n {
                if i != j {
                    let wanted = edges
                        .iter()
                        .any(|&(a, b)| (a, b) == (i, j) || (b, a) == (i, j));
                    prop_assert_eq!(g.has_edge(i, j), wanted, "edge ({}, {})", i, j);
                }
            }
        }
    }

    /// Blossom output is always a valid matching, is optimal (vs the
    /// subset DP), and dominates the greedy matcher.
    #[test]
    fn blossom_is_optimal_on_arbitrary_graphs((n, edges) in small_graph()) {
        let g = MeshGraph::from_edge_list(n, &edges);
        let m = blossom_matching(&g);
        prop_assert!(is_valid_matching(&g, &m));
        prop_assert!(m.len() <= n / 2);
        let opt = maximum_matching_size(&g);
        prop_assert_eq!(m.len(), opt);
        let greedy = greedy_matching(&g);
        prop_assert!(greedy.len() <= m.len());
        prop_assert!(2 * greedy.len() >= m.len(), "greedy below 1/2-approx");
    }

    /// An optimal cover of `k` cliques releases `n − k` spans; a maximum
    /// matching of `m` pairs releases `m`. The optimal cover dominates
    /// the matching but never releases more than 2× as much: a clique of
    /// size `s` releases `s − 1` spans yet contains `⌊s/2⌋ ≥ (s−1)/2`
    /// disjoint pairs — the quantitative backbone of §5.2's claim.
    #[test]
    fn cover_dominates_matching_but_not_by_much((n, edges) in small_graph()) {
        let g = MeshGraph::from_edge_list(n, &edges);
        let match_released = blossom_matching(&g).len();
        let cover_released = n - min_clique_cover_size(&g);
        prop_assert!(cover_released >= match_released);
        prop_assert!(cover_released <= 2 * match_released);
    }

    /// Erdős–Renyi degenerate cases and density monotonicity.
    #[test]
    fn gnp_edge_counts_bounded(n in 2usize..40, p in 0.0f64..=1.0, seed in 0u64..1000) {
        let mut rng = Rng::with_seed(seed);
        let g = sample_gnp(n, p, &mut rng);
        let max = n * (n - 1) / 2;
        prop_assert!(g.edge_count() <= max);
        if p == 0.0 {
            prop_assert_eq!(g.edge_count(), 0);
        }
        if p == 1.0 {
            prop_assert_eq!(g.edge_count(), max);
        }
    }

    /// Any well-formed trace round-trips through the text format.
    #[test]
    fn trace_text_round_trip(ops in proptest::collection::vec((0u8..2, 0u64..8, 1usize..4096), 0..200)) {
        // Build a well-formed trace from the op stream: malloc if the id
        // is free, free if it is live.
        let mut live = std::collections::HashSet::new();
        let mut events = Vec::new();
        for (op, id, size) in ops {
            if op == 0 && !live.contains(&id) {
                live.insert(id);
                events.push(TraceEvent::Malloc { id, size });
            } else if op == 1 && live.contains(&id) {
                live.remove(&id);
                events.push(TraceEvent::Free { id });
            }
        }
        let trace = Trace::from_events(events);
        prop_assert!(trace.validate().is_ok());
        let back = Trace::from_text(&trace.to_text()).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// Trace statistics are internally consistent.
    #[test]
    fn trace_stats_consistent(sizes in proptest::collection::vec(1usize..10_000, 1..100)) {
        let mut trace = Trace::default();
        for (i, &s) in sizes.iter().enumerate() {
            trace.push_malloc(i as u64, s);
        }
        for i in 0..sizes.len() / 2 {
            trace.push_free(i as u64);
        }
        let stats = trace.stats();
        prop_assert_eq!(stats.mallocs, sizes.len());
        prop_assert_eq!(stats.frees, sizes.len() / 2);
        let total: usize = sizes.iter().sum();
        prop_assert_eq!(stats.peak_live_bytes, total);
        let freed: usize = sizes[..sizes.len() / 2].iter().sum();
        prop_assert_eq!(stats.final_live_bytes, total - freed);
    }
}

/// The blossom matcher on larger random meshing graphs: validity plus
/// the Lemma 5.3 sanity relation (optimum ≥ greedy ≥ optimum/2).
#[test]
fn blossom_on_large_random_meshing_graphs() {
    let mut rng = Rng::with_seed(0xb0b);
    for &(n, b, r) in &[(100usize, 32usize, 6usize), (200, 64, 10), (300, 64, 16)] {
        let g = MeshGraph::random(n, b, r, &mut rng);
        let m = blossom_matching(&g);
        assert!(is_valid_matching(&g, &m));
        let greedy = greedy_matching(&g);
        assert!(greedy.len() <= m.len());
        assert!(2 * greedy.len() >= m.len());
    }
}
