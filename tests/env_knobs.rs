//! `MeshConfig::apply_env` against real process environment — suffix
//! parsing, the boolean/seed knobs, and warn-and-ignore on malformed
//! values.
//!
//! Own test binary with a single test: `std::env::set_var` is not safe
//! against concurrent `getenv` from other test threads, so the env is
//! written once, up front, and never removed.

use mesh::core::MeshConfig;

#[test]
fn apply_env_reads_knobs_and_ignores_malformed() {
    std::env::set_var("MESH_MAX_HEAP_BYTES", "64M");
    std::env::set_var("MESH_INITIAL_SEGMENT_BYTES", "1M");
    std::env::set_var("MESH_SEGMENT_BYTES", "not-a-size");
    std::env::set_var("MESH_BACKGROUND_MESHING", "0");
    std::env::set_var("MESH_SEED", "99");

    let c = MeshConfig::default().apply_env();
    assert_eq!(c.max_heap_size(), 64 << 20, "suffix-parsed cap");
    assert_eq!(c.initial_segment_size(), 1 << 20);
    assert_eq!(
        c.segment_size(),
        MeshConfig::default().segment_size(),
        "malformed value ignored, default kept"
    );
    assert!(!c.is_background_meshing());
    assert!(c.validate().is_ok());

    // The parsed config actually drives a heap (seed fixed by MESH_SEED).
    let mesh = mesh::core::Mesh::new(c).unwrap();
    let p = mesh.malloc(100);
    assert!(!p.is_null());
    unsafe { mesh.free(p) };
    assert_eq!(mesh.stats().live_bytes, 0);
}
