//! `MeshConfig::apply_env` against real process environment — suffix
//! parsing, the boolean/seed knobs, the `MESH_PROF*` profiling knobs,
//! the `MESH_TRACE*` tracing knobs, and warn-and-ignore on malformed
//! values.
//!
//! Own test binary with a single test: `std::env::set_var` is not safe
//! against concurrent `getenv` from other test threads, so the env is
//! written once, up front, and never removed.

use mesh::core::MeshConfig;

#[test]
fn apply_env_reads_knobs_and_ignores_malformed() {
    std::env::set_var("MESH_MAX_HEAP_BYTES", "64M");
    std::env::set_var("MESH_INITIAL_SEGMENT_BYTES", "1M");
    std::env::set_var("MESH_SEGMENT_BYTES", "not-a-size");
    std::env::set_var("MESH_BACKGROUND_MESHING", "0");
    std::env::set_var("MESH_SEED", "99");
    std::env::set_var("MESH_PROF", "1");
    std::env::set_var("MESH_PROF_SAMPLE_BYTES", "64K");
    std::env::set_var("MESH_PROF_INTERVAL_MS", "banana"); // malformed
    std::env::set_var("MESH_PROF_PATH", "   "); // malformed (blank)
    std::env::set_var("MESH_TRANSFER_BATCH", "8");
    std::env::set_var("MESH_TRANSFER_CACHE_SLOTS", "banana"); // malformed
    std::env::set_var("MESH_TRACE", "1");
    std::env::set_var("MESH_TRACE_BUF_EVENTS", "banana"); // malformed
    std::env::set_var("MESH_TRACE_PATH", "/tmp/mesh-env-knobs-trace.json");
    std::env::set_var("MESH_SENSE_INTERVAL_MS", "200");
    std::env::set_var("MESH_SENSE_HISTORY", "banana"); // malformed
    std::env::set_var("MESH_SENSE_MINCORE_PAGES", "1K");
    std::env::set_var("MESH_SENSE_PATH", "/tmp/mesh-env-knobs-sense.json");

    let c = MeshConfig::default().apply_env();
    assert_eq!(c.max_heap_size(), 64 << 20, "suffix-parsed cap");
    assert_eq!(c.initial_segment_size(), 1 << 20);
    assert_eq!(
        c.segment_size(),
        MeshConfig::default().segment_size(),
        "malformed value ignored, default kept"
    );
    assert!(!c.is_background_meshing());
    assert!(c.is_profiling(), "MESH_PROF=1 enables the profiler");
    assert_eq!(c.prof_sample_size(), 64 << 10, "suffix-parsed sample rate");
    assert_eq!(
        c.prof_dump_interval(),
        None,
        "malformed interval ignored (warned), default kept"
    );
    assert_eq!(
        c.prof_dump_path(),
        None,
        "blank path ignored (warned), default kept"
    );
    assert_eq!(c.transfer_batch_size(), 8, "MESH_TRANSFER_BATCH parsed");
    assert_eq!(
        c.transfer_cache_slot_count(),
        MeshConfig::default().transfer_cache_slot_count(),
        "malformed MESH_TRANSFER_CACHE_SLOTS ignored (warned), default kept"
    );
    assert!(c.is_tracing(), "MESH_TRACE=1 enables the tracer");
    assert_eq!(
        c.trace_buf_event_count(),
        MeshConfig::default().trace_buf_event_count(),
        "malformed MESH_TRACE_BUF_EVENTS ignored (warned), default kept"
    );
    assert_eq!(
        c.trace_dump_path().map(|p| p.to_path_buf()),
        Some(std::path::PathBuf::from("/tmp/mesh-env-knobs-trace.json")),
        "MESH_TRACE_PATH parsed"
    );
    assert!(c.is_sensing(), "sensing stays on with a parsed interval");
    assert_eq!(
        c.sense_poll_interval(),
        Some(std::time::Duration::from_millis(200)),
        "MESH_SENSE_INTERVAL_MS parsed"
    );
    assert_eq!(
        c.sense_history_len(),
        MeshConfig::default().sense_history_len(),
        "malformed MESH_SENSE_HISTORY ignored (warned), default kept"
    );
    assert_eq!(
        c.sense_mincore_page_budget(),
        1 << 10,
        "suffix-parsed mincore budget"
    );
    assert_eq!(
        c.sense_dump_path().map(|p| p.to_path_buf()),
        Some(std::path::PathBuf::from("/tmp/mesh-env-knobs-sense.json")),
        "MESH_SENSE_PATH parsed"
    );
    assert!(c.validate().is_ok());

    // The parsed config actually drives a heap (seed fixed by MESH_SEED,
    // profiler and tracer live): a sampled churn must produce samples
    // and retire them through free, and the tracer must buffer events.
    let mesh = mesh::core::Mesh::new(c).unwrap();
    assert!(mesh.is_profiling());
    assert!(mesh.is_tracing());
    let mut ptrs = Vec::new();
    for _ in 0..4096 {
        let p = mesh.malloc(100);
        assert!(!p.is_null());
        ptrs.push(p);
    }
    let prof = mesh.profile_stats().expect("profiling on");
    assert!(prof.samples > 0, "400 KB churn at a 64 KiB rate never sampled");
    for p in ptrs {
        unsafe { mesh.free(p) };
    }
    assert_eq!(mesh.stats().live_bytes, 0);
    assert_eq!(mesh.profile_stats().unwrap().live_bytes_estimate, 0);
    let json = mesh.trace_json().expect("tracing on");
    assert!(
        json.contains("\"name\":\"refill\""),
        "churn produced no refill trace events"
    );
    drop(mesh);

    // A second heap with the interval knob well-formed: 0 still means
    // "no interval dumps", exercising the ms parse end to end.
    std::env::set_var("MESH_PROF_INTERVAL_MS", "250");
    let c = MeshConfig::default().apply_env();
    assert_eq!(
        c.prof_dump_interval(),
        Some(std::time::Duration::from_millis(250))
    );
    std::env::set_var("MESH_PROF_INTERVAL_MS", "0");
    let c = MeshConfig::default().apply_env();
    assert_eq!(c.prof_dump_interval(), None, "0 disables interval dumps");

    // A well-formed buffer size (suffix-parsed) reaches the config.
    std::env::set_var("MESH_TRACE_BUF_EVENTS", "4K");
    let c = MeshConfig::default().apply_env();
    assert_eq!(c.trace_buf_event_count(), 4 << 10);
    assert!(c.validate().is_ok());

    // MESH_SENSE_INTERVAL_MS=0 disables sensing entirely, and with it
    // the history/budget bounds stop applying.
    std::env::set_var("MESH_SENSE_INTERVAL_MS", "0");
    let c = MeshConfig::default().apply_env();
    assert!(!c.is_sensing(), "0 disables sensing");
    assert_eq!(c.sense_poll_interval(), None);
    assert!(c.validate().is_ok());

    // A well-formed history reaches the config and validates.
    std::env::set_var("MESH_SENSE_INTERVAL_MS", "1000");
    std::env::set_var("MESH_SENSE_HISTORY", "30");
    let c = MeshConfig::default().apply_env();
    assert_eq!(c.sense_history_len(), 30);
    assert!(c.validate().is_ok());

    // Hardened-mode knobs (set after the first heap ran: MESH_HARDEN
    // changes free semantics, so the unhardened churn above must not see
    // it). `full` is an alias of `count`; per-feature toggles and the
    // quarantine bounds parse with the usual warn-on-malformed contract.
    std::env::set_var("MESH_HARDEN", "full");
    std::env::set_var("MESH_HARDEN_POISON", "1");
    std::env::set_var("MESH_HARDEN_QUARANTINE", "0");
    std::env::set_var("MESH_HARDEN_GUARD", "banana"); // malformed
    std::env::set_var("MESH_HARDEN_CANARY", "1");
    std::env::set_var("MESH_HARDEN_QUARANTINE_BYTES", "128K");
    std::env::set_var("MESH_HARDEN_QUARANTINE_SLOTS", "banana"); // malformed
    let c = MeshConfig::default().apply_env();
    assert!(c.is_hardened(), "MESH_HARDEN=full activates count mode");
    let h = c.harden_config();
    assert!(!h.aborts(), "full counts, it does not abort");
    assert!(h.poison_on());
    assert!(!h.quarantine_on(), "MESH_HARDEN_QUARANTINE=0 disables");
    assert!(h.guard_on(), "malformed toggle ignored (warned), default kept");
    assert!(h.canary_on());
    assert_eq!(h.quarantine_bytes, 128 << 10, "suffix-parsed bound");
    assert_eq!(
        h.quarantine_slots,
        mesh::core::HardenConfig::default().quarantine_slots,
        "malformed slot bound ignored (warned), default kept"
    );
    assert!(c.validate().is_ok());

    // Every policy spelling lands where documented.
    std::env::set_var("MESH_HARDEN", "abort");
    assert!(MeshConfig::default().apply_env().harden_config().aborts());
    std::env::set_var("MESH_HARDEN", "die");
    assert!(MeshConfig::default().apply_env().harden_config().aborts());
    std::env::set_var("MESH_HARDEN", "banana"); // malformed
    assert!(
        !MeshConfig::default().apply_env().is_hardened(),
        "malformed policy ignored (warned), default Off kept"
    );
    std::env::set_var("MESH_HARDEN", "off");
    assert!(!MeshConfig::default().apply_env().is_hardened());

    // A counting hardened heap built from the environment detects a
    // double free end to end.
    std::env::set_var("MESH_HARDEN", "count");
    std::env::set_var("MESH_HARDEN_QUARANTINE", "1");
    std::env::set_var("MESH_HARDEN_QUARANTINE_SLOTS", "16");
    let c = MeshConfig::default().apply_env();
    assert!(c.validate().is_ok());
    let mesh = mesh::core::Mesh::new(c).unwrap();
    let p = mesh.malloc(64);
    assert!(!p.is_null());
    unsafe {
        mesh.free(p);
        mesh.free(p); // quarantined: deterministically caught
    }
    let s = mesh.stats();
    assert_eq!(
        s.harden_violations[mesh::core::HardenKind::DoubleFree as usize],
        1,
        "double free of a quarantined pointer counted under its kind"
    );
    assert_eq!(s.total_harden_violations(), 1);
    drop(mesh);

    // mesh-ctl knobs follow the same warn-and-ignore contract: a bad
    // value must never kill an interposed process, it just runs without
    // a control socket.
    std::env::set_var("MESH_CTL", "   "); // malformed (blank)
    std::env::set_var("MESH_CTL_MAX_CLIENTS", "banana"); // malformed
    let c = MeshConfig::default().apply_env();
    assert!(
        c.ctl_socket_path().is_none(),
        "blank MESH_CTL ignored (warned)"
    );
    assert_eq!(
        c.ctl_client_cap(),
        4,
        "malformed client cap ignored (warned), default kept"
    );
    std::env::set_var("MESH_CTL", "x".repeat(200)); // longer than sun_path
    std::env::set_var("MESH_CTL_MAX_CLIENTS", "0"); // below 1..=64
    let c = MeshConfig::default().apply_env();
    assert!(
        c.ctl_socket_path().is_none(),
        "overlong MESH_CTL ignored (warned)"
    );
    assert_eq!(c.ctl_client_cap(), 4, "out-of-range cap ignored (warned)");
    std::env::set_var("MESH_CTL_MAX_CLIENTS", "65"); // above 1..=64
    assert_eq!(MeshConfig::default().apply_env().ctl_client_cap(), 4);

    let sock = std::env::temp_dir().join(format!("mesh-env-knobs-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    std::env::set_var("MESH_CTL", &sock);
    std::env::set_var("MESH_CTL_MAX_CLIENTS", "8");
    let c = MeshConfig::default().apply_env();
    assert_eq!(c.ctl_socket_path(), Some(sock.as_path()), "MESH_CTL parsed");
    assert_eq!(c.ctl_client_cap(), 8, "MESH_CTL_MAX_CLIENTS parsed");
    assert!(c.validate().is_ok());

    // The parsed knobs drive a live server end to end: a stale socket
    // file on the path is reclaimed, the heap binds and answers the v1
    // greeting plus a `stats` request, and a second heap on the same
    // path stands down without disturbing the owner.
    drop(std::os::unix::net::UnixListener::bind(&sock).unwrap()); // stale file
    assert!(sock.exists());
    let mesh = mesh::core::Mesh::new(c).unwrap();
    assert!(mesh.ctl_active(), "stale socket file reclaimed and re-bound");
    assert_eq!(mesh.ctl_path(), Some(sock.clone()));

    use std::io::{BufRead, BufReader, Read, Write};
    let stream = std::os::unix::net::UnixStream::connect(&sock).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "mesh-ctl 1\n", "protocol greeting");
    reader.get_mut().write_all(b"stats\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ok "), "stats response header: {line:?}");
    let len: usize = line[3..].trim().parse().unwrap();
    let mut payload = vec![0u8; len + 1]; // body + trailing newline
    reader.read_exact(&mut payload).unwrap();
    assert_eq!(payload.pop(), Some(b'\n'), "binary-safe frame terminator");
    let text = String::from_utf8(payload).unwrap();
    assert!(text.starts_with("mesh: "), "stats payload: {text:?}");

    let loser = mesh::core::Mesh::new(MeshConfig::default().apply_env()).unwrap();
    assert!(
        !loser.ctl_active(),
        "a second heap must not steal a live socket"
    );
    drop(loser);
    assert!(
        sock.exists(),
        "loser teardown must not unlink the owner's socket"
    );
    drop(reader);
    drop(mesh);
    // The mesher thread holds only a Weak on the heap, so teardown (and
    // with it the unlink) may trail a final in-flight tick briefly.
    let gone = (0..200).any(|_| {
        if sock.exists() {
            std::thread::sleep(std::time::Duration::from_millis(10));
            false
        } else {
            true
        }
    });
    assert!(gone, "heap teardown failed to unlink its socket");
}
