//! End-to-end mesh-sense validation: the pressure/residency sensor, the
//! snapshot ring, and the meshing-effectiveness ledger, all through the
//! public API.

use mesh::core::{Mesh, MeshConfig, RejectReason, PAGE_SIZE, REJECT_REASONS};
use std::time::Duration;

fn heap(seed: u64) -> Mesh {
    // Huge mesh period: passes in this file are explicit, and sensing
    // polls are driven synchronously through dump/json calls rather than
    // waiting on the 1 s background clock.
    Mesh::new(
        MeshConfig::default()
            .arena_bytes(512 << 20)
            .seed(seed)
            .mesh_period(Duration::from_secs(3600)),
    )
    .unwrap()
}

/// Fragment: allocate `n` objects of `size`, keep every `keep`-th.
fn fragment(mesh: &Mesh, n: usize, size: usize, keep: usize) -> Vec<*mut u8> {
    let ptrs: Vec<*mut u8> = (0..n).map(|_| mesh.malloc(size)).collect();
    let mut kept = Vec::new();
    for (i, &p) in ptrs.iter().enumerate() {
        assert!(!p.is_null());
        if i % keep == 0 {
            kept.push(p);
        } else {
            unsafe { mesh.free(p) };
        }
    }
    kept
}

/// Drives at least 8 mesh passes over repeated fragmentation waves and
/// reconciles the effectiveness ledger against the heap's own counters:
/// per-pass `pairs_meshed` sums to `stats.spans_meshed`, recovered bytes
/// equal the released-pages counter, and the per-reason reject totals
/// match the ring's records.
#[test]
fn ledger_reconciles_with_heap_counters_over_many_passes() {
    let mesh = heap(42);
    let mut survivors = Vec::new();
    for wave in 0..8 {
        survivors.extend(fragment(&mesh, 16_384, 256, 8 + wave));
        let summary = mesh.mesh_now();
        // Waves 1+: re-fragmenting on top of meshed spans keeps
        // producing candidates; no assertion that each pass meshes —
        // only that the ledger records each one.
        let _ = summary;
    }
    // A couple of dry passes on the settled heap exercise the
    // zero-candidate path's ledger rows too.
    mesh.mesh_now();
    mesh.mesh_now();

    let stats = mesh.stats();
    assert!(stats.mesh_passes >= 10, "drove {} passes", stats.mesh_passes);
    let records = mesh.ledger_recent();
    assert!(
        records.len() >= 10,
        "ledger ring holds {} of {} passes",
        records.len(),
        stats.mesh_passes
    );
    // Every explicit pass landed in the ring (well under its capacity).
    assert_eq!(records.len() as u64, stats.mesh_passes);

    // Reconciliation: the ring's per-pass numbers sum to the heap-wide
    // counters the allocator maintains independently.
    let pairs: u64 = records.iter().map(|r| r.pairs_meshed).sum();
    assert_eq!(pairs, stats.spans_meshed, "ledger pairs != spans_meshed");
    assert!(pairs > 0, "workload never meshed — ledger untested");
    let recovered: u64 = records.iter().map(|r| r.bytes_recovered).sum();
    assert_eq!(
        recovered,
        stats.mesh_pages_released * PAGE_SIZE as u64,
        "ledger recovered bytes != released pages"
    );
    // Reject totals equal the ring's sums (ring never overflowed here).
    let totals = mesh.ledger_reject_totals();
    let mut from_ring = [0u64; REJECT_REASONS];
    for r in &records {
        for (acc, v) in from_ring.iter_mut().zip(r.rejected) {
            *acc += v;
        }
    }
    assert_eq!(totals, from_ring, "reject totals != ring sums");
    // This workload's rejections are occupancy overlaps (probed pairs
    // whose bitmaps collide); copy aborts are structurally impossible.
    assert!(
        totals[RejectReason::OccupancyOverlap as usize] > 0,
        "fragmented waves must produce overlap rejects: {totals:?}"
    );
    assert_eq!(totals[RejectReason::CopyAbort as usize], 0);
    // Probes bound the rejects-plus-pairs ledger arithmetic per pass.
    for r in &records {
        assert!(
            r.rejected[RejectReason::OccupancyOverlap as usize] + r.pairs_meshed <= r.probes,
            "pass arithmetic: {r:?}"
        );
        assert!(r.candidates >= 2 * r.pairs_meshed, "pairs need candidates: {r:?}");
    }

    for p in survivors {
        unsafe { mesh.free(p) };
    }
    assert_eq!(mesh.stats().live_bytes, 0);
}

/// The sense JSON document: schema envelope, residency decomposition
/// that partitions mapped bytes, and snapshots that track the workload.
#[test]
fn sense_json_schema_and_residency_partition() {
    let mesh = heap(7);
    assert!(mesh.is_sensing(), "sensing is on by default");
    let kept = fragment(&mesh, 8_192, 256, 4);
    mesh.mesh_now();
    let json = mesh.sense_json().expect("sensing on");
    assert!(json.starts_with("{\"mesh_sense_version\":1,"), "{json}");
    for key in [
        "\"residency\":{",
        "\"mapped_bytes\":",
        "\"free_dirty_bytes\":",
        "\"segments\":[",
        "\"ledger\":{",
        "\"rejected_total\":{",
        "\"occupancy_overlap\":",
        "\"snapshots\":[",
        "\"est_resident_bytes\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    for (open, close) in [('{', '}'), ('[', ']')] {
        assert_eq!(
            json.matches(open).count(),
            json.matches(close).count(),
            "unbalanced {open}{close}"
        );
    }
    assert!(!json.contains('\n'), "dump is a single line");

    // The latest snapshot reconciles with the heap's own gauges: the
    // residency categories partition the mapped bytes.
    let snap = mesh.sense_latest().expect("sense_json polled");
    assert_eq!(
        snap.live_bytes + snap.free_dirty_bytes + snap.free_clean_bytes + snap.meta_bytes,
        snap.mapped_bytes,
        "residency categories must partition the mapping: {snap:?}"
    );
    assert!(snap.mallocs >= 8_192);
    assert!(snap.mesh_passes >= 1);
    for p in kept {
        unsafe { mesh.free(p) };
    }
}

/// Snapshot history: the ring keeps the last `sense_history` snapshots
/// in order, and `prom_text` exposes the sense gauges and reject totals.
#[test]
fn snapshot_ring_and_prom_families() {
    let mesh = Mesh::new(
        MeshConfig::default()
            .arena_bytes(64 << 20)
            .seed(9)
            .mesh_period(Duration::from_secs(3600))
            .sense_history(4),
    )
    .unwrap();
    let kept = fragment(&mesh, 4_096, 128, 4);
    // Each sense_json() call takes one poll; overfill the 4-slot ring.
    for _ in 0..7 {
        mesh.sense_json().unwrap();
    }
    mesh.mesh_now();
    let json = mesh.sense_json().unwrap();
    // 8 polls into a 4-slot ring: exactly 4 snapshots retained. (Count
    // by a snapshot-only key: ledger pass rows also carry "at_ms".)
    assert_eq!(json.matches("\"rss_bytes\":").count(), 4, "{json}");

    let text = mesh.prom_text();
    assert!(text.contains("# TYPE mesh_pass_rejected_total counter"), "{text}");
    assert!(text.contains("mesh_pass_rejected_total{reason=\"occupancy_overlap\"}"));
    assert!(text.contains("mesh_pass_rejected_total{reason=\"pinned_transfer\"}"));
    assert!(text.contains("mesh_pass_rejected_total{reason=\"class_contention\"}"));
    assert!(text.contains("mesh_pass_rejected_total{reason=\"copy_abort\"}"));
    // Heap-derived sense gauges always resolve on Linux /proc; the
    // mincore estimate is heap-internal and never absent.
    assert!(text.contains("mesh_resident_est_bytes "), "{text}");
    for p in kept {
        unsafe { mesh.free(p) };
    }
}

/// `MESH_SENSE_PATH` dumps: `dump_sense_now` writes the document to the
/// configured file, and a disabled heap declines.
#[test]
fn sense_dump_to_path_and_disabled_heap() {
    let path = std::env::temp_dir().join(format!("mesh-sense-test-{}.json", std::process::id()));
    std::fs::remove_file(&path).ok();
    let mesh = Mesh::new(
        MeshConfig::default()
            .arena_bytes(64 << 20)
            .seed(3)
            .mesh_period(Duration::from_secs(3600))
            .sense_path(Some(path.clone())),
    )
    .unwrap();
    let p = mesh.malloc(64);
    assert!(mesh.dump_sense_now());
    let doc = std::fs::read_to_string(&path).expect("dump file written");
    assert!(doc.contains("\"mesh_sense_version\":1"), "{doc}");
    std::fs::remove_file(&path).ok();
    unsafe { mesh.free(p) };

    // Sensing off: every sense entry point declines gracefully.
    let off = Mesh::new(
        MeshConfig::default()
            .arena_bytes(64 << 20)
            .seed(4)
            .sense_interval(None),
    )
    .unwrap();
    assert!(!off.is_sensing());
    assert!(off.sense_json().is_none());
    assert!(off.sense_latest().is_none());
    assert!(!off.dump_sense_now());
    // The ledger still records passes even without sensing.
    off.mesh_now();
    assert_eq!(off.ledger_recent().len(), 1);
}
