//! Cross-crate integration tests: the Mesh allocator exercised through
//! its public API with shadow-model verification.

use mesh::core::{Mesh, MeshConfig, NUM_SIZE_CLASSES, PAGE_SIZE};
use std::collections::HashMap;

fn heap(seed: u64) -> Mesh {
    // Auto-meshing off (huge period): these tests trigger passes
    // explicitly so their before/after measurements stay deterministic.
    Mesh::new(
        MeshConfig::default()
            .arena_bytes(256 << 20)
            .seed(seed)
            .mesh_period(std::time::Duration::from_secs(3600)),
    )
    .expect("heap")
}

#[test]
fn every_size_class_roundtrips_with_data() {
    let mesh = heap(1);
    let mut live: Vec<(*mut u8, usize, u8)> = Vec::new();
    // Cover all classes plus large objects, several of each.
    let sizes: Vec<usize> = (0..NUM_SIZE_CLASSES)
        .map(|i| mesh::core::SizeClass::from_index(i).object_size())
        .chain([17_000, 65_536, 1 << 20])
        .collect();
    for (i, &size) in sizes.iter().enumerate() {
        for rep in 0..4 {
            let p = mesh.malloc(size);
            assert!(!p.is_null(), "size {size}");
            let fill = (i * 7 + rep + 1) as u8;
            unsafe { std::ptr::write_bytes(p, fill, size) };
            live.push((p, size, fill));
        }
    }
    // Everything intact, correct usable sizes, then free.
    for &(p, size, fill) in &live {
        let usable = mesh.usable_size(p).expect("our pointer");
        assert!(usable >= size);
        unsafe {
            assert_eq!(*p, fill);
            assert_eq!(*p.add(size - 1), fill);
        }
    }
    for (p, _, _) in live {
        unsafe { mesh.free(p) };
    }
    assert_eq!(mesh.stats().live_bytes, 0);
}

#[test]
fn interleaved_malloc_free_against_shadow_model() {
    let mesh = heap(2);
    let mut rng = mesh::core::rng::Rng::with_seed(99);
    let mut model: HashMap<usize, (usize, u8)> = HashMap::new();
    for step in 0..50_000u64 {
        if model.is_empty() || rng.chance(3, 5) {
            let size = 1 + rng.below(2048) as usize;
            let p = mesh.malloc(size) as usize;
            assert!(p != 0);
            let fill = (step % 255) as u8 + 1;
            unsafe { std::ptr::write_bytes(p as *mut u8, fill, size) };
            assert!(
                model.insert(p, (size, fill)).is_none(),
                "allocator returned a live address twice"
            );
        } else {
            let &addr = model.keys().next().unwrap();
            let (size, fill) = model.remove(&addr).unwrap();
            unsafe {
                assert_eq!(*(addr as *const u8), fill, "corruption before free");
                assert_eq!(*((addr + size - 1) as *const u8), fill);
                mesh.free(addr as *mut u8);
            }
        }
        // Sprinkle meshing through the run.
        if step % 10_000 == 9_999 {
            mesh.mesh_now();
        }
    }
    // Verify all remaining, then free.
    for (addr, (size, fill)) in model.drain() {
        unsafe {
            assert_eq!(*(addr as *const u8), fill);
            assert_eq!(*((addr + size - 1) as *const u8), fill);
            mesh.free(addr as *mut u8);
        }
    }
    let stats = mesh.stats();
    assert_eq!(stats.live_bytes, 0);
    assert_eq!(stats.invalid_frees, 0);
    assert_eq!(stats.double_frees, 0);
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let mesh = heap(77);
        let addrs: Vec<usize> = (0..1000)
            .map(|i| mesh.malloc(16 + (i % 32) * 16) as usize)
            .collect();
        let base = addrs[0];
        // Return offsets relative to the first allocation (arena base
        // varies run to run; offsets must not).
        addrs.into_iter().map(|a| a.wrapping_sub(base)).collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "same seed must give identical layouts");
}

#[test]
fn different_seeds_give_different_layouts() {
    let offsets = |seed| {
        let mesh = heap(seed);
        let first = mesh.malloc(64) as usize;
        (0..64)
            .map(|_| (mesh.malloc(64) as usize).wrapping_sub(first))
            .collect::<Vec<_>>()
    };
    assert_ne!(offsets(1), offsets(2));
}

#[test]
fn arena_exhaustion_returns_null_and_recovers() {
    let mesh = Mesh::new(
        MeshConfig::default()
            .arena_bytes(64 * PAGE_SIZE)
            .seed(3),
    )
    .unwrap();
    let mut ptrs = Vec::new();
    loop {
        let p = mesh.malloc(4096);
        if p.is_null() {
            break;
        }
        ptrs.push(p);
    }
    assert!(!ptrs.is_empty());
    // Free everything: allocation must work again.
    for p in ptrs {
        unsafe { mesh.free(p) };
    }
    let p = mesh.malloc(4096);
    assert!(!p.is_null(), "heap did not recover after exhaustion");
    unsafe { mesh.free(p) };
}

#[test]
fn foreign_and_double_frees_are_discarded_not_fatal() {
    let mesh = heap(4);
    // Allocate from a short-lived thread heap so the span detaches and
    // frees take the *global* path — the one that detects bad frees
    // (§4.4.4). (Local fast-path double frees are undetected by design,
    // exactly as in C.)
    let p = {
        let mut th = mesh.thread_heap();
        th.malloc(100)
    };
    unsafe {
        mesh.free(p);
        mesh.free(p); // double free: detected and discarded
        let mut foreign = Box::new(42u64);
        mesh.free(&mut *foreign as *mut u64 as *mut u8); // wild: discarded
    }
    let stats = mesh.stats();
    assert_eq!(stats.invalid_frees + stats.double_frees, 2);
    assert_eq!(stats.frees, 1, "only the first free was accepted");
}

#[test]
fn many_heaps_coexist() {
    let heaps: Vec<Mesh> = (0..8)
        .map(|i| Mesh::new(MeshConfig::default().arena_bytes(16 << 20).seed(i)).unwrap())
        .collect();
    let ptrs: Vec<*mut u8> = heaps.iter().map(|h| h.malloc(128)).collect();
    for (i, (h, &p)) in heaps.iter().zip(&ptrs).enumerate() {
        assert!(h.contains(p));
        // Arenas are disjoint mappings: each pointer belongs to its heap
        // alone.
        for (j, other) in heaps.iter().enumerate() {
            if i != j {
                assert!(!other.contains(p), "heap {j} claims heap {i}'s pointer");
            }
        }
        unsafe { h.free(p) };
    }
}

#[test]
fn fragmentation_ratio_tracks_compaction() {
    let mesh = heap(5);
    let ptrs: Vec<*mut u8> = (0..16384).map(|_| mesh.malloc(512)).collect();
    for (i, &p) in ptrs.iter().enumerate() {
        if i % 8 != 0 {
            unsafe { mesh.free(p) };
        }
    }
    let before = mesh.stats().fragmentation_ratio().unwrap();
    mesh.mesh_now();
    let after = mesh.stats().fragmentation_ratio().unwrap();
    assert!(
        after < before * 0.7,
        "compaction should cut fragmentation: {before:.2} → {after:.2}"
    );
    for (i, &p) in ptrs.iter().enumerate() {
        if i % 8 == 0 {
            unsafe { mesh.free(p) };
        }
    }
}

#[test]
fn realloc_chain_preserves_prefix() {
    let mesh = heap(6);
    unsafe {
        let mut p = mesh.malloc(16);
        for i in 0..16 {
            *p.add(i) = i as u8;
        }
        for new_size in [64usize, 256, 1024, 16 * 1024, 100_000] {
            p = mesh.realloc(p, new_size);
            assert!(!p.is_null());
            for i in 0..16 {
                assert_eq!(*p.add(i), i as u8, "prefix lost at {new_size}");
            }
        }
        mesh.free(p);
    }
}
