//! Real `fork()` through the Rust API: `Mesh::fork_prepare` +
//! `MeshForkGuard::{release_parent, release_child}` — the protocol the
//! `libmesh.so` atfork handlers drive, exercised here without the C
//! layer. The child overwrites every shared-looking buffer; because the
//! arena is `MAP_SHARED` memory files, only segment privatization keeps
//! those writes out of the parent.
//!
//! The heap runs with tracing on, so the fork protocol's telemetry
//! contract is exercised too: the child starts with wiped trace rings
//! and zeroed latency histograms (no inherited parent history), records
//! its own events from its own churn, and the parent's trace survives
//! the fork intact.
//!
//! Own test binary: forking a multi-threaded cargo-test harness is only
//! safe when this file's single test is all that runs in the process.

use mesh::core::ffi;
use mesh::core::{Mesh, MeshConfig, TimedOp};

const SLOTS: usize = 384;
const SIZE: usize = 1500;

fn parent_tag(i: usize) -> u8 {
    0x40 | (i as u8 & 0x3F)
}

fn child_tag(i: usize) -> u8 {
    0x80 | (i as u8 & 0x3F)
}

/// Child-side body; returns success instead of panicking (a panic would
/// unwind into the forked copy of the test harness).
fn child_body(mesh: &Mesh, ptrs: &[*mut u8]) -> bool {
    // Telemetry fork contract: the parent's refill history (latency and
    // trace events) must not leak into the child. Refill only fires on
    // mutator threads, so the freshly respawned background thread cannot
    // race these checks the way drain/mesh ops could.
    if mesh.stats().latency.count(TimedOp::Refill) != 0 {
        return false;
    }
    match mesh.trace_json() {
        Some(json) if json.contains("\"name\":\"refill\"") => return false,
        Some(_) => {}
        None => return false, // tracing must survive the fork
    }
    for (i, &p) in ptrs.iter().enumerate() {
        for j in (0..SIZE).step_by(11) {
            if unsafe { *p.add(j) } != parent_tag(i) {
                return false;
            }
        }
    }
    // Overwrite with the child's pattern: must not reach the parent.
    for (i, &p) in ptrs.iter().enumerate() {
        unsafe { std::ptr::write_bytes(p, child_tag(i), SIZE) };
    }
    // Churn the allocator: refills, large objects, frees.
    for round in 0..5_000usize {
        let size = 1 + (round * 37) % 3000;
        let q = mesh.malloc(size);
        if q.is_null() {
            return false;
        }
        unsafe {
            std::ptr::write_bytes(q, 0xEE, size);
            mesh.free(q);
        }
    }
    for (i, &p) in ptrs.iter().enumerate() {
        for j in (0..SIZE).step_by(11) {
            if unsafe { *p.add(j) } != child_tag(i) {
                return false;
            }
        }
    }
    // The child's own churn refilled shuffle vectors: its rings and
    // histograms must now carry child-recorded events.
    if mesh.stats().latency.count(TimedOp::Refill) == 0 {
        return false;
    }
    match mesh.trace_json() {
        Some(json) if !json.contains("\"name\":\"refill\"") => return false,
        Some(_) => {}
        None => return false,
    }
    mesh.stats().forks == 1
}

#[test]
fn fork_preserves_parent_and_child_heaps() {
    let mesh = Mesh::new(
        MeshConfig::default()
            .seed(23)
            .arena_bytes(128 << 20)
            .initial_segment_bytes(4 << 20)
            .segment_bytes(4 << 20)
            .tracing(true)
            .trace_buf_events(1 << 10),
    )
    .unwrap();
    let ptrs: Vec<*mut u8> = (0..SLOTS).map(|_| mesh.malloc(SIZE)).collect();
    for (i, &p) in ptrs.iter().enumerate() {
        assert!(!p.is_null());
        unsafe { std::ptr::write_bytes(p, parent_tag(i), SIZE) };
    }
    // Mesh some spans first so alias restoration is exercised too.
    let small: Vec<*mut u8> = (0..4096).map(|_| mesh.malloc(64)).collect();
    for (i, &p) in small.iter().enumerate() {
        if i % 8 != 0 {
            unsafe { mesh.free(p) };
        } else {
            unsafe { std::ptr::write_bytes(p, 0x3C, 64) };
        }
    }
    mesh.mesh_now();
    assert!(
        mesh.stats().latency.count(TimedOp::Refill) > 0,
        "parent recorded no refills before forking"
    );

    let guard = mesh.fork_prepare();
    let pid = unsafe { ffi::fork() };
    assert!(pid >= 0, "fork failed");
    if pid == 0 {
        guard.release_child();
        let ok = child_body(&mesh, &ptrs)
            && small
                .iter()
                .step_by(8)
                .all(|&p| unsafe { *p } == 0x3C && unsafe { *p.add(63) } == 0x3C);
        // _exit: the forked harness copy must not run its own teardown.
        unsafe { ffi::_exit(if ok { 0 } else { 1 }) };
    }
    guard.release_parent();

    let mut status: i32 = -1;
    let waited = unsafe { ffi::waitpid(pid, &mut status, 0) };
    assert_eq!(waited, pid, "waitpid failed");
    assert!(
        status & 0x7F == 0 && (status >> 8) & 0xFF == 0,
        "child failed: raw status {status:#x}"
    );

    // The child's overwrites and churn must not have reached the parent.
    for (i, &p) in ptrs.iter().enumerate() {
        for j in (0..SIZE).step_by(11) {
            assert_eq!(
                unsafe { *p.add(j) },
                parent_tag(i),
                "slot {i} corrupted by the forked child"
            );
        }
    }
    for &p in small.iter().step_by(8) {
        assert_eq!(unsafe { *p }, 0x3C, "meshed survivor corrupted");
        unsafe { mesh.free(p) };
    }
    for &p in &ptrs {
        unsafe { mesh.free(p) };
    }
    let stats = mesh.stats();
    assert_eq!(stats.forks, 0, "parent never privatizes");
    assert_eq!(stats.double_frees, 0);

    // The parent's telemetry is untouched by the fork: its pre-fork
    // refill history still renders as valid single-line Chrome JSON.
    assert!(
        stats.latency.count(TimedOp::Refill) > 0,
        "fork wiped the parent's latency history"
    );
    let json = mesh.trace_json().expect("tracing on");
    assert!(json.starts_with("{\"traceEvents\":["), "bad envelope: {json}");
    assert!(json.contains("\"mesh_trace_version\":1"));
    assert!(
        json.contains("\"name\":\"refill\""),
        "fork wiped the parent's trace rings"
    );
}
