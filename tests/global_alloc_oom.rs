//! Regression test for the `MeshGlobalAlloc` OOM path: when the heap's
//! hard cap is hit, `alloc` must return null per the `GlobalAlloc`
//! contract — never panic or abort across the FFI-analog boundary.
//!
//! This lives in its own integration-test binary because the process-wide
//! heap is created once (from env configuration) on first use; a single
//! `#[test]` keeps the sequencing deterministic.

use mesh::core::MeshGlobalAlloc;
use std::alloc::{GlobalAlloc, Layout};

#[test]
fn alloc_returns_null_at_hard_cap_and_recovers() {
    // A 2 MiB hard cap with small segments; set before first use.
    std::env::set_var("MESH_MAX_HEAP_BYTES", (2 << 20).to_string());
    std::env::set_var("MESH_INITIAL_SEGMENT_BYTES", (1 << 20).to_string());
    std::env::set_var("MESH_SEGMENT_BYTES", (1 << 20).to_string());

    let alloc = MeshGlobalAlloc;
    let layout = Layout::from_size_align(64 * 1024, 16).unwrap();

    // Fill the heap to the cap: the tail of the loop MUST be a null
    // return, not a panic or abort.
    let mut held: Vec<*mut u8> = Vec::new();
    let mut saw_null = false;
    for _ in 0..1024 {
        let p = unsafe { alloc.alloc(layout) };
        if p.is_null() {
            saw_null = true;
            break;
        }
        unsafe { std::ptr::write_bytes(p, 0x6F, layout.size()) };
        held.push(p);
    }
    assert!(saw_null, "hard cap never surfaced as a null return");
    assert!(!held.is_empty(), "nothing allocated before the cap");

    // A single absurd request is also a clean null (no abort), both
    // through `alloc` and `alloc_zeroed`.
    let huge = Layout::from_size_align(1 << 40, 16).unwrap();
    assert!(unsafe { alloc.alloc(huge) }.is_null());
    assert!(unsafe { alloc.alloc_zeroed(huge) }.is_null());
    // An over-aligned request that cannot fit under the (exhausted) cap is
    // a clean null too, not a panic.
    let overaligned_huge = Layout::from_size_align(4 << 20, 4 << 20).unwrap();
    assert!(unsafe { alloc.alloc(overaligned_huge) }.is_null());

    // Freeing makes the heap usable again — OOM was not sticky.
    for p in held.drain(..) {
        unsafe { alloc.dealloc(p, layout) };
    }
    let p = unsafe { alloc.alloc(layout) };
    assert!(!p.is_null(), "heap did not recover after frees");
    unsafe { alloc.dealloc(p, layout) };

    // Over-aligned layouts are served on the large path once there is
    // room again (they used to be a spurious OOM).
    let overaligned = Layout::from_size_align(64, 8192).unwrap();
    let q = unsafe { alloc.alloc(overaligned) };
    assert!(!q.is_null(), "over-aligned layout not served");
    assert_eq!(q as usize % 8192, 0);
    unsafe { alloc.dealloc(q, overaligned) };

    let stats = MeshGlobalAlloc::mesh().stats();
    assert_eq!(stats.live_bytes, 0);
    assert_eq!(stats.double_frees, 0);
}
