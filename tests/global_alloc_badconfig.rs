//! Regression test: if the process-wide Mesh heap cannot be constructed
//! (here: an invalid env configuration), `MeshGlobalAlloc::alloc` must
//! report OOM by returning null — never panic or abort across the
//! FFI-analog boundary — and `dealloc` must still route pointers that
//! went to the system allocator.
//!
//! Own test binary: construction failure is sticky for the process.

use mesh::core::MeshGlobalAlloc;
use std::alloc::{GlobalAlloc, Layout};

#[test]
fn construction_failure_degrades_to_null_not_panic() {
    // 4 KiB is below the smallest valid cap (one 32-page span).
    std::env::set_var("MESH_MAX_HEAP_BYTES", "4096");

    let alloc = MeshGlobalAlloc;
    let layout = Layout::from_size_align(256, 16).unwrap();
    // Every allocation fails cleanly; nothing panics, nothing aborts.
    for _ in 0..4 {
        assert!(unsafe { alloc.alloc(layout) }.is_null());
        assert!(unsafe { alloc.alloc_zeroed(layout) }.is_null());
    }
    // try_mesh reports the failure; the panicking accessor is not used on
    // the allocation path.
    assert!(MeshGlobalAlloc::try_mesh().is_none());
    // dealloc of a system-allocator pointer (the no-heap fallback path)
    // still works.
    unsafe {
        let p = std::alloc::System.alloc(layout);
        assert!(!p.is_null());
        alloc.dealloc(p, layout);
    }
}
