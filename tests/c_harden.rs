//! LD_PRELOAD proof of hardened mode: reruns the clean C gauntlet with
//! `MESH_HARDEN=full` (every detector armed, count policy) asserting the
//! programs still pass with zero violations — and that the deliberately
//! hostile `edge_semantics` frees are now attributed to the hardened
//! counters as well. A deliberate use-after-free C program then runs
//! under `MESH_HARDEN=abort` and must die on SIGABRT with the one-line
//! diagnostic on stderr instead of reaching its final printf.
//!
//! Gated on the environment: skips (loudly) when no `cc` is available.

use std::collections::HashMap;
use std::os::unix::process::ExitStatusExt;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

const SIGABRT: i32 = 6;

/// All hardened-violation counter keys in the exit dump (always present,
/// even at zero — `render_counters` emits the full set unconditionally).
const HARDEN_KEYS: [&str; 5] = [
    "harden_double_free",
    "harden_invalid_free",
    "harden_poison",
    "harden_guard",
    "harden_canary",
];

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn target_dir() -> PathBuf {
    std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| workspace_root().join("target"))
}

fn have_cc() -> bool {
    Command::new("cc")
        .arg("--version")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .is_ok()
}

fn build_libmesh() -> PathBuf {
    let cargo = std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    let status = Command::new(cargo)
        .args(["build", "--release", "-p", "mesh-abi"])
        .current_dir(workspace_root())
        .env_remove("LD_PRELOAD")
        .status()
        .expect("failed to invoke cargo");
    assert!(status.success(), "building libmesh.so failed");
    let so = target_dir().join("release").join("libmesh.so");
    assert!(so.exists(), "missing {}", so.display());
    so
}

fn compile_c(name: &str, out_dir: &Path) -> PathBuf {
    let src = workspace_root().join("tests/c").join(format!("{name}.c"));
    let bin = out_dir.join(name);
    let status = Command::new("cc")
        .arg("-O1")
        .arg("-pthread")
        .arg(&src)
        .arg("-o")
        .arg(&bin)
        .status()
        .expect("failed to invoke cc");
    assert!(status.success(), "cc failed for {name}");
    bin
}

struct RunOutput {
    out: Output,
    stdout: String,
    stderr: String,
    /// Parsed `mesh: key=value …` lines, in order of appearance.
    stats: Vec<HashMap<String, u64>>,
}

/// Runs `bin` under the preload with the given extra `MESH_*` knobs.
/// Does NOT assert success — the abort-mode test expects a signal death.
fn run_preloaded(so: &Path, bin: &Path, env: &[(&str, &str)]) -> RunOutput {
    let mut cmd = Command::new(bin);
    cmd.env("LD_PRELOAD", so)
        .env("MESH_PRINT_STATS_AT_EXIT", "1")
        .env("MESH_SEED", "17")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .stdin(Stdio::null());
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn failed");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    let stats = stderr
        .lines()
        .filter_map(|line| line.strip_prefix("mesh: "))
        .map(|line| {
            line.split_whitespace()
                .filter_map(|kv| {
                    let (k, v) = kv.split_once('=')?;
                    Some((k.to_string(), v.parse().ok()?))
                })
                .collect()
        })
        .collect();
    RunOutput {
        out,
        stdout,
        stderr,
        stats,
    }
}

fn assert_ok(name: &str, run: &RunOutput) {
    assert!(
        run.out.status.success(),
        "{name} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        run.out.status,
        run.stdout,
        run.stderr
    );
}

/// The process's own exit dump (the last stats line emitted).
fn final_stats<'a>(name: &str, run: &'a RunOutput) -> &'a HashMap<String, u64> {
    run.stats
        .last()
        .unwrap_or_else(|| panic!("{name}: no mesh stats line in stderr:\n{}", run.stderr))
}

#[test]
fn c_gauntlet_passes_under_full_hardening() {
    if !have_cc() {
        eprintln!("skipping C harden preload tests: no `cc` in this environment");
        return;
    }
    let so = build_libmesh();
    let out_dir = target_dir().join("c-harden-tests");
    std::fs::create_dir_all(&out_dir).unwrap();
    let full = [("MESH_HARDEN", "full")];

    // Clean programs: every detector armed, zero violations, no behavior
    // change a conforming program could observe.
    for name in ["smoke", "realloc_churn", "mt_churn"] {
        let bin = compile_c(name, &out_dir);
        let run = run_preloaded(&so, &bin, &full);
        assert_ok(name, &run);
        assert!(
            run.stdout.contains(&format!("{name} OK")),
            "{name}: missing OK line:\n{}",
            run.stdout
        );
        let stats = final_stats(name, &run);
        assert!(stats["mallocs"] > 0, "{name}: no Mesh mallocs:\n{}", run.stderr);
        for key in HARDEN_KEYS {
            assert_eq!(
                stats[key], 0,
                "{name}: false positive under {key}:\n{}",
                run.stderr
            );
        }
        if name == "mt_churn" {
            // Intact canaries must not block meshing: the hardened sweep
            // runs inside every copy window and the pairs still land.
            assert!(
                stats["pairs_meshed"] > 0,
                "mt_churn under hardening meshed nothing:\n{}",
                run.stderr
            );
        }
    }

    // Hostile frees: the same detections as classic mode, now mirrored
    // into the hardened attribution counters.
    {
        let bin = compile_c("edge_semantics", &out_dir);
        let run = run_preloaded(&so, &bin, &full);
        assert_ok("edge_semantics", &run);
        assert!(
            run.stdout.contains("edge_semantics OK"),
            "{}",
            run.stdout
        );
        let stats = final_stats("edge_semantics", &run);
        assert_eq!(stats["double_frees"], 1, "{}", run.stderr);
        assert_eq!(stats["harden_double_free"], 1, "{}", run.stderr);
        assert!(stats["invalid_frees"] >= 2, "{}", run.stderr);
        assert!(stats["harden_invalid_free"] >= 2, "{}", run.stderr);
        assert_eq!(stats["harden_poison"], 0, "{}", run.stderr);
        assert_eq!(stats["harden_guard"], 0, "{}", run.stderr);
        assert_eq!(stats["harden_canary"], 0, "{}", run.stderr);
    }
}

#[test]
fn uaf_write_aborts_with_diagnostic_under_die_policy() {
    if !have_cc() {
        eprintln!("skipping C harden abort test: no `cc` in this environment");
        return;
    }
    let so = build_libmesh();
    let out_dir = target_dir().join("c-harden-tests");
    std::fs::create_dir_all(&out_dir).unwrap();

    let bin = compile_c("uaf_abort", &out_dir);
    // Quarantine off so the freed slot recycles within the loop and the
    // poison verify on reissue sees the UAF write.
    let run = run_preloaded(
        &so,
        &bin,
        &[("MESH_HARDEN", "abort"), ("MESH_HARDEN_QUARANTINE", "0")],
    );
    assert_eq!(
        run.out.status.signal(),
        Some(SIGABRT),
        "expected SIGABRT, got {:?}\nstdout:\n{}\nstderr:\n{}",
        run.out.status,
        run.stdout,
        run.stderr
    );
    assert!(
        run.stderr.contains("mesh: harden abort kind=poison addr=0x"),
        "missing abort diagnostic:\n{}",
        run.stderr
    );
    assert!(
        !run.stdout.contains("UNEXPECTED"),
        "program survived the UAF:\n{}",
        run.stdout
    );
}
