//! Transfer-cache integration tests: the batched exchange between thread
//! heaps and the class shards must be invisible to the accounting — no
//! object lost, duplicated, or routed to the wrong class, hostile frees
//! still detected through every batched path — and nothing may be
//! stranded when threads die.
//!
//! A deliberately tiny cache (batch 8, 4 slots per class) forces constant
//! batch churn: sender buffers flush every 8 remote frees, refills pop
//! cached batches, and teardown spills re-feed them.

use mesh_core::{Mesh, MeshConfig, SizeClass};

/// Minimal deterministic RNG (xorshift64*), so the loop is seedable
/// without pulling in a crate.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn tiny_cache_heap(seed: u64) -> Mesh {
    Mesh::new(
        MeshConfig::default()
            .arena_bytes(256 << 20)
            .seed(seed)
            .transfer_batch(8)
            .transfer_cache_slots(4)
            .write_barrier(false),
    )
    .unwrap()
}

/// The PR-4 accounting-model oracle replayed through the batched paths:
/// random malloc/free interleavings across two thread heaps with
/// cross-handle handoffs, wild pointers, misaligned interior pointers,
/// and back-to-back double frees. Every counter must land exactly on the
/// model — a batch that dropped, duplicated, or misrouted one object
/// shows up as a one-off here.
#[test]
fn batched_paths_match_accounting_model() {
    for seed in [7u64, 0x0062_6174_6368, 99] {
        run_seed(seed);
    }
}

fn run_seed(seed: u64) {
    const SIZES: [usize; 5] = [16, 100, 500, 2048, 9000]; // all small classes
    let mesh = tiny_cache_heap(seed);
    let mut heaps = [mesh.thread_heap(), mesh.thread_heap()];
    let mut rng = Lcg(seed | 1);

    // Model state.
    let mut live: Vec<(usize, usize)> = Vec::new(); // (addr, owner)
    let mut mallocs = 0u64;
    let mut frees = 0u64;
    let mut invalid = 0u64;
    let mut doubles = 0u64;
    // Misaligned pointers already thrown at the heap. A *repeat* of one
    // may still sit in a sender buffer, where the dedup check classifies
    // it as a double free rather than invalid — correct behaviour, but
    // timing-dependent, so the oracle never replays the same bad address.
    let mut misfreed = std::collections::HashSet::new();

    for _ in 0..30_000 {
        let op = rng.below(100);
        if op < 55 || live.is_empty() {
            let who = rng.below(2) as usize;
            let size = SIZES[rng.below(SIZES.len() as u64) as usize];
            let p = heaps[who].malloc(size);
            assert!(!p.is_null());
            mallocs += 1;
            live.push((p as usize, who));
        } else if op < 90 {
            let pick = rng.below(live.len() as u64) as usize;
            let (addr, owner) = live.swap_remove(pick);
            // Hand off ~every third free to the non-owner: those routes
            // are remote and ride the sender-side batching.
            let who = if rng.below(3) == 0 { 1 - owner } else { owner };
            unsafe { heaps[who].free(addr as *mut u8) };
            frees += 1;
        } else {
            match rng.below(3) {
                0 => {
                    // Wild pointer, far outside the arena.
                    unsafe { heaps[0].free(0x10 as *mut u8) };
                    invalid += 1;
                }
                1 => {
                    // Misaligned interior pointer into a live small object
                    // (all SIZES are ≥ 16, so +1 is never slot-aligned).
                    let pick = rng.below(live.len() as u64) as usize;
                    let (addr, owner) = live[pick];
                    if misfreed.insert(addr + 1) {
                        unsafe { heaps[owner].free((addr + 1) as *mut u8) };
                        invalid += 1;
                    }
                }
                _ => {
                    // Back-to-back double free: the duplicate must be
                    // caught whether the first copy was applied locally,
                    // is still in the sender buffer, or sits in a cache.
                    let pick = rng.below(live.len() as u64) as usize;
                    let (addr, owner) = live.swap_remove(pick);
                    let who = if rng.below(3) == 0 { 1 - owner } else { owner };
                    unsafe {
                        heaps[who].free(addr as *mut u8);
                        heaps[who].free(addr as *mut u8);
                    }
                    frees += 1;
                    doubles += 1;
                }
            }
        }
    }
    for (addr, owner) in live.drain(..) {
        unsafe { heaps[owner].free(addr as *mut u8) };
        frees += 1;
    }
    // Teardown: detach-spill, cache hand-back, sender-buffer flush.
    let [a, b] = heaps;
    drop(a);
    drop(b);

    let s = mesh.stats();
    assert_eq!(s.mallocs, mallocs, "seed {seed}: mallocs");
    assert_eq!(s.frees, frees, "seed {seed}: every valid free applied once");
    assert_eq!(s.live_bytes, 0, "seed {seed}: accounting balanced");
    assert_eq!(s.invalid_frees, invalid, "seed {seed}: invalid frees counted");
    assert_eq!(s.double_frees, doubles, "seed {seed}: doubles caught");
    assert_eq!(
        s.remote_free_queued, s.remote_free_drained,
        "seed {seed}: queues settled"
    );
}

/// Deterministic teardown-spill → refill-hit cycle: a dying thread's
/// surplus slots must land in the transfer cache and serve the next
/// thread's refill without the class lock.
#[test]
fn teardown_spill_feeds_next_threads_refill() {
    let mesh = tiny_cache_heap(5);
    let count = SizeClass::for_size(256).unwrap().object_count();
    let mut th1 = mesh.thread_heap();
    // Exactly two spans' worth, so the attached span is fully consumed…
    let ptrs: Vec<usize> = (0..2 * count).map(|_| th1.malloc(256) as usize).collect();
    assert!(ptrs.iter().all(|&p| p != 0));
    // …then three local frees give the vector surplus while the span
    // stays mostly live — the spill precondition.
    for &p in &ptrs[2 * count - 3..] {
        unsafe { th1.free(p as *mut u8) };
    }
    drop(th1);
    let s = mesh.stats();
    assert!(s.transfer_spills >= 1, "teardown did not spill: {s:?}");

    // A fresh thread's first 256-byte malloc must be served from the
    // cached batch (hit), not a shard refill.
    let hits_before = s.transfer_hits;
    let mut th2 = mesh.thread_heap();
    let fresh: Vec<usize> = (0..3).map(|_| th2.malloc(256) as usize).collect();
    assert!(fresh.iter().all(|&p| p != 0));
    assert!(
        mesh.stats().transfer_hits > hits_before,
        "refill ignored the cached batch"
    );
    // The cached addresses are exactly the spilled ones.
    let mut spilled: Vec<usize> = ptrs[2 * count - 3..].to_vec();
    let mut got = fresh.clone();
    spilled.sort_unstable();
    got.sort_unstable();
    assert_eq!(got, spilled, "cache handed out different objects");

    for &p in &ptrs[..2 * count - 3] {
        unsafe { th2.free(p as *mut u8) };
    }
    for &p in &fresh {
        unsafe { th2.free(p as *mut u8) };
    }
    drop(th2);
    let s = mesh.stats();
    assert_eq!(s.mallocs, s.frees);
    assert_eq!(s.live_bytes, 0);
    assert_eq!(s.double_frees + s.invalid_frees, 0);
}

/// The satellite regression test: waves of short-lived real threads with
/// cross-wave frees. Nothing a dead thread buffered or cached may be
/// stranded — `Mesh::stats()` must balance to zero live after every
/// thread has exited.
#[test]
fn thread_spawn_exit_churn_balances_to_zero() {
    const WAVES: usize = 6;
    const WORKERS: usize = 4;
    const OPS: usize = 3_000;
    const SIZES: [usize; 6] = [32, 96, 256, 768, 2048, 12_000];
    let mesh = tiny_cache_heap(11);
    let mut inherited: Vec<usize> = Vec::new();
    for wave in 0..WAVES {
        let (tx, rx) = std::sync::mpsc::channel::<usize>();
        std::thread::scope(|s| {
            for w in 0..WORKERS {
                let mesh = mesh.clone();
                let tx = tx.clone();
                let legacy: Vec<usize> =
                    inherited.iter().skip(w).step_by(WORKERS).copied().collect();
                s.spawn(move || {
                    let mut th = mesh.thread_heap();
                    // The previous wave's survivors: every free is a dead
                    // thread's object, so every one rides the remote path.
                    for addr in legacy {
                        unsafe { th.free(addr as *mut u8) };
                    }
                    let mut rng = Lcg((wave * WORKERS + w + 1) as u64);
                    let mut live: Vec<usize> = Vec::new();
                    for i in 0..OPS {
                        if rng.below(100) < 60 || live.is_empty() {
                            let size = SIZES[(i + w) % SIZES.len()];
                            let p = th.malloc(size);
                            assert!(!p.is_null());
                            live.push(p as usize);
                        } else {
                            let pick = rng.below(live.len() as u64) as usize;
                            unsafe { th.free(live.swap_remove(pick) as *mut u8) };
                        }
                    }
                    // Exit with objects still live; the next wave (or the
                    // final sweep) frees them.
                    for p in live {
                        tx.send(p).unwrap();
                    }
                });
            }
        });
        drop(tx);
        inherited = rx.iter().collect();
    }
    for addr in inherited {
        unsafe { mesh.free(addr as *mut u8) };
    }
    let s = mesh.stats();
    assert_eq!(s.mallocs, s.frees, "objects stranded in dead threads: {s:?}");
    assert_eq!(s.live_bytes, 0, "live accounting drifted: {s:?}");
    assert_eq!(s.remote_free_queued, s.remote_free_drained);
    assert_eq!(s.double_frees + s.invalid_frees, 0);
}

/// `transfer_batch(1)` is the degenerate compatibility mode: no sender
/// buffering (every remote free is one immediate queue push, visible
/// before any flush) and no cache (refills always hit the shard).
#[test]
fn batch_size_one_behaves_like_the_unbatched_path() {
    let mesh = Mesh::new(
        MeshConfig::default()
            .arena_bytes(64 << 20)
            .seed(13)
            .transfer_batch(1)
            .write_barrier(false),
    )
    .unwrap();
    let p = mesh.malloc(256);
    let mut other = mesh.thread_heap();
    unsafe { other.free(p) };
    // Immediately queued — no flush, no batch node, no buffering.
    let s = mesh.stats();
    assert_eq!(s.remote_free_queued, 1, "free was buffered despite batch=1");
    assert_eq!(s.remote_free_batches, 0);
    assert_eq!(s.frees, 1);

    // Churn across both handles, then tear down: the transfer cache must
    // never have engaged.
    let mut ptrs: Vec<usize> = (0..4 * 512).map(|_| other.malloc(128) as usize).collect();
    for (i, addr) in ptrs.drain(..).enumerate() {
        if i % 2 == 0 {
            unsafe { mesh.free(addr as *mut u8) }; // remote
        } else {
            unsafe { other.free(addr as *mut u8) }; // local
        }
    }
    drop(other);
    let s = mesh.stats();
    assert_eq!(s.transfer_hits + s.transfer_misses + s.transfer_spills, 0);
    assert_eq!(s.remote_free_batches, 0);
    assert_eq!(s.mallocs, s.frees);
    assert_eq!(s.live_bytes, 0);
}
