//! Property-based tests on the core data structures and the allocator's
//! end-to-end invariants.
//!
//! The offline build has no `proptest`, so these are deterministic
//! seeded-RNG property loops: each property runs `CASES` randomized cases
//! drawn from the repo's own xoshiro256++ [`Rng`], with the failing seed
//! printed by the assertion context. Coverage matches the original
//! proptest suite property-for-property.

use mesh::core::bitmap::AtomicBitmap;
use mesh::core::miniheap::MiniHeapId;
use mesh::core::rng::Rng;
use mesh::core::shuffle_vector::ShuffleVector;
use mesh::core::{Mesh, MeshConfig, SizeClass};
use mesh::graph::clique_cover::{greedy_cover, is_valid_cover};
use mesh::graph::matching::{greedy_matching, is_valid_matching, maximum_matching_size};
use mesh::graph::split_mesher::split_mesher;
use mesh::graph::{MeshGraph, SpanString};
use std::collections::HashSet;

const CASES: u64 = 64;

/// Derives a per-case generator: deterministic, independent across cases.
fn case_rng(test_id: u64, case: u64) -> Rng {
    Rng::with_seed(test_id ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A shuffle vector over any span shape hands out every offset exactly
/// once, in some permutation.
#[test]
fn shuffle_vector_is_a_permutation() {
    for case in 0..CASES {
        let mut gen = case_rng(0x51, case);
        let count = 1 + gen.below(256) as usize;
        let mut rng = Rng::with_seed(gen.next_u64());
        let bitmap = AtomicBitmap::new(count);
        let mut sv = ShuffleVector::new(true);
        sv.attach(
            MiniHeapId::from_raw(1),
            0x10000,
            4096,
            count,
            4096 / count.max(1),
            &bitmap,
            &mut rng,
        );
        let mut seen = HashSet::new();
        while let Some(a) = sv.malloc() {
            assert!(seen.insert(a), "duplicate address (case {case})");
        }
        assert_eq!(seen.len(), count, "case {case}");
    }
}

/// Interleaved frees keep the offset set consistent: what goes back in
/// comes back out exactly once.
#[test]
fn shuffle_vector_free_reuse() {
    for case in 0..CASES {
        let mut gen = case_rng(0x52, case);
        let count = 2 + gen.below(255) as usize;
        let ops: Vec<u16> = (0..1 + gen.below(199))
            .map(|_| gen.next_u64() as u16)
            .collect();
        let mut rng = Rng::with_seed(gen.next_u64());
        let bitmap = AtomicBitmap::new(count);
        let mut sv = ShuffleVector::new(true);
        sv.attach(
            MiniHeapId::from_raw(1),
            0x10000,
            4096,
            count,
            4096 / count,
            &bitmap,
            &mut rng,
        );
        let mut live: Vec<usize> = Vec::new();
        for op in ops {
            if op % 3 != 0 || live.is_empty() {
                if let Some(a) = sv.malloc() {
                    assert!(!live.contains(&a), "live address re-issued (case {case})");
                    live.push(a);
                }
            } else {
                let a = live.swap_remove(op as usize % live.len());
                unsafe { sv.free(a, &mut rng) };
            }
        }
        // Drain: total live + drained == count.
        let mut drained = 0usize;
        while sv.malloc().is_some() {
            drained += 1;
        }
        assert_eq!(live.len() + drained, count, "case {case}");
    }
}

/// The meshability predicate agrees between strings and raw popcount.
#[test]
fn mesh_predicate_equals_dot_product() {
    for case in 0..CASES {
        let mut gen = case_rng(0x53, case);
        let len = 1 + gen.below(256) as usize;
        let bits = |gen: &mut Rng| -> Vec<usize> {
            (0..gen.below(64)).map(|_| gen.below(len as u32) as usize).collect()
        };
        let a = SpanString::from_bits(len, &bits(&mut gen));
        let b = SpanString::from_bits(len, &bits(&mut gen));
        let dot: usize = (0..len).filter(|&i| a.get(i) && b.get(i)).count();
        assert_eq!(a.meshes_with(&b), dot == 0, "case {case}");
        assert_eq!(a.meshes_with(&b), b.meshes_with(&a), "case {case}");
    }
}

/// SplitMesher always emits a valid matching, never exceeding the exact
/// maximum.
#[test]
fn split_mesher_is_valid_and_bounded() {
    for case in 0..CASES {
        let mut gen = case_rng(0x54, case);
        let n = 2 + gen.below(19) as usize;
        let occupancy = 1 + gen.below(8) as usize;
        let t = 1 + gen.below(64) as usize;
        let mut rng = Rng::with_seed(gen.next_u64());
        let strings: Vec<SpanString> = (0..n)
            .map(|_| SpanString::random_with_occupancy(16, occupancy, &mut rng))
            .collect();
        let out = split_mesher(&strings, t, &mut rng);
        let g = MeshGraph::from_strings(strings);
        assert!(is_valid_matching(&g, &out.pairs), "case {case}");
        assert!(out.released() <= maximum_matching_size(&g), "case {case}");
    }
}

/// Greedy matching is valid and at least half the maximum; greedy cover
/// is a valid partition whose release count is at least the matching's.
#[test]
fn matching_and_cover_relations() {
    for case in 0..CASES {
        let mut gen = case_rng(0x55, case);
        let n = 2 + gen.below(17) as usize;
        let occupancy = 1 + gen.below(10) as usize;
        let mut rng = Rng::with_seed(gen.next_u64());
        let g = MeshGraph::random(n, 24, occupancy, &mut rng);
        let m = greedy_matching(&g);
        assert!(is_valid_matching(&g, &m), "case {case}");
        let opt = maximum_matching_size(&g);
        assert!(m.len() * 2 >= opt, "case {case}");
        let cover = greedy_cover(&g);
        assert!(is_valid_cover(&g, &cover), "case {case}");
        assert!(
            n - cover.len() >= m.len(),
            "a matching is a cover: cover must release at least as much (case {case})"
        );
    }
}

/// End-to-end allocator property: any interleaving of mallocs, frees and
/// mesh passes preserves object contents and never double-issues an
/// address. Odd cases run with the background mesher as a second
/// concurrent source of passes.
#[test]
fn allocator_respects_contents_under_meshing() {
    for case in 0..CASES {
        let mut gen = case_rng(0x56, case);
        let seed = gen.next_u64();
        let ops: Vec<(u8, u16)> = (0..50 + gen.below(250))
            .map(|_| (gen.next_u64() as u8, 1 + gen.below(1999) as u16))
            .collect();
        let mesh = Mesh::new(
            MeshConfig::default()
                .arena_bytes(64 << 20)
                .seed(seed)
                .background_meshing(case % 2 == 1),
        )
        .unwrap();
        let mut live: Vec<(usize, usize, u8)> = Vec::new();
        for (i, (op, size)) in ops.iter().enumerate() {
            match op % 4 {
                0 | 1 => {
                    let size = *size as usize;
                    let p = mesh.malloc(size) as usize;
                    assert!(p != 0, "case {case}");
                    let fill = (i % 251) as u8 + 1;
                    unsafe { std::ptr::write_bytes(p as *mut u8, fill, size) };
                    assert!(!live.iter().any(|&(a, _, _)| a == p), "case {case}");
                    live.push((p, size, fill));
                }
                2 => {
                    if !live.is_empty() {
                        let idx = *size as usize % live.len();
                        let (a, s, f) = live.swap_remove(idx);
                        unsafe {
                            assert_eq!(*(a as *const u8), f, "case {case}");
                            assert_eq!(*((a + s - 1) as *const u8), f, "case {case}");
                            mesh.free(a as *mut u8);
                        }
                    }
                }
                _ => {
                    mesh.mesh_now();
                }
            }
        }
        for (a, s, f) in live {
            unsafe {
                assert_eq!(*(a as *const u8), f, "case {case}");
                assert_eq!(*((a + s - 1) as *const u8), f, "case {case}");
                mesh.free(a as *mut u8);
            }
        }
        assert_eq!(mesh.stats().live_bytes, 0, "case {case}");
    }
}

/// Size-class lookup is monotone and tight — checked exhaustively (the
/// domain is small enough that sampling would be a downgrade).
#[test]
fn size_class_lookup_sound() {
    for size in 0usize..=16384 {
        let c = SizeClass::for_size(size).unwrap();
        assert!(c.object_size() >= size);
        if c.index() > 0 {
            assert!(SizeClass::from_index(c.index() - 1).object_size() < size);
        }
    }
}
