//! Property-based tests on the core data structures and the allocator's
//! end-to-end invariants (proptest).

use mesh::core::bitmap::AtomicBitmap;
use mesh::core::miniheap::MiniHeapId;
use mesh::core::rng::Rng;
use mesh::core::shuffle_vector::ShuffleVector;
use mesh::core::{Mesh, MeshConfig, SizeClass};
use mesh::graph::clique_cover::{greedy_cover, is_valid_cover};
use mesh::graph::matching::{greedy_matching, is_valid_matching, maximum_matching_size};
use mesh::graph::split_mesher::split_mesher;
use mesh::graph::{MeshGraph, SpanString};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A shuffle vector over any span shape hands out every offset exactly
    /// once, in some permutation.
    #[test]
    fn shuffle_vector_is_a_permutation(
        count in 1usize..=256,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::with_seed(seed);
        let bitmap = AtomicBitmap::new(count);
        let mut sv = ShuffleVector::new(true);
        sv.attach(MiniHeapId::from_raw(1), 0x10000, 4096, count, 4096 / count.max(1), &bitmap, &mut rng);
        let mut seen = HashSet::new();
        while let Some(a) = sv.malloc() {
            prop_assert!(seen.insert(a), "duplicate address");
        }
        prop_assert_eq!(seen.len(), count);
    }

    /// Interleaved frees keep the offset set consistent: what goes back
    /// in comes back out exactly once.
    #[test]
    fn shuffle_vector_free_reuse(
        count in 2usize..=256,
        seed in any::<u64>(),
        ops in prop::collection::vec(any::<u16>(), 1..200),
    ) {
        let mut rng = Rng::with_seed(seed);
        let bitmap = AtomicBitmap::new(count);
        let mut sv = ShuffleVector::new(true);
        sv.attach(MiniHeapId::from_raw(1), 0x10000, 4096, count, 4096 / count, &bitmap, &mut rng);
        let mut live: Vec<usize> = Vec::new();
        for op in ops {
            if op % 3 != 0 || live.is_empty() {
                if let Some(a) = sv.malloc() {
                    prop_assert!(!live.contains(&a), "live address re-issued");
                    live.push(a);
                }
            } else {
                let a = live.swap_remove(op as usize % live.len());
                unsafe { sv.free(a, &mut rng) };
            }
        }
        // Drain: total live + drained == count.
        let mut drained = 0usize;
        while sv.malloc().is_some() {
            drained += 1;
        }
        prop_assert_eq!(live.len() + drained, count);
    }

    /// The meshability predicate agrees between strings and raw popcount.
    #[test]
    fn mesh_predicate_equals_dot_product(
        len in 1usize..=256,
        bits_a in prop::collection::vec(any::<u16>(), 0..64),
        bits_b in prop::collection::vec(any::<u16>(), 0..64),
    ) {
        let a = SpanString::from_bits(len, &bits_a.iter().map(|&b| b as usize % len).collect::<Vec<_>>());
        let b = SpanString::from_bits(len, &bits_b.iter().map(|&b| b as usize % len).collect::<Vec<_>>());
        let dot: usize = (0..len).filter(|&i| a.get(i) && b.get(i)).count();
        prop_assert_eq!(a.meshes_with(&b), dot == 0);
        prop_assert_eq!(a.meshes_with(&b), b.meshes_with(&a));
    }

    /// SplitMesher always emits a valid matching, never exceeding the
    /// exact maximum.
    #[test]
    fn split_mesher_is_valid_and_bounded(
        n in 2usize..=20,
        occupancy in 1usize..=8,
        t in 1usize..=64,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::with_seed(seed);
        let strings: Vec<SpanString> = (0..n)
            .map(|_| SpanString::random_with_occupancy(16, occupancy, &mut rng))
            .collect();
        let out = split_mesher(&strings, t, &mut rng);
        let g = MeshGraph::from_strings(strings);
        prop_assert!(is_valid_matching(&g, &out.pairs));
        prop_assert!(out.released() <= maximum_matching_size(&g));
    }

    /// Greedy matching is valid and at least half the maximum; greedy
    /// cover is a valid partition whose release count is at least the
    /// matching's.
    #[test]
    fn matching_and_cover_relations(
        n in 2usize..=18,
        occupancy in 1usize..=10,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::with_seed(seed);
        let g = MeshGraph::random(n, 24, occupancy, &mut rng);
        let m = greedy_matching(&g);
        prop_assert!(is_valid_matching(&g, &m));
        let opt = maximum_matching_size(&g);
        prop_assert!(m.len() * 2 >= opt);
        let cover = greedy_cover(&g);
        prop_assert!(is_valid_cover(&g, &cover));
        prop_assert!(n - cover.len() >= m.len(),
            "a matching is a cover: cover must release at least as much");
    }

    /// End-to-end allocator property: any interleaving of mallocs, frees
    /// and mesh passes preserves object contents and never double-issues
    /// an address.
    #[test]
    fn allocator_respects_contents_under_meshing(
        seed in any::<u64>(),
        ops in prop::collection::vec((any::<u8>(), 1u16..2000), 50..300),
    ) {
        let mesh = Mesh::new(
            MeshConfig::default().arena_bytes(64 << 20).seed(seed),
        ).unwrap();
        let mut live: Vec<(usize, usize, u8)> = Vec::new();
        for (i, (op, size)) in ops.iter().enumerate() {
            match op % 4 {
                0 | 1 => {
                    let size = *size as usize;
                    let p = mesh.malloc(size) as usize;
                    prop_assert!(p != 0);
                    let fill = (i % 251) as u8 + 1;
                    unsafe { std::ptr::write_bytes(p as *mut u8, fill, size) };
                    prop_assert!(!live.iter().any(|&(a, _, _)| a == p));
                    live.push((p, size, fill));
                }
                2 => {
                    if !live.is_empty() {
                        let idx = *size as usize % live.len();
                        let (a, s, f) = live.swap_remove(idx);
                        unsafe {
                            prop_assert_eq!(*(a as *const u8), f);
                            prop_assert_eq!(*((a + s - 1) as *const u8), f);
                            mesh.free(a as *mut u8);
                        }
                    }
                }
                _ => {
                    mesh.mesh_now();
                }
            }
        }
        for (a, s, f) in live {
            unsafe {
                prop_assert_eq!(*(a as *const u8), f);
                prop_assert_eq!(*((a + s - 1) as *const u8), f);
                mesh.free(a as *mut u8);
            }
        }
        prop_assert_eq!(mesh.stats().live_bytes, 0);
    }

    /// Size-class lookup is monotone and tight for arbitrary sizes.
    #[test]
    fn size_class_lookup_sound(size in 0usize..=16384) {
        let c = SizeClass::for_size(size).unwrap();
        prop_assert!(c.object_size() >= size);
        if c.index() > 0 {
            prop_assert!(SizeClass::from_index(c.index() - 1).object_size() < size);
        }
    }
}
