//! End-to-end proof of the C ABI: builds `libmesh.so` (release), compiles
//! the `tests/c/*.c` programs with the system `cc`, and runs each — plus
//! unmodified system binaries (`ls`, `sort`) — under
//! `LD_PRELOAD=libmesh.so` with `MESH_PRINT_STATS_AT_EXIT=1`, asserting
//! exit status 0 and non-zero Mesh counters in the exit dump. The
//! multithreaded churn program additionally requires `pairs_meshed > 0`
//! and the fork program a child stats line with `forks=1`.
//!
//! Gated on the environment: skips (loudly) when no `cc` is available.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn target_dir() -> PathBuf {
    std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| workspace_root().join("target"))
}

fn have_cc() -> bool {
    Command::new("cc")
        .arg("--version")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .is_ok()
}

/// Builds the cdylib (cheap when the tier-1 `cargo build --release`
/// already did) and returns its path.
fn build_libmesh() -> PathBuf {
    let cargo = std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    let status = Command::new(cargo)
        .args(["build", "--release", "-p", "mesh-abi"])
        .current_dir(workspace_root())
        .env_remove("LD_PRELOAD")
        .status()
        .expect("failed to invoke cargo");
    assert!(status.success(), "building libmesh.so failed");
    let so = target_dir().join("release").join("libmesh.so");
    assert!(so.exists(), "missing {}", so.display());
    so
}

fn compile_c(name: &str, out_dir: &Path) -> PathBuf {
    let src = workspace_root().join("tests/c").join(format!("{name}.c"));
    let bin = out_dir.join(name);
    let status = Command::new("cc")
        .arg("-O1")
        .arg("-pthread")
        .arg(&src)
        .arg("-o")
        .arg(&bin)
        .status()
        .expect("failed to invoke cc");
    assert!(status.success(), "cc failed for {name}");
    bin
}

struct RunOutput {
    stdout: String,
    stderr: String,
    /// Parsed `mesh: key=value …` lines, in order of appearance (a fork
    /// test emits one per process).
    stats: Vec<HashMap<String, u64>>,
}

fn run_preloaded(so: &Path, bin: &Path, args: &[&str], stdin: Option<&str>) -> RunOutput {
    let mut cmd = Command::new(bin);
    cmd.args(args)
        .env("LD_PRELOAD", so)
        .env("MESH_PRINT_STATS_AT_EXIT", "1")
        .env("MESH_SEED", "17")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .stdin(if stdin.is_some() {
            Stdio::piped()
        } else {
            Stdio::null()
        });
    let mut child = cmd.spawn().expect("spawn failed");
    if let Some(input) = stdin {
        use std::io::Write;
        child
            .stdin
            .take()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
    }
    let out = child.wait_with_output().expect("wait failed");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "{} exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        bin.display(),
        out.status
    );
    let stats = stderr
        .lines()
        .filter_map(|line| line.strip_prefix("mesh: "))
        .map(|line| {
            line.split_whitespace()
                .filter_map(|kv| {
                    let (k, v) = kv.split_once('=')?;
                    Some((k.to_string(), v.parse().ok()?))
                })
                .collect()
        })
        .collect();
    RunOutput {
        stdout,
        stderr,
        stats,
    }
}

/// The exit dump of the process itself (the last line emitted).
fn final_stats(run: &RunOutput) -> &HashMap<String, u64> {
    run.stats
        .last()
        .unwrap_or_else(|| panic!("no mesh stats line in stderr:\n{}", run.stderr))
}

#[test]
fn c_programs_and_real_binaries_run_on_mesh() {
    if !have_cc() {
        eprintln!("skipping C ABI preload tests: no `cc` in this environment");
        return;
    }
    let so = build_libmesh();
    let out_dir = target_dir().join("c-abi-tests");
    std::fs::create_dir_all(&out_dir).unwrap();

    // --- the C programs -------------------------------------------------
    for name in ["smoke", "edge_semantics", "realloc_churn"] {
        let bin = compile_c(name, &out_dir);
        let run = run_preloaded(&so, &bin, &[], None);
        assert!(
            run.stdout.contains(&format!("{name} OK")),
            "{name}: missing OK line:\n{}",
            run.stdout
        );
        let stats = final_stats(&run);
        assert!(stats["mallocs"] > 0, "{name}: no Mesh mallocs:\n{}", run.stderr);
        assert!(stats["frees"] > 0, "{name}: no Mesh frees:\n{}", run.stderr);
        match name {
            // edge_semantics deliberately throws hostile frees at the
            // page-map routing: misaligned interior pointers, a wild
            // pointer, and one double free — all detected and discarded.
            "edge_semantics" => {
                assert_eq!(stats["double_frees"], 1, "{name}:\n{}", run.stderr);
                assert!(
                    stats["invalid_frees"] >= 2,
                    "{name}: hostile frees not counted:\n{}",
                    run.stderr
                );
            }
            _ => assert_eq!(stats["double_frees"], 0, "{name}"),
        }
        if name == "realloc_churn" {
            assert!(
                stats["reallocs_in_place"] > 0,
                "{name}: in-place realloc fast path never hit:\n{}",
                run.stderr
            );
        }
    }

    // --- multithreaded churn must actually mesh (acceptance criterion) --
    {
        let bin = compile_c("mt_churn", &out_dir);
        let run = run_preloaded(&so, &bin, &[], None);
        assert!(run.stdout.contains("mt_churn OK"), "{}", run.stdout);
        let stats = final_stats(&run);
        assert!(stats["mallocs"] >= 40_000, "churn volume:\n{}", run.stderr);
        assert!(
            stats["remote_frees"] > 0,
            "cross-thread frees must take the remote path:\n{}",
            run.stderr
        );
        assert!(
            stats["pairs_meshed"] > 0,
            "multithreaded churn meshed nothing:\n{}",
            run.stderr
        );
    }

    // --- fork: child privatizes, both sides verify integrity ------------
    {
        let bin = compile_c("fork_alloc", &out_dir);
        let run = run_preloaded(&so, &bin, &[], None);
        assert!(run.stdout.contains("fork_alloc OK"), "{}", run.stdout);
        assert!(
            run.stats.iter().any(|s| s.get("forks") == Some(&1)),
            "no child reported a privatized fork:\n{}",
            run.stderr
        );
        // 1 single-threaded fork + 4 forks under a racing allocator
        // thread: five child exit dumps plus the parent's.
        assert!(run.stats.len() >= 6, "expected 6 stats lines:\n{}", run.stderr);
    }

    // --- unmodified system binaries --------------------------------------
    let ls = ["/bin/ls", "/usr/bin/ls"]
        .iter()
        .map(Path::new)
        .find(|p| p.exists())
        .expect("no ls binary");
    let run = run_preloaded(&so, ls, &["-l", "/"], None);
    assert!(!run.stdout.is_empty(), "ls printed nothing");
    assert!(
        final_stats(&run)["mallocs"] > 0,
        "ls ran but not on Mesh:\n{}",
        run.stderr
    );

    let sort = ["/usr/bin/sort", "/bin/sort"]
        .iter()
        .map(Path::new)
        .find(|p| p.exists())
        .expect("no sort binary");
    let run = run_preloaded(&so, sort, &[], Some("pear\napple\nmango\n"));
    assert_eq!(run.stdout, "apple\nmango\npear\n", "sort output wrong");
    assert!(
        final_stats(&run)["mallocs"] > 0,
        "sort ran but not on Mesh:\n{}",
        run.stderr
    );
}
