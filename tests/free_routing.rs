//! Property test for the page-map free routing (the O(1) fast-path
//! overhaul): random malloc/free interleavings across two thread heaps —
//! with cross-thread handoffs, deliberate double frees, wild pointers and
//! misaligned interior pointers — checked against an exact accounting
//! model. The in-crate oracle (`local_heap::tests::
//! route_agrees_with_linear_scan_oracle`) proves the routing *decision*
//! matches the legacy linear scan; this test proves the routed frees
//! produce exactly the observable effects the old path did: every valid
//! free applied once, every hostile free counted and discarded, local
//! frees never touching the remote machinery.

use mesh_core::{Mesh, MeshConfig, SizeClass, PAGE_SIZE};

/// Minimal deterministic RNG (xorshift64*), so the loop is seedable
/// without pulling in a crate.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Class-rounded live bytes for a request, mirroring the allocator's
/// accounting (small → class size; large → whole pages).
fn rounded(size: usize) -> usize {
    match SizeClass::for_size(size) {
        Some(c) => c.object_size(),
        None => size.div_ceil(PAGE_SIZE).max(1) * PAGE_SIZE,
    }
}

#[test]
fn routed_frees_match_accounting_model() {
    for seed in [1u64, 0x6d65_7368, 42] {
        run_seed(seed);
    }
}

fn run_seed(seed: u64) {
    let mesh = Mesh::new(
        MeshConfig::default()
            .arena_bytes(512 << 20)
            .seed(seed)
            .write_barrier(false),
    )
    .unwrap();
    let mut a = mesh.thread_heap();
    let mut b = mesh.thread_heap();
    let mut rng = Lcg(seed | 1);

    // Model state.
    let mut live: Vec<(usize, usize)> = Vec::new(); // (addr, request size)
    let mut model_mallocs = 0u64;
    let mut model_frees = 0u64;
    let mut model_invalid = 0u64;
    let mut model_double = 0u64;
    let mut model_live_bytes = 0usize;
    let mut cross_frees = 0u64; // frees issued by the non-owning handle

    let wild = 0x1000 as *mut u8;
    assert!(!mesh.contains(wild), "probe address must be foreign");

    for _ in 0..30_000 {
        match rng.below(100) {
            // --- allocate (55%) -----------------------------------------
            0..=54 => {
                let size = match rng.below(5) {
                    0 => 1 + rng.below(64) as usize,
                    1 => 65 + rng.below(960) as usize,
                    2 => 1025 + rng.below(15_360) as usize,
                    3 => 16_385 + rng.below(50_000) as usize, // large
                    _ => 8 + rng.below(200) as usize,
                };
                let th = if rng.below(2) == 0 { &mut a } else { &mut b };
                let p = th.malloc(size);
                assert!(!p.is_null());
                live.push((p as usize, size));
                model_mallocs += 1;
                model_live_bytes += rounded(size);
            }
            // --- free, possibly via the other thread's heap (35%) -------
            55..=89 if !live.is_empty() => {
                let pick = rng.below(live.len() as u64) as usize;
                let (addr, size) = live.swap_remove(pick);
                let handoff = rng.below(3) == 0;
                if handoff {
                    cross_frees += 1;
                }
                let th = if handoff { &mut b } else { &mut a };
                unsafe { th.free(addr as *mut u8) };
                model_frees += 1;
                model_live_bytes -= rounded(size);
            }
            // --- hostile frees (10%) ------------------------------------
            90..=94 => {
                // Wild pointer outside the arena.
                unsafe { a.free(wild) };
                model_invalid += 1;
            }
            _ if !live.is_empty() => {
                let pick = rng.below(live.len() as u64) as usize;
                let (addr, size) = live[pick];
                if rng.below(2) == 0 && SizeClass::for_size(size).is_some() {
                    // Misaligned interior pointer into a small object:
                    // must be discarded on whichever path it routes to,
                    // leaving the object live. (Interior pointers into
                    // *large* spans are legitimate frees by design — the
                    // over-aligned path hands them out — so only small
                    // objects are probed.)
                    unsafe { a.free((addr + 1) as *mut u8) };
                    model_invalid += 1;
                } else {
                    // Double free: free the object twice back-to-back.
                    live.swap_remove(pick);
                    unsafe {
                        a.free(addr as *mut u8);
                        a.free(addr as *mut u8);
                    }
                    model_frees += 1;
                    model_live_bytes -= rounded(size);
                    model_double += 1;
                }
            }
            _ => {}
        }
    }
    for (addr, size) in live.drain(..) {
        unsafe { a.free(addr as *mut u8) };
        model_frees += 1;
        model_live_bytes -= rounded(size);
    }
    drop(a);
    drop(b);

    let s = mesh.stats();
    assert_eq!(s.mallocs, model_mallocs, "seed {seed}: mallocs");
    assert_eq!(s.frees, model_frees, "seed {seed}: exactly the valid frees applied");
    // A duplicate free whose span died before the drain legitimately
    // reads as invalid (wild) rather than double — the classification is
    // state-dependent, the *sum* of discarded frees is not.
    assert_eq!(
        s.invalid_frees + s.double_frees,
        model_invalid + model_double,
        "seed {seed}: every hostile free discarded and counted"
    );
    assert!(s.invalid_frees >= model_invalid, "seed {seed}: invalid floor");
    assert_eq!(s.live_bytes, model_live_bytes, "seed {seed}: live bytes");
    assert_eq!(model_live_bytes, 0, "seed {seed}: model drained");
    // Every cross-handle free of a small object must have routed remotely;
    // large frees are remote by construction. The owner-side frees may be
    // local or remote (the span can have detached), so this is a floor.
    assert!(
        s.remote_frees >= cross_frees,
        "seed {seed}: handoffs must take the remote path ({} < {cross_frees})",
        s.remote_frees
    );
    assert_eq!(
        s.remote_free_queued, s.remote_free_drained,
        "seed {seed}: queues settled by the stats flush"
    );
}
