//! mesh-ctl across a real `fork()`: the ctl I/O lock joins the
//! `lock_all` fork-quiescence protocol (ordered last, and a strict leaf
//! — dispatch runs with it dropped, so a request in flight at fork time
//! cannot invert the lock order against `fork_prepare`), so a client
//! that is mid-`profile` when the process forks must observe either a
//! complete envelope or a clean EOF at a frame boundary — never a torn
//! frame. The fork is repeated while the client hammers, so fork
//! quiescence keeps landing inside live request windows. The child's
//! `release_child` drops the inherited listener and connections and
//! re-binds a fresh listener on the same path, so the forked process
//! answers ctl requests too, while the parent keeps serving the clients
//! it had already accepted.
//!
//! Own test binary: forking a multi-threaded cargo-test harness is only
//! safe when this file's single test is all that runs in the process.

use mesh::core::ffi;
use mesh::core::{Mesh, MeshConfig};
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Reads one `\n`-terminated line, byte at a time (frames are tiny).
/// `Ok(None)` is EOF before the first byte — a clean frame boundary.
fn read_line(stream: &mut UnixStream) -> std::io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut b = [0u8; 1];
        match stream.read(&mut b) {
            Ok(0) if line.is_empty() => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    format!("EOF inside a header line: {line:?}"),
                ))
            }
            Ok(_) if b[0] == b'\n' => {
                return Ok(Some(String::from_utf8(line).expect("ascii header")))
            }
            Ok(_) => line.push(b[0]),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Issues one command and reads the full response frame. `Ok(None)` is
/// a clean EOF at the frame boundary; a torn frame (EOF or timeout
/// inside a frame) comes back as `Err` and fails the test.
fn request(stream: &mut UnixStream, cmd: &str) -> std::io::Result<Option<Vec<u8>>> {
    stream.write_all(cmd.as_bytes())?;
    stream.write_all(b"\n")?;
    let Some(header) = read_line(stream)? else {
        return Ok(None);
    };
    let len: usize = header
        .strip_prefix("ok ")
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("unexpected response header: {header:?}"));
    let mut payload = vec![0u8; len + 1]; // body + trailing newline
    stream.read_exact(&mut payload)?; // EOF here = torn frame = Err
    assert_eq!(payload.pop(), Some(b'\n'), "missing frame terminator");
    Ok(Some(payload))
}

/// Connects and consumes the greeting. Retries briefly: the listener is
/// bound synchronously but served by the background thread.
fn connect(path: &Path) -> UnixStream {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match UnixStream::connect(path) {
            Ok(mut s) => {
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                s.set_write_timeout(Some(Duration::from_secs(10))).unwrap();
                // EOF instead of a greeting: over-cap connections are
                // accepted then dropped — with a single client that is
                // a teardown race, so retry until the deadline.
                if let Some(g) = read_line(&mut s).expect("greeting read") {
                    assert_eq!(g, "mesh-ctl 1", "protocol greeting");
                    return s;
                }
            }
            Err(_) if std::time::Instant::now() < deadline => {}
            Err(e) => panic!("connect to ctl socket failed: {e}"),
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Child-side body; returns success instead of panicking (a panic would
/// unwind into the forked copy of the test harness).
fn child_body(mesh: &Mesh, sock: &Path) -> bool {
    if !mesh.ctl_active() {
        return false; // re-bind on the same path failed
    }
    // The child's fresh listener answers a fresh client end to end.
    let mut s = match UnixStream::connect(sock) {
        Ok(s) => s,
        Err(_) => return false,
    };
    let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
    match read_line(&mut s) {
        Ok(Some(g)) if g == "mesh-ctl 1" => {}
        _ => return false,
    }
    let stats = match request(&mut s, "stats") {
        Ok(Some(p)) => p,
        _ => return false,
    };
    if !stats.starts_with(b"mesh: ") {
        return false;
    }
    let profile = match request(&mut s, "profile") {
        Ok(Some(p)) => p,
        _ => return false,
    };
    if !profile.starts_with(b"{\"mesh_profile_version\":1") {
        return false;
    }
    // Children are siblings forked from the same parent (whose own
    // counter never moves), so every child observes exactly one fork.
    mesh.stats().forks == 1
}

#[test]
fn ctl_clients_survive_fork_without_torn_frames() {
    let sock =
        std::env::temp_dir().join(format!("mesh-ctl-fork-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let mesh = Mesh::new(
        MeshConfig::default()
            .seed(23)
            .arena_bytes(64 << 20)
            .profiling(true)
            .prof_sample_bytes(16 << 10)
            .ctl(Some(sock.clone())),
    )
    .unwrap();
    assert!(mesh.ctl_active(), "listener bound at construction");

    // Populate the profile so `profile` envelopes are non-trivial.
    let ptrs: Vec<*mut u8> = (0..4096).map(|_| mesh.malloc(128)).collect();
    for (i, &p) in ptrs.iter().enumerate() {
        assert!(!p.is_null());
        if i % 8 != 0 {
            unsafe { mesh.free(p) };
        }
    }

    // Hammer `profile` from a parent-side client across the fork. Every
    // response must be a complete envelope; the loop tolerates only a
    // clean EOF at a frame boundary (and fails the test on a torn one).
    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let client = {
        let sock = sock.clone();
        let stop = Arc::clone(&stop);
        let completed = Arc::clone(&completed);
        std::thread::spawn(move || {
            let mut s = connect(&sock);
            while !stop.load(Ordering::Acquire) {
                match request(&mut s, "profile").expect("torn profile frame") {
                    Some(payload) => {
                        assert!(
                            payload.starts_with(b"{\"mesh_profile_version\":1")
                                && payload.ends_with(b"]}"),
                            "incomplete envelope: {:?}",
                            String::from_utf8_lossy(&payload)
                        );
                        completed.fetch_add(1, Ordering::Release);
                    }
                    None => return, // clean EOF: server went away at a boundary
                }
            }
        })
    };

    // Let the client get into its cadence before forking under it.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while completed.load(Ordering::Acquire) < 3 {
        assert!(
            std::time::Instant::now() < deadline && !client.is_finished(),
            "ctl client never reached a steady cadence"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // Repeated forks: each quiescence lands somewhere inside the
    // client's request cadence, covering the fork-vs-request-in-flight
    // interleavings (the old lock-held-across-dispatch design could
    // ABBA-deadlock exactly here).
    for round in 0..3u64 {
        let before_fork = completed.load(Ordering::Acquire);

        let guard = mesh.fork_prepare();
        let pid = unsafe { ffi::fork() };
        assert!(pid >= 0, "fork failed");
        if pid == 0 {
            guard.release_child();
            let ok = child_body(&mesh, &sock);
            // _exit: the forked harness copy must not run its own teardown.
            unsafe { ffi::_exit(if ok { 0 } else { 1 }) };
        }
        guard.release_parent();

        let mut status: i32 = -1;
        let waited = unsafe { ffi::waitpid(pid, &mut status, 0) };
        assert_eq!(waited, pid, "waitpid failed");
        assert!(
            status & 0x7F == 0 && (status >> 8) & 0xFF == 0,
            "child failed (round {round}): raw status {status:#x}"
        );

        // The parent kept serving its already-accepted client after the
        // fork (the child re-bound the *path*, not this connection).
        let resumed = std::time::Instant::now() + Duration::from_secs(30);
        while completed.load(Ordering::Acquire) <= before_fork {
            assert!(
                std::time::Instant::now() < resumed && !client.is_finished(),
                "parent-side ctl service never resumed after fork (round {round})"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    stop.store(true, Ordering::Release);
    client.join().expect("ctl client thread failed");

    assert_eq!(mesh.stats().forks, 0, "parent never privatizes");
    for (i, &p) in ptrs.iter().enumerate() {
        if i % 8 == 0 {
            unsafe { mesh.free(p) };
        }
    }
    drop(mesh);
    // The child's _exit skipped teardown, so its re-bound socket file
    // may survive; this unlink keeps repeated runs deterministic.
    let _ = std::fs::remove_file(&sock);
}
