//! E2E slow-path tracing: compiles `tests/c/trace.c`, runs it under
//! `LD_PRELOAD=libmesh.so` with `MESH_TRACE=1` and a `MESH_TRACE_PATH`,
//! and validates the resulting Chrome trace-event JSON against the
//! schema DESIGN.md documents (and `chrome://tracing` accepts):
//!
//! * the dump parses, is a single line, and carries `traceEvents`,
//!   `displayTimeUnit` and the versioned `otherData` block;
//! * every event is a complete (`"ph":"X"`) event in the `mesh`
//!   category with a known op name, microsecond `ts`/`dur`, and a
//!   numeric `pid`/`tid`/`args.arg`;
//! * the churn workload produced `refill` events from a nonzero tid
//!   (mutator rings), proving per-thread recording end to end;
//! * the program survived `raise(SIGUSR2)` — the co-dump handler was
//!   installed — and its weak `mesh_trace_dump()` call returned 0.
//!
//! Skips (loudly) when no `cc` is available, like `tests/c_abi.rs`.

mod support;

use std::process::{Command, Stdio};
use support::{build_libmesh, compile_c, have_cc, target_dir, Json, Parser};

/// Every op name the tracer can emit (mirrors `TimedOp::name`).
const KNOWN_OPS: &[&str] = &[
    "refill",
    "class_lock_wait",
    "arena_lock_wait",
    "mutator_pause",
    "remote_drain",
    "transfer_spill",
    "transfer_flush",
    "mesh_candidates",
    "mesh_copy",
    "mesh_remap",
    "mesh_pass",
    "segment_grow",
    "segment_retire",
    "madvise",
];

#[test]
fn trace_dump_is_valid_chrome_trace_json() {
    if !have_cc() {
        eprintln!("skipping trace preload test: no `cc` in this environment");
        return;
    }
    let so = build_libmesh();
    let out_dir = target_dir().join("c-trace-tests");
    std::fs::create_dir_all(&out_dir).unwrap();
    let bin = compile_c("trace", &out_dir, &["-O1"]);
    let dump_path = out_dir.join("trace.json");
    std::fs::remove_file(&dump_path).ok();

    let out = Command::new(&bin)
        .env("LD_PRELOAD", &so)
        .env("MESH_TRACE", "1")
        .env("MESH_TRACE_BUF_EVENTS", "4096")
        .env("MESH_TRACE_PATH", &dump_path)
        .env("MESH_SEED", "29")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn failed");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "trace exited {:?} (SIGUSR2 unhandled?)\nstdout:\n{stdout}\nstderr:\n{stderr}",
        out.status
    );
    assert!(stdout.contains("trace OK"), "missing OK line:\n{stdout}");

    let raw = std::fs::read_to_string(&dump_path)
        .unwrap_or_else(|e| panic!("no dump at {}: {e}\nstderr:\n{stderr}", dump_path.display()));
    assert!(!raw.trim().contains('\n'), "dump is a single line");
    let dump = Parser::parse(raw.trim());

    // --- envelope --------------------------------------------------------
    assert_eq!(dump.get("displayTimeUnit").str(), "ns");
    let other = dump.get("otherData");
    assert_eq!(other.get("mesh_trace_version").num(), 1);
    other.get("uptime_ms").num();

    // --- events ----------------------------------------------------------
    let events = dump.get("traceEvents").arr();
    assert!(!events.is_empty(), "no trace events recorded:\n{raw}");
    let mut saw_refill_from_mutator = false;
    for e in events {
        let name = e.get("name").str();
        assert!(KNOWN_OPS.contains(&name), "unknown op {name:?}");
        assert_eq!(e.get("cat").str(), "mesh");
        assert_eq!(e.get("ph").str(), "X");
        assert!(e.get("ts").float() >= 0.0);
        assert!(e.get("dur").float() >= 0.0);
        e.get("pid").num();
        let tid = e.get("tid").num();
        match e.get("args") {
            Json::Obj(_) => {
                e.get("args").get("arg").num();
            }
            other => panic!("args is not an object: {other:?}"),
        }
        if name == "refill" && tid != 0 {
            saw_refill_from_mutator = true;
        }
    }
    assert!(
        saw_refill_from_mutator,
        "churn produced no refill events from a mutator ring:\n{raw}"
    );
}
