//! # mesh-bench
//!
//! Shared reporting helpers for the benchmark harnesses that regenerate
//! every table and figure of the Mesh paper's evaluation (§6) and
//! analysis (§5). Each `benches/` target corresponds to one artifact —
//! see DESIGN.md's experiment index (E1–E13) for the mapping.

use mesh_core::ffi as libc;
use std::fmt::Display;
use std::time::{Duration, Instant};

/// Result of one timed benchmark.
#[derive(Debug, Clone)]
pub struct Sample {
    pub name: String,
    pub ns_per_op: f64,
}

/// Times `f` with auto-calibrated iteration counts (the offline build has
/// no criterion): short warmup, pick an iteration count targeting ~50 ms
/// per sample, take three samples, report the fastest (robust against
/// scheduler noise). Prints one aligned line and returns the sample.
pub fn time_op(name: &str, mut f: impl FnMut()) -> Sample {
    let warmup = Instant::now();
    let mut n = 0u64;
    while warmup.elapsed() < Duration::from_millis(10) {
        f();
        n += 1;
    }
    let per = warmup.elapsed().as_nanos() as f64 / n.max(1) as f64;
    let iters = ((50_000_000.0 / per.max(1.0)) as u64).clamp(10, 50_000_000);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    let s = Sample {
        name: name.to_string(),
        ns_per_op: best,
    };
    println!("{:<48} {:>12.1} ns/op", s.name, s.ns_per_op);
    s
}

/// Times `f` over per-iteration fresh state from `setup` (setup excluded
/// from the measurement). For expensive-setup benchmarks like "one full
/// meshing pass over a freshly fragmented heap".
pub fn time_batched<S>(
    name: &str,
    iters: u64,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S),
) -> Sample {
    let mut total = 0u128;
    for _ in 0..iters {
        let state = setup();
        let t = Instant::now();
        f(state);
        total += t.elapsed().as_nanos();
    }
    let s = Sample {
        name: name.to_string(),
        ns_per_op: total as f64 / iters.max(1) as f64,
    };
    println!("{:<48} {:>12.1} ns/op", s.name, s.ns_per_op);
    s
}

/// Prints a section banner so `cargo bench` output reads like the paper's
/// evaluation section.
pub fn banner(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Prints one aligned table row.
pub fn row(cells: &[&dyn Display], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        line.push_str(&format!("{:>width$}  ", cell, width = width));
    }
    println!("{}", line.trim_end());
}

/// Formats bytes as MiB with one decimal.
pub fn mib(bytes: usize) -> String {
    format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a fractional change as a signed percentage.
pub fn pct(fraction: f64) -> String {
    format!("{:+.1}%", fraction * 100.0)
}

/// Downsamples a timeline to at most `n` evenly spaced points for compact
/// series printing.
pub fn downsample<T: Copy>(points: &[T], n: usize) -> Vec<T> {
    if points.len() <= n || n == 0 {
        return points.to_vec();
    }
    (0..n)
        .map(|i| points[i * (points.len() - 1) / (n - 1).max(1)])
        .collect()
}

/// Renders a heap-size series as a sparkline-style text row (the figures'
/// shapes, terminal edition).
pub fn sparkline(series: &[usize]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = series.iter().copied().max().unwrap_or(1).max(1);
    series
        .iter()
        .map(|&v| BARS[(v * (BARS.len() - 1)) / max])
        .collect()
}

/// Measured cost of the virtual-memory operations one meshed pair needs.
#[derive(Debug, Clone, Copy)]
pub struct VmOpCosts {
    /// Per-pair cost on this host (mprotect + mmap MAP_FIXED + madvise +
    /// one page refault), as measured at startup.
    pub per_pair: std::time::Duration,
    /// The same sequence on bare-metal Linux (used to translate meshing
    /// overheads measured inside syscall-interposing sandboxes into
    /// native-equivalent figures; the paper's testbed pays this cost).
    pub native_per_pair: std::time::Duration,
    /// Cost of faulting one released page back in on this host. Released
    /// pages refault on their next touch *outside* the meshing pass, so
    /// workload-attributed time carries this tax too.
    pub refault: std::time::Duration,
    /// The same minor fault on bare-metal Linux.
    pub native_refault: std::time::Duration,
}

impl VmOpCosts {
    /// How many times more expensive this host's VM operations are than
    /// bare metal.
    pub fn inflation(&self) -> f64 {
        self.per_pair.as_secs_f64() / self.native_per_pair.as_secs_f64()
    }

    /// Rescales a measured meshing duration to its native-equivalent.
    pub fn native_equivalent(&self, measured: std::time::Duration) -> std::time::Duration {
        measured.div_f64(self.inflation().max(1.0))
    }

    /// The *excess* (host minus native) cost of refaulting `pages` pages —
    /// the workload-side share of the substrate tax.
    pub fn refault_excess(&self, pages: u64) -> std::time::Duration {
        self.refault.saturating_sub(self.native_refault) * pages as u32
    }
}

/// Measures the host's cost for the meshing VM-operation sequence
/// (§4.5.1–§4.5.2: mprotect the source, remap it with `mmap(MAP_FIXED)`,
/// release with madvise, fault a page back in). Sandboxed kernels (gVisor
/// and similar) make these 10–100× more expensive than bare metal, which
/// inflates every meshing-time measurement taken inside them; harnesses
/// use this calibration to report native-equivalent numbers alongside raw
/// ones.
pub fn calibrate_vm_ops() -> VmOpCosts {
    // ~2 µs on bare-metal Linux: three short syscalls plus a minor fault.
    const NATIVE_PER_PAIR: std::time::Duration = std::time::Duration::from_micros(6);
    // A minor fault on an existing page-cache page: ~0.5 µs native.
    const NATIVE_REFAULT: std::time::Duration = std::time::Duration::from_nanos(500);
    let trials = 400;
    unsafe {
        let pages = 64usize;
        let len = pages * 4096;
        let fd = libc::memfd_create(c"mesh-calib".as_ptr(), 0);
        assert!(fd >= 0, "memfd_create failed");
        assert_eq!(libc::ftruncate(fd, len as i64), 0);
        let base = libc::mmap(
            std::ptr::null_mut(),
            len,
            libc::PROT_READ | libc::PROT_WRITE,
            libc::MAP_SHARED,
            fd,
            0,
        );
        assert_ne!(base, libc::MAP_FAILED, "mmap failed");
        let base = base as usize;
        for i in 0..pages {
            std::ptr::write_bytes((base + i * 4096) as *mut u8, 1, 1);
        }
        let t = std::time::Instant::now();
        for i in 0..trials {
            let page = i % pages;
            let addr = (base + page * 4096) as *mut libc::c_void;
            libc::mprotect(addr, 4096, libc::PROT_READ);
            libc::mmap(
                addr,
                4096,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED | libc::MAP_FIXED,
                fd,
                (((page + 1) % pages) * 4096) as i64,
            );
            libc::madvise(addr, 4096, libc::MADV_DONTNEED);
            std::ptr::write_bytes(addr as *mut u8, 2, 1);
        }
        let per_pair = t.elapsed() / trials as u32;

        // Refault-only measurement: release pages, then time first touch.
        for i in 0..pages {
            libc::madvise(
                (base + i * 4096) as *mut libc::c_void,
                4096,
                libc::MADV_DONTNEED,
            );
        }
        let t = std::time::Instant::now();
        for i in 0..pages {
            std::ptr::write_bytes((base + i * 4096) as *mut u8, 3, 1);
        }
        let refault = t.elapsed() / pages as u32;

        libc::munmap(base as *mut libc::c_void, len);
        libc::close(fd);
        VmOpCosts {
            per_pair,
            native_per_pair: NATIVE_PER_PAIR,
            refault,
            native_refault: NATIVE_REFAULT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mib_and_pct_formats() {
        assert_eq!(mib(1 << 20), "1.0 MiB");
        assert_eq!(pct(-0.16), "-16.0%");
        assert_eq!(pct(0.007), "+0.7%");
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let pts: Vec<usize> = (0..100).collect();
        let ds = downsample(&pts, 5);
        assert_eq!(ds.len(), 5);
        assert_eq!(ds[0], 0);
        assert_eq!(*ds.last().unwrap(), 99);
        assert_eq!(downsample(&pts, 200).len(), 100);
    }

    #[test]
    fn sparkline_scales() {
        let s = sparkline(&[0, 50, 100]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
    }
}
