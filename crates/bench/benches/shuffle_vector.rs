//! **§4.2 / Figures 3–4** — shuffle vectors vs random-probing bitmaps.
//!
//! The paper's claim: shuffle vectors give *worst-case* O(1) randomized
//! malloc/free with one byte per object, whereas the DieHard-style
//! random-probing approach gives only *expected* O(1) and needs ~2×
//! over-provisioning to keep probe counts down. These benches measure
//! both on identical span shapes, including the degenerate high-occupancy
//! case where probing degrades.

use mesh_bench::{banner, time_op};
use mesh_core::bitmap::AtomicBitmap;
use mesh_core::miniheap::MiniHeapId;
use mesh_core::rng::Rng;
use mesh_core::shuffle_vector::ShuffleVector;
use std::hint::black_box;

const SPAN: usize = 0x2000_0000;
const COUNT: usize = 256;

fn attached_vector(rng: &mut Rng) -> (ShuffleVector, AtomicBitmap) {
    let bitmap = AtomicBitmap::new(COUNT);
    let mut sv = ShuffleVector::new(true);
    sv.attach(MiniHeapId::from_raw(1), SPAN, 4096, COUNT, 16, &bitmap, rng);
    (sv, bitmap)
}

fn main() {
    banner("random allocation: shuffle vector vs bitmap probing");
    let mut rng = Rng::with_seed(1);

    // Steady-state malloc+free at 50% occupancy.
    let (mut sv, _bm) = attached_vector(&mut rng);
    let mut live: Vec<usize> = (0..COUNT / 2).map(|_| sv.malloc().unwrap()).collect();
    {
        let mut i = 0usize;
        time_op("shuffle_vector/50pct", || {
            let p = sv.malloc().unwrap();
            live.push(p);
            let victim = live.swap_remove(i % live.len());
            unsafe { sv.free(black_box(victim), &mut rng) };
            i += 1;
        });
    }

    // Random-probing bitmap allocator (DieHard-style), same occupancy.
    for occupancy_pct in [50usize, 90] {
        let bitmap = AtomicBitmap::new(COUNT);
        let target = COUNT * occupancy_pct / 100;
        let mut prng = Rng::with_seed(2);
        let mut live: Vec<usize> = Vec::new();
        while live.len() < target {
            let slot = prng.below(COUNT as u32) as usize;
            if bitmap.try_set(slot) {
                live.push(slot);
            }
        }
        let mut i = 0usize;
        time_op(&format!("bitmap_probing/{occupancy_pct}pct"), || {
            // Probe for a free slot (expected O(1/(1-occ)) probes).
            let slot = loop {
                let s = prng.below(COUNT as u32) as usize;
                if bitmap.try_set(s) {
                    break s;
                }
            };
            live.push(slot);
            let victim = live.swap_remove(i % live.len());
            bitmap.unset(black_box(victim));
            i += 1;
        });
    }

    // Attach cost: claiming + shuffling a whole span's offsets.
    time_op("shuffle_vector/attach_256", || {
        let bitmap = AtomicBitmap::new(COUNT);
        let mut sv = ShuffleVector::new(true);
        sv.attach(
            MiniHeapId::from_raw(1),
            SPAN,
            4096,
            COUNT,
            16,
            &bitmap,
            &mut rng,
        );
        black_box(sv.available());
    });
}
