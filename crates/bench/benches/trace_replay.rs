//! **Trace replay footprint** — memory numbers for the perf trajectory.
//!
//! Replays one fixed fragmentation-heavy sawtooth trace (the §6
//! Ruby/perlbench shape: scattered survivors pin a slot in nearly every
//! span) against every Mesh-backed configuration and records *memory*
//! outcomes, not throughput: peak committed pages, final committed
//! footprint after a purge, live bytes, fragmentation ratio, process RSS,
//! and segmented-arena traffic (segments created/retired). The heap is
//! deliberately configured with a small initial segment so the replay
//! exercises on-demand growth and end-of-run segment retirement.
//!
//! Output: one human table plus one `BENCH_FOOTPRINT.json` line on stdout
//! for trajectory tracking.

use mesh_bench::banner;
use mesh_core::{MeshConfig, PAGE_SIZE};
use mesh_workloads::driver::TestAllocator;
use mesh_workloads::trace::{generate, TraceEvent};
use std::collections::HashMap;
use std::time::Instant;

/// One replay's memory outcome.
struct Outcome {
    label: &'static str,
    peak_heap: usize,
    final_heap: usize,
    final_live: usize,
    segments_created: u64,
    segments_retired: u64,
    elapsed_ms: f64,
}

fn run(label: &'static str, config: MeshConfig) -> Outcome {
    let mut alloc = TestAllocator::from_config(config);
    // Eight phases of 48–256 B objects, 2% random survivors per phase.
    let trace = generate::sawtooth_pinned(8, 30_000, 48, 256, 50, 0xf00d);
    let t0 = Instant::now();
    let mut ptrs: HashMap<u64, usize> = HashMap::new();
    for (at, ev) in trace.events().iter().enumerate() {
        match *ev {
            TraceEvent::Malloc { id, size } => {
                ptrs.insert(id, alloc.malloc(size) as usize);
            }
            TraceEvent::Free { id } => unsafe {
                alloc.free(ptrs.remove(&id).expect("live id") as *mut u8);
            },
        }
        if at % 10_000 == 9_999 {
            alloc.mesh_now();
        }
    }
    alloc.mesh_now();
    alloc.purge();
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = alloc.heap_stats().expect("Mesh-backed driver");
    let outcome = Outcome {
        label,
        peak_heap: stats.peak_heap_bytes(),
        final_heap: stats.heap_bytes(),
        final_live: stats.live_bytes,
        segments_created: stats.segments_created,
        segments_retired: stats.segments_retired,
        elapsed_ms,
    };
    // Leave the allocator balanced.
    for (_, p) in ptrs.drain() {
        unsafe { alloc.free(p as *mut u8) };
    }
    outcome
}

fn main() {
    banner("trace replay footprint: sawtooth survivors, segmented arena");

    // Small initial/growth segments under a 1 GiB cap: the replay must
    // grow on demand and retire what it no longer needs.
    let base = || {
        MeshConfig::default()
            .max_heap_bytes(1 << 30)
            .initial_segment_bytes(4 << 20)
            .segment_bytes(16 << 20)
            .seed(0xf00d)
    };
    let outcomes = [
        run("Mesh", base()),
        run("Mesh (no meshing)", base().meshing(false)),
        run("Mesh (no rand)", base().randomize(false)),
    ];

    println!();
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>8} {:>14} {:>10}",
        "allocator", "peak MiB", "final MiB", "live MiB", "frag ×", "segs new/ret", "ms"
    );
    for o in &outcomes {
        println!(
            "{:<22} {:>12.2} {:>12.2} {:>12.2} {:>8.1} {:>11}/{:<2} {:>10.0}",
            o.label,
            o.peak_heap as f64 / (1 << 20) as f64,
            o.final_heap as f64 / (1 << 20) as f64,
            o.final_live as f64 / (1 << 20) as f64,
            o.final_heap as f64 / o.final_live.max(1) as f64,
            o.segments_created,
            o.segments_retired,
            o.elapsed_ms,
        );
    }
    let rss_kb = mesh_core::sys::process_rss_kb().unwrap_or(0);
    println!("\nprocess RSS: {:.1} MiB (all heaps + harness)", rss_kb as f64 / 1024.0);

    // Machine-readable trajectory line. Field names are stable; consumers
    // key on allocator labels.
    let fields: Vec<String> = outcomes
        .iter()
        .map(|o| {
            let key = o
                .label
                .to_lowercase()
                .replace([' ', '(', ')'], "")
                .replace("nomeshing", "_nomesh")
                .replace("norand", "_norand");
            format!(
                "\"{key}_peak_committed_pages\":{},\"{key}_final_committed_pages\":{},\
                 \"{key}_final_live_bytes\":{},\"{key}_segments_created\":{},\
                 \"{key}_segments_retired\":{}",
                o.peak_heap / PAGE_SIZE,
                o.final_heap / PAGE_SIZE,
                o.final_live,
                o.segments_created,
                o.segments_retired,
            )
        })
        .collect();
    println!(
        "BENCH_FOOTPRINT.json {{{},\"process_rss_kb\":{rss_kb}}}",
        fields.join(",")
    );
}
