//! **Microbenchmarks** — allocation fast-path latency (§4.2–§4.3 claims).
//!
//! The paper claims malloc/free are worst-case O(1) via shuffle vectors,
//! with no locks or atomics on the thread-local fast path, and that Mesh
//! "generally matches the runtime performance of state-of-the-art
//! allocators". These Criterion benches measure:
//!
//! * thread-local malloc/free pairs across size classes, vs the system
//!   allocator;
//! * the global (remote-free) slow path;
//! * large-object allocation;
//! * a full meshing pass on a fragmented heap (the §6.2.2 compaction
//!   cost).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mesh_core::{Mesh, MeshConfig};
use std::hint::black_box;

fn heap() -> Mesh {
    Mesh::new(
        MeshConfig::default()
            .arena_bytes(1 << 30)
            .seed(42)
            // Keep the rate limiter out of latency measurements.
            .mesh_period(std::time::Duration::from_secs(3600)),
    )
    .expect("bench heap")
}

fn bench_local_malloc_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("malloc_free_pair");
    for size in [16usize, 64, 256, 1024, 4096] {
        group.throughput(Throughput::Elements(1));
        let mesh = heap();
        let mut th = mesh.thread_heap();
        group.bench_function(format!("mesh_local/{size}"), |b| {
            b.iter(|| {
                let p = th.malloc(black_box(size));
                unsafe { th.free(p) };
            })
        });
        group.bench_function(format!("system/{size}"), |b| {
            b.iter(|| unsafe {
                let layout = std::alloc::Layout::from_size_align(size, 16).unwrap();
                let p = std::alloc::alloc(black_box(layout));
                std::alloc::dealloc(p, layout);
            })
        });
    }
    group.finish();
}

fn bench_remote_free(c: &mut Criterion) {
    let mesh = heap();
    let mut producer = mesh.thread_heap();
    c.bench_function("free/global_path", |b| {
        b.iter_batched(
            || producer.malloc(256),
            |p| unsafe { mesh.free(black_box(p)) },
            BatchSize::SmallInput,
        )
    });
}

fn bench_large_objects(c: &mut Criterion) {
    let mesh = heap();
    c.bench_function("malloc_free_pair/large_64k", |b| {
        b.iter(|| {
            let p = mesh.malloc(black_box(64 * 1024));
            unsafe { mesh.free(p) };
        })
    });
}

fn bench_mesh_pass(c: &mut Criterion) {
    // A fragmented heap: 4096 spans of 256 B objects at 12.5% occupancy.
    c.bench_function("meshing/full_pass_8MiB_fragmented", |b| {
        b.iter_batched(
            || {
                let mesh = heap();
                let ptrs: Vec<*mut u8> = (0..32768).map(|_| mesh.malloc(256)).collect();
                for (i, &p) in ptrs.iter().enumerate() {
                    if i % 8 != 0 {
                        unsafe { mesh.free(p) };
                    }
                }
                mesh
            },
            |mesh| black_box(mesh.mesh_now()),
            BatchSize::PerIteration,
        )
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_local_malloc_free, bench_remote_free, bench_large_objects, bench_mesh_pass
);
criterion_main!(benches);
