//! **Microbenchmarks** — allocation fast-path latency (§4.2–§4.3 claims).
//!
//! The paper claims malloc/free are worst-case O(1) via shuffle vectors,
//! with no locks or atomics on the thread-local fast path, and that Mesh
//! "generally matches the runtime performance of state-of-the-art
//! allocators". These benches measure:
//!
//! * thread-local malloc/free pairs across size classes, vs the system
//!   allocator;
//! * the global (remote-free) slow path — now a lock-free queue push plus
//!   an amortized drain under the class lock;
//! * large-object allocation;
//! * a full meshing pass on a fragmented heap (the §6.2.2 compaction
//!   cost).

use mesh_bench::{banner, time_batched, time_op};
use mesh_core::{Mesh, MeshConfig};
use std::hint::black_box;

fn heap() -> Mesh {
    Mesh::new(
        MeshConfig::default()
            .arena_bytes(1 << 30)
            .seed(42)
            // Keep the rate limiter out of latency measurements.
            .mesh_period(std::time::Duration::from_secs(3600)),
    )
    .expect("bench heap")
}

fn bench_local_malloc_free() {
    banner("malloc/free pair: Mesh thread-local fast path vs system");
    for size in [16usize, 64, 256, 1024, 4096] {
        let mesh = heap();
        let mut th = mesh.thread_heap();
        time_op(&format!("mesh_local/{size}"), || {
            let p = th.malloc(black_box(size));
            unsafe { th.free(p) };
        });
        time_op(&format!("system/{size}"), || unsafe {
            let layout = std::alloc::Layout::from_size_align(size, 16).unwrap();
            let p = std::alloc::alloc(black_box(layout));
            std::alloc::dealloc(p, layout);
        });
    }
}

fn bench_remote_free() {
    banner("non-local free: lock-free enqueue (drained on refill)");
    let mesh = heap();
    let mut producer = mesh.thread_heap();
    time_batched(
        "free/global_path",
        200_000,
        || producer.malloc(256),
        |p| unsafe { mesh.free(black_box(p)) },
    );
}

fn bench_large_objects() {
    banner("large objects (§4.4.3)");
    let mesh = heap();
    time_op("malloc_free_pair/large_64k", || {
        let p = mesh.malloc(black_box(64 * 1024));
        unsafe { mesh.free(p) };
    });
}

fn bench_mesh_pass() {
    banner("one full meshing pass (§6.2.2 compaction cost)");
    // A fragmented heap: 4096 spans of 256 B objects at 12.5% occupancy.
    time_batched(
        "meshing/full_pass_8MiB_fragmented",
        30,
        || {
            let mesh = heap();
            let ptrs: Vec<*mut u8> = (0..32768).map(|_| mesh.malloc(256)).collect();
            for (i, &p) in ptrs.iter().enumerate() {
                if i % 8 != 0 {
                    unsafe { mesh.free(p) };
                }
            }
            mesh
        },
        |mesh| {
            black_box(mesh.mesh_now());
        },
    );
}

fn main() {
    bench_local_malloc_free();
    bench_remote_free();
    bench_large_objects();
    bench_mesh_pass();
}
