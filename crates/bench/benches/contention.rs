//! **Contention** — the sharded-global-heap scalability benchmark.
//!
//! The seed serialized every refill, non-local free, and meshing pass
//! behind one global mutex; the sharded heap gives each size class its
//! own lock plus a lock-free remote-free queue. This harness measures
//! multi-thread malloc/free churn throughput in the configurations that
//! stress exactly those paths:
//!
//! * `distinct_classes` — N threads, each hammering its *own* size class:
//!   refills touch disjoint locks, so throughput should scale with
//!   threads (the seed's single mutex made this its worst case).
//! * `same_class` — N threads in one class: the upper bound on what
//!   sharding alone cannot fix (one shard lock, contended refills).
//! * `cross_thread_free` — producer/consumer pairs: every consumer free
//!   is a remote free, exercising the lock-free enqueue path.
//! * `churn_with_background_mesher` — distinct-class churn while the
//!   background meshing thread runs at an aggressive period.
//!
//! Output: one human table plus one `BENCH_CONTENTION.json` line on
//! stdout for trajectory tracking. Per-class lock-contention counters are
//! reported so regressions in the locking discipline are visible even
//! when wall-clock noise hides them.

use mesh_bench::banner;
use mesh_core::{Mesh, MeshConfig};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const OPS_PER_THREAD: usize = 200_000;
/// Distinct size-class request sizes, one per worker thread.
const CLASS_SIZES: [usize; 8] = [16, 48, 96, 160, 256, 448, 768, 2048];

fn heap(background: bool) -> Mesh {
    let mut config = MeshConfig::default().arena_bytes(1 << 30).seed(42);
    config = if background {
        config
            .mesh_period(Duration::from_millis(10))
            .background_meshing(true)
    } else {
        config.mesh_period(Duration::from_secs(3600))
    };
    Mesh::new(config).expect("bench heap")
}

/// Runs `threads` workers; each does `OPS_PER_THREAD` malloc/free churn
/// ops of `size_of(thread_idx)` bytes with a 64-object live window.
/// Returns aggregate ops/sec.
fn churn(mesh: &Mesh, threads: usize, size_of: impl Fn(usize) -> usize + Sync) -> f64 {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let total_ops = threads * OPS_PER_THREAD;
    std::thread::scope(|s| {
        for t in 0..threads {
            let mesh = mesh.clone();
            let barrier = Arc::clone(&barrier);
            let size = size_of(t);
            s.spawn(move || {
                let mut th = mesh.thread_heap();
                let mut live: Vec<usize> = Vec::with_capacity(64);
                barrier.wait();
                for i in 0..OPS_PER_THREAD {
                    if live.len() < 64 {
                        let p = th.malloc(size);
                        assert!(!p.is_null());
                        live.push(p as usize);
                    } else {
                        let victim = live.swap_remove(i % live.len());
                        unsafe { th.free(victim as *mut u8) };
                    }
                }
                for p in live {
                    unsafe { th.free(p as *mut u8) };
                }
                barrier.wait();
            });
        }
        barrier.wait();
        let t0 = Instant::now();
        barrier.wait();
        total_ops as f64 / t0.elapsed().as_secs_f64()
    })
}

/// Producer/consumer: producers allocate and hand pointers over a
/// channel; consumers free them (every free is non-local). Returns
/// aggregate freed-objects/sec.
fn cross_thread_free(mesh: &Mesh, pairs: usize) -> f64 {
    let total = pairs * OPS_PER_THREAD / 4;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..pairs {
            let (tx, rx) = std::sync::mpsc::sync_channel::<usize>(1024);
            let produce = mesh.clone();
            let consume = mesh.clone();
            let size = CLASS_SIZES[t % CLASS_SIZES.len()];
            s.spawn(move || {
                let mut th = produce.thread_heap();
                for _ in 0..OPS_PER_THREAD / 4 {
                    let p = th.malloc(size);
                    assert!(!p.is_null());
                    if tx.send(p as usize).is_err() {
                        break;
                    }
                }
            });
            s.spawn(move || {
                let mut th = consume.thread_heap();
                while let Ok(addr) = rx.recv() {
                    unsafe { th.free(addr as *mut u8) };
                }
            });
        }
    });
    total as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    // Clamp to available cores: running 8 workers on a 1-core container
    // measures the scheduler, not the locking discipline. Contention needs
    // at least two workers, so a 1-core host runs 2 and the JSON says so
    // honestly via `"oversubscribed": true`.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = CLASS_SIZES.len().min(cores.max(2));
    let oversubscribed = threads > cores;
    banner("global-heap contention: sharded locks + lock-free remote frees");

    let m1 = heap(false);
    let distinct = churn(&m1, threads, |t| CLASS_SIZES[t % CLASS_SIZES.len()]);
    let s1 = m1.stats();

    let m2 = heap(false);
    let same = churn(&m2, threads, |_| 256);
    let s2 = m2.stats();

    let m3 = heap(false);
    let remote = cross_thread_free(&m3, threads / 2);
    let s3 = m3.stats();

    let m4 = heap(true);
    let with_mesher = churn(&m4, threads, |t| CLASS_SIZES[t % CLASS_SIZES.len()]);
    let s4 = m4.stats();

    let single = churn(&heap(false), 1, |_| 256);

    println!();
    println!(
        "{:<36} {:>14} {:>12} {:>12}",
        "configuration", "ops/sec", "contended", "arena-cont"
    );
    for (name, ops, stats) in [
        ("single_thread_baseline".to_string(), single, None),
        (format!("distinct_classes/{threads}t"), distinct, Some(&s1)),
        (format!("same_class/{threads}t"), same, Some(&s2)),
        (
            format!("cross_thread_free/{}pairs", threads / 2),
            remote,
            Some(&s3),
        ),
        (
            format!("churn_with_background_mesher/{threads}t"),
            with_mesher,
            Some(&s4),
        ),
    ] {
        let (cls, arena) = stats
            .map(|s| (s.total_class_contention(), s.arena_lock_contention))
            .unwrap_or((0, 0));
        println!("{name:<36} {ops:>14.0} {cls:>12} {arena:>12}");
    }
    println!(
        "\nremote frees queued/drained: {}/{} (cross-thread config)",
        s3.remote_free_queued, s3.remote_free_drained
    );
    if oversubscribed {
        println!("note: {threads} workers on {cores} core(s) — numbers are oversubscribed");
    }

    // Machine-readable trajectory line.
    println!(
        "BENCH_CONTENTION.json {{\"threads\":{threads},\"cores\":{cores},\
         \"oversubscribed\":{oversubscribed},\"ops_per_thread\":{OPS_PER_THREAD},\
         \"single_thread_ops_sec\":{single:.0},\"distinct_classes_ops_sec\":{distinct:.0},\
         \"same_class_ops_sec\":{same:.0},\"cross_thread_free_ops_sec\":{remote:.0},\
         \"background_mesher_ops_sec\":{with_mesher:.0},\
         \"distinct_classes_contended_locks\":{},\"same_class_contended_locks\":{}}}",
        s1.total_class_contention(),
        s2.total_class_contention(),
    );
}
