//! **§1 + §5.4** — breaking the Robson bounds.
//!
//! Robson: any classical allocator can be driven to ~log₂(max/min) times
//! its live data — 13× for 16-byte-to-128-KB workloads (§1). Mesh breaks
//! this *with high probability* (§5.4): segregated fit plus meshing keeps
//! the footprint within a small constant of live data.
//!
//! Part 1 runs the doubling adversary against simulated first-fit,
//! best-fit, and next-fit freelists plus a binary buddy heap (the
//! bound's classical victims). Part 2 runs the within-size-class worst
//! case against real Mesh heaps, with and without meshing.

use mesh_bench::{banner, mib};
use mesh_workloads::buddy::BuddySim;
use mesh_workloads::driver::AllocatorKind;
use mesh_workloads::firstfit::FitPolicy;
use mesh_workloads::robson::{robson_adversary, robson_adversary_buddy, within_class_adversary};

fn main() {
    banner("Robson adversary vs classical allocators (paper §1: up to 13× for 16 B…128 KB)");
    for policy in [FitPolicy::FirstFit, FitPolicy::BestFit, FitPolicy::NextFit] {
        let report = robson_adversary(policy, 16, 128 * 1024, 8 << 20);
        println!("\n  {policy:?}: log₂(max/min) bound = {:.0}×", report.robson_bound);
        println!(
            "  {:>10} {:>14} {:>14} {:>8}",
            "size", "live", "footprint", "factor"
        );
        for p in report.phases.iter().step_by(2) {
            println!(
                "  {:>10} {:>14} {:>14} {:>7.1}×",
                p.size,
                mib(p.live_bytes),
                mib(p.footprint),
                p.footprint as f64 / p.live_bytes.max(1) as f64
            );
        }
        println!(
            "  final fragmentation factor: {:.1}× (bound {:.0}×)",
            report.final_factor, report.robson_bound
        );
        assert!(report.final_factor > 3.0, "{policy:?} resisted the adversary");
    }

    // The buddy system: its power-of-two blocks dodge the *external*
    // doubling trick (a freed s-block merges into exactly the 2s-block
    // the next phase wants), so the adversary instead exposes its
    // internal fragmentation on just-over-half-block sizes.
    {
        let report = robson_adversary_buddy(16, 128 * 1024, 8 << 20);
        println!("\n  BinaryBuddy: log₂(max/min) bound = {:.0}×", report.robson_bound);
        println!(
            "  final fragmentation factor: {:.1}× (internal, size ≈ 2^k+1)",
            report.final_factor
        );
        assert!(report.final_factor > 1.5, "buddy internal fragmentation missing");
        let mut sanity = BuddySim::new();
        let a = sanity.alloc(96);
        assert_eq!(sanity.live_bytes(), 128, "96 B rounds to a 128 B block");
        sanity.free(a);
    }

    banner("within-size-class worst case vs real Mesh heaps (1 live object per span)");
    println!(
        "{:<20} {:>14} {:>14} {:>12} {:>12}",
        "configuration", "fragmented", "after mesh", "factor", "factor after"
    );
    for kind in [AllocatorKind::MeshNoMesh, AllocatorKind::MeshNoRand, AllocatorKind::MeshFull] {
        let mut alloc = kind.build(1 << 30, 3);
        let r = within_class_adversary(&mut alloc, 256, 512, 17);
        println!(
            "{:<20} {:>14} {:>14} {:>11.1}× {:>11.1}×",
            kind.label(),
            mib(r.fragmented_bytes),
            mib(r.compacted_bytes),
            r.fragmented_factor(),
            r.compacted_factor(),
        );
        if kind == AllocatorKind::MeshFull {
            assert!(
                r.compacted_factor() < r.fragmented_factor() / 1.8,
                "meshing failed to compact the worst case"
            );
        }
        if kind == AllocatorKind::MeshNoMesh {
            assert_eq!(r.fragmented_bytes, r.compacted_bytes);
        }
    }
    println!(
        "\n  randomized allocation makes the worst case vanishingly unlikely to\n  \
         persist: each meshing pass halves the fragmented spans (alias-limit\n  \
         bounded), breaking the Robson blowup with high probability (§5.4)."
    );
}
