//! **Figure 6 + §6.2.1** — Firefox running Speedometer 2.0.
//!
//! Paper result: Mesh reduces Firefox's mean heap size by 16% relative
//! to the bundled jemalloc (632 MB → 530 MB) with less than a 1% change
//! in the Speedometer score. Memory peaks are similar under both
//! allocators; Mesh keeps the heap consistently lower between peaks.
//!
//! The workload is the multi-threaded browser model of
//! `mesh_workloads::firefox` (DOM/layout/CSS/JS worker threads running
//! todo-app tests with long-lived residues); the sampler thread is the
//! `mstat` analog.

use mesh_bench::{banner, calibrate_vm_ops, downsample, sparkline};
use mesh_workloads::driver::AllocatorKind;
use mesh_workloads::firefox::{run_firefox, FirefoxConfig};
use mesh_workloads::mstat::percent_change;

fn main() {
    banner("Figure 6 / §6.2.1 — Firefox-like browser workload (Speedometer model)");
    let cfg = FirefoxConfig {
        threads: 4,
        tests_per_thread: 48,
        burst_objects: 8_000,
        ..FirefoxConfig::default()
    };
    let arena = 2usize << 30;

    let base = run_firefox(AllocatorKind::MeshNoMesh, arena, &cfg);
    let mesh = run_firefox(AllocatorKind::MeshFull, arena, &cfg);

    println!("\nheap-size timelines (working phase + cooldown):");
    for r in [&base, &mesh] {
        let pts: Vec<usize> = r.timeline.samples().iter().map(|s| s.heap_bytes).collect();
        println!("  {:<20} {}", r.label, sparkline(&downsample(&pts, 72)));
    }

    banner("mean heap and score (paper: −16% mean heap, <1% score change)");
    println!(
        "{:<20} {:>14} {:>14} {:>12} {:>14}",
        "configuration", "mean heap", "peak heap", "score", "runtime"
    );
    for r in [&base, &mesh] {
        println!(
            "{:<20} {:>10.1} MiB {:>10.1} MiB {:>9.1}/s {:>13.2?}",
            r.label,
            r.mean_heap_bytes / (1024.0 * 1024.0),
            r.peak_heap_bytes as f64 / (1024.0 * 1024.0),
            r.score,
            r.runtime,
        );
    }

    let heap_change = percent_change(base.mean_heap_bytes, mesh.mean_heap_bytes);
    let score_change = percent_change(base.score, mesh.score);
    println!("\nsummary:");
    println!("  mean heap change under Mesh: {heap_change:+.1}% (paper: −16%)");
    println!("  score change under Mesh:     {score_change:+.1}% raw (paper: <1% reduction)");
    println!(
        "  peaks similar: baseline {:.1} MiB vs Mesh {:.1} MiB (paper: 'peaks to similar levels')",
        base.peak_heap_bytes as f64 / (1024.0 * 1024.0),
        mesh.peak_heap_bytes as f64 / (1024.0 * 1024.0)
    );

    // The raw score difference is almost entirely meshing wall time, and
    // meshing here pays sandbox-inflated VM-operation costs the paper's
    // bare-metal testbed does not. Report the meshing share and the
    // native-equivalent score so the <1% claim can be checked at the
    // paper's syscall prices.
    let costs = calibrate_vm_ops();
    banner("meshing cost accounting (this run vs bare-metal VM-op prices)");
    println!(
        "  meshing during working phase: {} passes, {} pairs, {:.2?} ({:.0}% of the {:.2?} runtime)",
        mesh.mesh_passes,
        mesh.spans_meshed,
        mesh.mesh_time,
        100.0 * mesh.mesh_time.as_secs_f64() / mesh.runtime.as_secs_f64(),
        mesh.runtime,
    );
    println!(
        "  this host's VM ops cost {:.1?}/pair vs ~{:.1?} native ({:.0}× inflation)",
        costs.per_pair,
        costs.native_per_pair,
        costs.inflation(),
    );
    // Released pages refault on the workers' clock (~4 workers share the
    // wall time, so divide the excess across them).
    let refault_tax = costs
        .refault_excess(mesh.pages_released)
        .div_f64(cfg.threads as f64);
    println!(
        "  refault tax: {} released pages ⇒ ~{:.2?} of worker wall time",
        mesh.pages_released, refault_tax
    );
    let native_mesh_time = costs.native_equivalent(mesh.mesh_time);
    let adj_runtime =
        (mesh.runtime - mesh.mesh_time + native_mesh_time).saturating_sub(refault_tax);
    let adj_score = mesh.score * mesh.runtime.as_secs_f64() / adj_runtime.as_secs_f64();
    let adj_change = percent_change(base.score, adj_score);
    println!(
        "  native-equivalent score: {:.1}/s ⇒ {:+.1}% vs baseline (paper: <1%)",
        adj_score, adj_change
    );
    println!(
        "  (residual beyond the adjustment is worker stall behind the meshing\n   \
         lock — on {} CPUs a pass idles most workers; the paper's machine and\n   \
         allocation rate make that ripple negligible)",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    assert!(
        heap_change < 0.0,
        "Mesh should lower the mean browser heap (got {heap_change:+.1}%)"
    );
    assert!(
        adj_change > -40.0,
        "meshing cost far beyond what VM-op inflation explains ({adj_change:+.1}%)"
    );
}
