//! **§3.3 ablation** — the probe limit `t`'s space–time trade-off.
//!
//! The paper: "The parameter t … can be increased to improve mesh quality
//! and therefore reduce space, or decreased to improve runtime… We
//! empirically found that t = 64 balances runtime and meshing
//! effectiveness." This harness sweeps `t` on (a) pure random span sets
//! (strings) and (b) a real fragmented heap, reporting meshes found,
//! probes spent, and pass time.

use mesh_bench::banner;
use mesh_core::rng::Rng;
use mesh_core::{Mesh, MeshConfig};
use mesh_graph::split_mesher::split_mesher_presplit;
use mesh_graph::string::SpanString;
use std::time::Instant;

fn string_sweep() {
    banner("probe-limit sweep on random span sets (b=256 slots, 1024 spans)");
    let mut rng = Rng::with_seed(0xab1a);
    let (n, b, r) = (1024usize, 256usize, 32usize);
    let strings: Vec<SpanString> = (0..n)
        .map(|_| SpanString::random_with_occupancy(b, r, &mut rng))
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let (left, right) = order.split_at(n / 2);

    println!(
        "{:>6} {:>10} {:>10} {:>14} {:>12}",
        "t", "meshed", "probes", "probes/mesh", "time"
    );
    for t in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let t0 = Instant::now();
        let out = split_mesher_presplit(&strings, left, right, t);
        let dt = t0.elapsed();
        println!(
            "{:>6} {:>10} {:>10} {:>14.1} {:>12.1?}",
            t,
            out.released(),
            out.probes,
            out.probes as f64 / out.released().max(1) as f64,
            dt
        );
    }
    println!("  diminishing returns above t ≈ 64: the paper's default (§3.3).");
}

fn heap_sweep() {
    banner("probe-limit sweep on a real fragmented heap (256 B objects, 12.5% survivors)");
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>12}",
        "t", "heap before", "heap after", "pairs", "pass time"
    );
    for t in [1usize, 4, 16, 64, 256] {
        let mesh = Mesh::new(
            MeshConfig::default()
                .arena_bytes(512 << 20)
                .seed(77)
                .probe_limit(t),
        )
        .expect("heap");
        let ptrs: Vec<*mut u8> = (0..32768).map(|_| mesh.malloc(256)).collect();
        for (i, &p) in ptrs.iter().enumerate() {
            if i % 8 != 0 {
                unsafe { mesh.free(p) };
            }
        }
        let before = mesh.heap_bytes();
        let t0 = Instant::now();
        let summary = mesh.mesh_now();
        let dt = t0.elapsed();
        println!(
            "{:>6} {:>10.1} MiB {:>10.1} MiB {:>12} {:>12.1?}",
            t,
            before as f64 / (1024.0 * 1024.0),
            mesh.heap_bytes() as f64 / (1024.0 * 1024.0),
            summary.pairs_meshed,
            dt
        );
    }
}

fn main() {
    string_sweep();
    heap_sweep();
}
