//! **mesh_pause** — mutator pause accounting under active meshing.
//!
//! The paper's latency story is that meshing is concurrent: mutators
//! keep allocating while the mesher selects candidates, copies spans
//! through the copy window, and remaps virtual pages. The cost mutators
//! *do* pay is bounded lock holds — a refill that wants a class shard
//! the mesher holds, or an arena-leaf acquisition behind a remap. The
//! always-on `mutator_pause` histogram records exactly those waits
//! (contended lock acquisitions while a mesh pass is active, measured
//! from the mutator side), and this harness is the experiment that
//! populates it:
//!
//! * N mutator threads churn a meshable workload — allocate one size
//!   class, free ~⅞ of each window at random so spans go sparse — for
//!   the whole run;
//! * the driver thread loops `mesh_now()` back to back, so candidate
//!   selection / copy / remap are continuously holding and releasing
//!   the locks the mutators' slow paths want.
//!
//! Output: a human table of the mesh-phase and pause histograms (count,
//! p50/p99/max), one `BENCH_PAUSE.json` line on stdout, and the same
//! JSON written to `BENCH_PAUSE.json` in the working directory (CI
//! uploads it with the perf artifacts). Pauses are contention, not a
//! guarantee: a fast mesher on a lightly loaded machine can legitimately
//! finish passes without ever blocking a mutator, so a zero pause count
//! is reported, not failed. What *is* enforced (unless
//! `MESH_BENCH_NO_ENFORCE=1`): the mesh passes actually ran and recorded
//! their phase latencies, and any recorded pause percentiles are
//! internally consistent (p50 ≤ p99; `max_ns` is the exact observed
//! maximum while the percentiles are log-bucket upper bounds, so p99 may
//! legitimately land above it).

use mesh_bench::banner;
use mesh_core::{LatencySnapshot, Mesh, MeshConfig, TimedOp};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const MESH_PASSES: usize = 200;
/// Objects a mutator accumulates before the random ⅞ cull.
const WINDOW: usize = 4096;
const OBJ_SIZE: usize = 256;

/// One op's delta as a table row and a JSON fragment.
fn summarize(delta: &LatencySnapshot, op: TimedOp) -> (u64, u64, u64, u64) {
    (
        delta.count(op),
        delta.percentile_ns(op, 0.50),
        delta.percentile_ns(op, 0.99),
        delta.max_ns(op),
    )
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = cores.clamp(2, 8);
    banner("mesh_pause: mutator pauses while the mesher runs");

    let mesh = Mesh::new(
        MeshConfig::default()
            .arena_bytes(1 << 30)
            .seed(42)
            .background_meshing(false)
            .mesh_period(Duration::from_secs(3600)),
    )
    .expect("bench heap");

    let before = mesh.stats().latency;
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut mesh_wall = Duration::ZERO;
    std::thread::scope(|s| {
        for t in 0..threads {
            let mesh = mesh.clone();
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let mut th = mesh.thread_heap();
                // Cheap xorshift so the cull pattern differs per thread:
                // random survivors are what make spans meshable.
                let mut rng = 0x9E3779B97F4A7C15u64.wrapping_mul(t as u64 + 1) | 1;
                let mut live: Vec<usize> = Vec::with_capacity(WINDOW);
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let p = th.malloc(OBJ_SIZE);
                    assert!(!p.is_null());
                    live.push(p as usize);
                    if live.len() >= WINDOW {
                        while live.len() > WINDOW / 8 {
                            rng ^= rng << 13;
                            rng ^= rng >> 7;
                            rng ^= rng << 17;
                            let idx = (rng >> 32) as usize % live.len();
                            unsafe { th.free(live.swap_remove(idx) as *mut u8) };
                        }
                    }
                }
                for p in live {
                    unsafe { th.free(p as *mut u8) };
                }
            });
        }
        barrier.wait();
        let t0 = Instant::now();
        for _ in 0..MESH_PASSES {
            mesh.mesh_now();
        }
        mesh_wall = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
    });
    // Thread heaps dropped at scope exit: their local histogram tiers are
    // merged, so this snapshot holds every recorded wait.
    let delta = mesh.stats().latency.minus(&before);

    let phases = [
        TimedOp::MeshCandidates,
        TimedOp::MeshCopy,
        TimedOp::MeshRemap,
        TimedOp::MeshPass,
        TimedOp::Madvise,
        TimedOp::MutatorPause,
    ];
    println!();
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>12}",
        "op", "count", "p50_ns", "p99_ns", "max_ns"
    );
    for &op in &phases {
        let (count, p50, p99, max) = summarize(&delta, op);
        // A histogram this run never hit would render an all-zero row
        // that reads like "measured instant": skip it.
        if count == 0 {
            continue;
        }
        println!("{:<18} {count:>10} {p50:>12} {p99:>12} {max:>12}", op.name());
    }
    let (pause_count, pause_p50, pause_p99, pause_max) = summarize(&delta, TimedOp::MutatorPause);
    println!(
        "\n{MESH_PASSES} mesh passes over {threads} mutator threads in {:.1} ms \
         ({} pauses, {} ns paused in total)",
        mesh_wall.as_secs_f64() * 1e3,
        pause_count,
        delta.sum_ns(TimedOp::MutatorPause),
    );

    // --- trajectory JSON --------------------------------------------------
    let phases_json: Vec<String> = phases
        .iter()
        .map(|&op| {
            let (count, p50, p99, max) = summarize(&delta, op);
            format!(
                "{{\"op\":\"{}\",\"count\":{count},\"p50_ns\":{p50},\
                 \"p99_ns\":{p99},\"max_ns\":{max},\"sum_ns\":{}}}",
                op.name(),
                delta.sum_ns(op)
            )
        })
        .collect();
    let json = format!(
        "{{\"threads\":{threads},\"cores\":{cores},\"mesh_passes\":{MESH_PASSES},\
         \"mesh_wall_ms\":{:.1},\
         \"pause\":{{\"count\":{pause_count},\"p50_ns\":{pause_p50},\
         \"p99_ns\":{pause_p99},\"max_ns\":{pause_max},\"sum_ns\":{}}},\
         \"phases\":[{}]}}",
        mesh_wall.as_secs_f64() * 1e3,
        delta.sum_ns(TimedOp::MutatorPause),
        phases_json.join(",")
    );
    println!("\nBENCH_PAUSE.json {json}");
    if let Err(e) = std::fs::write("BENCH_PAUSE.json", format!("{json}\n")) {
        eprintln!("warning: could not write BENCH_PAUSE.json: {e}");
    }

    // --- sanity enforcement -----------------------------------------------
    if std::env::var_os("MESH_BENCH_NO_ENFORCE").is_none() {
        let passes = delta.count(TimedOp::MeshPass);
        assert!(
            passes >= MESH_PASSES as u64,
            "only {passes} mesh_pass latencies recorded for {MESH_PASSES} \
             mesh_now calls (set MESH_BENCH_NO_ENFORCE=1 to bypass)"
        );
        assert!(
            delta.count(TimedOp::MeshCandidates) >= MESH_PASSES as u64,
            "candidate-selection phase went unrecorded"
        );
        // p50 ≤ p99 always; max is exact (not a bucket bound), so p99 —
        // an upper bound on its bucket — may exceed it and is not compared.
        assert!(
            pause_p50 <= pause_p99,
            "pause percentiles not monotone: p50={pause_p50} p99={pause_p99}"
        );
        println!(
            "pause accounting OK: {passes} passes recorded, pause p50/p99/max = \
             {pause_p50}/{pause_p99}/{pause_max} ns over {pause_count} pauses"
        );
    }
}
