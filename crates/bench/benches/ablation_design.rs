//! **Design ablations** — the §4 implementation choices DESIGN.md calls
//! out: the occupancy cutoff for mesh candidacy, the per-MiniHeap alias
//! limit (`max_span_count`), and the meshing rate limit (§4.5), each
//! evaluated on the scaled Redis workload.

use mesh_bench::banner;
use mesh_core::MeshConfig;
use mesh_workloads::redis::{run_redis, RedisConfig};
use mesh_workloads::TestAllocator;

/// Builds a full-Mesh driver from an explicit config.
fn driver(config: MeshConfig) -> TestAllocator {
    // Route through the public API: AllocatorKind can't express custom
    // configs, so build a Mesh-backed driver via a one-off helper kind.
    TestAllocator::from_config(config)
}

fn redis_cfg() -> RedisConfig {
    RedisConfig::paper().scaled(0.08)
}

fn main() {
    let arena = 1usize << 30;

    banner("ablation: occupancy cutoff for mesh candidates (default 0.8)");
    println!(
        "{:>8} {:>14} {:>10} {:>12}",
        "cutoff", "final heap", "pairs", "copied"
    );
    for cutoff in [0.2f64, 0.4, 0.6, 0.8, 1.0] {
        let mut alloc = driver(
            MeshConfig::default()
                .arena_bytes(arena)
                .seed(9)
                .occupancy_cutoff(cutoff),
        );
        let r = run_redis(&mut alloc, &redis_cfg());
        let stats = alloc.mesh_handle().unwrap().stats();
        println!(
            "{:>8.1} {:>10.1} MiB {:>10} {:>8.1} MiB",
            cutoff,
            r.final_heap_bytes as f64 / (1024.0 * 1024.0),
            stats.spans_meshed,
            stats.mesh_bytes_copied as f64 / (1024.0 * 1024.0),
        );
    }
    println!("  higher cutoffs mesh denser spans: more copying for little extra space.");

    banner("ablation: max virtual spans per physical span (default 3)");
    println!(
        "{:>6} {:>14} {:>10} {:>14}",
        "limit", "final heap", "pairs", "pages released"
    );
    for limit in [2usize, 3, 4, 6, 8] {
        let mut alloc = driver(
            MeshConfig::default()
                .arena_bytes(arena)
                .seed(9)
                .max_span_count(limit),
        );
        let r = run_redis(&mut alloc, &redis_cfg());
        let stats = alloc.mesh_handle().unwrap().stats();
        println!(
            "{:>6} {:>10.1} MiB {:>10} {:>14}",
            limit,
            r.final_heap_bytes as f64 / (1024.0 * 1024.0),
            stats.spans_meshed,
            stats.mesh_pages_released,
        );
    }
    println!("  higher alias limits allow deeper compaction at page-table cost (§4.1).");

    banner("ablation: meshing rate limit (default 100 ms, §4.5)");
    println!(
        "{:>10} {:>14} {:>10} {:>14}",
        "period", "final heap", "passes", "insert time"
    );
    for period_ms in [0u64, 10, 100, 1000] {
        let mut alloc = driver(
            MeshConfig::default()
                .arena_bytes(arena)
                .seed(9)
                .mesh_period(std::time::Duration::from_millis(period_ms)),
        );
        let r = run_redis(&mut alloc, &redis_cfg());
        let stats = alloc.mesh_handle().unwrap().stats();
        println!(
            "{:>8}ms {:>10.1} MiB {:>10} {:>14.2?}",
            period_ms,
            r.final_heap_bytes as f64 / (1024.0 * 1024.0),
            stats.mesh_passes,
            r.phase1_time + r.phase2_time,
        );
    }
    println!("  aggressive meshing buys little extra space for noticeable insert cost.");
}
