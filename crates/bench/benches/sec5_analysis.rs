//! **§2.2 + §5.2** — the analytical numbers: randomization guarantees,
//! triangle counts, and Matching-vs-MinCliqueCover quality.
//!
//! Paper results reproduced here:
//! * §2.2: 64 spans with one 16-byte object each (b = 256 slots) are all
//!   pairwise-unmeshable with probability 10⁻¹⁵².
//! * §5.2: for b = 32, r = 10, n = 1000, the expected number of
//!   triangles is < 2, versus 167 if edges were independent (hence
//!   Erdős–Renyi reasoning is invalid on meshing graphs).
//! * §5.2's conclusion: solving Matching instead of MinCliqueCover
//!   loses almost nothing, because cliques of size ≥ 3 are rare.

use mesh_bench::banner;
use mesh_core::rng::Rng;
use mesh_graph::clique_cover::min_clique_cover_size;
use mesh_graph::erdos_renyi::compare_models;
use mesh_graph::graph::MeshGraph;
use mesh_graph::matching::maximum_matching_size;
use mesh_graph::probability::{
    expected_triangles_actual, expected_triangles_independent, log10_all_same_offset,
    mesh_probability,
};

fn main() {
    banner("§2.2 — probability that randomization fails");
    let log10 = log10_all_same_offset(256, 64);
    println!("  P[64 one-object spans all collide at one offset] = 10^{log10:.1}");
    println!("  (paper: 10^-152; ~10^82 particles in the universe)");
    assert!(log10 < -150.0);

    banner("§5.2 — triangle counts: meshing-graph edges are NOT independent");
    let (n, b, r) = (1000, 32, 10);
    let actual = expected_triangles_actual(n, b, r);
    let indep = expected_triangles_independent(n, b, r);
    println!("  b={b}, occupancy r={r}, n={n} spans");
    println!("  E[triangles], true dependent model:   {actual:.2}  (paper: < 2)");
    println!("  E[triangles], independent-edge model: {indep:.1}  (paper: 167)");
    assert!(actual < 2.0 && (160.0..175.0).contains(&indep));

    // Empirical census on sampled graphs (20 × n=200 graphs).
    let mut rng = Rng::with_seed(5252);
    let (sn, trials) = (200, 20);
    let mut tri_sum = 0usize;
    let mut edge_sum = 0usize;
    for _ in 0..trials {
        let g = MeshGraph::random(sn, b, r, &mut rng);
        tri_sum += g.triangle_count();
        edge_sum += g.edge_count();
    }
    let tri_mean = tri_sum as f64 / trials as f64;
    let expected_small = expected_triangles_actual(sn, b, r);
    let q = mesh_probability(b, r, r);
    let emp_q = edge_sum as f64 / (trials * sn * (sn - 1) / 2) as f64;
    println!("\n  empirical census over {trials} random graphs with n={sn}:");
    println!("    mean triangles:  {tri_mean:.3} (closed form: {expected_small:.3})");
    println!("    edge density:    {emp_q:.4} (closed form q: {q:.4})");
    assert!((emp_q - q).abs() < 0.01);

    // Sampled head-to-head against G(n, p) at equal density — the §7
    // point about DRM's flawed analysis: assuming a simple random graph
    // wildly overestimates clique structure.
    let mesh_g = MeshGraph::random(400, b, r, &mut rng);
    let cmp = compare_models(&mesh_g, &mut rng);
    println!("\n  meshing graph vs Erdős–Renyi G(n, p) at equal density (n=400):");
    println!(
        "    meshing graph:   {} triangles (density {:.4})",
        cmp.mesh_triangles, cmp.density
    );
    println!(
        "    G(n, p) sample:  {} triangles (expectation {:.1})",
        cmp.gnp_triangles, cmp.gnp_expected_triangles
    );
    assert!(
        (cmp.gnp_triangles as f64) > 4.0 * (cmp.mesh_triangles as f64 + 1.0),
        "independent-edge model should show far more triangles: {cmp:?}"
    );

    banner("§5.2 — Matching vs MinCliqueCover on small meshing graphs");
    println!(
        "{:>4} {:>4} {:>10} {:>16} {:>16} {:>8}",
        "n", "r", "q", "released(match)", "released(cover)", "ratio"
    );
    let mut rng = Rng::with_seed(99);
    for &(n, b, r) in &[(16usize, 32usize, 2usize), (16, 32, 4), (16, 32, 8), (20, 64, 8), (20, 64, 16)] {
        let trials = 12;
        let (mut m_sum, mut c_sum) = (0usize, 0usize);
        for _ in 0..trials {
            let g = MeshGraph::random(n, b, r, &mut rng);
            m_sum += maximum_matching_size(&g);
            // An optimal cover of k cliques releases n − k spans.
            c_sum += n - min_clique_cover_size(&g);
        }
        let ratio = if c_sum > 0 { m_sum as f64 / c_sum as f64 } else { 1.0 };
        // §5.2 argues Matching ≈ MinCliqueCover *because triangles are
        // rare*; that premise (and hence the claim) only holds when the
        // expected triangle count is small. Low-occupancy rows where
        // cliques of size ≥ 3 abound are shown for contrast but are
        // outside the claim's regime.
        let tri = expected_triangles_actual(n, b, r);
        let in_regime = tri < 1.0;
        println!(
            "{:>4} {:>4} {:>10.4} {:>16.2} {:>16.2} {:>8.2}{}",
            n,
            r,
            mesh_probability(b, r, r),
            m_sum as f64 / trials as f64,
            c_sum as f64 / trials as f64,
            ratio,
            if in_regime { "" } else { "   (triangle-rich: outside §5.2 regime)" }
        );
        if in_regime {
            assert!(
                ratio > 0.75,
                "matching should capture most of the cover's savings \
                 where triangles are rare (got {ratio:.2} at n={n} b={b} r={r})"
            );
        }
    }
    println!("\n  conclusion: where cliques of size ≥ 3 are rare (the paper's");
    println!("  operating regime), pairs capture nearly all achievable");
    println!("  compaction (§5.2); dense-clique rows show what is forgone.");
}
