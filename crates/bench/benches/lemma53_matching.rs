//! **Lemma 5.3 / §5.3** — SplitMesher's quality guarantee.
//!
//! Lemma 5.3: with probe limit `t = k/q` (where `q` is the pairwise mesh
//! probability), SplitMesher finds a matching of size at least
//! `n(1 − e^{−2k})/4` with probability approaching 1 as `n` grows.
//!
//! This harness sweeps `n`, occupancy (hence `q`) and `k`, runs
//! SplitMesher on random span sets, and reports empirical matching sizes
//! against the bound — including the paper's operating point `t = 64`.

use mesh_bench::banner;
use mesh_core::rng::Rng;
use mesh_graph::blossom::blossom_matching_size;
use mesh_graph::graph::MeshGraph;
use mesh_graph::probability::{lemma53_bound, mesh_probability};
use mesh_graph::split_mesher::{lemma53_trial, split_mesher};
use mesh_graph::string::SpanString;

fn main() {
    banner("Lemma 5.3 — SplitMesher matching size ≥ n(1 − e^(−2k))/4 w.h.p.");
    let mut rng = Rng::with_seed(0x1e553);
    let trials = 20;

    println!(
        "{:>6} {:>4} {:>8} {:>6} {:>6} {:>12} {:>12} {:>10}",
        "n", "r", "q", "k", "t", "mean found", "bound", "satisfied"
    );
    let b = 64;
    let mut all_ok = true;
    // Occupancies where meshing is plausible (q not astronomically small:
    // the lemma targets exactly the "significant meshing opportunities"
    // regime, §5). t = k/q stays ≤ ~10³ probes here.
    for &n in &[64usize, 256, 1024] {
        for &r in &[8usize, 12, 16] {
            let q = mesh_probability(b, r, r);
            for &k in &[0.5f64, 1.0, 2.0] {
                let t = ((k / q).ceil() as usize).max(1);
                let bound = lemma53_bound(n, k);
                let mut found_sum = 0usize;
                let mut satisfied = 0usize;
                for _ in 0..trials {
                    let (outcome, _) = lemma53_trial(n, b, r, t, &mut rng);
                    found_sum += outcome.released();
                    if (outcome.released() as f64) >= bound {
                        satisfied += 1;
                    }
                }
                let mean = found_sum as f64 / trials as f64;
                let rate = satisfied as f64 / trials as f64;
                // Lemma 5.3's hypotheses: k > 1 and n ≥ 2k/q ("as n ...
                // grows"). Rows outside that regime (k ≤ 1, or n too
                // small for the Chernoff tail to bite) are printed for
                // context but carry no guarantee.
                let in_regime = k > 1.0 && n as f64 >= 2.0 * k / q;
                println!(
                    "{:>6} {:>4} {:>8.4} {:>6.1} {:>6} {:>12.1} {:>12.1} {:>9.0}%{}",
                    n,
                    r,
                    q,
                    k,
                    t,
                    mean,
                    bound,
                    rate * 100.0,
                    if in_regime { "" } else { "   (outside lemma regime)" }
                );
                if in_regime && rate < 0.95 {
                    all_ok = false;
                }
            }
        }
    }
    assert!(all_ok, "Lemma 5.3 bound violated in its stated regime");

    banner("the paper's fixed t = 64 (§3.3/§5.3)");
    println!(
        "{:>6} {:>4} {:>8} {:>14} {:>14} {:>12}",
        "n", "r", "q", "found (t=64)", "n/4 ceiling", "probes"
    );
    for &n in &[256usize, 1024] {
        for &r in &[4usize, 8, 16, 24, 32] {
            let q = mesh_probability(b, r, r);
            let mut found = 0usize;
            let mut probes = 0usize;
            for _ in 0..trials {
                let (outcome, _) = lemma53_trial(n, b, r, 64, &mut rng);
                found += outcome.released();
                probes += outcome.probes;
            }
            println!(
                "{:>6} {:>4} {:>8.4} {:>14.1} {:>14} {:>12.0}",
                n,
                r,
                q,
                found as f64 / trials as f64,
                n / 4,
                probes as f64 / trials as f64
            );
        }
    }
    println!("\n  t = 64 recovers nearly the n/4 guarantee whenever q ≳ 1/16,");
    println!("  i.e. 'in cases where significant meshing is possible' (§5.3).");

    banner("SplitMesher vs the true maximum matching (Edmonds' blossom)");
    println!(
        "{:>6} {:>4} {:>8} {:>14} {:>14} {:>8}",
        "n", "r", "q", "found (t=64)", "optimum", "ratio"
    );
    for &(n, r) in &[
        (128usize, 4usize),
        (128, 8),
        (128, 12),
        (512, 4),
        (512, 8),
        (512, 12),
    ] {
        let q = mesh_probability(b, r, r);
        let trials = 8;
        let (mut found_sum, mut opt_sum) = (0usize, 0usize);
        for _ in 0..trials {
            let strings: Vec<SpanString> = (0..n)
                .map(|_| SpanString::random_with_occupancy(b, r, &mut rng))
                .collect();
            found_sum += split_mesher(&strings, 64, &mut rng).released();
            opt_sum += blossom_matching_size(&MeshGraph::from_strings(strings));
        }
        let ratio = found_sum as f64 / opt_sum.max(1) as f64;
        println!(
            "{:>6} {:>4} {:>8.4} {:>14.1} {:>14.1} {:>8.2}",
            n,
            r,
            q,
            found_sum as f64 / trials as f64,
            opt_sum as f64 / trials as f64,
            ratio
        );
        // Lemma 5.3 promises ≥ (1 − e^{−2k})/2 of the optimum for
        // t = k/q; at t = 64 and q ≳ 0.05 that is effectively 1/2.
        if q >= 0.05 {
            assert!(
                ratio >= 0.5,
                "SplitMesher below the 1/2-of-optimum guarantee ({ratio:.2})"
            );
        }
    }
    println!("\n  with t = 64 probes per span, SplitMesher captures well over");
    println!("  half of the optimum wherever meshing is significant (§5.3).");
}
