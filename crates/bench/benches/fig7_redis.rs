//! **Figure 7 + §6.2.2** — Redis: memory timeline and compaction cost.
//!
//! Paper result: Mesh automatically achieves the same heap reduction
//! (−39%) as Redis's application-specific activedefrag, with compaction
//! ~5.5× faster (0.23 s vs 1.49 s; longest meshing pause 22 ms), and
//! insertion times within a few percent.
//!
//! This harness runs the paper's benchmark (700k × 240 B inserts, then
//! 170k × 492 B inserts, 100 MB LRU cap — scaled by `REDIS_SCALE`,
//! default 0.3×) under three configurations and prints the timeline
//! series and the comparison rows.

use mesh_bench::{banner, mib, pct, sparkline};
use mesh_workloads::driver::AllocatorKind;
use mesh_workloads::mstat::percent_change;
use mesh_workloads::redis::{run_redis, RedisConfig, RedisReport};

fn scale() -> f64 {
    std::env::var("REDIS_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.3)
}

fn series(report: &RedisReport) -> String {
    let pts: Vec<usize> = report.timeline.samples().iter().map(|s| s.heap_bytes).collect();
    sparkline(&mesh_bench::downsample(&pts, 60))
}

fn main() {
    let scale = scale();
    banner(&format!(
        "Figure 7 / §6.2.2 — Redis LRU cache (paper params × {scale})"
    ));
    let arena = 2usize << 30;
    let seed = 42;

    // "jemalloc + activedefrag": non-compacting allocator with Redis's
    // copy-based defragmentation.
    let cfg_defrag = RedisConfig::paper().scaled(scale).with_activedefrag(true);
    let mut a1 = AllocatorKind::MeshNoMesh.build(arena, seed);
    let r_defrag = run_redis(&mut a1, &cfg_defrag);

    // Mesh (meshing always on, no application cooperation).
    let cfg_mesh = RedisConfig::paper().scaled(scale);
    let mut a2 = AllocatorKind::MeshFull.build(arena, seed);
    let r_mesh = run_redis(&mut a2, &cfg_mesh);

    // Mesh (no meshing): what the heap looks like with no compaction.
    let mut a3 = AllocatorKind::MeshNoMesh.build(arena, seed);
    let r_none = run_redis(&mut a3, &cfg_mesh);

    println!("\nheap-size timelines (each glyph = one sample window):");
    for (r, name) in [
        (&r_none, "Mesh (no meshing)      "),
        (&r_defrag, "jemalloc + activedefrag"),
        (&r_mesh, "Mesh                   "),
    ] {
        println!("  {name}  {}", series(r));
    }

    banner("comparison (paper: Mesh −39% vs no compaction; defrag similar size but 5.5× slower)");
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "configuration", "final heap", "vs none", "insert time", "compaction", "longest pause"
    );
    for r in [&r_none, &r_defrag, &r_mesh] {
        println!(
            "{:<26} {:>12} {:>11.1}% {:>10.2?} {:>14.2?} {:>14.2?}",
            r.label,
            mib(r.final_heap_bytes),
            percent_change(r_none.final_heap_bytes as f64, r.final_heap_bytes as f64),
            r.phase1_time + r.phase2_time,
            r.compaction_time,
            r.longest_pause,
        );
    }

    let mesh_saving = 1.0 - r_mesh.final_heap_bytes as f64 / r_none.final_heap_bytes as f64;
    let defrag_saving = 1.0 - r_defrag.final_heap_bytes as f64 / r_none.final_heap_bytes as f64;
    let speedup = r_defrag.compaction_time.as_secs_f64()
        / r_mesh.compaction_time.as_secs_f64().max(1e-9);
    println!("\nsummary:");
    println!("  Mesh heap saving vs no compaction:    {} (paper: -39%)", pct(-mesh_saving));
    println!("  activedefrag saving vs no compaction: {} (paper: ~-39%)", pct(-defrag_saving));
    println!("  defrag-time / meshing-time:           {speedup:.1}× (paper: 5.5×)");
    println!(
        "  meshing stats: {} passes, {} pairs, {} copied",
        a2.mesh_handle().unwrap().stats().mesh_passes,
        a2.mesh_handle().unwrap().stats().spans_meshed,
        mib(a2.mesh_handle().unwrap().stats().mesh_bytes_copied as usize),
    );

    assert!(
        mesh_saving > 0.15,
        "Mesh should reduce the Redis heap substantially (got {})",
        pct(-mesh_saving)
    );
}
