//! **§6.2.3** — the SPECint 2006 table.
//!
//! Paper result: across SPECint 2006, Mesh changes memory consumption by
//! a geomean of −2.4% and runtime by +0.7% versus glibc; most members
//! have small footprints that barely exercise the allocator. The
//! allocation-intensive outlier, 400.perlbench, sees its peak RSS drop
//! 15% (664 MB → 564 MB) for +3.9% runtime.
//!
//! Profiles are synthetic models of each member's allocation behaviour
//! (see `mesh_workloads::spec`); footprints are ~10× scaled down.

use mesh_bench::banner;
use mesh_workloads::mstat::percent_change;
use mesh_workloads::spec::{run_spec_suite, suite_geomeans};

fn main() {
    banner("§6.2.3 — SPECint-2006-style suite: Mesh vs non-compacting baseline");
    let rows = run_spec_suite(1 << 30, 1234);

    println!(
        "{:<18} {:>14} {:>14} {:>10} {:>10}",
        "benchmark", "baseline peak", "Mesh peak", "mem Δ", "time ratio"
    );
    for r in &rows {
        println!(
            "{:<18} {:>10.1} MiB {:>10.1} MiB {:>9.1}% {:>9.2}×",
            r.name,
            r.baseline_peak as f64 / (1024.0 * 1024.0),
            r.mesh_peak as f64 / (1024.0 * 1024.0),
            percent_change(r.baseline_peak as f64, r.mesh_peak as f64),
            r.time_ratio(),
        );
    }

    let (gm_mem, gm_time) = suite_geomeans(&rows);
    println!("\nsummary:");
    println!(
        "  geomean memory ratio: {:.3} ⇒ {:+.1}% (paper: −2.4%)",
        gm_mem,
        (gm_mem - 1.0) * 100.0
    );
    println!(
        "  geomean time ratio:   {:.3} ⇒ {:+.1}% (paper: +0.7%)",
        gm_time,
        (gm_time - 1.0) * 100.0
    );
    let perl = rows.iter().find(|r| r.name == "400.perlbench").unwrap();
    println!(
        "  400.perlbench peak:   {:+.1}% (paper: −15% at +3.9% time)",
        percent_change(perl.baseline_peak as f64, perl.mesh_peak as f64)
    );

    assert!(
        gm_mem <= 1.02,
        "Mesh should not inflate suite memory (geomean ratio {gm_mem:.3})"
    );
}
