//! **malloc_throughput** (E18/E19) — the fast-path throughput suite.
//!
//! The paper's §4.3 claim is that meshing costs nothing on the hot path:
//! malloc/free are lock-free and O(1). This harness is the proof burden
//! for that claim in this repo — four measurements that bracket the fast
//! path from every side:
//!
//! * `single_thread_churn` — pure fast-path malloc/free of one size with
//!   a bounded live window: every op is a shuffle-vector pop/push plus
//!   a page-map read; no locks, no shared atomics. The headline number.
//! * `scaling` — the same churn on 1→N threads in distinct size classes.
//!   With per-class shard locks and batched statistics the curve should
//!   track thread count (on multi-core hosts) instead of flattening on
//!   a shared cacheline.
//! * `remote_ping_pong` — producer/consumer pairs where every free is
//!   non-local: the lock-free queue-push path, the fast path's worst case.
//! * `mixed_remote` — the transfer-cache scaling scenario: a ring of
//!   threads churning mixed size classes where ~¼ of frees are handed to
//!   the ring neighbor (batched remote-free path) — measured at 1→32
//!   threads (`MESH_BENCH_MAX_THREADS` caps the curve). Thread counts are
//!   **clamped to available cores**: points beyond the core count are not
//!   throughput measurements, so only one such point runs and it is
//!   flagged `"oversubscribed": true` in the JSON rather than being
//!   passed off as a scaling result.
//! * `server_loop` — waves of short-lived thread heaps with cross-wave
//!   frees: the teardown path (detach-spill into the transfer cache,
//!   sender-buffer flush) under churn.
//! * `class_sweep` — per-size-class single-thread churn, ns/op, catching
//!   class-local regressions (e.g. a slow span geometry) that the single
//!   headline number would average away.
//! * `prof_off` / `prof_on` — the telemetry subsystem's cost bracket:
//!   `prof_off` re-runs the headline churn with the profiling knobs
//!   present but the master switch off (the shipping default) and is
//!   **enforced to stay within 2% of the checked-in baseline floor**;
//!   `prof_on` measures the enabled-mode tax (informational).
//! * `trace_off` / `trace_on` — the same bracket for the slow-path
//!   tracer: `trace_off` churns with the latency histograms always-on
//!   (as they are everywhere) and the trace rings compiled in but off —
//!   one predicted branch per slow-path op — and is **enforced like
//!   `prof_off`**; `trace_on` measures the ring-recording tax
//!   (informational).
//! * `harden_off` / `harden_full` / per-feature — the hardened-mode cost
//!   bracket: `harden_off` churns with the `MESH_HARDEN` machinery
//!   compiled in but the policy off (the shipping default — one
//!   predictable branch per free) and is **enforced like `prof_off`**;
//!   `harden_full` measures every detector armed (count policy), and
//!   `harden_poison` / `harden_quarantine` isolate the two small-object
//!   detectors. The guard-page tax is measured separately on a
//!   large-object churn (`harden_large_base` vs `harden_guard`), since
//!   guards only exist on the large path. All enabled-mode numbers are
//!   informational — hardening is opt-in and priced accordingly.
//! * `ctl_idle` — the mesh-ctl cost bracket: the control socket bound
//!   and served by the background thread but with no client connected —
//!   exactly what a deployment that *could* be inspected pays all the
//!   time. The socket lives entirely off-thread, so this is **enforced
//!   like `prof_off`**: within 2% of the baseline floor.
//!
//! Output: a human table, one `BENCH_MALLOC.json` trajectory line on
//! stdout, and the same JSON written to `BENCH_MALLOC.json` in the
//! working directory (CI uploads it as an artifact). Unless
//! `MESH_BENCH_NO_ENFORCE=1`, the run **fails** when single-thread
//! throughput regresses more than 2× below the checked-in baseline floor
//! (`crates/bench/baselines/malloc_throughput.json`), or when the
//! mixed-remote per-core scaling efficiency falls more than 2× below the
//! checked-in `scaling_efficiency_floor` (computed over the
//! non-oversubscribed points only — oversubscribed points measure the
//! scheduler, not the allocator).

use mesh_bench::banner;
use mesh_core::{HardenPolicy, Mesh, MeshConfig, SizeClass};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const OPS_PER_THREAD: usize = 400_000;
/// Live-window size of the churn loops (objects held before freeing).
const WINDOW: usize = 64;
/// Distinct size-class request sizes, one per worker thread.
const CLASS_SIZES: [usize; 8] = [16, 48, 96, 160, 256, 448, 768, 2048];

const BASELINE: &str = include_str!("../baselines/malloc_throughput.json");

fn heap() -> Mesh {
    Mesh::new(
        MeshConfig::default()
            .arena_bytes(1 << 30)
            .seed(42)
            .mesh_period(Duration::from_secs(3600)),
    )
    .expect("bench heap")
}

/// The disabled-profiling configuration: every `MESH_PROF*` knob set but
/// the master switch off — exactly what a production deployment that
/// *could* be profiled pays all the time. Must be indistinguishable from
/// the default heap.
fn heap_prof(enabled: bool) -> Mesh {
    Mesh::new(
        MeshConfig::default()
            .arena_bytes(1 << 30)
            .seed(42)
            .mesh_period(Duration::from_secs(3600))
            .profiling(enabled)
            .prof_sample_bytes(512 << 10),
    )
    .expect("bench heap")
}

/// The tracing cost bracket: latency histograms are unconditionally on
/// (they are everywhere), so `enabled == false` measures exactly what
/// every deployment pays — histogram recording on slow paths plus one
/// trace-off branch — while `enabled == true` adds the ring writes.
fn heap_trace(enabled: bool) -> Mesh {
    Mesh::new(
        MeshConfig::default()
            .arena_bytes(1 << 30)
            .seed(42)
            .mesh_period(Duration::from_secs(3600))
            .tracing(enabled)
            .trace_buf_events(64 << 10),
    )
    .expect("bench heap")
}

/// The enabled-but-idle control-socket configuration: the listener is
/// bound and polled by the background thread (50 ms parks) while the
/// mutator churns — the standing cost of being inspectable. The fast
/// path has no ctl hook at all, so this must be indistinguishable from
/// the default heap.
fn heap_ctl() -> Mesh {
    let path = std::env::temp_dir().join(format!("mesh-bench-ctl-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    Mesh::new(
        MeshConfig::default()
            .arena_bytes(1 << 30)
            .seed(42)
            .mesh_period(Duration::from_secs(3600))
            .ctl(Some(path)),
    )
    .expect("bench heap")
}

/// One point of the hardened-mode cost bracket: the policy plus an
/// explicit per-feature mask. `harden_off` passes `Off` (the shipping
/// default — the detectors compile to one predictable branch); the
/// enabled points use `Count` so every detection is a counter bump, not
/// an abort, and the measured tax is pure detection overhead.
fn heap_harden(
    policy: HardenPolicy,
    poison: bool,
    quarantine: bool,
    guard: bool,
    canary: bool,
) -> Mesh {
    Mesh::new(
        MeshConfig::default()
            .arena_bytes(1 << 30)
            .seed(42)
            .mesh_period(Duration::from_secs(3600))
            .harden_policy(policy)
            .harden_poison(poison)
            .harden_quarantine(quarantine)
            .harden_guard(guard)
            .harden_canary(canary),
    )
    .expect("bench heap")
}

/// Malloc/free churn on `threads` workers (size per thread from
/// `size_of`), returning aggregate ops/sec.
fn churn(mesh: &Mesh, threads: usize, ops: usize, size_of: impl Fn(usize) -> usize + Sync) -> f64 {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let total_ops = threads * ops;
    std::thread::scope(|s| {
        for t in 0..threads {
            let mesh = mesh.clone();
            let barrier = Arc::clone(&barrier);
            let size = size_of(t);
            s.spawn(move || {
                let mut th = mesh.thread_heap();
                let mut live: Vec<usize> = Vec::with_capacity(WINDOW);
                barrier.wait();
                for i in 0..ops {
                    if live.len() < WINDOW {
                        let p = th.malloc(size);
                        assert!(!p.is_null());
                        live.push(p as usize);
                    } else {
                        let victim = live.swap_remove(i % live.len());
                        unsafe { th.free(victim as *mut u8) };
                    }
                }
                for p in live {
                    unsafe { th.free(p as *mut u8) };
                }
                barrier.wait();
            });
        }
        barrier.wait();
        let t0 = Instant::now();
        barrier.wait();
        total_ops as f64 / t0.elapsed().as_secs_f64()
    })
}

/// Producer/consumer pairs: every consumer free is remote. Returns
/// aggregate freed-objects/sec.
fn remote_ping_pong(mesh: &Mesh, pairs: usize) -> f64 {
    let per_pair = OPS_PER_THREAD / 4;
    let total = pairs * per_pair;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..pairs {
            let (tx, rx) = std::sync::mpsc::sync_channel::<usize>(1024);
            let produce = mesh.clone();
            let consume = mesh.clone();
            let size = CLASS_SIZES[t % CLASS_SIZES.len()];
            s.spawn(move || {
                let mut th = produce.thread_heap();
                for _ in 0..per_pair {
                    let p = th.malloc(size);
                    assert!(!p.is_null());
                    if tx.send(p as usize).is_err() {
                        break;
                    }
                }
            });
            s.spawn(move || {
                let mut th = consume.thread_heap();
                while let Ok(addr) = rx.recv() {
                    unsafe { th.free(addr as *mut u8) };
                }
            });
        }
    });
    total as f64 / t0.elapsed().as_secs_f64()
}

/// The mixed remote-free scenario: `threads` workers in a ring, each
/// churning mixed size classes with a bounded live window; every fourth
/// retired object is handed to the ring neighbor instead of freed locally,
/// so ~¼ of frees take the batched remote path while the rest stay on the
/// shuffle-vector fast path. Returns aggregate ops/sec (mallocs + frees).
type RingEndpoints = (
    Option<std::sync::mpsc::SyncSender<usize>>,
    Option<std::sync::mpsc::Receiver<usize>>,
);

fn mixed_remote(mesh: &Mesh, threads: usize, ops: usize) -> f64 {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut channels: Vec<RingEndpoints> = (0..threads)
        .map(|_| {
            let (tx, rx) = std::sync::mpsc::sync_channel::<usize>(4096);
            (Some(tx), Some(rx))
        })
        .collect();
    let total_ops = threads * ops * 2; // each object is one malloc + one free
    std::thread::scope(|s| {
        for t in 0..threads {
            let mesh = mesh.clone();
            let barrier = Arc::clone(&barrier);
            // Thread t receives on its own channel and sends to t+1's.
            let rx = channels[t].1.take().expect("rx taken once");
            let tx = channels[(t + 1) % threads].0.take().expect("tx taken once");
            s.spawn(move || {
                let mut th = mesh.thread_heap();
                let mut live: Vec<usize> = Vec::with_capacity(WINDOW);
                barrier.wait();
                for i in 0..ops {
                    // Drain a few neighbor handoffs: these frees are
                    // always remote (the neighbor's spans), exercising the
                    // sender-side batching.
                    while let Ok(addr) = rx.try_recv() {
                        unsafe { th.free(addr as *mut u8) };
                    }
                    let size = CLASS_SIZES[(i + t) % CLASS_SIZES.len()];
                    let p = th.malloc(size);
                    assert!(!p.is_null());
                    live.push(p as usize);
                    if live.len() >= WINDOW {
                        let victim = live.swap_remove(i % live.len());
                        if i % 4 == 0 {
                            // Hand off; if the neighbor's mailbox is full,
                            // free locally rather than stalling the loop.
                            if let Err(e) = tx.try_send(victim) {
                                let addr = match e {
                                    std::sync::mpsc::TrySendError::Full(a) => a,
                                    std::sync::mpsc::TrySendError::Disconnected(a) => a,
                                };
                                unsafe { th.free(addr as *mut u8) };
                            }
                        } else {
                            unsafe { th.free(victim as *mut u8) };
                        }
                    }
                }
                drop(tx); // unblocks the neighbor's final drain
                for addr in rx.iter() {
                    unsafe { th.free(addr as *mut u8) };
                }
                for p in live {
                    unsafe { th.free(p as *mut u8) };
                }
                barrier.wait();
            });
        }
        barrier.wait();
        let t0 = Instant::now();
        barrier.wait();
        total_ops as f64 / t0.elapsed().as_secs_f64()
    })
}

/// The server-loop scenario: `waves` successive generations of short-lived
/// worker threads. Each worker churns briefly, then exits with objects
/// still live; the *next* wave frees them (all remote). Thread teardown —
/// detach-spill into the transfer cache plus the sender-buffer flush —
/// runs once per worker instead of being amortized away. Returns aggregate
/// ops/sec.
fn server_loop(mesh: &Mesh, waves: usize, workers: usize, ops: usize) -> f64 {
    let total_ops = waves * workers * ops * 2;
    let mut inherited: Vec<usize> = Vec::new();
    let t0 = Instant::now();
    for _ in 0..waves {
        let (tx, rx) = std::sync::mpsc::channel::<usize>();
        std::thread::scope(|s| {
            for w in 0..workers {
                let mesh = mesh.clone();
                let tx = tx.clone();
                let legacy: Vec<usize> = inherited
                    .iter()
                    .skip(w)
                    .step_by(workers)
                    .copied()
                    .collect();
                s.spawn(move || {
                    let mut th = mesh.thread_heap();
                    // Free the previous wave's survivors: every one is a
                    // dead thread's object, so every free is remote.
                    for addr in legacy {
                        unsafe { th.free(addr as *mut u8) };
                    }
                    let mut live: Vec<usize> = Vec::with_capacity(WINDOW);
                    for i in 0..ops {
                        let size = CLASS_SIZES[(i + w) % CLASS_SIZES.len()];
                        let p = th.malloc(size);
                        assert!(!p.is_null());
                        live.push(p as usize);
                        if live.len() >= WINDOW {
                            unsafe { th.free(live.swap_remove(i % live.len()) as *mut u8) };
                        }
                    }
                    // Exit with the window still live: the next wave
                    // inherits it. The thread heap drops here — teardown.
                    for p in live {
                        tx.send(p).unwrap();
                    }
                });
            }
        });
        drop(tx);
        inherited = rx.iter().collect();
    }
    for addr in inherited {
        unsafe { mesh.free(addr as *mut u8) };
    }
    total_ops as f64 / t0.elapsed().as_secs_f64()
}

/// Extracts a named number from a flat JSON object (no serde in the
/// offline build; the baseline file is one flat object we control).
fn json_number(source: &str, key: &str) -> Option<f64> {
    let at = source.find(&format!("\"{key}\""))?;
    let rest = source[at..].split_once(':')?.1;
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    banner("malloc throughput: O(1) fast-path churn, scaling, remote frees");

    // --- headline: single-thread fast-path churn ------------------------
    let m = heap();
    let single = churn(&m, 1, OPS_PER_THREAD * 4, |_| 256);
    drop(m);

    // --- telemetry cost bracket -----------------------------------------
    let m = heap_prof(false);
    let prof_off = churn(&m, 1, OPS_PER_THREAD * 4, |_| 256);
    drop(m);
    let m = heap_prof(true);
    let prof_on = churn(&m, 1, OPS_PER_THREAD * 4, |_| 256);
    let prof_on_stats = m.profile_stats().expect("profiling heap");
    drop(m);
    let m = heap_trace(false);
    let trace_off = churn(&m, 1, OPS_PER_THREAD * 4, |_| 256);
    drop(m);
    let m = heap_trace(true);
    let trace_on = churn(&m, 1, OPS_PER_THREAD * 4, |_| 256);
    drop(m);

    // --- mesh-ctl cost bracket -------------------------------------------
    let m = heap_ctl();
    assert!(m.ctl_active(), "bench ctl socket failed to bind");
    let ctl_idle = churn(&m, 1, OPS_PER_THREAD * 4, |_| 256);
    drop(m);

    // --- hardened-mode cost bracket --------------------------------------
    let m = heap_harden(HardenPolicy::Off, true, true, true, true);
    let harden_off = churn(&m, 1, OPS_PER_THREAD * 4, |_| 256);
    drop(m);
    let m = heap_harden(HardenPolicy::Count, true, true, true, true);
    let harden_full = churn(&m, 1, OPS_PER_THREAD * 4, |_| 256);
    drop(m);
    let m = heap_harden(HardenPolicy::Count, true, false, false, false);
    let harden_poison = churn(&m, 1, OPS_PER_THREAD * 4, |_| 256);
    drop(m);
    let m = heap_harden(HardenPolicy::Count, false, true, false, false);
    let harden_quarantine = churn(&m, 1, OPS_PER_THREAD * 4, |_| 256);
    drop(m);
    // Guard pages only exist on the large path, so their tax is priced on
    // a large-object churn against its own unhardened baseline. Count
    // policy: the tail page is poison-filled at allocation and scanned at
    // free (the degraded form; abort mode swaps the scan for mprotect).
    let large_ops = OPS_PER_THREAD / 8;
    let m = heap();
    let harden_large_base = churn(&m, 1, large_ops, |_| 20_000);
    drop(m);
    let m = heap_harden(HardenPolicy::Count, false, false, true, false);
    let harden_guard = churn(&m, 1, large_ops, |_| 20_000);
    drop(m);

    // --- scaling curve 1 → cores (distinct classes per thread) ----------
    let mut scale_threads: Vec<usize> = vec![1, 2, 4, 8]
        .into_iter()
        .filter(|&t| t <= cores)
        .collect();
    if *scale_threads.last().unwrap_or(&0) != cores && cores <= 16 {
        scale_threads.push(cores);
    }
    let scaling: Vec<(usize, f64)> = scale_threads
        .iter()
        .map(|&t| {
            let m = heap();
            let ops = churn(&m, t, OPS_PER_THREAD, |i| CLASS_SIZES[i % CLASS_SIZES.len()]);
            (t, ops)
        })
        .collect();

    // --- remote-free ping-pong ------------------------------------------
    let m = heap();
    let pairs = (cores / 2).max(1);
    let remote = remote_ping_pong(&m, pairs);
    let remote_stats = m.stats();
    drop(m);

    // --- mixed_remote scaling curve (transfer-cache scenario) -----------
    // Points up to the core count are genuine scaling measurements; one
    // final point above it (capped by MESH_BENCH_MAX_THREADS, default 32)
    // shows oversubscribed behaviour and is flagged as such.
    let max_threads: usize = std::env::var("MESH_BENCH_MAX_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let mut mixed_points: Vec<(usize, bool)> = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|&t| t <= max_threads && t <= cores)
        .map(|t| (t, false))
        .collect();
    if cores < max_threads {
        mixed_points.push((max_threads, true));
    }
    let mixed: Vec<(usize, f64, bool)> = mixed_points
        .iter()
        .map(|&(t, over)| {
            let m = heap();
            // Fixed per-thread work: an ideal allocator yields a linear
            // aggregate curve over the un-flagged points.
            let ops = mixed_remote(&m, t, OPS_PER_THREAD / 2);
            let s = m.stats();
            assert_eq!(s.mallocs, s.frees, "mixed_remote leaked objects");
            (t, ops, over)
        })
        .collect();
    // Per-core scaling efficiency over the genuine points: throughput per
    // thread at the widest un-flagged point relative to the 1-thread run.
    let mixed_base = mixed
        .iter()
        .find(|&&(t, _, over)| t == 1 && !over)
        .map_or(1.0, |&(_, ops, _)| ops);
    let efficiency = mixed
        .iter()
        .rfind(|&&(_, _, over)| !over)
        .map_or(1.0, |&(t, ops, _)| (ops / t as f64) / mixed_base);

    // --- server loop (short-lived thread heaps, teardown churn) ---------
    let m = heap();
    let workers = cores.clamp(2, 4);
    let server = server_loop(&m, 16, workers, OPS_PER_THREAD / 16);
    let server_stats = m.stats();
    assert_eq!(
        server_stats.mallocs, server_stats.frees,
        "server_loop stranded objects in dead threads"
    );
    drop(m);

    // --- per-class sweep -------------------------------------------------
    let sweep: Vec<(usize, f64)> = SizeClass::all()
        .map(|class| {
            let m = heap();
            let ops = churn(&m, 1, OPS_PER_THREAD / 4, |_| class.object_size());
            (class.object_size(), 1e9 / ops)
        })
        .collect();

    println!();
    println!("{:<40} {:>16}", "configuration", "ops/sec");
    println!("{:<40} {:>16.0}", "single_thread_churn (256 B)", single);
    println!("{:<40} {:>16.0}", "single_thread_churn prof_off", prof_off);
    println!(
        "{:<40} {:>16.0}   ({} samples)",
        "single_thread_churn prof_on", prof_on, prof_on_stats.samples
    );
    println!("{:<40} {:>16.0}", "single_thread_churn trace_off", trace_off);
    println!("{:<40} {:>16.0}", "single_thread_churn trace_on", trace_on);
    println!("{:<40} {:>16.0}", "single_thread_churn ctl_idle", ctl_idle);
    println!("{:<40} {:>16.0}", "single_thread_churn harden_off", harden_off);
    println!(
        "{:<40} {:>16.0}   ({:.2}x tax)",
        "single_thread_churn harden_full",
        harden_full,
        harden_off / harden_full.max(1.0)
    );
    println!("{:<40} {:>16.0}", "single_thread_churn harden_poison", harden_poison);
    println!(
        "{:<40} {:>16.0}",
        "single_thread_churn harden_quarantine", harden_quarantine
    );
    println!("{:<40} {:>16.0}", "large_churn (20000 B) baseline", harden_large_base);
    println!(
        "{:<40} {:>16.0}   ({:.2}x tax)",
        "large_churn (20000 B) harden_guard",
        harden_guard,
        harden_large_base / harden_guard.max(1.0)
    );
    for &(t, ops) in &scaling {
        println!("{:<40} {:>16.0}", format!("scaling/{t}t distinct classes"), ops);
    }
    println!(
        "{:<40} {:>16.0}   (queued/drained {}/{})",
        format!("remote_ping_pong/{pairs}p"),
        remote,
        remote_stats.remote_free_queued,
        remote_stats.remote_free_drained
    );
    for &(t, ops, over) in &mixed {
        println!(
            "{:<40} {:>16.0}{}",
            format!("mixed_remote/{t}t"),
            ops,
            if over { "   (oversubscribed)" } else { "" }
        );
    }
    println!(
        "{:<40} {:>16}   (widest honest point vs 1 thread)",
        "mixed_remote per-core efficiency",
        format!("{efficiency:.3}")
    );
    println!(
        "{:<40} {:>16.0}   (hits/misses/spills {}/{}/{})",
        format!("server_loop/16w x {workers}"),
        server,
        server_stats.transfer_hits,
        server_stats.transfer_misses,
        server_stats.transfer_spills
    );
    println!("\n{:<12} {:>12}", "class", "ns/op");
    for &(size, ns) in &sweep {
        println!("{:<12} {:>12.1}", format!("{size} B"), ns);
    }

    // --- trajectory JSON --------------------------------------------------
    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|(t, ops)| format!("{{\"threads\":{t},\"ops_sec\":{ops:.0}}}"))
        .collect();
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|(size, ns)| format!("{{\"size\":{size},\"ns_per_op\":{ns:.1}}}"))
        .collect();
    let mixed_json: Vec<String> = mixed
        .iter()
        .map(|(t, ops, over)| {
            format!("{{\"threads\":{t},\"ops_sec\":{ops:.0},\"oversubscribed\":{over}}}")
        })
        .collect();
    let json = format!(
        "{{\"cores\":{cores},\"ops_per_thread\":{OPS_PER_THREAD},\
         \"single_thread_ops_sec\":{single:.0},\
         \"prof_off_ops_sec\":{prof_off:.0},\"prof_on_ops_sec\":{prof_on:.0},\
         \"trace_off_ops_sec\":{trace_off:.0},\"trace_on_ops_sec\":{trace_on:.0},\
         \"ctl_idle_ops_sec\":{ctl_idle:.0},\
         \"harden_off_ops_sec\":{harden_off:.0},\"harden_full_ops_sec\":{harden_full:.0},\
         \"harden_poison_ops_sec\":{harden_poison:.0},\
         \"harden_quarantine_ops_sec\":{harden_quarantine:.0},\
         \"harden_large_base_ops_sec\":{harden_large_base:.0},\
         \"harden_guard_ops_sec\":{harden_guard:.0},\
         \"scaling\":[{}],\
         \"remote_ping_pong_pairs\":{pairs},\"remote_ping_pong_ops_sec\":{remote:.0},\
         \"mixed_remote\":[{}],\"mixed_remote_efficiency\":{efficiency:.3},\
         \"server_loop_ops_sec\":{server:.0},\
         \"class_sweep\":[{}]}}",
        scaling_json.join(","),
        mixed_json.join(","),
        sweep_json.join(",")
    );
    println!("\nBENCH_MALLOC.json {json}");
    if let Err(e) = std::fs::write("BENCH_MALLOC.json", format!("{json}\n")) {
        eprintln!("warning: could not write BENCH_MALLOC.json: {e}");
    }

    // --- baseline floor ---------------------------------------------------
    let floor = json_number(BASELINE, "single_thread_ops_sec").expect("baseline parses");
    if std::env::var_os("MESH_BENCH_NO_ENFORCE").is_none() {
        // >2× below the checked-in floor is a regression failure; the
        // floor itself is set conservatively below typical CI hardware.
        assert!(
            single * 2.0 >= floor,
            "single-thread throughput regressed >2x: {single:.0} ops/sec \
             vs baseline floor {floor:.0} (set MESH_BENCH_NO_ENFORCE=1 to bypass)"
        );
        println!(
            "baseline check OK: {single:.0} ops/sec >= {:.0} (floor {floor:.0} / 2)",
            floor / 2.0
        );
        // Disabled-mode telemetry guard: with profiling compiled in but
        // off, churn must stay within 2% of the checked-in baseline
        // floor — the subsystem's acceptance criterion. Hardware slower
        // than the floor still gets a fair test: there the bar is 2%
        // under the *same-run* default-config measurement, which is the
        // actual claim (the disabled-mode hooks cost nothing), so only a
        // machine failing both comparisons is a regression.
        let bar = (floor * 0.98).min(single * 0.98);
        assert!(
            prof_off >= bar,
            "profiling-disabled churn regressed: {prof_off:.0} ops/sec vs \
             bar {bar:.0} (98% of min(baseline floor {floor:.0}, same-run \
             {single:.0})) — the disabled-mode telemetry hooks cost more \
             than they may (set MESH_BENCH_NO_ENFORCE=1 to bypass)"
        );
        println!(
            "prof-off check OK: {prof_off:.0} ops/sec >= {bar:.0} \
             (98% of min(floor, same-run); prof-on measured {prof_on:.0})"
        );
        // Same bar for the tracer: histograms-on/trace-off is the
        // always-on configuration, so it gets the identical 2% budget.
        assert!(
            trace_off >= bar,
            "trace-disabled churn regressed: {trace_off:.0} ops/sec vs \
             bar {bar:.0} (98% of min(baseline floor {floor:.0}, same-run \
             {single:.0})) — the always-on histogram hooks or the trace-off \
             branch cost more than they may (set MESH_BENCH_NO_ENFORCE=1 \
             to bypass)"
        );
        println!(
            "trace-off check OK: {trace_off:.0} ops/sec >= {bar:.0} \
             (98% of min(floor, same-run); trace-on measured {trace_on:.0})"
        );
        // Same bar for the control socket: enabled-but-idle is what any
        // inspectable deployment pays continuously, and the socket is
        // served entirely off-thread — the fast path has no ctl hook.
        assert!(
            ctl_idle >= bar,
            "ctl-idle churn regressed: {ctl_idle:.0} ops/sec vs bar \
             {bar:.0} (98% of min(baseline floor {floor:.0}, same-run \
             {single:.0})) — an enabled-but-idle control socket may not \
             tax the mutator (set MESH_BENCH_NO_ENFORCE=1 to bypass)"
        );
        println!("ctl-idle check OK: {ctl_idle:.0} ops/sec >= {bar:.0} (98% of min(floor, same-run))");
        // Same bar for hardened mode: policy-off is the shipping default,
        // so the disabled branches get the identical 2% budget. The
        // enabled-mode tax is opt-in and deliberately unenforced.
        assert!(
            harden_off >= bar,
            "harden-disabled churn regressed: {harden_off:.0} ops/sec vs \
             bar {bar:.0} (98% of min(baseline floor {floor:.0}, same-run \
             {single:.0})) — the disabled-mode hardening branches cost more \
             than they may (set MESH_BENCH_NO_ENFORCE=1 to bypass)"
        );
        println!(
            "harden-off check OK: {harden_off:.0} ops/sec >= {bar:.0} \
             (98% of min(floor, same-run); harden-full measured \
             {harden_full:.0}, {:.2}x tax)",
            harden_off / harden_full.max(1.0)
        );
        // Scaling-efficiency guard: the mixed-remote per-core efficiency
        // (honest points only) may not fall more than 2× below the
        // checked-in floor. On a 1-core runner the only honest point is
        // the 1-thread run and the check trivially passes — by design:
        // oversubscribed numbers measure the scheduler, not us.
        let eff_floor =
            json_number(BASELINE, "scaling_efficiency_floor").expect("baseline parses");
        assert!(
            efficiency * 2.0 >= eff_floor,
            "mixed_remote scaling efficiency regressed >2x: {efficiency:.3} \
             vs baseline floor {eff_floor:.3} (set MESH_BENCH_NO_ENFORCE=1 to bypass)"
        );
        println!(
            "scaling check OK: efficiency {efficiency:.3} >= {:.3} (floor {eff_floor:.3} / 2)",
            eff_floor / 2.0
        );
    }
}
