//! **Figure 8 + §6.3** — the Ruby string microbenchmark: the empirical
//! value of randomization.
//!
//! Paper result: on a *regular* allocation pattern, full Mesh reduces
//! mean heap size by ~18–19% relative to both the non-compacting
//! baseline and Mesh without randomization; disabling randomization
//! leaves only a ~3% reduction. Runtime overhead: +10.7% (full) and +4%
//! (no-rand) relative to jemalloc.

use mesh_bench::{banner, calibrate_vm_ops, downsample, sparkline};
use mesh_workloads::driver::AllocatorKind;
use mesh_workloads::mstat::percent_change;
use mesh_workloads::ruby::{run_ruby, RubyConfig, RubyReport};
use std::time::Duration;

fn main() {
    banner("Figure 8 / §6.3 — Ruby string microbenchmark");
    let cfg = RubyConfig {
        round_budget: 32 << 20,
        rounds: 9,
        ..RubyConfig::default()
    };
    let arena = 1usize << 30;

    let mut reports: Vec<RubyReport> = Vec::new();
    let mut mesh_times: Vec<Duration> = Vec::new();
    let mut pages_released: Vec<u64> = Vec::new();
    for kind in [
        AllocatorKind::MeshNoMesh,
        AllocatorKind::MeshNoRand,
        AllocatorKind::MeshFull,
    ] {
        let mut alloc = kind.build(arena, 7);
        reports.push(run_ruby(&mut alloc, &cfg));
        let stats = alloc.mesh_handle().expect("mesh-backed kind").stats();
        mesh_times.push(Duration::from_nanos(stats.mesh_nanos));
        pages_released.push(stats.mesh_pages_released + stats.pages_purged);
    }
    let (base, norand, full) = (&reports[0], &reports[1], &reports[2]);

    println!("\nheap-size timelines:");
    for r in &reports {
        let pts: Vec<usize> = r.timeline.samples().iter().map(|s| s.heap_bytes).collect();
        println!("  {:<20} {}", r.label, sparkline(&downsample(&pts, 64)));
    }

    banner("mean heap size and runtime (paper: Mesh −18% heap, +10.7% time; no-rand −3%, +4%)");
    println!(
        "{:<20} {:>14} {:>12} {:>12} {:>12}",
        "configuration", "mean heap", "vs baseline", "runtime", "vs baseline"
    );
    for r in &reports {
        println!(
            "{:<20} {:>10.1} MiB {:>11.1}% {:>11.2?} {:>+11.1}%",
            r.label,
            r.mean_heap_bytes / (1024.0 * 1024.0),
            percent_change(base.mean_heap_bytes, r.mean_heap_bytes),
            r.runtime,
            percent_change(base.runtime.as_secs_f64(), r.runtime.as_secs_f64()),
        );
    }

    let full_red = -percent_change(base.mean_heap_bytes, full.mean_heap_bytes);
    let norand_red = -percent_change(base.mean_heap_bytes, norand.mean_heap_bytes);
    println!("\nsummary:");
    println!("  randomized meshing reduction: {full_red:.1}% (paper: ~18–19%)");
    println!("  no-rand meshing reduction:    {norand_red:.1}% (paper: ~3%)");
    println!("  randomization gap:            {:.1} points", full_red - norand_red);

    // Runtime overhead at native VM-op prices (see fig6_firefox for the
    // rationale: this sandbox charges ~40× for the mprotect/mmap/madvise
    // sequence each meshed pair needs, and ~100× for the page refault
    // every released page pays on its next touch — which in this
    // workload, whose strings are written end to end, lands on the
    // workload's own clock).
    let costs = calibrate_vm_ops();
    let full_mesh_time = mesh_times[2];
    let refault_tax = costs.refault_excess(pages_released[2]);
    let adj_runtime = (full.runtime - full_mesh_time + costs.native_equivalent(full_mesh_time))
        .saturating_sub(refault_tax);
    println!(
        "  Mesh meshing time: {:.2?} of {:.2?} ({:.0}× VM-op inflation here)",
        full_mesh_time,
        full.runtime,
        costs.inflation(),
    );
    println!(
        "  refault tax: {} released pages × {:.1?} excess = {:.2?} on the workload clock",
        pages_released[2],
        costs.refault.saturating_sub(costs.native_refault),
        refault_tax,
    );
    println!(
        "  native-equivalent runtime {:.2?} ⇒ {:+.1}% vs baseline (paper: +10.7%)",
        adj_runtime,
        percent_change(base.runtime.as_secs_f64(), adj_runtime.as_secs_f64()),
    );

    assert!(
        full_red > norand_red + 5.0,
        "randomization must account for most of the savings \
         (full {full_red:.1}% vs no-rand {norand_red:.1}%)"
    );
}
