//! The bootstrap bump allocator: a static arena serving allocations that
//! arrive before anything else can.
//!
//! Two kinds of callers land here. First, the dlsym/ld.so era: resolving
//! the *real* allocator with `dlsym(RTLD_NEXT, …)` makes glibc call
//! `calloc` — which is interposed right back into this library — before
//! any `malloc` implementation exists to serve it. Second, any thread that
//! observes the resolution in progress (the `RESOLVING` window in
//! [`crate::real`]). Both are tiny and bounded, so a 1 MiB zero-initialized
//! BSS arena with a lock-free bump pointer is ample; the reference
//! implementation's static bootstrap buffer plays the same role.
//!
//! Bootstrap memory is handed out once and never reused: `free` on a
//! bootstrap pointer is a no-op (the interposed `free` recognizes the
//! range via [`contains`]), and `realloc` copies out using the size header
//! stashed just below each object.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Arena size. Typical dlsym-era usage is a few hundred bytes; 1 MiB
/// leaves three orders of magnitude of headroom without bloating the
/// binary (BSS is not stored in the file).
const ARENA_BYTES: usize = 1 << 20;

/// Bytes reserved below each object for its size header (16 keeps objects
/// 16-byte aligned by construction).
const HEADER: usize = 16;

#[repr(C, align(4096))]
struct Arena(UnsafeCell<[u8; ARENA_BYTES]>);

// SAFETY: the bump pointer's CAS hands out disjoint byte ranges, so no two
// threads ever touch the same bytes through the shared cell.
unsafe impl Sync for Arena {}

static ARENA: Arena = Arena(UnsafeCell::new([0; ARENA_BYTES]));

/// Bytes handed out so far (offset of the next free byte).
static NEXT: AtomicUsize = AtomicUsize::new(0);

#[inline]
fn base() -> usize {
    ARENA.0.get() as usize
}

/// Bump-allocates `size` bytes aligned to `align` (a power of two), or
/// null once the arena is exhausted. The contents are zero: the arena is
/// BSS and every byte is handed out at most once.
pub fn alloc(size: usize, align: usize) -> *mut u8 {
    let align = align.max(HEADER);
    debug_assert!(align.is_power_of_two());
    let base = base();
    let mut cur = NEXT.load(Ordering::Relaxed);
    loop {
        let Some(unaligned) = base.checked_add(cur + HEADER) else {
            return std::ptr::null_mut();
        };
        let obj = (unaligned + (align - 1)) & !(align - 1);
        let Some(end) = obj.checked_add(size) else {
            return std::ptr::null_mut();
        };
        let claimed = end - base;
        if claimed > ARENA_BYTES {
            return std::ptr::null_mut();
        }
        match NEXT.compare_exchange_weak(cur, claimed, Ordering::Release, Ordering::Relaxed) {
            Ok(_) => {
                // SAFETY: [obj − HEADER, end) is uniquely ours by the CAS.
                unsafe { ((obj - HEADER) as *mut usize).write(size) };
                return obj as *mut u8;
            }
            Err(seen) => cur = seen,
        }
    }
}

/// Whether `ptr` points into the bootstrap arena (free-time routing).
#[inline]
pub fn contains(ptr: *const u8) -> bool {
    let a = ptr as usize;
    a >= base() && a < base() + ARENA_BYTES
}

/// Size recorded for a bootstrap allocation (its `malloc_usable_size`).
pub fn usable_size(ptr: *const u8) -> usize {
    debug_assert!(contains(ptr));
    // SAFETY: every bootstrap object was written a header by `alloc`.
    unsafe { ((ptr as usize - HEADER) as *const usize).read() }
}

/// Bytes consumed so far (diagnostic).
#[cfg(test)]
pub fn used_bytes() -> usize {
    NEXT.load(Ordering::Relaxed).min(ARENA_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_alloc_disjoint_aligned_and_sized() {
        let a = alloc(100, 16);
        let b = alloc(1, 64);
        let c = alloc(5000, 4096);
        for (p, align, size) in [(a, 16usize, 100usize), (b, 64, 1), (c, 4096, 5000)] {
            assert!(!p.is_null());
            assert!(contains(p));
            assert_eq!(p as usize % align, 0);
            assert_eq!(usable_size(p), size);
            // Hand-out ranges are writable and zero-initialized.
            unsafe {
                for i in 0..size {
                    assert_eq!(*p.add(i), 0, "bootstrap memory must be fresh");
                }
                std::ptr::write_bytes(p, 0xEE, size);
            }
        }
        // Disjointness: writing 0xEE everywhere didn't cross objects'
        // headers (usable_size still reads back correctly).
        assert_eq!(usable_size(a), 100);
        assert_eq!(usable_size(b), 1);
        assert_eq!(usable_size(c), 5000);
        assert!(!contains(std::ptr::null()));
        assert!(used_bytes() >= 5101);
    }

    #[test]
    fn exhaustion_returns_null() {
        // Don't actually burn the whole arena (other tests share it):
        // an impossible single request must fail cleanly.
        assert!(alloc(ARENA_BYTES + 1, 16).is_null());
        assert!(alloc(usize::MAX - 4096, 16).is_null());
    }
}
