//! Resolution of the *real* (next-in-search-order, i.e. glibc) allocator
//! via `dlsym(RTLD_NEXT, …)`, plus the handful of process-lifecycle
//! symbols the runtime needs (`pthread_key_create`, `pthread_atfork`,
//! `atexit`).
//!
//! Mesh's own metadata (slab vectors, queue nodes, candidate lists) must
//! not live on Mesh — an allocation made while a shard lock is held would
//! recurse into the same lock. The interposed symbols therefore route any
//! request arriving with [`mesh_core::in_internal_alloc`] set to the real
//! allocator resolved here, mirroring `MeshGlobalAlloc`'s use of the
//! system allocator on the Rust side.
//!
//! `dlsym` itself calls `calloc`, which is interposed back into this
//! library: the [`RESOLVING`] flag routes that recursion (and any other
//! thread's internal allocation racing the resolution window) to the
//! [`crate::bootstrap`] bump arena.

use mesh_core::ffi::{c_char, c_int, c_uint, c_void, size_t};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// `<dlfcn.h>`'s pseudo-handle: resolve in the next object after ours.
const RTLD_NEXT: *mut c_void = -1isize as *mut c_void;

/// `fcntl` command: duplicate the fd to the lowest free number ≥ arg,
/// with `O_CLOEXEC` set (Linux generic ABI).
pub const F_DUPFD_CLOEXEC: c_int = 1030;

extern "C" {
    fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
    pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    pub fn pthread_key_create(
        key: *mut c_uint,
        destructor: Option<unsafe extern "C" fn(*mut c_void)>,
    ) -> c_int;
    pub fn pthread_setspecific(key: c_uint, value: *const c_void) -> c_int;
    pub fn pthread_atfork(
        prepare: Option<extern "C" fn()>,
        parent: Option<extern "C" fn()>,
        child: Option<extern "C" fn()>,
    ) -> c_int;
    pub fn atexit(f: extern "C" fn()) -> c_int;
}

type MallocFn = unsafe extern "C" fn(size_t) -> *mut c_void;
type FreeFn = unsafe extern "C" fn(*mut c_void);
type CallocFn = unsafe extern "C" fn(size_t, size_t) -> *mut c_void;
type ReallocFn = unsafe extern "C" fn(*mut c_void, size_t) -> *mut c_void;
type MemalignFn = unsafe extern "C" fn(size_t, size_t) -> *mut c_void;
type UsableFn = unsafe extern "C" fn(*mut c_void) -> size_t;

static MALLOC: AtomicUsize = AtomicUsize::new(0);
static FREE: AtomicUsize = AtomicUsize::new(0);
static CALLOC: AtomicUsize = AtomicUsize::new(0);
static REALLOC: AtomicUsize = AtomicUsize::new(0);
static MEMALIGN: AtomicUsize = AtomicUsize::new(0);
static USABLE: AtomicUsize = AtomicUsize::new(0);
static RESOLVED: AtomicBool = AtomicBool::new(false);
static RESOLVING: AtomicBool = AtomicBool::new(false);

/// Resolves the real allocator once. Returns whether it is usable; while
/// a resolution is in flight (including the dlsym→calloc recursion on the
/// resolving thread itself) this reports `false` and callers fall back to
/// the bootstrap arena.
fn ensure_resolved() -> bool {
    if RESOLVED.load(Ordering::Acquire) {
        return true;
    }
    if RESOLVING.swap(true, Ordering::AcqRel) {
        return RESOLVED.load(Ordering::Acquire);
    }
    unsafe {
        let sym = |name: &'static core::ffi::CStr| dlsym(RTLD_NEXT, name.as_ptr()) as usize;
        MALLOC.store(sym(c"malloc"), Ordering::Relaxed);
        FREE.store(sym(c"free"), Ordering::Relaxed);
        CALLOC.store(sym(c"calloc"), Ordering::Relaxed);
        REALLOC.store(sym(c"realloc"), Ordering::Relaxed);
        MEMALIGN.store(sym(c"memalign"), Ordering::Relaxed);
        USABLE.store(sym(c"malloc_usable_size"), Ordering::Relaxed);
    }
    let ok = [&MALLOC, &FREE, &CALLOC, &REALLOC, &MEMALIGN]
        .iter()
        .all(|s| s.load(Ordering::Relaxed) != 0);
    RESOLVED.store(ok, Ordering::Release);
    ok
}

/// Expands (inside the caller's `unsafe` block) to the resolved function
/// pointer: non-zero slots were filled from dlsym with the matching glibc
/// signature.
macro_rules! resolved_fn {
    ($slot:ident as $ty:ty) => {{
        let raw = $slot.load(Ordering::Acquire);
        debug_assert_ne!(raw, 0);
        std::mem::transmute::<usize, $ty>(raw)
    }};
}

/// Real `malloc`, or a bootstrap bump allocation while unresolved.
pub fn malloc(size: usize) -> *mut u8 {
    if !ensure_resolved() {
        return crate::bootstrap::alloc(size, 16);
    }
    unsafe { resolved_fn!(MALLOC as MallocFn)(size) as *mut u8 }
}

/// Real zeroing `calloc`, or a (fresh, hence zero) bootstrap allocation.
pub fn calloc(count: usize, size: usize) -> *mut u8 {
    if !ensure_resolved() {
        let total = count.saturating_mul(size);
        return crate::bootstrap::alloc(total, 16);
    }
    unsafe { resolved_fn!(CALLOC as CallocFn)(count, size) as *mut u8 }
}

/// Real `memalign` (glibc's, which serves any power-of-two alignment), or
/// an aligned bootstrap allocation.
pub fn memalign(align: usize, size: usize) -> *mut u8 {
    if !ensure_resolved() {
        return crate::bootstrap::alloc(size, align.max(16));
    }
    unsafe { resolved_fn!(MEMALIGN as MemalignFn)(align, size) as *mut u8 }
}

/// Real `free`. Pointers reaching here always postdate a successful
/// resolution (they were produced by the real allocator); if resolution
/// somehow failed, leaking is the only safe option.
pub fn free(ptr: *mut u8) {
    if ptr.is_null() || !ensure_resolved() {
        return;
    }
    unsafe { resolved_fn!(FREE as FreeFn)(ptr as *mut c_void) }
}

/// Real `realloc`.
pub fn realloc(ptr: *mut u8, size: usize) -> *mut u8 {
    if !ensure_resolved() {
        return std::ptr::null_mut();
    }
    unsafe { resolved_fn!(REALLOC as ReallocFn)(ptr as *mut c_void, size) as *mut u8 }
}

/// Real `malloc_usable_size`, or 0 when unavailable.
pub fn usable_size(ptr: *mut u8) -> usize {
    if !ensure_resolved() || USABLE.load(Ordering::Acquire) == 0 {
        return 0;
    }
    unsafe { resolved_fn!(USABLE as UsableFn)(ptr as *mut c_void) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_glibc_allocator_and_roundtrips() {
        assert!(ensure_resolved(), "dlsym(RTLD_NEXT) must find glibc");
        let p = malloc(100);
        assert!(!p.is_null());
        assert!(!crate::bootstrap::contains(p), "resolved path, not bootstrap");
        assert!(usable_size(p) >= 100);
        let p = realloc(p, 300);
        assert!(!p.is_null());
        free(p);
        let z = calloc(10, 10);
        unsafe {
            for i in 0..100 {
                assert_eq!(*z.add(i), 0);
            }
        }
        free(z);
        let a = memalign(256, 100);
        assert_eq!(a as usize % 256, 0);
        free(a);
    }
}
