//! # libmesh.so — the C ABI interposition layer
//!
//! Builds the paper's actual deployment vehicle (§4, §6): a shared object
//! exporting the full glibc `malloc` family over the Mesh allocator, so
//! **unmodified C programs** run on Mesh via the dynamic linker:
//!
//! ```sh
//! cargo build --release -p mesh-abi
//! LD_PRELOAD=$PWD/target/release/libmesh.so ls -l
//! MESH_PRINT_STATS_AT_EXIT=1 LD_PRELOAD=$PWD/target/release/libmesh.so redis-server
//! ```
//!
//! Exported: `malloc`, `free`, `calloc`, `realloc`, `reallocarray`,
//! `aligned_alloc`, `posix_memalign`, `memalign`, `valloc`, `pvalloc`,
//! `malloc_usable_size`, `malloc_trim`, `mallopt`, `malloc_stats`, plus
//! the Mesh-specific diagnostics `mesh_stats_print()`, `mesh_mesh_now()`,
//! `mesh_prof_dump()`, `mesh_trace_dump()`, `mesh_sense_dump()`,
//! `mesh_ctl_active()` and `mesh_ctl_path()`. Tunables arrive via
//! `MESH_*` environment variables (see
//! [`mesh_core::MeshConfig::apply_env`]);
//! `MESH_PRINT_STATS_AT_EXIT=1` dumps a one-line machine-readable
//! summary at process exit, `MESH_PROF=1` turns on the sampled heap
//! profiler (JSON dumps at exit, on `SIGUSR2`, every
//! `MESH_PROF_INTERVAL_MS`, or via `mesh_prof_dump()`), and
//! `MESH_CTL=/path/sock` serves live introspection and control over a
//! Unix socket (drive it with `mesh-top` or `nc -U`).
//!
//! ## The four hard problems (see DESIGN.md "ABI & bootstrap")
//!
//! 1. **Bootstrap**: allocations arrive before a heap can exist (dlsym's
//!    own `calloc` while we resolve glibc's allocator). A static bump
//!    arena ([`bootstrap`]) serves them; `free` recognizes its range
//!    forever after.
//! 2. **Re-entrancy**: Mesh's metadata must not allocate from Mesh while
//!    shard locks are held. Every call into Mesh runs under
//!    [`mesh_core::with_internal_alloc`]; any allocation arriving with
//!    the flag set is routed to the *real* allocator ([`real`]).
//! 3. **Thread lifecycle**: each pthread gets a lock-free §4.3 thread
//!    heap, returned to the global heap by a pthread TSD destructor —
//!    deterministic for C and Rust threads alike ([`runtime`]).
//! 4. **Fork safety**: the arena is `MAP_SHARED` memory files, which fork
//!    does *not* copy-on-write. `pthread_atfork` handlers quiesce every
//!    lock, then the child re-backs each segment with a private copy
//!    while the parent waits on a pipe ([`mesh_core::Mesh::fork_prepare`]).
//!
//! When heap construction fails (unsupported kernel, hostile rlimits),
//! the layer degrades to pass-through: the process runs on glibc with a
//! one-line warning instead of crashing.

use mesh_core::ffi as libc;
use mesh_core::ffi::{c_int, c_void, size_t};
use mesh_core::{in_internal_alloc, with_internal_alloc, PAGE_SIZE};

mod bootstrap;
mod real;
mod runtime;

// ---------------------------------------------------------------------
// Routing core
// ---------------------------------------------------------------------

/// Serves an allocation request: Mesh for application allocations, the
/// real allocator for internal (metadata) ones and for processes whose
/// heap failed to construct, the bootstrap arena before either exists.
fn allocate(size: usize, align: usize, zeroed: bool) -> *mut u8 {
    if in_internal_alloc() {
        return internal_allocate(size, align, zeroed);
    }
    with_internal_alloc(|| match runtime::heap() {
        Some(mesh) => {
            let p = runtime::with_thread_heap(mesh, |th| th.malloc_aligned(size, align));
            if p.is_null() {
                libc::set_errno(libc::ENOMEM);
            } else if zeroed {
                // Reused spans may hold stale bytes under the
                // MADV_DONTNEED release strategy: calloc zeroes always.
                unsafe { std::ptr::write_bytes(p, 0, size) };
            }
            p
        }
        None => internal_allocate(size, align, zeroed),
    })
}

/// The internal/fallback route (real allocator, bootstrap before it).
fn internal_allocate(size: usize, align: usize, zeroed: bool) -> *mut u8 {
    if align <= 16 {
        if zeroed {
            real::calloc(1, size)
        } else {
            real::malloc(size)
        }
    } else {
        let p = real::memalign(align, size);
        if zeroed && !p.is_null() && !bootstrap::contains(p) {
            unsafe { std::ptr::write_bytes(p, 0, size) };
        }
        p
    }
}

/// Frees `ptr`, routing by provenance: bootstrap memory is never reused,
/// Mesh pointers go to the thread heap (or the lock-free global path from
/// internal contexts), anything else belongs to the real allocator.
fn deallocate(ptr: *mut u8) {
    if ptr.is_null() || bootstrap::contains(ptr) {
        return;
    }
    if let Some(mesh) = runtime::built_heap() {
        if mesh.contains(ptr) {
            if in_internal_alloc() {
                // A Mesh pointer freed from inside Mesh itself — cannot
                // happen by construction (metadata lives on the real
                // allocator), but route lock-free for safety: the caller
                // may hold a shard lock.
                unsafe { mesh.free_global(ptr) };
            } else {
                with_internal_alloc(|| {
                    runtime::with_thread_heap(mesh, |th| unsafe { th.free(ptr) })
                });
            }
            return;
        }
    }
    real::free(ptr);
}

/// `malloc_usable_size` routing by provenance.
fn usable(ptr: *mut u8) -> usize {
    if ptr.is_null() {
        return 0;
    }
    if bootstrap::contains(ptr) {
        return bootstrap::usable_size(ptr);
    }
    if let Some(mesh) = runtime::built_heap() {
        if mesh.contains(ptr) {
            return mesh.usable_size(ptr).unwrap_or(0);
        }
    }
    real::usable_size(ptr)
}

/// glibc `realloc` semantics, routing by provenance (a pointer may have
/// been born on any of the three allocators).
fn reallocate(ptr: *mut u8, size: usize) -> *mut u8 {
    if ptr.is_null() {
        return allocate(size, 16, false);
    }
    if size == 0 {
        // glibc realloc(p, 0) frees and returns NULL.
        deallocate(ptr);
        return std::ptr::null_mut();
    }
    if bootstrap::contains(ptr) {
        let old = bootstrap::usable_size(ptr);
        let fresh = allocate(size, 16, false);
        if !fresh.is_null() {
            unsafe { std::ptr::copy_nonoverlapping(ptr, fresh, old.min(size)) };
        }
        return fresh;
    }
    if let Some(mesh) = runtime::built_heap() {
        if mesh.contains(ptr) {
            if with_internal_alloc(|| mesh.realloc_in_place(ptr, size)) {
                return ptr; // same size class / still within the span
            }
            let old = mesh.usable_size(ptr).unwrap_or(0);
            let fresh = allocate(size, 16, false);
            if !fresh.is_null() {
                unsafe { std::ptr::copy_nonoverlapping(ptr, fresh, old.min(size)) };
                deallocate(ptr);
            }
            return fresh; // old block intact on failure, per the contract
        }
    }
    real::realloc(ptr, size)
}

// ---------------------------------------------------------------------
// Exported C symbols — the malloc family
// ---------------------------------------------------------------------

/// Interposed `malloc(3)`. Returns 16-byte-aligned memory; `malloc(0)`
/// returns a unique, freeable pointer (glibc behaviour); failures return
/// null with `errno = ENOMEM`.
#[no_mangle]
pub extern "C" fn malloc(size: size_t) -> *mut c_void {
    allocate(size, 16, false) as *mut c_void
}

/// Interposed `free(3)`.
///
/// # Safety
///
/// `ptr` must be null or a pointer obtained from this allocation family
/// and not freed since (the C `free` contract). Foreign and double frees
/// of Mesh-owned memory are detected and discarded (§4.4.4).
#[no_mangle]
pub unsafe extern "C" fn free(ptr: *mut c_void) {
    deallocate(ptr as *mut u8);
}

/// Interposed `calloc(3)`: zeroed, overflow-checked.
#[no_mangle]
pub extern "C" fn calloc(count: size_t, size: size_t) -> *mut c_void {
    let Some(total) = count.checked_mul(size) else {
        libc::set_errno(libc::ENOMEM);
        return std::ptr::null_mut();
    };
    allocate(total, 16, true) as *mut c_void
}

/// Interposed `realloc(3)` with glibc edge semantics: `realloc(NULL, n)`
/// is `malloc(n)`, `realloc(p, 0)` frees `p` and returns null, and the
/// old block is untouched when growth fails.
///
/// # Safety
///
/// `ptr` must be null or a live pointer from this allocation family;
/// after a non-null return the old pointer must not be used.
#[no_mangle]
pub unsafe extern "C" fn realloc(ptr: *mut c_void, size: size_t) -> *mut c_void {
    reallocate(ptr as *mut u8, size) as *mut c_void
}

/// Interposed `reallocarray(3)`: overflow-checked `realloc(p, n*m)`.
///
/// # Safety
///
/// Same contract as [`realloc`].
#[no_mangle]
pub unsafe extern "C" fn reallocarray(
    ptr: *mut c_void,
    count: size_t,
    size: size_t,
) -> *mut c_void {
    let Some(total) = count.checked_mul(size) else {
        libc::set_errno(libc::ENOMEM);
        return std::ptr::null_mut();
    };
    reallocate(ptr as *mut u8, total) as *mut c_void
}

/// Interposed `aligned_alloc(3)`: `align` must be a power of two (glibc
/// does not enforce C11's `size % align == 0`, and neither do we).
#[no_mangle]
pub extern "C" fn aligned_alloc(align: size_t, size: size_t) -> *mut c_void {
    if !align.is_power_of_two() {
        libc::set_errno(libc::EINVAL);
        return std::ptr::null_mut();
    }
    allocate(size, align.max(16), false) as *mut c_void
}

/// Interposed `posix_memalign(3)`: returns `EINVAL` for a non-power-of-two
/// alignment or one not a multiple of `sizeof(void*)`, `ENOMEM` on
/// exhaustion; `*memptr` is written only on success.
///
/// # Safety
///
/// `memptr` must be a valid pointer to writable `*mut c_void` storage.
#[no_mangle]
pub unsafe extern "C" fn posix_memalign(
    memptr: *mut *mut c_void,
    align: size_t,
    size: size_t,
) -> c_int {
    if memptr.is_null()
        || !align.is_power_of_two()
        || !align.is_multiple_of(std::mem::size_of::<*mut c_void>())
    {
        return libc::EINVAL;
    }
    let p = allocate(size, align.max(16), false);
    if p.is_null() {
        return libc::ENOMEM;
    }
    *memptr = p as *mut c_void;
    0
}

/// Interposed `memalign(3)` (obsolete glibc interface, still widely used).
#[no_mangle]
pub extern "C" fn memalign(align: size_t, size: size_t) -> *mut c_void {
    if !align.is_power_of_two() {
        libc::set_errno(libc::EINVAL);
        return std::ptr::null_mut();
    }
    allocate(size, align.max(16), false) as *mut c_void
}

/// Interposed `valloc(3)`: page-aligned allocation.
#[no_mangle]
pub extern "C" fn valloc(size: size_t) -> *mut c_void {
    allocate(size, PAGE_SIZE, false) as *mut c_void
}

/// Interposed `pvalloc(3)`: page-aligned, size rounded up to whole pages.
#[no_mangle]
pub extern "C" fn pvalloc(size: size_t) -> *mut c_void {
    let Some(rounded) = size.checked_next_multiple_of(PAGE_SIZE) else {
        libc::set_errno(libc::ENOMEM);
        return std::ptr::null_mut();
    };
    allocate(rounded.max(PAGE_SIZE), PAGE_SIZE, false) as *mut c_void
}

/// Interposed `malloc_usable_size(3)`: 0 for null, the slot (or remaining
/// large-span) size for Mesh pointers, delegated for foreign ones.
///
/// # Safety
///
/// `ptr` must be null or a live pointer from this allocation family.
#[no_mangle]
pub unsafe extern "C" fn malloc_usable_size(ptr: *mut c_void) -> size_t {
    usable(ptr as *mut u8)
}

/// Interposed `malloc_trim(3)`: releases dirty pages to the OS and
/// retires empty segments. Returns 1 if a heap exists (memory may have
/// been released), 0 otherwise.
#[no_mangle]
pub extern "C" fn malloc_trim(_pad: size_t) -> c_int {
    match runtime::built_heap() {
        Some(mesh) => {
            mesh.purge_dirty();
            1
        }
        None => 0,
    }
}

/// Interposed `mallopt(3)`: accepted and ignored (Mesh's knobs are the
/// `MESH_*` environment variables). Returns 1 (success) like glibc does
/// for recognized parameters.
#[no_mangle]
pub extern "C" fn mallopt(_param: c_int, _value: c_int) -> c_int {
    1
}

/// Interposed `malloc_stats(3)`: prints the Mesh summary line to stderr.
#[no_mangle]
pub extern "C" fn malloc_stats() {
    runtime::print_stats();
}

// ---------------------------------------------------------------------
// Mesh-specific diagnostics
// ---------------------------------------------------------------------

/// Prints a one-line machine-readable stats summary to stderr (the same
/// line `MESH_PRINT_STATS_AT_EXIT=1` emits at exit). C programs can
/// declare it `__attribute__((weak))` and call it only when running under
/// the preload.
#[no_mangle]
pub extern "C" fn mesh_stats_print() {
    runtime::print_stats();
}

/// Forces a meshing pass (bypassing the §4.5 rate limiter) and returns
/// the number of span pairs meshed by that pass.
#[no_mangle]
pub extern "C" fn mesh_mesh_now() -> u64 {
    if in_internal_alloc() {
        return 0;
    }
    with_internal_alloc(|| match runtime::heap() {
        Some(mesh) => mesh.mesh_now().pairs_meshed as u64,
        None => 0,
    })
}

/// Writes the sampled heap profile (version-1 JSON, see DESIGN.md
/// "Telemetry & profiling") to `MESH_PROF_PATH` — or to stderr as one
/// `mesh-prof: ` line when no path is configured. Returns 0 on success,
/// -1 when profiling is off (`MESH_PROF` unset) or no heap exists. C
/// programs can declare it `__attribute__((weak))` and call it only when
/// running under the preload; `kill -USR2 <pid>` reaches the same dump
/// asynchronously.
#[no_mangle]
pub extern "C" fn mesh_prof_dump() -> c_int {
    if in_internal_alloc() {
        return -1;
    }
    runtime::prof_dump_to(2)
}

/// Writes the buffered slow-path trace (Chrome trace-event JSON, see
/// DESIGN.md "Slow-path tracing") to `MESH_TRACE_PATH` — or to stderr as
/// one `mesh-trace: ` line when no path is configured. Returns 0 on
/// success, -1 when tracing is off (`MESH_TRACE` unset) or no heap
/// exists. `kill -USR2 <pid>` reaches the same dump asynchronously.
#[no_mangle]
pub extern "C" fn mesh_trace_dump() -> c_int {
    if in_internal_alloc() {
        return -1;
    }
    runtime::trace_dump_to(2)
}

/// Writes the mesh-sense document (version-1 JSON: pressure, residency
/// decomposition, the meshing-effectiveness ledger, and the snapshot
/// time series; see DESIGN.md §4f) to `MESH_SENSE_PATH` — or to stderr
/// as one `mesh-sense: ` line when no path is configured. Returns 0 on
/// success, -1 when sensing is off (`MESH_SENSE_INTERVAL_MS=0`) or no
/// heap exists. `kill -USR2 <pid>` reaches the same dump asynchronously.
#[no_mangle]
pub extern "C" fn mesh_sense_dump() -> c_int {
    if in_internal_alloc() {
        return -1;
    }
    runtime::sense_dump_to(2)
}

/// Whether the mesh-ctl control socket (`MESH_CTL=/path/sock`) is
/// configured *and* listening in this process. Returns 0 when no socket
/// was configured, the bind lost the path to a live owner, or no heap
/// exists.
#[no_mangle]
pub extern "C" fn mesh_ctl_active() -> c_int {
    match runtime::built_heap() {
        Some(mesh) => mesh.ctl_active() as c_int,
        None => 0,
    }
}

/// Copies the configured mesh-ctl socket path (NUL-terminated) into
/// `buf`, returning its length in bytes (excluding the NUL) — or -1 when
/// no socket is configured, no heap exists, or `buf` is too small. Pass
/// a 108-byte buffer (`sizeof(sun_path)`): every accepted path fits.
///
/// # Safety
///
/// `buf` must be null (treated as too small) or valid for `len` writable
/// bytes.
#[no_mangle]
pub unsafe extern "C" fn mesh_ctl_path(buf: *mut mesh_core::ffi::c_char, len: size_t) -> c_int {
    let Some(mesh) = runtime::built_heap() else {
        return -1;
    };
    let Some(path) = mesh.ctl_path() else {
        return -1;
    };
    let bytes = path.as_os_str().as_encoded_bytes();
    if buf.is_null() || bytes.len() + 1 > len {
        return -1;
    }
    std::ptr::copy_nonoverlapping(bytes.as_ptr(), buf as *mut u8, bytes.len());
    *buf.add(bytes.len()) = 0;
    bytes.len() as c_int
}

// ---------------------------------------------------------------------
// Tests — these run with Mesh interposed over the test harness's own
// malloc (the lib target links its #[no_mangle] symbols into the test
// binary), so every assertion doubles as an end-to-end smoke test.
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn is_meshed(p: *mut c_void) -> bool {
        runtime::built_heap().is_some_and(|m| m.contains(p as *const u8))
    }

    #[test]
    fn malloc_zero_returns_unique_freeable_pointers() {
        let a = malloc(0);
        let b = malloc(0);
        assert!(!a.is_null() && !b.is_null());
        assert_ne!(a, b, "malloc(0) pointers must be unique");
        unsafe {
            free(a);
            free(b);
        }
    }

    #[test]
    fn malloc_routes_to_mesh_and_roundtrips() {
        let p = malloc(1000);
        assert!(!p.is_null());
        assert!(is_meshed(p), "application allocation must land on Mesh");
        unsafe {
            std::ptr::write_bytes(p as *mut u8, 0x7A, 1000);
            assert!(malloc_usable_size(p) >= 1000);
            free(p);
        }
    }

    #[test]
    fn calloc_zeroes_and_rejects_overflow() {
        let p = calloc(100, 100) as *mut u8;
        assert!(!p.is_null());
        unsafe {
            for i in 0..10_000 {
                assert_eq!(*p.add(i), 0);
            }
            free(p as *mut c_void);
        }
        assert!(calloc(usize::MAX, 2).is_null());
        assert_eq!(libc::errno(), libc::ENOMEM);
    }

    #[test]
    fn realloc_glibc_edge_semantics() {
        // realloc(NULL, n) == malloc(n)
        let p = unsafe { realloc(std::ptr::null_mut(), 64) };
        assert!(!p.is_null());
        unsafe { std::ptr::write_bytes(p as *mut u8, 0x5E, 64) };
        // grow preserves contents
        let q = unsafe { realloc(p, 200_000) };
        assert!(!q.is_null());
        unsafe {
            for i in 0..64 {
                assert_eq!(*(q as *const u8).add(i), 0x5E);
            }
        }
        // realloc(p, 0) frees and returns NULL
        assert!(unsafe { realloc(q, 0) }.is_null());
    }

    #[test]
    fn reallocarray_overflow_checked() {
        let p = unsafe { reallocarray(std::ptr::null_mut(), 8, 32) };
        assert!(!p.is_null());
        assert!(unsafe { reallocarray(p, usize::MAX / 2, 3) }.is_null());
        assert_eq!(libc::errno(), libc::ENOMEM);
        unsafe { free(p) }; // overflow left the old block alive
    }

    #[test]
    fn posix_memalign_matches_posix() {
        let mut p: *mut c_void = std::ptr::null_mut();
        // Non-power-of-two and non-pointer-multiple alignments: EINVAL,
        // and *memptr untouched.
        assert_eq!(unsafe { posix_memalign(&mut p, 24, 100) }, libc::EINVAL);
        assert_eq!(unsafe { posix_memalign(&mut p, 2, 100) }, libc::EINVAL);
        assert!(p.is_null(), "memptr must be untouched on EINVAL");
        for align in [16usize, 64, 4096, 2 << 20] {
            assert_eq!(unsafe { posix_memalign(&mut p, align, 100) }, 0);
            assert!(!p.is_null());
            assert_eq!(p as usize % align, 0, "align {align}");
            unsafe { free(p) };
            p = std::ptr::null_mut();
        }
    }

    #[test]
    fn aligned_family_alignment_and_einval() {
        assert!(aligned_alloc(24, 100).is_null(), "non-power-of-two align");
        let p = aligned_alloc(256, 300);
        assert_eq!(p as usize % 256, 0);
        unsafe { free(p) };
        let p = memalign(1 << 16, 10);
        assert_eq!(p as usize % (1 << 16), 0);
        unsafe { free(p) };
        let v = valloc(100);
        assert_eq!(v as usize % PAGE_SIZE, 0);
        unsafe { free(v) };
        let pv = pvalloc(PAGE_SIZE + 1);
        assert_eq!(pv as usize % PAGE_SIZE, 0);
        assert!(unsafe { malloc_usable_size(pv) } >= 2 * PAGE_SIZE);
        unsafe { free(pv) };
    }

    #[test]
    fn free_of_foreign_and_null_pointers_is_safe() {
        unsafe { free(std::ptr::null_mut()) };
        // A pointer from the *real* allocator (internal route) must route
        // back to it on free.
        let real_ptr = crate::real::malloc(64);
        assert!(!real_ptr.is_null());
        unsafe { free(real_ptr as *mut c_void) };
    }

    #[test]
    fn trim_mallopt_stats_are_callable() {
        let p = malloc(100_000);
        unsafe { free(p) };
        assert_eq!(malloc_trim(0), 1);
        assert_eq!(mallopt(0, 0), 1);
        mesh_stats_print();
    }

    #[test]
    fn prof_dump_reports_disabled_without_mesh_prof() {
        // The interposed test harness runs without MESH_PROF: the dump
        // entry point must report -1, not crash or write anything.
        let p = malloc(100); // ensure the heap exists
        unsafe { free(p) };
        assert_eq!(mesh_prof_dump(), -1);
    }

    #[test]
    fn sense_dump_writes_by_default() {
        // Sensing is on by default (MESH_SENSE_INTERVAL_MS defaults to
        // 1000), so the dump entry point must succeed — one `mesh-sense:`
        // stderr line — without any env setup.
        let p = malloc(100); // ensure the heap exists
        unsafe { free(p) };
        assert_eq!(mesh_sense_dump(), 0);
    }

    #[test]
    fn trace_dump_reports_disabled_without_mesh_trace() {
        // The interposed test harness runs without MESH_TRACE: the dump
        // entry point must report -1, not crash or write anything.
        let p = malloc(100); // ensure the heap exists
        unsafe { free(p) };
        assert_eq!(mesh_trace_dump(), -1);
    }

    #[test]
    fn mesh_now_meshes_a_fragmented_heap() {
        // Fragment: many small objects, free 7 of every 8; spans detach
        // as they fill, so candidates exist without thread churn.
        let ptrs: Vec<*mut c_void> = (0..32_768).map(|_| malloc(64)).collect();
        for (i, &p) in ptrs.iter().enumerate() {
            if i % 8 != 0 {
                unsafe { free(p) };
            }
        }
        let pairs = mesh_mesh_now();
        for (i, &p) in ptrs.iter().enumerate() {
            if i % 8 == 0 {
                unsafe { free(p) };
            }
        }
        assert!(pairs > 0, "fragmented heap produced no meshes");
    }
}
