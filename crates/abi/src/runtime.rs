//! Process runtime of the interposition layer: the lazily constructed
//! process heap, per-thread heap lifecycle (pthread TSD destructors, not
//! Rust drop-order luck), the `pthread_atfork` protocol, and the
//! stats-at-exit dump.

use mesh_core::ffi as libc;
use mesh_core::ffi::{c_uint, c_void};
use mesh_core::{in_internal_alloc, with_internal_alloc, Mesh, MeshConfig, MeshForkGuard, ThreadHeap};
use std::cell::Cell;
use std::sync::atomic::{AtomicI32, AtomicPtr, AtomicU32, Ordering};
use std::sync::OnceLock;

/// Default hard cap (virtual reservation) for interposed processes,
/// overridable with `MESH_MAX_HEAP_BYTES`. Unmodified C programs cannot
/// pick their own `MeshConfig`, so the default errs large: reservation is
/// address space, not memory.
const DEFAULT_CAP_BYTES: usize = 8 << 30;

/// `None` means construction failed; sticky, so the process degrades to
/// the real allocator instead of retrying forever.
static HEAP: OnceLock<Option<Mesh>> = OnceLock::new();

/// TSD key whose destructor returns a dying thread's spans to the global
/// heap. `u32::MAX` until `pthread_key_create` succeeds.
static TH_KEY: AtomicU32 = AtomicU32::new(u32::MAX);

/// Private dup of stderr for the exit-time stats dump. Programs like the
/// coreutils register `close_stdout` with `atexit` from `main` — *after*
/// our construction-time registration, so it runs *before* our handler
/// (LIFO) and closes fd 2. Writing the dump through a dup taken at
/// registration time survives that. −1 until (and unless) dup succeeds.
static STATS_FD: AtomicI32 = AtomicI32::new(-1);

thread_local! {
    /// Fast path to the calling thread's heap. `const`-initialized and
    /// non-`Drop` (a bare pointer), so access never allocates and never
    /// registers a Rust TLS destructor — teardown belongs to the pthread
    /// key alone, which glibc runs at a well-defined point of thread exit
    /// for C and Rust threads alike.
    static THREAD_HEAP: Cell<*mut ThreadHeap> = const { Cell::new(std::ptr::null_mut()) };
}

/// Writes a line to `fd` without `eprintln!`'s panic-on-error (an
/// allocator must survive a closed stderr).
fn write_line(fd: i32, line: &str) {
    unsafe {
        let _ = libc::write(fd, line.as_ptr() as *const c_void, line.len());
        let _ = libc::write(fd, b"\n".as_ptr() as *const c_void, 1);
    }
}

/// Writes a line to stderr (see [`write_line`]).
pub fn warn(line: &str) {
    write_line(2, line);
}

/// The process heap, constructed on first use (under the internal-alloc
/// guard: construction itself allocates, and those allocations must route
/// to the real allocator). Returns `None` — permanently — if construction
/// failed, in which case the interposed symbols pass straight through.
pub fn heap() -> Option<&'static Mesh> {
    HEAP.get_or_init(|| {
        debug_assert!(in_internal_alloc(), "heap construction outside the guard");
        let config = MeshConfig::default()
            .max_heap_bytes(DEFAULT_CAP_BYTES)
            .apply_env();
        match Mesh::new(config) {
            Ok(mesh) => {
                install_process_hooks(&mesh);
                Some(mesh)
            }
            Err(e) => {
                warn(&format!(
                    "mesh: heap construction failed ({e}); running on the system allocator"
                ));
                None
            }
        }
    })
    .as_ref()
}

/// The process heap only if it has already been (successfully) built.
/// Free-path routing uses this: a pointer cannot belong to a heap that
/// does not exist yet, and `free` must never trigger construction.
pub fn built_heap() -> Option<&'static Mesh> {
    HEAP.get().and_then(|slot| slot.as_ref())
}

/// One-time process hooks, called from inside the successful construction
/// (so exactly once, under the guard).
fn install_process_hooks(mesh: &Mesh) {
    unsafe {
        let mut key: c_uint = 0;
        if crate::real::pthread_key_create(&mut key, Some(thread_heap_dtor)) == 0 {
            TH_KEY.store(key, Ordering::Release);
        }
        crate::real::pthread_atfork(Some(fork_prepare), Some(fork_parent), Some(fork_child));
        let stats_at_exit_wanted = mesh_core::env_bool("MESH_PRINT_STATS_AT_EXIT").unwrap_or(false);
        if stats_at_exit_wanted || mesh.is_profiling() || mesh.is_tracing() {
            // All exit dumps write through a private dup of stderr taken
            // now: applications (coreutils' close_stdout) close fd 2 from
            // their own atexit handlers, which run before ours (LIFO).
            STATS_FD.store(
                crate::real::fcntl(2, crate::real::F_DUPFD_CLOEXEC, 3),
                Ordering::Release,
            );
        }
        if stats_at_exit_wanted {
            crate::real::atexit(stats_at_exit);
        }
        if mesh.harden_aborts() {
            // The one-line abort diagnostic must survive applications that
            // close or redirect fd 2 after startup: point it at a private
            // dup of stderr taken now (fall back to fd 2 if dup fails).
            let fd = crate::real::fcntl(2, crate::real::F_DUPFD_CLOEXEC, 3);
            if fd >= 0 {
                mesh_core::set_abort_fd(fd);
            }
        }
        if mesh.is_profiling() || mesh.is_tracing() || mesh.is_sensing() {
            // Opt-in SIGUSR2 → heap-profile, trace, and/or sense dump.
            // The handler body is atomic stores
            // ([`Mesh::request_profile_dump`], [`Mesh::request_trace_dump`],
            // [`Mesh::request_sense_dump`]); the dumps themselves ride the
            // background telemetry thread.
            let mut act: libc::sigaction = std::mem::zeroed();
            let handler: extern "C" fn(mesh_core::ffi::c_int) = sigusr2_handler;
            act.sa_sigaction = handler as usize;
            act.sa_flags = libc::SA_RESTART;
            libc::sigemptyset(&mut act.sa_mask);
            libc::sigaction(libc::SIGUSR2, &act, std::ptr::null_mut());
        }
        if mesh.is_profiling() {
            crate::real::atexit(prof_at_exit);
        }
        if mesh.is_tracing() {
            crate::real::atexit(trace_at_exit);
        }
        // Sense dumps at exit only when a destination file is configured:
        // sensing is on by default, and an unconditional stderr dump from
        // every preloaded process would be noise, not observability.
        if mesh.sense_path().is_some() {
            crate::real::atexit(sense_at_exit);
        }
        // The heap statics are never dropped in an interposed process, so
        // the ctl socket path would outlive us as a stale file without
        // this (the next process reclaims it anyway, but only after a
        // connect probe).
        if mesh.ctl_path().is_some() {
            crate::real::atexit(ctl_at_exit);
        }
    }
}

// ---------------------------------------------------------------------
// Per-thread heaps (§4.3 fast path for every pthread)
// ---------------------------------------------------------------------

/// Runs `f` on the calling thread's [`ThreadHeap`], creating it on first
/// use. Must be called under the internal-alloc guard (the creation path
/// allocates the heap's own state).
pub fn with_thread_heap<R>(mesh: &'static Mesh, f: impl FnOnce(&mut ThreadHeap) -> R) -> R {
    debug_assert!(in_internal_alloc());
    let mut p = THREAD_HEAP.with(|c| c.get());
    if p.is_null() {
        p = Box::into_raw(Box::new(mesh.thread_heap()));
        THREAD_HEAP.with(|c| c.set(p));
        let key = TH_KEY.load(Ordering::Acquire);
        if key != u32::MAX {
            unsafe { crate::real::pthread_setspecific(key, p as *const c_void) };
        }
    }
    // SAFETY: the pointer is thread-local and the TSD destructor (which
    // frees it) only runs once the thread can no longer call us.
    unsafe { f(&mut *p) }
}

/// pthread TSD destructor: returns the dying thread's attached MiniHeaps
/// to the global heap (`ThreadHeap`'s drop detaches every span) and folds
/// its batched fast-path statistics into the shared counters — the exit
/// dump therefore sees exact totals even though live threads never touch
/// shared stat cachelines. If the thread allocates again during a later
/// destructor iteration, a fresh heap is created and this runs again —
/// glibc bounds the iterations.
unsafe extern "C" fn thread_heap_dtor(p: *mut c_void) {
    with_internal_alloc(|| {
        THREAD_HEAP.with(|c| c.set(std::ptr::null_mut()));
        drop(Box::from_raw(p as *mut ThreadHeap));
    });
}

// ---------------------------------------------------------------------
// Fork protocol
// ---------------------------------------------------------------------

/// The guard built by the prepare handler, consumed by whichever side
/// (parent or child) runs next. One slot suffices: prepare/parent/child
/// of one `fork()` all run on the forking thread, and a second thread's
/// prepare blocks on the heap locks until the first fork's parent handler
/// releases them.
static FORK_GUARD: AtomicPtr<MeshForkGuard<'static>> = AtomicPtr::new(std::ptr::null_mut());

extern "C" fn fork_prepare() {
    with_internal_alloc(|| {
        if let Some(mesh) = built_heap() {
            let guard = Box::new(mesh.fork_prepare());
            FORK_GUARD.store(Box::into_raw(guard), Ordering::Release);
        }
    });
}

extern "C" fn fork_parent() {
    with_internal_alloc(|| {
        let guard = FORK_GUARD.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if !guard.is_null() {
            // SAFETY: the pointer came from Box::into_raw in fork_prepare
            // on this same thread.
            unsafe { Box::from_raw(guard) }.release_parent();
        }
    });
}

extern "C" fn fork_child() {
    with_internal_alloc(|| {
        let guard = FORK_GUARD.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if !guard.is_null() {
            // SAFETY: as above; the child's address space holds a copy.
            unsafe { Box::from_raw(guard) }.release_child();
        }
    });
}

// ---------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------

/// Prints the one-line stats summary to `fd` (the body of
/// `mesh_stats_print()` and the `MESH_PRINT_STATS_AT_EXIT=1` dump).
fn print_stats_to(fd: i32) {
    if let Some(mesh) = built_heap() {
        with_internal_alloc(|| {
            write_line(fd, &mesh.stats_with_spectrum().render());
        });
    } else {
        write_line(fd, "mesh: heap never constructed");
    }
}

/// Prints the stats summary to stderr (for explicit `mesh_stats_print()`
/// / `malloc_stats()` calls).
pub fn print_stats() {
    print_stats_to(2);
}

extern "C" fn stats_at_exit() {
    // fd 2 may already be closed by the application's own atexit handlers
    // (coreutils' close_stdout); the dup taken at registration survives.
    let fd = STATS_FD.load(Ordering::Acquire);
    print_stats_to(if fd >= 0 { fd } else { 2 });
}

// ---------------------------------------------------------------------
// Heap profiling (mesh-insight)
// ---------------------------------------------------------------------

/// SIGUSR2 handler: request asynchronous profile and trace dumps. The
/// entire body is atomic stores — the only thing a signal context may do
/// against a heap that might be mid-allocation on this very thread.
extern "C" fn sigusr2_handler(_sig: mesh_core::ffi::c_int) {
    if let Some(mesh) = built_heap() {
        mesh.request_profile_dump();
        mesh.request_trace_dump();
        mesh.request_sense_dump();
    }
}

/// Writes one profile dump: to `MESH_PROF_PATH` when configured, else to
/// `fd` as a single `mesh-prof: `-prefixed line. Returns 0 on success,
/// -1 when no profiling heap exists.
pub fn prof_dump_to(fd: i32) -> i32 {
    let Some(mesh) = built_heap() else { return -1 };
    with_internal_alloc(|| {
        if mesh.profile_path().is_some() {
            return if mesh.dump_profile_now() { 0 } else { -1 };
        }
        match mesh.profile_json() {
            Some(json) => {
                write_line(fd, &format!("mesh-prof: {json}"));
                0
            }
            None => -1,
        }
    })
}

extern "C" fn prof_at_exit() {
    let fd = STATS_FD.load(Ordering::Acquire);
    prof_dump_to(if fd >= 0 { fd } else { 2 });
}

// ---------------------------------------------------------------------
// Slow-path tracing (mesh-trace)
// ---------------------------------------------------------------------

/// Writes one Chrome trace dump: to `MESH_TRACE_PATH` when configured,
/// else to `fd` as a single `mesh-trace: `-prefixed line. Returns 0 on
/// success, -1 when no tracing heap exists.
pub fn trace_dump_to(fd: i32) -> i32 {
    let Some(mesh) = built_heap() else { return -1 };
    with_internal_alloc(|| {
        if mesh.trace_path().is_some() {
            return if mesh.dump_trace_now() { 0 } else { -1 };
        }
        match mesh.trace_json() {
            Some(json) => {
                write_line(fd, &format!("mesh-trace: {json}"));
                0
            }
            None => -1,
        }
    })
}

extern "C" fn trace_at_exit() {
    let fd = STATS_FD.load(Ordering::Acquire);
    trace_dump_to(if fd >= 0 { fd } else { 2 });
}

// ---------------------------------------------------------------------
// Pressure/residency sensing (mesh-sense)
// ---------------------------------------------------------------------

/// Writes one mesh-sense dump: to `MESH_SENSE_PATH` when configured,
/// else to `fd` as a single `mesh-sense: `-prefixed line. Returns 0 on
/// success, -1 when no sensing heap exists.
pub fn sense_dump_to(fd: i32) -> i32 {
    let Some(mesh) = built_heap() else { return -1 };
    with_internal_alloc(|| {
        if mesh.sense_path().is_some() {
            return if mesh.dump_sense_now() { 0 } else { -1 };
        }
        match mesh.sense_json() {
            Some(json) => {
                write_line(fd, &format!("mesh-sense: {json}"));
                0
            }
            None => -1,
        }
    })
}

extern "C" fn sense_at_exit() {
    let fd = STATS_FD.load(Ordering::Acquire);
    sense_dump_to(if fd >= 0 { fd } else { 2 });
}

// ---------------------------------------------------------------------
// Control socket (mesh-ctl)
// ---------------------------------------------------------------------

extern "C" fn ctl_at_exit() {
    if let Some(mesh) = built_heap() {
        mesh.ctl_shutdown();
    }
}
