//! mesh-top: a live terminal dashboard for a Mesh heap, speaking the
//! mesh-ctl protocol (version 1) over the heap's Unix control socket.
//!
//! ```sh
//! MESH_CTL=/tmp/mesh.$$ LD_PRELOAD=target/release/libmesh.so ./server &
//! mesh-top --socket /tmp/mesh.$$
//! ```
//!
//! Renders per-class occupancy spectra, meshing-ledger pass outcomes
//! (with reject reasons), RSS / PSI / cgroup memory pressure from
//! mesh-sense, and slow-path latency percentiles — refreshed in place.
//! `--once` prints a single frame; `--once --json` emits one combined
//! JSON document for scripting. `--pprof-out FILE` saves the live-heap
//! profile as a pprof protobuf, and `--check-pprof FILE` validates one
//! with the in-tree parser (the CI schema check).
//!
//! Dependency-free by design (ANSI escapes, hand-rolled JSON reader);
//! `mesh-core` is linked only for [`mesh_core::parse_pprof`].

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::time::Duration;

const USAGE: &str = "\
mesh-top: live dashboard for a Mesh heap's mesh-ctl socket

USAGE:
  mesh-top [--socket PATH] [--interval MS] [--once] [--json]
           [--pprof-out FILE] [--check-pprof FILE]

OPTIONS:
  --socket PATH      control socket path (default: $MESH_CTL)
  --interval MS      refresh interval in milliseconds (default 1000)
  --once             render one frame and exit
  --json             with --once: emit one combined JSON document
  --pprof-out FILE   fetch the pprof live-heap profile into FILE
  --check-pprof FILE validate FILE as a pprof profile and print a summary
  -h, --help         this text";

struct Options {
    socket: Option<String>,
    interval: Duration,
    once: bool,
    json: bool,
    pprof_out: Option<String>,
    check_pprof: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        socket: std::env::var("MESH_CTL").ok().filter(|s| !s.is_empty()),
        interval: Duration::from_millis(1000),
        once: false,
        json: false,
        pprof_out: None,
        check_pprof: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--socket" => opts.socket = Some(value("--socket")?),
            "--interval" => {
                let ms: u64 = value("--interval")?
                    .parse()
                    .map_err(|_| "--interval must be an integer (ms)".to_string())?;
                opts.interval = Duration::from_millis(ms.max(50));
            }
            "--once" => opts.once = true,
            "--json" => opts.json = true,
            "--pprof-out" => opts.pprof_out = Some(value("--pprof-out")?),
            "--check-pprof" => opts.check_pprof = Some(value("--check-pprof")?),
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mesh-top: {e}");
            std::process::exit(2);
        }
    };
    // Offline validation needs no socket at all.
    if let Some(file) = &opts.check_pprof {
        std::process::exit(check_pprof(file));
    }
    let Some(socket) = &opts.socket else {
        eprintln!("mesh-top: no socket (pass --socket or set MESH_CTL; see --help)");
        std::process::exit(2);
    };
    let mut client = match Client::connect(socket) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("mesh-top: cannot connect to {socket}: {e}");
            std::process::exit(1);
        }
    };
    if let Some(file) = &opts.pprof_out {
        match client.request("pprof") {
            Ok(bytes) => {
                if let Err(e) = std::fs::write(file, &bytes) {
                    eprintln!("mesh-top: writing {file}: {e}");
                    std::process::exit(1);
                }
                eprintln!("mesh-top: wrote {} bytes of pprof to {file}", bytes.len());
            }
            Err(e) => {
                eprintln!("mesh-top: pprof: {e}");
                std::process::exit(1);
            }
        }
        if opts.once && !opts.json {
            return;
        }
    }
    loop {
        let frame = Frame::fetch(&mut client);
        if opts.once && opts.json {
            println!("{}", frame.to_json());
            return;
        }
        if opts.once {
            print!("{}", frame.render());
            return;
        }
        // Clear + home, then the frame: flicker-free in-place refresh.
        print!("\x1b[2J\x1b[H{}", frame.render());
        let _ = std::io::stdout().flush();
        std::thread::sleep(opts.interval);
    }
}

fn check_pprof(file: &str) -> i32 {
    let bytes = match std::fs::read(file) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("mesh-top: reading {file}: {e}");
            return 1;
        }
    };
    match mesh_core::parse_pprof(&bytes) {
        Ok(s) => {
            let types: Vec<String> = s
                .sample_types
                .iter()
                .map(|(t, u)| format!("{t}/{u}"))
                .collect();
            println!(
                "pprof ok: {} samples, {} locations, {} functions, sample_types=[{}], \
                 period={} {}/{}, totals={:?}",
                s.samples,
                s.locations,
                s.functions,
                types.join(", "),
                s.period,
                s.period_type.0,
                s.period_type.1,
                s.totals,
            );
            0
        }
        Err(e) => {
            eprintln!("mesh-top: {file} is not a valid pprof profile: {e}");
            1
        }
    }
}

// ---------------------------------------------------------------------
// Protocol client
// ---------------------------------------------------------------------

struct Client {
    stream: UnixStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(path: &str) -> Result<Client, String> {
        let stream = UnixStream::connect(path).map_err(|e| e.to_string())?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let mut client = Client {
            stream,
            buf: Vec::new(),
        };
        let greeting = client.read_line()?;
        let mut words = greeting.split_whitespace();
        if words.next() != Some("mesh-ctl") || words.next() != Some("1") {
            return Err(format!("unexpected greeting {greeting:?}"));
        }
        Ok(client)
    }

    /// One request/response round trip; `Err` carries both protocol-level
    /// `err` replies and transport failures.
    fn request(&mut self, cmd: &str) -> Result<Vec<u8>, String> {
        self.stream
            .write_all(format!("{cmd}\n").as_bytes())
            .map_err(|e| e.to_string())?;
        let header = self.read_line()?;
        if let Some(msg) = header.strip_prefix("err ") {
            return Err(msg.to_string());
        }
        let len: usize = header
            .strip_prefix("ok ")
            .and_then(|n| n.trim().parse().ok())
            .ok_or_else(|| format!("malformed response header {header:?}"))?;
        let payload = self.read_exact(len)?;
        self.read_exact(1)?; // trailing newline
        Ok(payload)
    }

    fn read_line(&mut self) -> Result<String, String> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                return String::from_utf8(line[..pos].to_vec()).map_err(|e| e.to_string());
            }
            self.fill()?;
        }
    }

    fn read_exact(&mut self, n: usize) -> Result<Vec<u8>, String> {
        while self.buf.len() < n {
            self.fill()?;
        }
        Ok(self.buf.drain(..n).collect())
    }

    fn fill(&mut self) -> Result<(), String> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Err("server closed the connection".to_string()),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
            Err(e) => Err(e.to_string()),
        }
    }
}

// ---------------------------------------------------------------------
// One dashboard frame
// ---------------------------------------------------------------------

/// Everything one refresh fetched; envelopes that errored (subsystem
/// off) are carried as the error text.
struct Frame {
    stats: Result<String, String>,
    spectrum: Result<Json, String>,
    ledger: Result<Json, String>,
    sense: Result<Json, String>,
}

impl Frame {
    fn fetch(client: &mut Client) -> Frame {
        let mut text = |cmd: &str| {
            client
                .request(cmd)
                .map(|b| String::from_utf8_lossy(&b).into_owned())
        };
        let stats = text("stats");
        let spectrum = text("spectrum").and_then(|s| Json::parse(&s));
        let ledger = text("ledger").and_then(|s| Json::parse(&s));
        let sense = text("sense").and_then(|s| Json::parse(&s));
        Frame {
            stats,
            spectrum,
            ledger,
            sense,
        }
    }

    /// The `--once --json` document: the JSON envelopes verbatim, the
    /// stats text embedded as a string, errors as `{"error": ...}`.
    fn to_json(&self) -> String {
        let embed = |r: &Result<Json, String>| match r {
            Ok(j) => j.raw.clone(),
            Err(e) => format!("{{\"error\":{}}}", quote(e)),
        };
        format!(
            "{{\"mesh_top_version\":1,\"stats\":{},\"spectrum\":{},\"ledger\":{},\"sense\":{}}}",
            match &self.stats {
                Ok(s) => quote(s),
                Err(e) => format!("{{\"error\":{}}}", quote(e)),
            },
            embed(&self.spectrum),
            embed(&self.ledger),
            embed(&self.sense),
        )
    }

    fn render(&self) -> String {
        let mut out = String::new();
        match &self.stats {
            Ok(stats) => render_stats(&mut out, stats),
            Err(e) => out.push_str(&format!("stats unavailable: {e}\n")),
        }
        match &self.sense {
            Ok(sense) => render_sense(&mut out, sense),
            Err(e) => out.push_str(&format!("\nsense: {e}\n")),
        }
        match &self.spectrum {
            Ok(spec) => render_spectrum(&mut out, spec),
            Err(e) => out.push_str(&format!("\nspectrum: {e}\n")),
        }
        match &self.ledger {
            Ok(ledger) => render_ledger(&mut out, ledger),
            Err(e) => out.push_str(&format!("\nledger: {e}\n")),
        }
        out
    }
}

/// `key=value` lookup in the stats line.
fn stat<'a>(stats: &'a str, key: &str) -> &'a str {
    let needle = format!(" {key}=");
    stats
        .find(&needle)
        .map(|i| {
            let rest = &stats[i + needle.len()..];
            rest.split_whitespace().next().unwrap_or("")
        })
        .unwrap_or("?")
}

fn mib(bytes: &str) -> String {
    match bytes.parse::<f64>() {
        Ok(b) => format!("{:.1} MiB", b / (1024.0 * 1024.0)),
        Err(_) => bytes.to_string(),
    }
}

fn render_stats(out: &mut String, stats: &str) {
    let first = stats.lines().next().unwrap_or("");
    let uptime_ms: u64 = stat(first, "uptime_ms").parse().unwrap_or(0);
    out.push_str(&format!(
        "mesh-top · up {:>6.1}s · heap {} (peak {}) · live {} · mallocs {} · frees {}\n",
        uptime_ms as f64 / 1000.0,
        mib(stat(first, "heap_bytes")),
        mib(stat(first, "peak_heap_bytes")),
        mib(stat(first, "live_bytes")),
        stat(first, "mallocs"),
        stat(first, "frees"),
    ));
    out.push_str(&format!(
        "meshing: {} passes · {} pairs meshed · {} pages released · {} purged · {} segments\n",
        stat(first, "mesh_passes"),
        stat(first, "pairs_meshed"),
        stat(first, "mesh_pages_released"),
        stat(first, "pages_purged"),
        stat(first, "segments"),
    ));
    let lat: Vec<&str> = stats
        .lines()
        .filter(|l| l.starts_with("mesh-latency:"))
        .collect();
    if !lat.is_empty() {
        out.push_str("latency (ns):");
        for line in lat {
            out.push_str(&format!(
                "  {} n={} p50={} p99={}",
                stat(line, "op"),
                stat(line, "count"),
                stat(line, "p50_ns"),
                stat(line, "p99_ns"),
            ));
        }
        out.push('\n');
    }
}

fn render_sense(out: &mut String, sense: &Json) {
    let v = sense.value();
    let Some(latest) = v
        .get("snapshots")
        .and_then(|s| s.as_array())
        .and_then(|a| a.last())
    else {
        return;
    };
    // Unavailable readings are serialized as u64::MAX (ABSENT).
    let num = |k: &str| {
        latest
            .get(k)
            .and_then(Jv::as_f64)
            .filter(|&n| n < 1e18)
            .unwrap_or(f64::NAN)
    };
    let fmt_mib = |n: f64| {
        if n.is_nan() {
            "—".to_string()
        } else {
            format!("{:.1} MiB", n / (1024.0 * 1024.0))
        }
    };
    let fmt_psi = |n: f64| {
        if n.is_nan() {
            "—".to_string()
        } else {
            format!("{:.2}", n / 1000.0)
        }
    };
    out.push_str(&format!(
        "pressure: rss {} · cgroup {} · psi10 {} · psi60 {} · resident-est {}\n",
        fmt_mib(num("rss_bytes")),
        fmt_mib(num("cgroup_usage_bytes")),
        fmt_psi(num("psi_avg10_milli")),
        fmt_psi(num("psi_avg60_milli")),
        fmt_mib(num("est_resident_bytes")),
    ));
}

fn render_spectrum(out: &mut String, spec: &Json) {
    let v = spec.value();
    let Some(classes) = v.get("classes").and_then(|c| c.as_array()) else {
        return;
    };
    out.push_str(
        "\n  class  spans             occupancy bins (low→full)        live/slots   est pairs\n",
    );
    for class in classes {
        let num = |k: &str| class.get(k).and_then(Jv::as_f64).unwrap_or(0.0);
        let spans = num("attached_spans");
        let bins: Vec<f64> = class
            .get("bins")
            .and_then(|b| b.as_array())
            .map(|a| a.iter().filter_map(Jv::as_f64).collect())
            .unwrap_or_default();
        let binned: f64 = bins.iter().sum();
        if spans == 0.0 && binned == 0.0 {
            continue;
        }
        let bars: Vec<String> = bins.iter().map(|&b| bar(b, binned.max(1.0))).collect();
        out.push_str(&format!(
            "  {:>5}  {:>5}  {:>28}  {:>10}/{:<8} {:>6}\n",
            num("object_size") as u64,
            spans as u64,
            bars.join(" "),
            num("live_objects") as u64,
            num("total_slots") as u64,
            num("est_meshable_pairs") as u64,
        ));
    }
    let large = v.get("large_spans").and_then(Jv::as_f64).unwrap_or(0.0);
    if large > 0.0 {
        out.push_str(&format!(
            "  large  {:>5}  {}\n",
            large as u64,
            mib(&format!(
                "{}",
                v.get("large_bytes").and_then(Jv::as_f64).unwrap_or(0.0)
            )),
        ));
    }
}

/// A five-char count+bar cell for one occupancy bin.
fn bar(count: f64, total: f64) -> String {
    const GLYPHS: [&str; 5] = [" ", "▂", "▄", "▆", "█"];
    let frac = (count / total).clamp(0.0, 1.0);
    let idx = if count == 0.0 {
        0
    } else {
        1 + ((frac * 3.999) as usize).min(3)
    };
    format!("{:>4}{}", count as u64, GLYPHS[idx])
}

fn render_ledger(out: &mut String, ledger: &Json) {
    let v = ledger.value();
    out.push_str(&format!(
        "\nledger: {} passes recorded\n",
        v.get("passes_recorded").and_then(Jv::as_f64).unwrap_or(0.0) as u64
    ));
    if let Some(rej) = v.get("rejected_total").and_then(Jv::as_object) {
        let nonzero: Vec<String> = rej
            .iter()
            .filter(|(_, n)| n.as_f64().unwrap_or(0.0) > 0.0)
            .map(|(k, n)| format!("{k}={}", n.as_f64().unwrap_or(0.0) as u64))
            .collect();
        if !nonzero.is_empty() {
            out.push_str(&format!("  rejects: {}\n", nonzero.join(" · ")));
        }
    }
    if let Some(passes) = v.get("passes").and_then(|p| p.as_array()) {
        for pass in passes.iter().rev().take(5) {
            let num = |k: &str| pass.get(k).and_then(Jv::as_f64).unwrap_or(0.0);
            let rejects = pass
                .get("rejected")
                .and_then(Jv::as_object)
                .map(|rej| {
                    rej.iter()
                        .filter(|(_, n)| n.as_f64().unwrap_or(0.0) > 0.0)
                        .map(|(k, n)| format!("{k}={}", n.as_f64().unwrap_or(0.0) as u64))
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .unwrap_or_default();
            out.push_str(&format!(
                "  t+{:>7.1}s  cand {:>4}  probes {:>5}  meshed {:>4}  recovered {:>9}  {}\n",
                num("at_ms") / 1000.0,
                num("candidates") as u64,
                num("probes") as u64,
                num("pairs_meshed") as u64,
                mib(&format!("{}", num("bytes_recovered"))),
                rejects,
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Minimal JSON reader (enough for the mesh envelopes)
// ---------------------------------------------------------------------

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed document plus its raw text (re-embedded verbatim by
/// `--json`).
struct Json {
    raw: String,
    value: Jv,
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at {}", p.pos));
        }
        Ok(Json {
            raw: text.to_string(),
            value,
        })
    }

    fn value(&self) -> &Jv {
        &self.value
    }
}

/// A JSON value.
#[derive(Debug, PartialEq)]
enum Jv {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Jv>),
    Obj(Vec<(String, Jv)>),
}

impl Jv {
    fn get(&self, key: &str) -> Option<&Jv> {
        match self {
            Jv::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Jv]> {
        match self {
            Jv::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn as_object(&self) -> Option<&[(String, Jv)]> {
        match self {
            Jv::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Jv::Num(n) => Some(*n),
            _ => None,
        }
    }

    #[cfg_attr(not(test), allow(dead_code))] // string fields only appear in tests today
    fn as_str(&self) -> Option<&str> {
        match self {
            Jv::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(
            self.bytes.get(self.pos),
            Some(b' ' | b'\t' | b'\n' | b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Jv, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Jv::Str(self.string()?)),
            Some(b't') => self.literal("true", Jv::Bool(true)),
            Some(b'f') => self.literal("false", Jv::Bool(false)),
            Some(b'n') => self.literal("null", Jv::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of document".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Jv) -> Result<Jv, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Jv, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Jv::Num)
            .ok_or_else(|| format!("bad number at {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: take the whole sequence.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<Jv, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Jv::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Jv::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Jv, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Jv::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Jv::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_handles_the_envelope_shapes() {
        let doc = Json::parse(
            r#"{"v":1,"classes":[{"object_size":16,"bins":[1,2,0,3]}],
               "name":"psi \"x\"","flag":true,"none":null,"f":-2.5e1}"#,
        )
        .unwrap();
        let v = doc.value();
        assert_eq!(v.get("v").and_then(Jv::as_f64), Some(1.0));
        let classes = v.get("classes").unwrap().as_array().unwrap();
        assert_eq!(classes[0].get("object_size").and_then(Jv::as_f64), Some(16.0));
        assert_eq!(
            classes[0].get("bins").unwrap().as_array().unwrap().len(),
            4
        );
        assert_eq!(v.get("name").and_then(Jv::as_str), Some("psi \"x\""));
        assert_eq!(v.get("flag"), Some(&Jv::Bool(true)));
        assert_eq!(v.get("none"), Some(&Jv::Null));
        assert_eq!(v.get("f").and_then(Jv::as_f64), Some(-25.0));
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2] trailing").is_err());
    }

    #[test]
    fn stats_line_lookup() {
        let line = "mesh: mallocs=10 frees=4 live_bytes=4096 uptime_ms=1500";
        assert_eq!(stat(line, "mallocs"), "10");
        assert_eq!(stat(line, "live_bytes"), "4096");
        assert_eq!(stat(line, "uptime_ms"), "1500");
        assert_eq!(stat(line, "missing"), "?");
    }

    #[test]
    fn json_frame_escapes_stats_text() {
        let frame = Frame {
            stats: Ok("mesh: a=1\nmesh-latency: op=\"x\"".to_string()),
            spectrum: Err("spectrum off".to_string()),
            ledger: Json::parse(r#"{"passes_recorded":2}"#),
            sense: Err("sensing off".to_string()),
        };
        let text = frame.to_json();
        let doc = Json::parse(&text).expect("frame JSON must itself parse");
        let v = doc.value();
        assert_eq!(v.get("mesh_top_version").and_then(Jv::as_f64), Some(1.0));
        assert!(v.get("stats").and_then(Jv::as_str).unwrap().contains("a=1"));
        assert_eq!(
            v.get("ledger")
                .and_then(|l| l.get("passes_recorded"))
                .and_then(Jv::as_f64),
            Some(2.0)
        );
        assert!(v
            .get("sense")
            .and_then(|s| s.get("error"))
            .and_then(Jv::as_str)
            .is_some());
    }

    #[test]
    fn client_speaks_protocol_v1() {
        use std::os::unix::net::UnixListener;
        let path = std::env::temp_dir().join(format!("mesh-top-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            s.write_all(b"mesh-ctl 1\n").unwrap();
            let mut buf = [0u8; 64];
            let n = s.read(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"stats\n");
            s.write_all(b"ok 9\nmesh: a=1\n").unwrap();
            let n = s.read(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"trace\n");
            s.write_all(b"err tracing off\n").unwrap();
        });
        let mut client = Client::connect(path.to_str().unwrap()).unwrap();
        assert_eq!(client.request("stats").unwrap(), b"mesh: a=1");
        assert_eq!(client.request("trace").unwrap_err(), "tracing off");
        server.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
