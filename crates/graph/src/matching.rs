//! Matching on meshing graphs (§5.2–§5.3).
//!
//! The paper shows that restricting meshing to *pairs* — solving
//! `Matching` instead of `MinCliqueCover` — sacrifices little quality,
//! because triangles (and larger cliques) are rare in meshing graphs.
//! This module provides a greedy 1/2-approximate matcher and an exact
//! maximum matcher (subset DP) for validating SplitMesher's quality on
//! small instances.

use crate::graph::MeshGraph;
use std::collections::HashMap;

/// A matching: vertex-disjoint mesh pairs. Each pair releases one span.
pub type Matching = Vec<(usize, usize)>;

/// Verifies that `m` is a valid matching of `g` (disjoint real edges).
pub fn is_valid_matching(g: &MeshGraph, m: &Matching) -> bool {
    let mut used = vec![false; g.node_count()];
    for &(a, b) in m {
        if a == b || !g.has_edge(a, b) || used[a] || used[b] {
            return false;
        }
        used[a] = true;
        used[b] = true;
    }
    true
}

/// Greedy maximal matching: scan vertices in order, match each unmatched
/// vertex with its first unmatched neighbor. Maximal matchings are at
/// least half the maximum — the same 1/2 factor Lemma 5.3 targets.
pub fn greedy_matching(g: &MeshGraph) -> Matching {
    let n = g.node_count();
    let mut used = vec![false; n];
    let mut out = Vec::new();
    for i in 0..n {
        if used[i] {
            continue;
        }
        if let Some(j) = g.neighbors(i).find(|&j| !used[j] && j != i) {
            used[i] = true;
            used[j] = true;
            out.push((i, j));
        }
    }
    out
}

/// Exact maximum matching by subset dynamic programming.
///
/// Runs in `O(2ⁿ·n)`; intended for the small instances used to validate
/// SplitMesher and the greedy matcher in the §5 experiments.
///
/// # Panics
///
/// Panics if the graph has more than 26 nodes.
pub fn maximum_matching_size(g: &MeshGraph) -> usize {
    let n = g.node_count();
    assert!(n <= 26, "exact matching is exponential; use ≤ 26 nodes");
    // Adjacency as node-index bitmasks.
    let adj: Vec<u32> = (0..n)
        .map(|i| g.neighbors(i).fold(0u32, |m, j| m | (1 << j)))
        .collect();
    fn solve(mask: u32, adj: &[u32], memo: &mut HashMap<u32, u8>) -> u8 {
        if mask == 0 {
            return 0;
        }
        if let Some(&v) = memo.get(&mask) {
            return v;
        }
        let i = mask.trailing_zeros() as usize;
        // Option 1: leave i unmatched.
        let mut best = solve(mask & !(1 << i), adj, memo);
        // Option 2: match i with any available neighbor.
        let mut cands = adj[i] & mask & !(1 << i);
        while cands != 0 {
            let j = cands.trailing_zeros();
            cands &= cands - 1;
            let v = 1 + solve(mask & !(1 << i) & !(1 << j), adj, memo);
            best = best.max(v);
        }
        memo.insert(mask, best);
        best
    }
    let mut memo = HashMap::new();
    let full = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    solve(full, &adj, &mut memo) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::string::SpanString;
    use mesh_core::rng::Rng;

    fn path_graph() -> MeshGraph {
        // 0–1–2–3 path: strings engineered so only consecutive ones mesh.
        MeshGraph::from_strings(vec![
            SpanString::from_bits(8, &[0, 2]),
            SpanString::from_bits(8, &[1, 3]),
            SpanString::from_bits(8, &[0, 2]),
            SpanString::from_bits(8, &[1, 3]),
        ])
    }

    #[test]
    fn path_graph_shape() {
        let g = path_graph();
        // 0 meshes 1 and 3; 2 meshes 1 and 3: a 4-cycle actually.
        assert!(g.has_edge(0, 1) && g.has_edge(2, 3) && g.has_edge(0, 3));
        assert!(!g.has_edge(0, 2) && !g.has_edge(1, 3));
        assert_eq!(maximum_matching_size(&g), 2);
    }

    #[test]
    fn greedy_is_valid_and_maximal() {
        let mut rng = Rng::with_seed(3);
        for _ in 0..50 {
            let g = MeshGraph::random(20, 16, 4, &mut rng);
            let m = greedy_matching(&g);
            assert!(is_valid_matching(&g, &m));
            // Maximality: no remaining edge between unmatched vertices.
            let mut used = vec![false; g.node_count()];
            for &(a, b) in &m {
                used[a] = true;
                used[b] = true;
            }
            for i in 0..g.node_count() {
                for j in (i + 1)..g.node_count() {
                    assert!(
                        !(g.has_edge(i, j) && !used[i] && !used[j]),
                        "greedy missed edge ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn greedy_within_half_of_optimum() {
        let mut rng = Rng::with_seed(4);
        for _ in 0..30 {
            let g = MeshGraph::random(18, 16, 5, &mut rng);
            let greedy = greedy_matching(&g).len();
            let opt = maximum_matching_size(&g);
            assert!(greedy * 2 >= opt, "greedy {greedy} < half of optimum {opt}");
            assert!(greedy <= opt);
        }
    }

    #[test]
    fn exact_matching_on_known_graphs() {
        // Complete graph on empty strings: perfect matching.
        let g = MeshGraph::from_strings(vec![SpanString::zeros(4); 6]);
        assert_eq!(maximum_matching_size(&g), 3);
        // Edgeless graph (all-full strings): zero.
        let full = SpanString::from_bits(4, &[0, 1, 2, 3]);
        let g = MeshGraph::from_strings(vec![full; 6]);
        assert_eq!(maximum_matching_size(&g), 0);
    }

    #[test]
    fn invalid_matchings_rejected() {
        let g = path_graph();
        assert!(!is_valid_matching(&g, &vec![(0, 2)]), "non-edge");
        assert!(!is_valid_matching(&g, &vec![(0, 1), (1, 2)]), "shared vertex");
        assert!(!is_valid_matching(&g, &vec![(0, 0)]), "self loop");
        assert!(is_valid_matching(&g, &vec![]));
    }
}
