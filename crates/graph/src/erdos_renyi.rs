//! Erdős–Renyi `G(n, p)` graphs, for contrast with meshing graphs.
//!
//! §5.2 of the paper observes that meshing-graph edges are **not**
//! independent (Observation 1): conditioned on occupancies, knowing that
//! `s₁` meshes `s₂` and `s₂` meshes `s₃` lowers the probability that
//! `s₁` meshes `s₃`. The paper's concrete cost of getting this wrong is
//! §7's critique of dynamically replicated memory (DRM), whose analysis
//! "erroneously claims that the resulting graph is a simple random
//! graph".
//!
//! This module samples honest-to-goodness `G(n, p)` graphs at the *same
//! edge density* as a meshing graph so that the difference shows up in
//! the statistics rather than in an argument: at equal density the
//! independent model has dramatically more triangles (the §5.2 numbers:
//! 167 expected triangles under independence vs < 2 in truth for
//! `b = 32, r = 10, n = 1000`).
//!
//! Sampled graphs are materialized as [`MeshGraph`]s (via witness
//! strings), so every census, cover, and matching routine applies
//! unchanged.

use crate::graph::MeshGraph;
use mesh_core::rng::Rng;

/// Samples an Erdős–Renyi graph `G(n, p)`: every unordered pair is an
/// edge independently with probability `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use mesh_core::rng::Rng;
/// use mesh_graph::erdos_renyi::sample_gnp;
///
/// let mut rng = Rng::with_seed(1);
/// let g = sample_gnp(50, 0.1, &mut rng);
/// assert_eq!(g.node_count(), 50);
/// ```
pub fn sample_gnp(n: usize, p: f64, rng: &mut Rng) -> MeshGraph {
    assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
    let threshold = (p * (1u64 << 53) as f64) as u64;
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if (rng.next_u64() >> 11) < threshold {
                edges.push((i, j));
            }
        }
    }
    MeshGraph::from_edge_list(n, &edges)
}

/// Expected number of triangles in `G(n, p)`: `C(n, 3)·p³` — the number
/// §5.2 contrasts with the true (dependent) meshing-graph expectation.
pub fn expected_triangles_gnp(n: usize, p: f64) -> f64 {
    if n < 3 {
        return 0.0;
    }
    let c3 = (n as f64) * (n as f64 - 1.0) * (n as f64 - 2.0) / 6.0;
    c3 * p * p * p
}

/// Expected number of edges in `G(n, p)`: `C(n, 2)·p`.
pub fn expected_edges_gnp(n: usize, p: f64) -> f64 {
    (n as f64) * (n as f64 - 1.0) / 2.0 * p
}

/// A side-by-side census of a meshing graph and an equal-density
/// Erdős–Renyi graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelComparison {
    /// Nodes in both graphs.
    pub n: usize,
    /// Edge density of the meshing graph (used as the `G(n, p)` `p`).
    pub density: f64,
    /// Triangles observed in the meshing graph.
    pub mesh_triangles: usize,
    /// Triangles observed in the `G(n, p)` sample.
    pub gnp_triangles: usize,
    /// Closed-form `G(n, p)` expectation at this density.
    pub gnp_expected_triangles: f64,
}

/// Samples a `G(n, p)` graph at the meshing graph's empirical edge
/// density and compares triangle counts — the §5.2 dependence test as a
/// single call.
///
/// # Examples
///
/// ```
/// use mesh_core::rng::Rng;
/// use mesh_graph::{erdos_renyi::compare_models, graph::MeshGraph};
///
/// let mut rng = Rng::with_seed(2);
/// let mesh = MeshGraph::random(100, 32, 10, &mut rng);
/// let cmp = compare_models(&mesh, &mut rng);
/// // Independent edges produce many more triangles at equal density.
/// assert!(cmp.gnp_expected_triangles > cmp.mesh_triangles as f64);
/// ```
pub fn compare_models(mesh: &MeshGraph, rng: &mut Rng) -> ModelComparison {
    let n = mesh.node_count();
    let density = mesh.edge_density();
    let gnp = sample_gnp(n, density, rng);
    ModelComparison {
        n,
        density,
        mesh_triangles: mesh.triangle_count(),
        gnp_triangles: gnp.triangle_count(),
        gnp_expected_triangles: expected_triangles_gnp(n, density),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_probabilities() {
        let mut rng = Rng::with_seed(3);
        let empty = sample_gnp(20, 0.0, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let complete = sample_gnp(20, 1.0, &mut rng);
        assert_eq!(complete.edge_count(), 20 * 19 / 2);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_bad_probability() {
        let mut rng = Rng::with_seed(4);
        sample_gnp(10, 1.5, &mut rng);
    }

    #[test]
    fn edge_count_concentrates_around_expectation() {
        let mut rng = Rng::with_seed(5);
        let (n, p) = (80, 0.25);
        let expect = expected_edges_gnp(n, p);
        let mut total = 0usize;
        let trials = 20;
        for _ in 0..trials {
            total += sample_gnp(n, p, &mut rng).edge_count();
        }
        let mean = total as f64 / trials as f64;
        assert!(
            (mean - expect).abs() < expect * 0.1,
            "mean {mean} vs expectation {expect}"
        );
    }

    #[test]
    fn triangle_expectation_formula() {
        assert_eq!(expected_triangles_gnp(2, 0.5), 0.0);
        // K_4 at p=1: C(4,3) = 4 triangles.
        assert!((expected_triangles_gnp(4, 1.0) - 4.0).abs() < 1e-12);
        // The paper's §5.2 parameters: n=1000, q(32,10) ⇒ ~167 triangles.
        let q = crate::probability::mesh_probability(32, 10, 10);
        let t = expected_triangles_gnp(1000, q);
        assert!((160.0..175.0).contains(&t), "got {t}");
    }

    #[test]
    fn meshing_graphs_have_far_fewer_triangles_than_gnp() {
        let mut rng = Rng::with_seed(6);
        let mesh = MeshGraph::random(300, 32, 10, &mut rng);
        let cmp = compare_models(&mesh, &mut rng);
        // At n=300 the independent model expects ~4.5 triangles while the
        // true model expects ~0.05; require a decisive separation.
        assert!(
            cmp.gnp_expected_triangles > 10.0 * (cmp.mesh_triangles as f64 + 0.1),
            "no separation: {cmp:?}"
        );
    }

    #[test]
    fn gnp_sample_density_tracks_p() {
        let mut rng = Rng::with_seed(7);
        let g = sample_gnp(120, 0.3, &mut rng);
        assert!((g.edge_density() - 0.3).abs() < 0.05, "{}", g.edge_density());
    }
}
