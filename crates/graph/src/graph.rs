//! The meshing graph `G(S)` (§5.1, Figure 5): one node per span string,
//! an edge between two nodes iff their strings mesh.
//!
//! Meshing a set of spans corresponds to a clique in `G(S)`; releasing the
//! maximum number of spans is `MinCliqueCover`; restricting to pairs is
//! `Matching` (§5.2). The graph also exposes the triangle census used to
//! show that meshing-graph edges are *not* independent (Observation 1).

use crate::string::SpanString;
use mesh_core::rng::Rng;

/// An explicit meshing graph over a multiset of span strings.
///
/// # Examples
///
/// ```
/// use mesh_graph::{graph::MeshGraph, string::SpanString};
///
/// let g = MeshGraph::from_strings(vec![
///     SpanString::parse("0110"),
///     SpanString::parse("1001"),
///     SpanString::parse("0000"),
/// ]);
/// assert!(g.has_edge(0, 1));
/// assert_eq!(g.edge_count(), 3); // the empty span meshes with both
/// ```
#[derive(Debug, Clone)]
pub struct MeshGraph {
    strings: Vec<SpanString>,
    /// Adjacency rows as bitsets (`adj[i]` word-packed over node indices).
    adj: Vec<Vec<u64>>,
}

impl MeshGraph {
    /// Builds the meshing graph of `strings` (O(n²) mesh tests).
    pub fn from_strings(strings: Vec<SpanString>) -> Self {
        let n = strings.len();
        let words = n.div_ceil(64).max(1);
        let mut adj = vec![vec![0u64; words]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if strings[i].meshes_with(&strings[j]) {
                    adj[i][j / 64] |= 1 << (j % 64);
                    adj[j][i / 64] |= 1 << (i % 64);
                }
            }
        }
        MeshGraph { strings, adj }
    }

    /// A random meshing graph: `n` spans of `b` slots, each at occupancy
    /// `r` — the model analyzed throughout §5.
    pub fn random(n: usize, b: usize, r: usize, rng: &mut Rng) -> Self {
        MeshGraph::from_strings(
            (0..n)
                .map(|_| SpanString::random_with_occupancy(b, r, rng))
                .collect(),
        )
    }

    /// Builds the meshing graph with exactly the given edge set, by
    /// constructing *witness strings*: every non-adjacent pair is given a
    /// shared conflict slot, so two spans mesh iff they were listed as an
    /// edge. This realizes any simple graph as a meshing graph (with
    /// `b ≤ n(n−1)/2` slots), which is what makes reductions from graph
    /// problems to meshing meaningful — and lets non-string models like
    /// [`crate::erdos_renyi`] reuse every census and matching routine.
    ///
    /// Self-loops and duplicate pairs are ignored.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `≥ n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mesh_graph::graph::MeshGraph;
    ///
    /// let g = MeshGraph::from_edge_list(3, &[(0, 1), (1, 2)]);
    /// assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && !g.has_edge(0, 2));
    /// ```
    pub fn from_edge_list(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut wanted = vec![false; n * n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range for n={n}");
            if a != b {
                wanted[a * n + b] = true;
                wanted[b * n + a] = true;
            }
        }
        // One conflict slot per non-edge pair.
        let mut non_edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if !wanted[i * n + j] {
                    non_edges.push((i, j));
                }
            }
        }
        let b = non_edges.len().max(1);
        let strings = (0..n)
            .map(|v| {
                let slots: Vec<usize> = non_edges
                    .iter()
                    .enumerate()
                    .filter(|&(_, &(x, y))| x == v || y == v)
                    .map(|(slot, _)| slot)
                    .collect();
                SpanString::from_bits(b, &slots)
            })
            .collect();
        MeshGraph::from_strings(strings)
    }

    /// Number of nodes (spans).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.strings.len()
    }

    /// The underlying strings.
    #[inline]
    pub fn strings(&self) -> &[SpanString] {
        &self.strings
    }

    /// Whether spans `i` and `j` mesh.
    #[inline]
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.adj[i][j / 64] & (1 << (j % 64)) != 0
    }

    /// Degree of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        (0..self.node_count()).map(|i| self.degree(i)).sum::<usize>() / 2
    }

    /// Edge density: fraction of the `n·(n−1)/2` possible edges present
    /// (the empirical mesh probability `q`).
    pub fn edge_density(&self) -> f64 {
        let n = self.node_count();
        if n < 2 {
            return 0.0;
        }
        self.edge_count() as f64 / (n * (n - 1) / 2) as f64
    }

    /// Number of triangles — §5.2's statistic showing edges are dependent:
    /// actual triangle counts fall far below the independent-edge model.
    pub fn triangle_count(&self) -> usize {
        let n = self.node_count();
        let mut count = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if !self.has_edge(i, j) {
                    continue;
                }
                // Common neighbors of i and j above j.
                for (w, (a, b)) in self.adj[i].iter().zip(&self.adj[j]).enumerate() {
                    let mut common = a & b;
                    // Mask off indices ≤ j.
                    if w * 64 < j + 1 {
                        let cut = (j + 1 - w * 64).min(64);
                        if cut == 64 {
                            common = 0;
                        } else {
                            common &= !((1u64 << cut) - 1);
                        }
                    }
                    count += common.count_ones() as usize;
                }
            }
        }
        count
    }

    /// Neighbors of node `i`, ascending.
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let row = &self.adj[i];
        (0..self.node_count()).filter(move |&j| row[j / 64] & (1 << (j % 64)) != 0)
    }

    /// Whether `set` (node indices) forms a clique, i.e. the spans can all
    /// be meshed together onto one physical span.
    pub fn is_clique(&self, set: &[usize]) -> bool {
        for (a, &i) in set.iter().enumerate() {
            for &j in &set[a + 1..] {
                if !self.has_edge(i, j) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure5() -> MeshGraph {
        MeshGraph::from_strings(vec![
            SpanString::parse("01101000"),
            SpanString::parse("01010000"),
            SpanString::parse("00100110"),
            SpanString::parse("00010000"),
        ])
    }

    #[test]
    fn figure_5_graph_structure() {
        let g = figure5();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(0, 3) && g.has_edge(1, 2) && g.has_edge(2, 3));
        assert!(!g.has_edge(0, 1) && !g.has_edge(0, 2) && !g.has_edge(1, 3));
        assert_eq!(g.degree(3), 2);
        assert_eq!(g.triangle_count(), 0);
    }

    #[test]
    fn clique_detection() {
        let g = MeshGraph::from_strings(vec![
            SpanString::from_bits(8, &[0]),
            SpanString::from_bits(8, &[1]),
            SpanString::from_bits(8, &[2]),
            SpanString::from_bits(8, &[0, 1]),
        ]);
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(!g.is_clique(&[0, 1, 3]));
        assert!(g.is_clique(&[2, 3]));
        assert!(g.is_clique(&[0]));
        assert!(g.is_clique(&[]));
    }

    #[test]
    fn triangle_count_matches_bruteforce() {
        let mut rng = Rng::with_seed(8);
        for _ in 0..10 {
            let g = MeshGraph::random(24, 16, 4, &mut rng);
            let mut brute = 0;
            for i in 0..24 {
                for j in (i + 1)..24 {
                    for k in (j + 1)..24 {
                        if g.has_edge(i, j) && g.has_edge(j, k) && g.has_edge(i, k) {
                            brute += 1;
                        }
                    }
                }
            }
            assert_eq!(g.triangle_count(), brute);
        }
    }

    #[test]
    fn empty_strings_form_complete_graph() {
        let g = MeshGraph::from_strings(vec![SpanString::zeros(8); 5]);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.triangle_count(), 10);
        assert_eq!(g.edge_density(), 1.0);
    }

    #[test]
    fn full_strings_form_empty_graph() {
        let full = SpanString::from_bits(4, &[0, 1, 2, 3]);
        let g = MeshGraph::from_strings(vec![full; 6]);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edge_density(), 0.0);
    }

    #[test]
    fn density_tracks_occupancy() {
        // Higher occupancy ⇒ fewer meshes (§2.1's key observation,
        // inverted: more free objects ⇒ more meshes).
        let mut rng = Rng::with_seed(77);
        let sparse = MeshGraph::random(64, 32, 2, &mut rng).edge_density();
        let dense = MeshGraph::random(64, 32, 12, &mut rng).edge_density();
        assert!(
            sparse > dense,
            "sparse spans should mesh more often ({sparse} vs {dense})"
        );
    }

    #[test]
    fn neighbors_iterator() {
        let g = figure5();
        assert_eq!(g.neighbors(3).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![3]);
    }
}
