//! Edmonds' blossom algorithm: exact maximum matching on general graphs.
//!
//! The §5 analysis reduces near-optimal meshing to `Matching` on the
//! meshing graph. [`crate::matching::maximum_matching_size`] validates
//! small instances by subset DP but is exponential; this module provides
//! the classical `O(V³)` blossom algorithm [Edmonds 1965], which scales
//! to the span counts real heaps produce (thousands of nodes). The
//! Lemma 5.3 experiments use it to report SplitMesher's quality against
//! the *true* maximum matching rather than only against the analytic
//! bound.
//!
//! Meshing graphs are general graphs — odd cycles occur (three spans can
//! pairwise conflict through different slots) — so bipartite matchers do
//! not apply; blossom contraction is genuinely required.

use crate::graph::MeshGraph;
use crate::matching::Matching;

/// State for one augmenting-path search.
struct Search<'g> {
    g: &'g MeshGraph,
    /// `mate[v]` = matched partner of `v`, or `usize::MAX`.
    mate: Vec<usize>,
    /// Parent link in the alternating forest (through an odd edge).
    parent: Vec<usize>,
    /// `base[v]` = base vertex of the (possibly contracted) blossom
    /// containing `v`.
    base: Vec<usize>,
    /// Scratch marks.
    used: Vec<bool>,
    blossom: Vec<bool>,
}

const NONE: usize = usize::MAX;

impl<'g> Search<'g> {
    fn new(g: &'g MeshGraph, mate: Vec<usize>) -> Self {
        let n = g.node_count();
        Search {
            g,
            mate,
            parent: vec![NONE; n],
            base: (0..n).collect(),
            used: vec![false; n],
            blossom: vec![false; n],
        }
    }

    /// Lowest common ancestor of the blossoms containing `a` and `b` in
    /// the alternating forest, found by two-phase path marking.
    fn lca(&mut self, mut a: usize, mut b: usize) -> usize {
        let n = self.g.node_count();
        let mut marked = vec![false; n];
        // Walk a's path to the root, marking blossom bases.
        loop {
            a = self.base[a];
            marked[a] = true;
            if self.mate[a] == NONE {
                break;
            }
            a = self.parent[self.mate[a]];
        }
        // Walk b's path until a marked base is hit.
        loop {
            b = self.base[b];
            if marked[b] {
                return b;
            }
            b = self.parent[self.mate[b]];
        }
    }

    /// Marks the blossom path from `v` down to the blossom base `b`,
    /// re-rooting parent links through `child`.
    fn mark_path(&mut self, mut v: usize, b: usize, mut child: usize) {
        while self.base[v] != b {
            self.blossom[self.base[v]] = true;
            self.blossom[self.base[self.mate[v]]] = true;
            self.parent[v] = child;
            child = self.mate[v];
            v = self.parent[self.mate[v]];
        }
    }

    /// One BFS from unmatched `root`; returns the end of an augmenting
    /// path, or `NONE`.
    fn find_path(&mut self, root: usize) -> usize {
        let n = self.g.node_count();
        self.used.iter_mut().for_each(|u| *u = false);
        self.parent.iter_mut().for_each(|p| *p = NONE);
        for (i, b) in self.base.iter_mut().enumerate() {
            *b = i;
        }
        self.used[root] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            let neighbors: Vec<usize> = self.g.neighbors(v).collect();
            for to in neighbors {
                if self.base[v] == self.base[to] || self.mate[v] == to {
                    continue;
                }
                if to == root || (self.mate[to] != NONE && self.parent[self.mate[to]] != NONE)
                {
                    // Odd cycle: contract the blossom around the lca.
                    let cur_base = self.lca(v, to);
                    self.blossom.iter_mut().for_each(|b| *b = false);
                    self.mark_path(v, cur_base, to);
                    self.mark_path(to, cur_base, v);
                    for i in 0..n {
                        if self.blossom[self.base[i]] {
                            self.base[i] = cur_base;
                            if !self.used[i] {
                                self.used[i] = true;
                                queue.push_back(i);
                            }
                        }
                    }
                } else if self.parent[to] == NONE {
                    self.parent[to] = v;
                    if self.mate[to] == NONE {
                        return to; // augmenting path found
                    }
                    let m = self.mate[to];
                    self.used[m] = true;
                    queue.push_back(m);
                }
            }
        }
        NONE
    }

    /// Flips the matching along the augmenting path ending at `v`.
    fn augment(&mut self, mut v: usize) {
        while v != NONE {
            let pv = self.parent[v];
            let ppv = self.mate[pv];
            self.mate[v] = pv;
            self.mate[pv] = v;
            v = ppv;
        }
    }
}

/// Computes a maximum matching of `g` with Edmonds' blossom algorithm.
///
/// Runs in `O(V³)`; practical for meshing graphs of a few thousand spans.
/// The result is deterministic for a given graph (vertices are scanned in
/// index order).
///
/// # Examples
///
/// ```
/// use mesh_graph::blossom::blossom_matching;
/// use mesh_graph::graph::MeshGraph;
/// use mesh_graph::string::SpanString;
///
/// // Two spans with disjoint slots mesh: one pair.
/// let g = MeshGraph::from_strings(vec![
///     SpanString::from_bits(8, &[0, 2]),
///     SpanString::from_bits(8, &[1, 3]),
/// ]);
/// assert_eq!(blossom_matching(&g).len(), 1);
/// ```
pub fn blossom_matching(g: &MeshGraph) -> Matching {
    let n = g.node_count();
    let mut search = Search::new(g, vec![NONE; n]);
    // Greedy seeding halves the number of BFS phases in practice.
    for v in 0..n {
        if search.mate[v] == NONE {
            if let Some(to) = g.neighbors(v).find(|&to| search.mate[to] == NONE && to != v) {
                search.mate[v] = to;
                search.mate[to] = v;
            }
        }
    }
    for v in 0..n {
        if search.mate[v] == NONE {
            let end = search.find_path(v);
            if end != NONE {
                search.augment(end);
            }
        }
    }
    let mut out = Vec::new();
    for v in 0..n {
        if search.mate[v] != NONE && v < search.mate[v] {
            out.push((v, search.mate[v]));
        }
    }
    out
}

/// Size of a maximum matching of `g` (blossom algorithm).
pub fn blossom_matching_size(g: &MeshGraph) -> usize {
    blossom_matching(g).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{is_valid_matching, maximum_matching_size};
    use crate::string::SpanString;
    use mesh_core::rng::Rng;

    fn graph_with_edges(n: usize, edges: &[(usize, usize)]) -> MeshGraph {
        MeshGraph::from_edge_list(n, edges)
    }

    #[test]
    fn empty_and_singleton() {
        let g = MeshGraph::from_strings(vec![]);
        assert!(blossom_matching(&g).is_empty());
        let g = MeshGraph::from_strings(vec![SpanString::zeros(4)]);
        assert!(blossom_matching(&g).is_empty());
    }

    #[test]
    fn triangle_matches_one_pair() {
        let g = graph_with_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let m = blossom_matching(&g);
        assert!(is_valid_matching(&g, &m));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn odd_cycle_plus_pendant_needs_blossom() {
        // 5-cycle 0-1-2-3-4-0 with pendant 5-0: maximum matching is 3,
        // which a matcher without blossom contraction can miss.
        let g = graph_with_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (5, 0)]);
        let m = blossom_matching(&g);
        assert!(is_valid_matching(&g, &m));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn petersen_graph_has_perfect_matching() {
        // The Petersen graph: 3-regular, 10 vertices, perfect matching 5.
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let edges: Vec<(usize, usize)> =
            outer.iter().chain(&spokes).chain(&inner).copied().collect();
        let g = graph_with_edges(10, &edges);
        let m = blossom_matching(&g);
        assert!(is_valid_matching(&g, &m));
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn two_triangles_bridged() {
        // Triangles {0,1,2} and {3,4,5} bridged by 2-3: matching 3.
        let g = graph_with_edges(
            6,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
        );
        assert_eq!(blossom_matching(&g).len(), 3);
    }

    #[test]
    fn agrees_with_subset_dp_on_random_graphs() {
        let mut rng = Rng::with_seed(0xb105);
        for trial in 0..120 {
            let n = 6 + (trial % 13);
            let r = 2 + (trial % 5);
            let g = MeshGraph::random(n, 16, r, &mut rng);
            let m = blossom_matching(&g);
            assert!(is_valid_matching(&g, &m), "trial {trial}");
            assert_eq!(
                m.len(),
                maximum_matching_size(&g),
                "trial {trial}: blossom disagrees with exact DP on n={n} r={r}"
            );
        }
    }

    #[test]
    fn complete_graphs_match_floor_n_half() {
        for n in 1..12 {
            let g = MeshGraph::from_strings(vec![SpanString::zeros(4); n]);
            assert_eq!(blossom_matching(&g).len(), n / 2, "K_{n}");
        }
    }

    #[test]
    fn scales_to_realistic_span_counts() {
        let mut rng = Rng::with_seed(7);
        let g = MeshGraph::random(600, 64, 12, &mut rng);
        let m = blossom_matching(&g);
        assert!(is_valid_matching(&g, &m));
        // With q ≈ 6% and 600 spans the matching should be near-perfect.
        assert!(m.len() > 250, "got {}", m.len());
    }
}
