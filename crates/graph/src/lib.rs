//! # mesh-graph
//!
//! The theory kit for the Mesh reproduction: everything §5 of *Mesh:
//! Compacting Memory Management for C/C++ Applications* (PLDI 2019)
//! formalizes, as runnable code.
//!
//! * [`string`] — spans as binary strings and the meshability predicate
//!   (Definition 5.1).
//! * [`graph`] — the meshing graph `G(S)` (Figure 5), with the triangle
//!   census showing edges are *not* independent (Observation 1).
//! * [`clique_cover`] — `MinCliqueCover`: exact (small-instance) and
//!   greedy solvers; meshing `k` spans in a clique frees `k − 1`.
//! * [`matching`] — maximum and greedy `Matching`: the relaxation §5.2
//!   argues loses little because triangles are rare.
//! * [`blossom`] — Edmonds' `O(V³)` maximum-matching algorithm, the exact
//!   optimum at realistic span counts (SplitMesher's quality reference).
//! * [`erdos_renyi`] — `G(n, p)` random graphs for contrast: §5.2 and §7
//!   argue meshing graphs are *not* Erdős–Renyi, and the census here
//!   quantifies the difference.
//! * [`split_mesher`] — the paper's SplitMesher procedure (Figure 2) on
//!   pure strings, for Lemma 5.3 validation and probe-limit ablations.
//! * [`probability`] — closed forms for mesh probabilities, the §2.2
//!   randomized-allocation bound, Lemma 5.3's matching bound, and the
//!   Robson fragmentation factor.
//!
//! ## Example: how much can a random heap compact?
//!
//! ```
//! use mesh_core::rng::Rng;
//! use mesh_graph::{graph::MeshGraph, matching, probability};
//!
//! let mut rng = Rng::with_seed(7);
//! // 24 spans, 32 slots each, 8 objects per span.
//! let g = MeshGraph::random(24, 32, 8, &mut rng);
//! let released = matching::maximum_matching_size(&g);
//! let q = probability::mesh_probability(32, 8, 8);
//! println!("released {released} of 24 spans (pair mesh probability {q:.3})");
//! ```

pub mod blossom;
pub mod clique_cover;
pub mod erdos_renyi;
pub mod graph;
pub mod matching;
pub mod probability;
pub mod split_mesher;
pub mod string;

pub use graph::MeshGraph;
pub use string::SpanString;
