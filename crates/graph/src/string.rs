//! Span strings: the paper's §5.1 abstraction of spans as binary strings.
//!
//! A span of capacity `b` is a string `s ∈ {0,1}^b` with `s(i) = 1` iff an
//! object is allocated at offset `i`. Two strings *mesh* iff no position is
//! set in both (Definition 5.1); meshing `k` strings releases `k − 1` of
//! them.

use mesh_core::rng::Rng;
use std::fmt;

/// A binary string representing one span's allocation state (§5.1).
///
/// # Examples
///
/// ```
/// use mesh_graph::string::SpanString;
///
/// let a = SpanString::from_bits(8, &[0, 2, 4]);
/// let b = SpanString::from_bits(8, &[1, 3, 5]);
/// assert!(a.meshes_with(&b));
/// assert_eq!(a.occupancy(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SpanString {
    words: Vec<u64>,
    len: usize,
}

impl SpanString {
    /// The all-zero string of length `len` (an empty span).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn zeros(len: usize) -> Self {
        assert!(len > 0, "span strings must have positive length");
        SpanString {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A string of length `len` with ones exactly at `bits`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_bits(len: usize, bits: &[usize]) -> Self {
        let mut s = SpanString::zeros(len);
        for &b in bits {
            s.set(b);
        }
        s
    }

    /// Parses a `0`/`1` string, e.g. `"01101000"` (Figure 5's node labels).
    ///
    /// # Panics
    ///
    /// Panics on characters other than `0`/`1` or an empty string.
    pub fn parse(text: &str) -> Self {
        let mut s = SpanString::zeros(text.len());
        for (i, c) in text.chars().enumerate() {
            match c {
                '0' => {}
                '1' => s.set(i),
                other => panic!("invalid span-string character {other:?}"),
            }
        }
        s
    }

    /// A uniformly random string with exactly `ones` set bits, the model
    /// of a randomized span at occupancy `ones` (§5.2's analysis setting).
    ///
    /// # Panics
    ///
    /// Panics if `ones > len`.
    pub fn random_with_occupancy(len: usize, ones: usize, rng: &mut Rng) -> Self {
        assert!(ones <= len);
        // Floyd's algorithm for a uniform k-subset.
        let mut s = SpanString::zeros(len);
        for j in (len - ones)..len {
            let t = rng.below(j as u32 + 1) as usize;
            if s.get(t) {
                s.set(j);
            } else {
                s.set(t);
            }
        }
        s
    }

    /// A random string where each bit is one independently with
    /// probability `p`.
    pub fn random_bernoulli(len: usize, p: f64, rng: &mut Rng) -> Self {
        let mut s = SpanString::zeros(len);
        for i in 0..len {
            if (rng.next_u64() as f64 / u64::MAX as f64) < p {
                s.set(i);
            }
        }
        s
    }

    /// String length `b` (slots per span).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the string has zero length (never true; strings are
    /// non-empty by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of set bits (objects in the span).
    #[inline]
    pub fn occupancy(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Definition 5.1: `Σᵢ s₁(i)·s₂(i) = 0`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ (different size classes never mesh and
    /// comparing them is a bug).
    #[inline]
    pub fn meshes_with(&self, other: &SpanString) -> bool {
        assert_eq!(self.len, other.len, "meshing strings of unequal length");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & b == 0)
    }

    /// Whether a whole set of strings meshes pairwise (Definition 5.1's
    /// generalization; equivalently, their union fits in one span).
    pub fn all_mesh(strings: &[&SpanString]) -> bool {
        if strings.is_empty() {
            return true;
        }
        let len = strings[0].len;
        let words = strings[0].words.len();
        let mut acc = vec![0u64; words];
        for s in strings {
            assert_eq!(s.len, len);
            for (a, w) in acc.iter_mut().zip(&s.words) {
                if *a & w != 0 {
                    return false;
                }
                *a |= w;
            }
        }
        true
    }

    /// The union (bitwise OR) of two meshed strings: the merged span.
    pub fn union(&self, other: &SpanString) -> SpanString {
        assert_eq!(self.len, other.len);
        SpanString {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    /// Indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }
}

impl fmt::Display for SpanString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        for text in ["01101000", "01010000", "00100110", "00010000"] {
            assert_eq!(SpanString::parse(text).to_string(), text);
        }
    }

    #[test]
    fn figure_5_example_meshes() {
        // The four nodes of Figure 5.
        let s1 = SpanString::parse("01101000");
        let s2 = SpanString::parse("01010000");
        let s3 = SpanString::parse("00100110");
        let s4 = SpanString::parse("00010000");
        // Edges drawn in the figure: s1–s4, s2–s3, s3–s4 mesh.
        assert!(s1.meshes_with(&s4));
        assert!(s2.meshes_with(&s3));
        assert!(s3.meshes_with(&s4));
        // Non-edges: s1–s2 (bit 1), s1–s3 (bit 2), s2–s4 (bit 3).
        assert!(!s1.meshes_with(&s2));
        assert!(!s1.meshes_with(&s3));
        assert!(!s2.meshes_with(&s4));
    }

    #[test]
    fn occupancy_counts() {
        assert_eq!(SpanString::zeros(100).occupancy(), 0);
        assert_eq!(SpanString::from_bits(100, &[0, 50, 99]).occupancy(), 3);
    }

    #[test]
    fn random_with_occupancy_exact() {
        let mut rng = Rng::with_seed(9);
        for ones in [0usize, 1, 10, 64, 100, 256] {
            let s = SpanString::random_with_occupancy(256, ones, &mut rng);
            assert_eq!(s.occupancy(), ones);
        }
    }

    #[test]
    fn random_with_occupancy_uniform_positions() {
        // Each slot should be occupied ~ones/len of the time.
        let mut rng = Rng::with_seed(10);
        let (len, ones, trials) = (32, 8, 20_000);
        let mut counts = vec![0usize; len];
        for _ in 0..trials {
            let s = SpanString::random_with_occupancy(len, ones, &mut rng);
            for i in s.iter_ones() {
                counts[i] += 1;
            }
        }
        let expected = trials * ones / len;
        for &c in &counts {
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.15,
                "position bias: {counts:?}"
            );
        }
    }

    #[test]
    fn all_mesh_and_union() {
        let a = SpanString::from_bits(16, &[0, 1]);
        let b = SpanString::from_bits(16, &[2, 3]);
        let c = SpanString::from_bits(16, &[4]);
        assert!(SpanString::all_mesh(&[&a, &b, &c]));
        let u = a.union(&b).union(&c);
        assert_eq!(u.occupancy(), 5);
        let d = SpanString::from_bits(16, &[1]);
        assert!(!SpanString::all_mesh(&[&a, &b, &d]));
        assert!(SpanString::all_mesh(&[]));
    }

    #[test]
    fn mesh_is_symmetric_and_reflexive_only_for_empty() {
        let mut rng = Rng::with_seed(4);
        for _ in 0..100 {
            let a = SpanString::random_with_occupancy(64, 5, &mut rng);
            let b = SpanString::random_with_occupancy(64, 9, &mut rng);
            assert_eq!(a.meshes_with(&b), b.meshes_with(&a));
            assert!(!a.meshes_with(&a), "non-empty string can't mesh itself");
        }
        let z = SpanString::zeros(64);
        assert!(z.meshes_with(&z));
    }

    #[test]
    fn bernoulli_density() {
        let mut rng = Rng::with_seed(5);
        let s = SpanString::random_bernoulli(10_000, 0.3, &mut rng);
        let frac = s.occupancy() as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_set_panics() {
        SpanString::zeros(8).set(8);
    }

    #[test]
    #[should_panic(expected = "unequal length")]
    fn unequal_mesh_panics() {
        SpanString::zeros(8).meshes_with(&SpanString::zeros(9));
    }
}
