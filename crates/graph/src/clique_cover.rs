//! MinCliqueCover on meshing graphs (§5.1, Theorem 5.2).
//!
//! Decomposing the meshing graph into `k` disjoint cliques frees `n − k`
//! strings. General `MinCliqueCover` is NP-hard and inapproximable, but
//! the paper's Theorem 5.2 shows meshing with constant-length strings is
//! polynomial (via an impractical coloring enumeration). This module
//! provides a greedy cover plus an exact exponential solver for the small
//! instances used to quantify how close `Matching` (§5.2) comes to the
//! optimum.

use crate::graph::MeshGraph;
use std::collections::HashMap;

/// A clique cover: disjoint cliques whose union is all nodes. Meshing the
/// spans of each clique frees `clique.len() − 1` spans.
pub type CliqueCover = Vec<Vec<usize>>;

/// Number of spans released by a cover: `n − #cliques`.
pub fn spans_released(n: usize, cover: &CliqueCover) -> usize {
    n - cover.len()
}

/// Verifies that `cover` is a partition of `g`'s nodes into cliques.
pub fn is_valid_cover(g: &MeshGraph, cover: &CliqueCover) -> bool {
    let mut seen = vec![false; g.node_count()];
    for clique in cover {
        if !g.is_clique(clique) {
            return false;
        }
        for &v in clique {
            if seen[v] {
                return false;
            }
            seen[v] = true;
        }
    }
    seen.into_iter().all(|s| s)
}

/// Greedy first-fit cover: place each node into the first clique it fully
/// connects to, else start a new clique.
pub fn greedy_cover(g: &MeshGraph) -> CliqueCover {
    let mut cover: CliqueCover = Vec::new();
    for v in 0..g.node_count() {
        let slot = cover
            .iter()
            .position(|c| c.iter().all(|&u| g.has_edge(u, v)));
        match slot {
            Some(i) => cover[i].push(v),
            None => cover.push(vec![v]),
        }
    }
    cover
}

/// Exact minimum clique cover size by branch-and-memoize over subsets:
/// the lowest vertex of the remaining set is covered by some clique
/// containing it; enumerate those cliques recursively.
///
/// # Panics
///
/// Panics if the graph has more than 24 nodes.
pub fn min_clique_cover_size(g: &MeshGraph) -> usize {
    let n = g.node_count();
    assert!(n <= 24, "exact cover is exponential; use ≤ 24 nodes");
    if n == 0 {
        return 0;
    }
    let adj: Vec<u32> = (0..n)
        .map(|i| g.neighbors(i).fold(0u32, |m, j| m | (1 << j)))
        .collect();

    /// Enumerates maximal cliques within `allowed ∪ {seed}` that contain
    /// all of `clique`, invoking `f` on each (represented as a bitmask).
    fn extend(
        clique: u32,
        candidates: u32,
        adj: &[u32],
        f: &mut impl FnMut(u32),
    ) {
        if candidates == 0 {
            f(clique);
            return;
        }
        let v = candidates.trailing_zeros() as usize;
        // Branch 1: include v.
        extend(
            clique | (1 << v),
            candidates & !(1 << v) & adj[v],
            adj,
            f,
        );
        // Branch 2: exclude v (still explore remaining candidates, but
        // also emit the clique as-is when nothing else fits).
        let rest = candidates & !(1 << v);
        if rest == 0 {
            f(clique);
        } else {
            extend(clique, rest, adj, f);
        }
    }

    fn solve(mask: u32, adj: &[u32], memo: &mut HashMap<u32, u8>, best_known: u8) -> u8 {
        if mask == 0 {
            return 0;
        }
        if let Some(&v) = memo.get(&mask) {
            return v;
        }
        if best_known == 0 {
            return u8::MAX / 2;
        }
        let i = mask.trailing_zeros() as usize;
        let mut best = u8::MAX / 2;
        let mut cliques = Vec::new();
        extend(1 << i, adj[i] & mask & !(1 << i), adj, &mut |c| {
            cliques.push(c)
        });
        cliques.sort_unstable_by_key(|c| std::cmp::Reverse(c.count_ones()));
        cliques.dedup();
        for c in cliques {
            let v = 1 + solve(mask & !c, adj, memo, best.saturating_sub(1));
            best = best.min(v);
        }
        memo.insert(mask, best);
        best
    }

    let full = (1u32 << n) - 1;
    let mut memo = HashMap::new();
    let upper = greedy_cover(g).len() as u8;
    solve(full, &adj, &mut memo, upper) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::maximum_matching_size;
    use crate::string::SpanString;
    use mesh_core::rng::Rng;

    #[test]
    fn complete_graph_covers_with_one_clique() {
        let g = MeshGraph::from_strings(vec![SpanString::zeros(8); 6]);
        assert_eq!(min_clique_cover_size(&g), 1);
        let cover = greedy_cover(&g);
        assert!(is_valid_cover(&g, &cover));
        assert_eq!(cover.len(), 1);
        assert_eq!(spans_released(6, &cover), 5);
    }

    #[test]
    fn edgeless_graph_needs_n_cliques() {
        let full = SpanString::from_bits(4, &[0, 1, 2, 3]);
        let g = MeshGraph::from_strings(vec![full; 5]);
        assert_eq!(min_clique_cover_size(&g), 5);
        let cover = greedy_cover(&g);
        assert!(is_valid_cover(&g, &cover));
        assert_eq!(spans_released(5, &cover), 0);
    }

    #[test]
    fn figure_5_cover() {
        let g = MeshGraph::from_strings(vec![
            SpanString::parse("01101000"),
            SpanString::parse("01010000"),
            SpanString::parse("00100110"),
            SpanString::parse("00010000"),
        ]);
        // Optimal: {0,3} and {1,2} — two cliques, two spans released.
        assert_eq!(min_clique_cover_size(&g), 2);
    }

    #[test]
    fn greedy_cover_is_always_valid() {
        let mut rng = Rng::with_seed(12);
        for _ in 0..50 {
            let g = MeshGraph::random(30, 16, 4, &mut rng);
            let cover = greedy_cover(&g);
            assert!(is_valid_cover(&g, &cover));
        }
    }

    #[test]
    fn exact_cover_at_most_greedy() {
        let mut rng = Rng::with_seed(13);
        for _ in 0..20 {
            let g = MeshGraph::random(14, 16, 5, &mut rng);
            let exact = min_clique_cover_size(&g);
            let greedy = greedy_cover(&g).len();
            assert!(exact <= greedy, "exact {exact} > greedy {greedy}");
        }
    }

    #[test]
    fn matching_vs_cover_release_relation() {
        // Releases via matching = |M|; via optimal cover = n − k. A
        // matching is itself a cover with (n − |M|) cliques, so
        // n − k ≥ |M| always; §5.2 argues they are *close* on meshing
        // graphs because big cliques are rare.
        let mut rng = Rng::with_seed(14);
        let mut ratios = vec![];
        for _ in 0..20 {
            let g = MeshGraph::random(16, 32, 10, &mut rng);
            let m = maximum_matching_size(&g);
            let k = min_clique_cover_size(&g);
            let released_cover = 16 - k;
            assert!(released_cover >= m);
            if released_cover > 0 {
                ratios.push(m as f64 / released_cover as f64);
            }
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(
            avg > 0.8,
            "matching should capture most of the cover's savings, avg ratio {avg}"
        );
    }

    #[test]
    fn cover_validity_rejects_overlap_and_nonclique() {
        let g = MeshGraph::from_strings(vec![
            SpanString::from_bits(4, &[0]),
            SpanString::from_bits(4, &[1]),
            SpanString::from_bits(4, &[0]),
        ]);
        assert!(!is_valid_cover(&g, &vec![vec![0, 2], vec![1]]), "0,2 collide");
        assert!(!is_valid_cover(&g, &vec![vec![0, 1]]), "missing node 2");
        assert!(!is_valid_cover(
            &g,
            &vec![vec![0, 1], vec![1, 2]]
        ));
        assert!(is_valid_cover(&g, &vec![vec![0, 1], vec![2]]));
    }
}
