//! A pure (string-level) implementation of the SplitMesher procedure of
//! Figure 2, used for the §5.3 experiments (Lemma 5.3 validation and the
//! probe-limit ablation) without involving a live heap.
//!
//! ```text
//! SplitMesher(S, t)
//!   Sl, Sr = S[1 : n/2], S[n/2+1 : n]
//!   for i in 0..t:
//!     for j in 0..|Sl|:
//!       if Meshable(Sl(j), Sr((j+i) % |Sl|)):
//!         remove and mesh the pair
//! ```

use crate::string::SpanString;
use mesh_core::rng::Rng;

/// Result of one SplitMesher run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMesherOutcome {
    /// Meshed pairs as indices into the input slice.
    pub pairs: Vec<(usize, usize)>,
    /// Mesh tests performed (bounded by `t·n/2`).
    pub probes: usize,
}

impl SplitMesherOutcome {
    /// Spans released: one per meshed pair.
    pub fn released(&self) -> usize {
        self.pairs.len()
    }
}

/// Runs SplitMesher over `strings` with probe limit `t` (Figure 2).
///
/// The input order is randomized first (the paper's `S` is "the randomly
/// ordered span list"), then split into halves; element `j` of the left
/// half is probed against elements `(j+i) mod len` of the right half for
/// `i < t`. Matched pairs drop out of both halves.
pub fn split_mesher(strings: &[SpanString], t: usize, rng: &mut Rng) -> SplitMesherOutcome {
    let n = strings.len();
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let half = n / 2;
    let (left, right) = order.split_at(half);
    split_mesher_presplit(strings, left, right, t)
}

/// SplitMesher over a caller-provided split (deterministic; used by tests
/// and by the probe-limit ablation to hold the split fixed while varying
/// `t`).
pub fn split_mesher_presplit(
    strings: &[SpanString],
    left: &[usize],
    right: &[usize],
    t: usize,
) -> SplitMesherOutcome {
    let len = left.len();
    let mut outcome = SplitMesherOutcome {
        pairs: Vec::new(),
        probes: 0,
    };
    if len == 0 || right.is_empty() {
        return outcome;
    }
    let mut used_l = vec![false; left.len()];
    let mut used_r = vec![false; right.len()];
    for i in 0..t {
        for j in 0..len {
            if used_l[j] {
                continue;
            }
            let k = (j + i) % right.len();
            if used_r[k] {
                continue;
            }
            outcome.probes += 1;
            if strings[left[j]].meshes_with(&strings[right[k]]) {
                used_l[j] = true;
                used_r[k] = true;
                outcome.pairs.push((left[j], right[k]));
            }
        }
    }
    outcome
}

/// The empirical setting of Lemma 5.3: `n` random spans of length `b` at
/// occupancy `r`; returns `(outcome, q)` where `q` is the pairwise mesh
/// probability for this occupancy (needed to express `t = k/q`).
pub fn lemma53_trial(
    n: usize,
    b: usize,
    r: usize,
    t: usize,
    rng: &mut Rng,
) -> (SplitMesherOutcome, f64) {
    let strings: Vec<SpanString> = (0..n)
        .map(|_| SpanString::random_with_occupancy(b, r, rng))
        .collect();
    let q = crate::probability::mesh_probability(b, r, r);
    (split_mesher(&strings, t, rng), q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::MeshGraph;
    use crate::matching::{is_valid_matching, maximum_matching_size};

    #[test]
    fn finds_pairs_on_disjoint_halves() {
        // Evens occupy low slots, odds occupy high slots: all cross pairs
        // mesh, so SplitMesher must pair everything even with t = 1.
        let strings: Vec<SpanString> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    SpanString::from_bits(16, &[0, 1])
                } else {
                    SpanString::from_bits(16, &[8, 9])
                }
            })
            .collect();
        let mut rng = Rng::with_seed(1);
        let out = split_mesher(&strings, 16, &mut rng);
        assert_eq!(out.released(), 4, "all spans pair up");
        // Every pair must be one even + one odd.
        for &(a, b) in &out.pairs {
            assert_ne!(a % 2, b % 2);
        }
    }

    #[test]
    fn output_is_a_valid_matching() {
        let mut rng = Rng::with_seed(2);
        for trial in 0..20 {
            let strings: Vec<SpanString> = (0..40)
                .map(|_| SpanString::random_with_occupancy(32, 6, &mut rng))
                .collect();
            let out = split_mesher(&strings, 64, &mut rng);
            let g = MeshGraph::from_strings(strings);
            assert!(
                is_valid_matching(&g, &out.pairs),
                "trial {trial}: invalid matching"
            );
        }
    }

    #[test]
    fn probe_budget_respected() {
        let strings: Vec<SpanString> = (0..64)
            .map(|i| SpanString::from_bits(32, &[i % 32]))
            .collect();
        let mut rng = Rng::with_seed(3);
        for t in [1usize, 4, 16, 64] {
            let out = split_mesher(&strings, t, &mut rng);
            assert!(
                out.probes <= t * 32,
                "t={t}: {} probes exceeds t·n/2",
                out.probes
            );
        }
    }

    #[test]
    fn more_probes_never_fewer_meshes_on_fixed_split() {
        let mut rng = Rng::with_seed(4);
        let strings: Vec<SpanString> = (0..60)
            .map(|_| SpanString::random_with_occupancy(32, 8, &mut rng))
            .collect();
        let mut order: Vec<usize> = (0..60).collect();
        rng.shuffle(&mut order);
        let (l, r) = order.split_at(30);
        let mut prev = 0;
        for t in [1usize, 2, 4, 8, 16, 32, 64] {
            let out = split_mesher_presplit(&strings, l, r, t);
            assert!(
                out.released() >= prev,
                "t={t} released {} < previous {prev}",
                out.released()
            );
            prev = out.released();
        }
    }

    #[test]
    fn approaches_half_of_maximum_matching() {
        // Lemma 5.3's qualitative content: with t ≫ 1/q, SplitMesher
        // finds at least ~half the optimum (restricted to the split).
        let mut rng = Rng::with_seed(5);
        let mut ratio_sum = 0.0;
        let mut trials = 0;
        for _ in 0..15 {
            let strings: Vec<SpanString> = (0..20)
                .map(|_| SpanString::random_with_occupancy(32, 8, &mut rng))
                .collect();
            let out = split_mesher(&strings, 256, &mut rng);
            let g = MeshGraph::from_strings(strings);
            let opt = maximum_matching_size(&g);
            if opt > 0 {
                ratio_sum += out.released() as f64 / opt as f64;
                trials += 1;
            }
        }
        let avg = ratio_sum / trials as f64;
        assert!(avg >= 0.5, "average quality {avg} below the 1/2 guarantee");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let mut rng = Rng::with_seed(6);
        assert_eq!(split_mesher(&[], 64, &mut rng).released(), 0);
        let one = vec![SpanString::zeros(8)];
        assert_eq!(split_mesher(&one, 64, &mut rng).released(), 0);
        let two = vec![SpanString::zeros(8), SpanString::zeros(8)];
        assert_eq!(split_mesher(&two, 64, &mut rng).released(), 1);
    }
}
