//! The probability engine behind Mesh's analytical claims: pairwise and
//! triple mesh probabilities (§5.2), the randomized-allocation bound of
//! §2.2, Lemma 5.3's matching bound, and the Robson fragmentation factor
//! the paper's introduction cites.
//!
//! Everything is computed in log space so quantities like the paper's
//! 10⁻¹⁵² "probability of being unable to mesh" are exact enough to
//! reproduce digit-for-digit.

/// Natural log of `n!` (iterative; exact summation in f64).
pub fn ln_factorial(n: usize) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

/// Natural log of the binomial coefficient `C(n, k)`; `-inf` when the
/// coefficient is zero.
pub fn ln_choose(n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Probability that two uniformly random strings of length `b` with
/// occupancies `r1` and `r2` mesh:
/// `q = C(b − r1, r2) / C(b, r2)` (§5.2).
pub fn mesh_probability(b: usize, r1: usize, r2: usize) -> f64 {
    if r1 + r2 > b {
        return 0.0;
    }
    (ln_choose(b - r1, r2) - ln_choose(b, r2)).exp()
}

/// Probability that three random strings with occupancies `r1, r2, r3`
/// all mesh mutually (§5.2's displayed formula):
/// `C(b−r1, r2)/C(b, r2) × C(b−r1−r2, r3)/C(b, r3)`.
pub fn triple_mesh_probability(b: usize, r1: usize, r2: usize, r3: usize) -> f64 {
    if r1 + r2 + r3 > b {
        return 0.0;
    }
    (ln_choose(b - r1, r2) - ln_choose(b, r2) + ln_choose(b - r1 - r2, r3) - ln_choose(b, r3))
        .exp()
}

/// Expected triangles among `n` random spans at occupancy `r` under the
/// *true* (dependent-edge) model: `C(n,3) · P[triple mesh]` (§5.2).
pub fn expected_triangles_actual(n: usize, b: usize, r: usize) -> f64 {
    choose_f64(n, 3) * triple_mesh_probability(b, r, r, r)
}

/// Expected triangles if edges *were* independent (the Erdős–Renyi
/// assumption §5.2 refutes): `C(n,3) · q³`.
pub fn expected_triangles_independent(n: usize, b: usize, r: usize) -> f64 {
    let q = mesh_probability(b, r, r);
    choose_f64(n, 3) * q * q * q
}

/// `C(n, k)` as f64 (log-space; may overflow to `inf` for huge inputs).
pub fn choose_f64(n: usize, k: usize) -> f64 {
    ln_choose(n, k).exp()
}

/// §2.2: with one object per span placed uniformly at random among `b`
/// offsets, the probability that *all* `n` spans collide at one offset —
/// making them pairwise unmeshable — is `(1/b)^{n−1}`. Returned as
/// `log₁₀` (e.g. ≈ −152 for `b = 256`, `n = 64`).
pub fn log10_all_same_offset(b: usize, n: usize) -> f64 {
    assert!(b > 0 && n > 0);
    -((n as f64 - 1.0) * (b as f64).log10())
}

/// Lemma 5.3's guaranteed matching size: with `t = k/q`, SplitMesher
/// finds at least `n(1 − e^{−2k})/4` pairs w.h.p.
pub fn lemma53_bound(n: usize, k: f64) -> f64 {
    n as f64 * (1.0 - (-2.0 * k).exp()) / 4.0
}

/// Lemma 5.3's per-vertex good-match probability lower bound:
/// `r > (1 − e^{−2k})/2`.
pub fn lemma53_match_probability(k: f64) -> f64 {
    (1.0 - (-2.0 * k).exp()) / 2.0
}

/// The Robson worst-case fragmentation factor for classical allocators:
/// memory consumption can reach ~`log₂(max/min)` times the required
/// amount (§1: 16-byte and 128 KB objects ⇒ 13×).
pub fn robson_factor(min_size: usize, max_size: usize) -> f64 {
    assert!(min_size > 0 && max_size >= min_size);
    (max_size as f64 / min_size as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::string::SpanString;
    use mesh_core::rng::Rng;

    #[test]
    fn factorial_and_choose_basics() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        assert!((choose_f64(52, 5) - 2_598_960.0).abs() < 1e-3);
    }

    #[test]
    fn mesh_probability_closed_form_small_case() {
        // b=4, r1=r2=1: P[mesh] = C(3,1)/C(4,1) = 3/4.
        assert!((mesh_probability(4, 1, 1) - 0.75).abs() < 1e-12);
        // Overfull spans can never mesh.
        assert_eq!(mesh_probability(8, 5, 5), 0.0);
        // Empty spans always mesh.
        assert!((mesh_probability(8, 0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mesh_probability_matches_monte_carlo() {
        let mut rng = Rng::with_seed(21);
        let (b, r) = (32, 10);
        let q = mesh_probability(b, r, r);
        let trials = 200_000;
        let mut hits = 0;
        for _ in 0..trials {
            let a = SpanString::random_with_occupancy(b, r, &mut rng);
            let c = SpanString::random_with_occupancy(b, r, &mut rng);
            if a.meshes_with(&c) {
                hits += 1;
            }
        }
        let emp = hits as f64 / trials as f64;
        assert!(
            (emp - q).abs() < 0.002,
            "closed form {q} vs Monte Carlo {emp}"
        );
    }

    #[test]
    fn paper_triangle_numbers_b32_r10_n1000() {
        // §5.2: "if b = 32, r1 = r2 = r3 = 10 … even if there were 1000
        // strings, the expected number of triangles would be less than 2.
        // In contrast, had all meshes been independent … 167 triangles."
        let actual = expected_triangles_actual(1000, 32, 10);
        let indep = expected_triangles_independent(1000, 32, 10);
        assert!(actual < 2.0, "actual expectation {actual} (paper: < 2)");
        assert!(
            (165.0..170.0).contains(&indep),
            "independent-model expectation {indep} (paper: 167)"
        );
    }

    #[test]
    fn triple_probability_below_independent_cube() {
        // Dependence only ever hurts: P[triple] < q³ for occupied strings.
        for r in [4usize, 8, 10, 12] {
            let q = mesh_probability(32, r, r);
            let p3 = triple_mesh_probability(32, r, r, r);
            assert!(p3 < q * q * q, "r={r}: {p3} !< {}", q * q * q);
        }
    }

    #[test]
    fn paper_unmeshable_probability_2_2() {
        // §2.2: 64 spans, one 16-byte object each, b = 256 slots ⇒
        // probability of being unable to mesh any of them is 10^-152.
        let log10 = log10_all_same_offset(256, 64);
        assert!(
            (-152.5..=-151.0).contains(&log10),
            "log10 = {log10}, paper says ≈ −152"
        );
    }

    #[test]
    fn lemma53_bound_shape() {
        // k → ∞ ⇒ bound → n/4; k = 1 already gives > 0.86 · n/4.
        assert!((lemma53_bound(1000, 50.0) - 250.0).abs() < 1e-6);
        assert!(lemma53_bound(1000, 1.0) > 216.0);
        assert!(lemma53_match_probability(1.0) > 0.43);
        assert!(lemma53_match_probability(3.0) < 0.5);
    }

    #[test]
    fn robson_factor_paper_example() {
        // §1: 16-byte and 128 KB objects ⇒ 13× blowup.
        assert!((robson_factor(16, 128 * 1024) - 13.0).abs() < 1e-12);
        assert_eq!(robson_factor(64, 64), 0.0);
    }

    #[test]
    fn triple_formula_matches_monte_carlo() {
        let mut rng = Rng::with_seed(22);
        let (b, r) = (16, 4);
        let p3 = triple_mesh_probability(b, r, r, r);
        let trials = 300_000;
        let mut hits = 0;
        for _ in 0..trials {
            let a = SpanString::random_with_occupancy(b, r, &mut rng);
            let c = SpanString::random_with_occupancy(b, r, &mut rng);
            let d = SpanString::random_with_occupancy(b, r, &mut rng);
            if SpanString::all_mesh(&[&a, &c, &d]) {
                hits += 1;
            }
        }
        let emp = hits as f64 / trials as f64;
        assert!(
            (emp - p3).abs() < 0.0015,
            "closed form {p3} vs Monte Carlo {emp}"
        );
    }
}
