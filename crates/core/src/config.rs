//! Heap configuration (§4.5's tunables plus experiment controls).
//!
//! The defaults reproduce the paper's shipped configuration: meshing at most
//! once every 100 ms, probe limit `t = 64` (§3.3), randomization on. The
//! ablation switches (`meshing`, `randomize`) correspond to the paper's
//! "Mesh (no meshing)" and "Mesh (no rand)" configurations from §6.3.

use crate::error::MeshError;
use crate::harden::{parse_harden_policy, HardenConfig, HardenPolicy};
use crate::size_classes::PAGE_SIZE;
use std::path::PathBuf;
use std::time::Duration;

/// Longest control-socket path accepted: `sockaddr_un.sun_path` is 108
/// bytes on Linux including the terminating NUL.
pub(crate) const CTL_PATH_MAX: usize = 107;

/// Builder-style configuration for a [`crate::Mesh`] heap.
///
/// # Examples
///
/// ```
/// use mesh_core::MeshConfig;
///
/// let config = MeshConfig::default()
///     .seed(42)
///     .arena_bytes(64 * 1024 * 1024)
///     .probe_limit(64);
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MeshConfig {
    /// Hard cap on the heap in bytes: the size of the virtual reservation
    /// the segmented arena grows into. Allocation fails (null) only when
    /// no segment can be placed under this cap.
    pub(crate) max_heap_bytes: usize,
    /// Size of the initial segment mapped at heap construction (clamped
    /// to the hard cap).
    pub(crate) initial_segment_bytes: usize,
    /// Preferred size of segments mapped on demand when allocation misses
    /// every existing segment (clamped to the cap; oversized span requests
    /// get a dedicated segment sized to the request).
    pub(crate) segment_bytes: usize,
    /// PRNG seed; `None` seeds from entropy.
    pub(crate) seed: Option<u64>,
    /// Master switch for meshing (§6.3 "Mesh (no meshing)" when false).
    pub(crate) meshing: bool,
    /// Master switch for randomized allocation (§6.3 "Mesh (no rand)"
    /// when false).
    pub(crate) randomize: bool,
    /// Minimum interval between meshing passes (default 100 ms, §4.5).
    pub(crate) mesh_period: Duration,
    /// If the last pass freed less than this many bytes, the timer is not
    /// restarted until another free reaches the global heap (§4.5).
    pub(crate) min_mesh_gain_bytes: usize,
    /// SplitMesher probe limit `t` (§3.3; the paper uses 64).
    pub(crate) probe_limit: usize,
    /// Spans with occupancy above this fraction are not mesh candidates.
    pub(crate) occupancy_cutoff: f64,
    /// Maximum virtual spans aliasing one physical span (bounds page-table
    /// growth; the reference implementation uses 3).
    pub(crate) max_span_count: usize,
    /// Dirty (freed but still committed) pages are released to the OS once
    /// they exceed this many bytes (§4.4.1; 64 MB in the paper).
    pub(crate) max_dirty_bytes: usize,
    /// Install the mprotect/SIGSEGV write barrier during meshing (§4.5.2).
    pub(crate) write_barrier: bool,
    /// Run meshing on a dedicated background thread instead of the
    /// allocation/free path. The thread honours the same §4.5 rate limiter
    /// and pause rule; it only moves *where* passes run.
    pub(crate) background_meshing: bool,
    /// Master switch for the sampled heap profiler (`MESH_PROF`). Off by
    /// default: no telemetry state exists and the fast path pays only one
    /// predictable branch.
    pub(crate) profiling: bool,
    /// Mean bytes between allocation samples (`MESH_PROF_SAMPLE_BYTES`,
    /// tcmalloc's classic default of 512 KiB). Smaller = more samples =
    /// sharper profiles and more overhead.
    pub(crate) prof_sample_bytes: usize,
    /// Interval between automatic profile dumps (`MESH_PROF_INTERVAL_MS`;
    /// `None` = only on request/at exit). Dumps ride the background
    /// telemetry thread.
    pub(crate) prof_interval: Option<Duration>,
    /// Profile-dump destination (`MESH_PROF_PATH`; `None` = stderr as a
    /// single `mesh-prof: ` line). The file is rewritten on each dump.
    pub(crate) prof_path: Option<PathBuf>,
    /// Master switch for slow-path event tracing (`MESH_TRACE`). Off by
    /// default: no rings exist and each slow-path record is one `Option`
    /// load. The always-on latency histograms are independent of this.
    pub(crate) trace: bool,
    /// Per-ring trace capacity in events (`MESH_TRACE_BUF_EVENTS`,
    /// rounded up to a power of two; 32 bytes per event). Rings
    /// overwrite oldest when full.
    pub(crate) trace_buf_events: usize,
    /// Trace-dump destination (`MESH_TRACE_PATH`; `None` = stderr as a
    /// single `mesh-trace: ` line). The file is rewritten on each dump.
    pub(crate) trace_path: Option<PathBuf>,
    /// Objects exchanged per transfer-cache batch (`MESH_TRANSFER_BATCH`).
    /// 1 disables batching entirely: every remote free takes one queue
    /// push and every refill goes straight to the class shard, exactly
    /// the pre-transfer-cache behaviour.
    pub(crate) transfer_batch: usize,
    /// Batches parked per size class in the transfer cache
    /// (`MESH_TRANSFER_CACHE_SLOTS`). 0 disables the middle tier (sender
    /// side free batching stays on when `transfer_batch > 1`).
    pub(crate) transfer_cache_slots: usize,
    /// Interval between mesh-sense polls (`MESH_SENSE_INTERVAL_MS`;
    /// `None` = sensing off). On by default at 1 Hz: each poll reads
    /// pressure/RSS sources, decomposes residency, and appends one
    /// snapshot to the in-memory ring — cheap enough to leave running.
    pub(crate) sense_interval: Option<Duration>,
    /// Snapshots retained in the sense ring (`MESH_SENSE_HISTORY`). At
    /// the default 1 s interval, 120 snapshots = two minutes of history.
    pub(crate) sense_history: usize,
    /// Pages sampled with `mincore(2)` per sense poll
    /// (`MESH_SENSE_MINCORE_PAGES`; 0 disables the sweep and
    /// `est_resident_bytes` falls back to committed bytes).
    pub(crate) sense_mincore_pages: usize,
    /// Sense-dump destination (`MESH_SENSE_PATH`; `None` = stderr as a
    /// single `mesh-sense: ` line on explicit request only — sensing is
    /// on by default, so there is no unsolicited at-exit dump without a
    /// path). The file is rewritten on each dump.
    pub(crate) sense_path: Option<PathBuf>,
    /// mesh-ctl control-socket path (`MESH_CTL`; `None` = no socket, the
    /// default). When set, the background thread binds a Unix-domain
    /// listener here and answers the line-oriented mesh-ctl protocol —
    /// live introspection and a whitelisted knob surface for running
    /// processes. A forked child unlinks and re-binds the path.
    pub(crate) ctl_path: Option<PathBuf>,
    /// Maximum concurrently connected mesh-ctl clients
    /// (`MESH_CTL_MAX_CLIENTS`); further connections are accepted and
    /// immediately dropped so a misbehaving scraper cannot pile up fds.
    pub(crate) ctl_max_clients: usize,
    /// Hardened-mode configuration (`MESH_HARDEN` and friends): policy
    /// off/count/abort plus per-feature switches for poisoning,
    /// quarantine, guard pages, and the mesh-time canary sweep. Off by
    /// default — the hardened branches collapse to one predictable test.
    pub(crate) harden: HardenConfig,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            max_heap_bytes: 1 << 30,         // 1 GiB hard cap (virtual)
            initial_segment_bytes: 64 << 20, // 64 MiB initial segment
            segment_bytes: 256 << 20,        // 256 MiB growth segments
            seed: None,
            meshing: true,
            randomize: true,
            mesh_period: Duration::from_millis(100),
            min_mesh_gain_bytes: 1 << 20,
            probe_limit: 64,
            occupancy_cutoff: 0.8,
            max_span_count: 3,
            max_dirty_bytes: 64 << 20,
            write_barrier: true,
            background_meshing: false,
            profiling: false,
            prof_sample_bytes: 512 << 10, // tcmalloc's classic rate
            prof_interval: None,
            prof_path: None,
            trace: false,
            trace_buf_events: 64 << 10, // 64 Ki events = 2 MiB per ring
            trace_path: None,
            transfer_batch: 32,
            transfer_cache_slots: 8,
            sense_interval: Some(Duration::from_millis(1000)),
            sense_history: 120,
            sense_mincore_pages: 256,
            sense_path: None,
            ctl_path: None,
            ctl_max_clients: 4,
            harden: HardenConfig::default(),
        }
    }
}

impl MeshConfig {
    /// Sets the heap's hard cap in bytes — the virtual reservation the
    /// segmented arena grows into on demand. Legacy name from the
    /// fixed-size-arena era; alias of [`MeshConfig::max_heap_bytes`].
    pub fn arena_bytes(self, bytes: usize) -> Self {
        self.max_heap_bytes(bytes)
    }

    /// Sets the heap's hard cap in bytes. Allocation returns null only
    /// once no segment can be placed under this cap.
    pub fn max_heap_bytes(mut self, bytes: usize) -> Self {
        self.max_heap_bytes = bytes;
        self
    }

    /// Sets the size of the initial segment mapped at construction
    /// (clamped to the hard cap).
    pub fn initial_segment_bytes(mut self, bytes: usize) -> Self {
        self.initial_segment_bytes = bytes;
        self
    }

    /// Sets the preferred size of on-demand growth segments (clamped to
    /// the hard cap; oversized requests get a dedicated segment).
    pub fn segment_bytes(mut self, bytes: usize) -> Self {
        self.segment_bytes = bytes;
        self
    }

    /// Fixes the PRNG seed for deterministic experiments.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Enables or disables meshing (the compaction mechanism itself).
    pub fn meshing(mut self, enabled: bool) -> Self {
        self.meshing = enabled;
        self
    }

    /// Enables or disables randomized allocation.
    pub fn randomize(mut self, enabled: bool) -> Self {
        self.randomize = enabled;
        self
    }

    /// Sets the minimum interval between meshing passes.
    pub fn mesh_period(mut self, period: Duration) -> Self {
        self.mesh_period = period;
        self
    }

    /// Sets the "don't restart the timer" gain threshold (§4.5).
    pub fn min_mesh_gain_bytes(mut self, bytes: usize) -> Self {
        self.min_mesh_gain_bytes = bytes;
        self
    }

    /// Sets the SplitMesher probe limit `t` (§3.3).
    pub fn probe_limit(mut self, t: usize) -> Self {
        self.probe_limit = t;
        self
    }

    /// Sets the occupancy fraction above which spans are not meshed.
    pub fn occupancy_cutoff(mut self, cutoff: f64) -> Self {
        self.occupancy_cutoff = cutoff;
        self
    }

    /// Sets the maximum number of virtual spans per physical span.
    pub fn max_span_count(mut self, n: usize) -> Self {
        self.max_span_count = n;
        self
    }

    /// Sets the dirty-page release threshold (§4.4.1).
    pub fn max_dirty_bytes(mut self, bytes: usize) -> Self {
        self.max_dirty_bytes = bytes;
        self
    }

    /// Enables or disables the concurrent-meshing write barrier.
    ///
    /// With the barrier disabled, meshing is only safe if no other thread
    /// writes to objects in mesh candidates during a pass; the paper's
    /// design keeps it on and so does the default.
    pub fn write_barrier(mut self, enabled: bool) -> Self {
        self.write_barrier = enabled;
        self
    }

    /// Enables or disables the dedicated background meshing thread.
    ///
    /// Off by default so seeded experiments stay deterministic: with the
    /// thread running, passes fire on the §4.5 timer from a separate
    /// schedule rather than synchronously with frees.
    pub fn background_meshing(mut self, enabled: bool) -> Self {
        self.background_meshing = enabled;
        self
    }

    /// Whether the background meshing thread is enabled.
    pub fn is_background_meshing(&self) -> bool {
        self.background_meshing
    }

    /// Enables or disables the sampled heap profiler (`MESH_PROF`).
    pub fn profiling(mut self, enabled: bool) -> Self {
        self.profiling = enabled;
        self
    }

    /// Sets the mean bytes between allocation samples
    /// (`MESH_PROF_SAMPLE_BYTES`).
    pub fn prof_sample_bytes(mut self, bytes: usize) -> Self {
        self.prof_sample_bytes = bytes;
        self
    }

    /// Sets (or clears) the automatic profile-dump interval
    /// (`MESH_PROF_INTERVAL_MS`).
    pub fn prof_interval(mut self, interval: Option<Duration>) -> Self {
        self.prof_interval = interval;
        self
    }

    /// Sets (or clears) the profile-dump destination (`MESH_PROF_PATH`).
    pub fn prof_path(mut self, path: Option<PathBuf>) -> Self {
        self.prof_path = path;
        self
    }

    /// Whether the sampled heap profiler is enabled.
    pub fn is_profiling(&self) -> bool {
        self.profiling
    }

    /// The configured mean bytes between allocation samples.
    pub fn prof_sample_size(&self) -> usize {
        self.prof_sample_bytes
    }

    /// The configured automatic profile-dump interval, if any.
    pub fn prof_dump_interval(&self) -> Option<Duration> {
        self.prof_interval
    }

    /// The configured profile-dump destination, if any.
    pub fn prof_dump_path(&self) -> Option<&std::path::Path> {
        self.prof_path.as_deref()
    }

    /// Enables or disables slow-path event tracing (`MESH_TRACE`).
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// Sets the per-ring trace capacity in events
    /// (`MESH_TRACE_BUF_EVENTS`; rounded up to a power of two).
    pub fn trace_buf_events(mut self, events: usize) -> Self {
        self.trace_buf_events = events;
        self
    }

    /// Sets (or clears) the trace-dump destination (`MESH_TRACE_PATH`).
    pub fn trace_path(mut self, path: Option<PathBuf>) -> Self {
        self.trace_path = path;
        self
    }

    /// Whether slow-path event tracing is enabled.
    pub fn is_tracing(&self) -> bool {
        self.trace
    }

    /// The configured per-ring trace capacity in events.
    pub fn trace_buf_event_count(&self) -> usize {
        self.trace_buf_events
    }

    /// The configured trace-dump destination, if any.
    pub fn trace_dump_path(&self) -> Option<&std::path::Path> {
        self.trace_path.as_deref()
    }

    /// Sets the number of objects exchanged per transfer-cache batch
    /// (`MESH_TRANSFER_BATCH`; 1 = no batching, legacy path).
    pub fn transfer_batch(mut self, n: usize) -> Self {
        self.transfer_batch = n;
        self
    }

    /// Sets the number of batches parked per size class in the transfer
    /// cache (`MESH_TRANSFER_CACHE_SLOTS`; 0 = no middle tier).
    pub fn transfer_cache_slots(mut self, n: usize) -> Self {
        self.transfer_cache_slots = n;
        self
    }

    /// The configured objects-per-batch for the transfer cache.
    pub fn transfer_batch_size(&self) -> usize {
        self.transfer_batch
    }

    /// The configured per-class transfer-cache capacity in batches.
    pub fn transfer_cache_slot_count(&self) -> usize {
        self.transfer_cache_slots
    }

    /// Sets (or clears) the mesh-sense poll interval
    /// (`MESH_SENSE_INTERVAL_MS`; `None` disables sensing).
    pub fn sense_interval(mut self, interval: Option<Duration>) -> Self {
        self.sense_interval = interval;
        self
    }

    /// Sets the number of snapshots retained in the sense ring
    /// (`MESH_SENSE_HISTORY`).
    pub fn sense_history(mut self, snapshots: usize) -> Self {
        self.sense_history = snapshots;
        self
    }

    /// Sets the per-poll `mincore` page budget
    /// (`MESH_SENSE_MINCORE_PAGES`; 0 disables the residency sweep).
    pub fn sense_mincore_pages(mut self, pages: usize) -> Self {
        self.sense_mincore_pages = pages;
        self
    }

    /// Sets (or clears) the sense-dump destination (`MESH_SENSE_PATH`).
    pub fn sense_path(mut self, path: Option<PathBuf>) -> Self {
        self.sense_path = path;
        self
    }

    /// Whether mesh-sense polling is enabled.
    pub fn is_sensing(&self) -> bool {
        self.sense_interval.is_some()
    }

    /// The configured sense poll interval, if sensing is enabled.
    pub fn sense_poll_interval(&self) -> Option<Duration> {
        self.sense_interval
    }

    /// The configured sense-ring capacity in snapshots.
    pub fn sense_history_len(&self) -> usize {
        self.sense_history
    }

    /// The configured per-poll `mincore` page budget.
    pub fn sense_mincore_page_budget(&self) -> usize {
        self.sense_mincore_pages
    }

    /// The configured sense-dump destination, if any.
    pub fn sense_dump_path(&self) -> Option<&std::path::Path> {
        self.sense_path.as_deref()
    }

    /// Sets (or clears) the mesh-ctl control-socket path (`MESH_CTL`;
    /// `None` = no socket).
    pub fn ctl(mut self, path: Option<PathBuf>) -> Self {
        self.ctl_path = path;
        self
    }

    /// Sets the maximum concurrently connected mesh-ctl clients
    /// (`MESH_CTL_MAX_CLIENTS`).
    pub fn ctl_max_clients(mut self, n: usize) -> Self {
        self.ctl_max_clients = n;
        self
    }

    /// The configured control-socket path, if the socket is enabled.
    pub fn ctl_socket_path(&self) -> Option<&std::path::Path> {
        self.ctl_path.as_deref()
    }

    /// The configured mesh-ctl client cap.
    pub fn ctl_client_cap(&self) -> usize {
        self.ctl_max_clients
    }

    /// Sets the hardened-mode policy (`MESH_HARDEN`): [`HardenPolicy::Off`],
    /// count, or abort-on-detection.
    pub fn harden_policy(mut self, policy: HardenPolicy) -> Self {
        self.harden.policy = policy;
        self
    }

    /// Enables or disables free poisoning within hardened mode
    /// (`MESH_HARDEN_POISON`; no effect while the policy is `Off`).
    pub fn harden_poison(mut self, enabled: bool) -> Self {
        self.harden.poison = enabled;
        self
    }

    /// Enables or disables the delayed-reuse quarantine within hardened
    /// mode (`MESH_HARDEN_QUARANTINE`).
    pub fn harden_quarantine(mut self, enabled: bool) -> Self {
        self.harden.quarantine = enabled;
        self
    }

    /// Enables or disables large-object guard pages within hardened mode
    /// (`MESH_HARDEN_GUARD`).
    pub fn harden_guard(mut self, enabled: bool) -> Self {
        self.harden.guard = enabled;
        self
    }

    /// Enables or disables the mesh-time canary sweep within hardened
    /// mode (`MESH_HARDEN_CANARY`; also requires poisoning, which writes
    /// the canaries).
    pub fn harden_canary(mut self, enabled: bool) -> Self {
        self.harden.canary = enabled;
        self
    }

    /// Sets the per-thread quarantine byte cap
    /// (`MESH_HARDEN_QUARANTINE_BYTES`).
    pub fn harden_quarantine_bytes(mut self, bytes: usize) -> Self {
        self.harden.quarantine_bytes = bytes;
        self
    }

    /// Sets the per-thread quarantine slot cap
    /// (`MESH_HARDEN_QUARANTINE_SLOTS`).
    pub fn harden_quarantine_slots(mut self, slots: usize) -> Self {
        self.harden.quarantine_slots = slots;
        self
    }

    /// The resolved hardened-mode configuration.
    pub fn harden_config(&self) -> HardenConfig {
        self.harden
    }

    /// Whether hardened mode is active (policy is not `Off`).
    pub fn is_hardened(&self) -> bool {
        self.harden.active()
    }

    /// Whether meshing is enabled.
    pub fn is_meshing_enabled(&self) -> bool {
        self.meshing
    }

    /// Whether randomized allocation is enabled.
    pub fn is_randomized(&self) -> bool {
        self.randomize
    }

    /// The configured hard heap cap in bytes (legacy name).
    pub fn arena_size(&self) -> usize {
        self.max_heap_bytes
    }

    /// The configured hard heap cap in bytes.
    pub fn max_heap_size(&self) -> usize {
        self.max_heap_bytes
    }

    /// The configured initial segment size in bytes.
    pub fn initial_segment_size(&self) -> usize {
        self.initial_segment_bytes
    }

    /// The configured growth segment size in bytes.
    pub fn segment_size(&self) -> usize {
        self.segment_bytes
    }

    /// The configured SplitMesher probe limit `t`.
    pub fn probe_limit_t(&self) -> usize {
        self.probe_limit
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::InvalidConfig`] if the heap cap or a segment
    /// size is smaller than one span, the probe limit is zero, the
    /// occupancy cutoff is outside `(0, 1]`, or `max_span_count < 2`
    /// (meshing needs at least two).
    pub fn validate(&self) -> Result<(), MeshError> {
        if self.max_heap_bytes < 32 * PAGE_SIZE {
            return Err(MeshError::InvalidConfig(format!(
                "heap cap of {} bytes is smaller than the largest span",
                self.max_heap_bytes
            )));
        }
        if self.initial_segment_bytes < 32 * PAGE_SIZE {
            return Err(MeshError::InvalidConfig(format!(
                "initial segment of {} bytes is smaller than the largest span",
                self.initial_segment_bytes
            )));
        }
        if self.segment_bytes < 32 * PAGE_SIZE {
            return Err(MeshError::InvalidConfig(format!(
                "segment size of {} bytes is smaller than the largest span",
                self.segment_bytes
            )));
        }
        if self.probe_limit == 0 {
            return Err(MeshError::InvalidConfig("probe limit must be ≥ 1".into()));
        }
        if !(self.occupancy_cutoff > 0.0 && self.occupancy_cutoff <= 1.0) {
            return Err(MeshError::InvalidConfig(format!(
                "occupancy cutoff {} outside (0, 1]",
                self.occupancy_cutoff
            )));
        }
        if self.max_span_count < 2 {
            return Err(MeshError::InvalidConfig(
                "max_span_count must be ≥ 2 for meshing".into(),
            ));
        }
        if self.profiling && self.prof_sample_bytes == 0 {
            return Err(MeshError::InvalidConfig(
                "prof_sample_bytes must be ≥ 1 when profiling is enabled".into(),
            ));
        }
        if self.trace && !(64..=1 << 22).contains(&self.trace_buf_events) {
            return Err(MeshError::InvalidConfig(format!(
                "trace_buf_events {} outside 64..=4Mi",
                self.trace_buf_events
            )));
        }
        if !(1..=256).contains(&self.transfer_batch) {
            return Err(MeshError::InvalidConfig(format!(
                "transfer_batch {} outside 1..=256",
                self.transfer_batch
            )));
        }
        if self.transfer_cache_slots > 1024 {
            return Err(MeshError::InvalidConfig(format!(
                "transfer_cache_slots {} above 1024",
                self.transfer_cache_slots
            )));
        }
        if self.harden.active() && self.harden.quarantine {
            if !(1..=1 << 20).contains(&self.harden.quarantine_slots) {
                return Err(MeshError::InvalidConfig(format!(
                    "harden quarantine_slots {} outside 1..=1Mi",
                    self.harden.quarantine_slots
                )));
            }
            if !(PAGE_SIZE..=1 << 30).contains(&self.harden.quarantine_bytes) {
                return Err(MeshError::InvalidConfig(format!(
                    "harden quarantine_bytes {} outside one page..=1G",
                    self.harden.quarantine_bytes
                )));
            }
        }
        if self.harden.active() && self.harden.canary && !self.harden.poison {
            return Err(MeshError::InvalidConfig(
                "harden canary sweep requires poisoning (canaries are written by the \
                 poison fill); set MESH_HARDEN_CANARY=0 or MESH_HARDEN_POISON=1"
                    .into(),
            ));
        }
        if let Some(path) = &self.ctl_path {
            let len = path.as_os_str().len();
            if len == 0 || len > CTL_PATH_MAX {
                return Err(MeshError::InvalidConfig(format!(
                    "ctl socket path is {len} bytes; sun_path allows 1..={CTL_PATH_MAX}"
                )));
            }
            if !(1..=64).contains(&self.ctl_max_clients) {
                return Err(MeshError::InvalidConfig(format!(
                    "ctl_max_clients {} outside 1..=64",
                    self.ctl_max_clients
                )));
            }
        }
        if self.sense_interval.is_some() {
            if !(2..=100_000).contains(&self.sense_history) {
                return Err(MeshError::InvalidConfig(format!(
                    "sense_history {} outside 2..=100000",
                    self.sense_history
                )));
            }
            if self.sense_mincore_pages > 1 << 24 {
                return Err(MeshError::InvalidConfig(format!(
                    "sense_mincore_pages {} above 16Mi",
                    self.sense_mincore_pages
                )));
            }
        }
        Ok(())
    }

    /// Applies the `MESH_*` environment knobs on top of this
    /// configuration — the tuning surface of the `LD_PRELOAD` deployment
    /// (§4.5's `mallctl` analog for processes we cannot recompile):
    ///
    /// | variable | meaning |
    /// |---|---|
    /// | `MESH_MAX_HEAP_BYTES` (legacy `MESH_ARENA_BYTES`) | hard cap |
    /// | `MESH_INITIAL_SEGMENT_BYTES` | initial segment size |
    /// | `MESH_SEGMENT_BYTES` | growth segment size |
    /// | `MESH_BACKGROUND_MESHING` | run meshing on a dedicated thread |
    /// | `MESH_SEED` | fix the PRNG seed |
    /// | `MESH_PROF` | enable the sampled heap profiler |
    /// | `MESH_PROF_SAMPLE_BYTES` | mean bytes between samples |
    /// | `MESH_PROF_INTERVAL_MS` | periodic profile dumps (0 = off) |
    /// | `MESH_PROF_PATH` | profile-dump file (default: stderr) |
    /// | `MESH_TRACE` | enable slow-path event tracing |
    /// | `MESH_TRACE_BUF_EVENTS` | per-ring trace capacity in events |
    /// | `MESH_TRACE_PATH` | trace-dump file (default: stderr) |
    /// | `MESH_TRANSFER_BATCH` | objects per transfer-cache batch (1 = off) |
    /// | `MESH_TRANSFER_CACHE_SLOTS` | cached batches per size class (0 = off) |
    /// | `MESH_SENSE_INTERVAL_MS` | mesh-sense poll period (0 = off; default 1000) |
    /// | `MESH_SENSE_HISTORY` | snapshots retained in the sense ring |
    /// | `MESH_SENSE_MINCORE_PAGES` | pages sampled per poll (0 = no sweep) |
    /// | `MESH_SENSE_PATH` | sense-dump file (default: stderr, on request) |
    /// | `MESH_CTL` | mesh-ctl Unix-socket path (default: no socket) |
    /// | `MESH_CTL_MAX_CLIENTS` | concurrent ctl clients (1..=64, default 4) |
    /// | `MESH_HARDEN` | hardened mode: `off` / `count` (alias `full`) / `abort` (alias `die`) |
    /// | `MESH_HARDEN_POISON` | free poisoning + reallocation verify |
    /// | `MESH_HARDEN_QUARANTINE` | delayed-reuse quarantine |
    /// | `MESH_HARDEN_GUARD` | trailing guard page on large objects |
    /// | `MESH_HARDEN_CANARY` | canary sweep during mesh copy windows |
    /// | `MESH_HARDEN_QUARANTINE_BYTES` | per-thread quarantine byte cap |
    /// | `MESH_HARDEN_QUARANTINE_SLOTS` | per-thread quarantine slot cap |
    ///
    /// Size knobs accept `K`/`M`/`G`/`T` suffixes (optionally followed by
    /// `B` or `iB`, case-insensitive): `MESH_MAX_HEAP_BYTES=8G`. Malformed
    /// values are ignored with a one-line warning on stderr rather than
    /// silently falling back.
    pub fn apply_env(mut self) -> Self {
        if let Some(bytes) =
            env_size("MESH_MAX_HEAP_BYTES").or_else(|| env_size("MESH_ARENA_BYTES"))
        {
            self = self.max_heap_bytes(bytes);
        }
        if let Some(bytes) = env_size("MESH_INITIAL_SEGMENT_BYTES") {
            self = self.initial_segment_bytes(bytes);
        }
        if let Some(bytes) = env_size("MESH_SEGMENT_BYTES") {
            self = self.segment_bytes(bytes);
        }
        if let Some(enabled) = env_bool("MESH_BACKGROUND_MESHING") {
            self = self.background_meshing(enabled);
        }
        if let Some(seed) = env_u64("MESH_SEED") {
            self = self.seed(seed);
        }
        if let Some(enabled) = env_bool("MESH_PROF") {
            self = self.profiling(enabled);
        }
        if let Some(bytes) = env_size("MESH_PROF_SAMPLE_BYTES") {
            self = self.prof_sample_bytes(bytes);
        }
        if let Some(ms) = env_u64("MESH_PROF_INTERVAL_MS") {
            self = self.prof_interval((ms > 0).then(|| Duration::from_millis(ms)));
        }
        if let Some(path) = env_path("MESH_PROF_PATH") {
            self = self.prof_path(Some(path));
        }
        if let Some(enabled) = env_bool("MESH_TRACE") {
            self = self.tracing(enabled);
        }
        if let Some(events) = env_size("MESH_TRACE_BUF_EVENTS") {
            self = self.trace_buf_events(events);
        }
        if let Some(path) = env_path("MESH_TRACE_PATH") {
            self = self.trace_path(Some(path));
        }
        if let Some(n) = env_u64("MESH_TRANSFER_BATCH") {
            self = self.transfer_batch(n as usize);
        }
        if let Some(n) = env_u64("MESH_TRANSFER_CACHE_SLOTS") {
            self = self.transfer_cache_slots(n as usize);
        }
        if let Some(ms) = env_u64("MESH_SENSE_INTERVAL_MS") {
            self = self.sense_interval((ms > 0).then(|| Duration::from_millis(ms)));
        }
        if let Some(n) = env_u64("MESH_SENSE_HISTORY") {
            self = self.sense_history(n as usize);
        }
        if let Some(n) = env_size("MESH_SENSE_MINCORE_PAGES") {
            self = self.sense_mincore_pages(n);
        }
        if let Some(path) = env_path("MESH_SENSE_PATH") {
            self = self.sense_path(Some(path));
        }
        // Bounds are enforced here (warn-and-ignore) rather than left to
        // `validate()`: under LD_PRELOAD a validation failure kills heap
        // construction for the whole process, which is far worse than
        // running without a control socket.
        if let Some(path) = env_parsed(
            "MESH_CTL",
            |s| {
                let t = s.trim();
                (!t.is_empty() && t.len() <= CTL_PATH_MAX).then(|| PathBuf::from(t))
            },
            "a socket path of 1..=107 bytes",
        ) {
            self = self.ctl(Some(path));
        }
        if let Some(n) = env_parsed(
            "MESH_CTL_MAX_CLIENTS",
            |s| s.trim().parse::<usize>().ok().filter(|n| (1..=64).contains(n)),
            "an integer in 1..=64",
        ) {
            self = self.ctl_max_clients(n);
        }
        if let Some(policy) = env_parsed(
            "MESH_HARDEN",
            parse_harden_policy,
            "one of off/count/abort (aliases: full, die, 0/1, on/off)",
        ) {
            self = self.harden_policy(policy);
        }
        if let Some(enabled) = env_bool("MESH_HARDEN_POISON") {
            self = self.harden_poison(enabled);
        }
        if let Some(enabled) = env_bool("MESH_HARDEN_QUARANTINE") {
            self = self.harden_quarantine(enabled);
        }
        if let Some(enabled) = env_bool("MESH_HARDEN_GUARD") {
            self = self.harden_guard(enabled);
        }
        if let Some(enabled) = env_bool("MESH_HARDEN_CANARY") {
            self = self.harden_canary(enabled);
        }
        if let Some(bytes) = env_size("MESH_HARDEN_QUARANTINE_BYTES") {
            self = self.harden_quarantine_bytes(bytes);
        }
        if let Some(n) = env_u64("MESH_HARDEN_QUARANTINE_SLOTS") {
            self = self.harden_quarantine_slots(n as usize);
        }
        self
    }

    /// Number of whole pages under the hard cap.
    pub(crate) fn arena_pages(&self) -> usize {
        self.max_heap_bytes / PAGE_SIZE
    }

    /// Initial-segment size in whole pages.
    pub(crate) fn initial_segment_pages(&self) -> usize {
        self.initial_segment_bytes / PAGE_SIZE
    }

    /// Growth-segment size in whole pages.
    pub(crate) fn segment_pages(&self) -> usize {
        self.segment_bytes / PAGE_SIZE
    }
}

/// Parses a byte-size string with an optional `K`/`M`/`G`/`T` suffix
/// (case-insensitive, optionally followed by `B`/`iB`): `"64M"`,
/// `"8g"`, `"1073741824"`, `"2GiB"`. Returns `None` for anything else
/// (including overflow).
pub fn parse_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let lower = s.to_ascii_lowercase();
    let body = lower
        .strip_suffix("ib")
        .or_else(|| lower.strip_suffix('b'))
        .unwrap_or(&lower);
    let (digits, shift) = match body.as_bytes().last()? {
        b'k' => (&body[..body.len() - 1], 10),
        b'm' => (&body[..body.len() - 1], 20),
        b'g' => (&body[..body.len() - 1], 30),
        b't' => (&body[..body.len() - 1], 40),
        b'0'..=b'9' => (body, 0),
        _ => return None,
    };
    let n: usize = digits.trim().parse().ok()?;
    n.checked_shl(shift).filter(|v| v >> shift == n)
}

/// Parses a boolean knob: `1`/`true`/`yes`/`on` and `0`/`false`/`no`/`off`
/// (case-insensitive). Returns `None` for anything else.
pub fn parse_bool(s: &str) -> Option<bool> {
    match s.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" => Some(true),
        "0" | "false" | "no" | "off" => Some(false),
        _ => None,
    }
}

fn env_parsed<T>(name: &str, parse: impl Fn(&str) -> Option<T>, hint: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match parse(&raw) {
        Some(v) => Some(v),
        None => {
            eprintln!("mesh: ignoring malformed {name}={raw:?} (expected {hint})");
            None
        }
    }
}

/// Reads a size knob from the environment ([`parse_size`] syntax),
/// warning on stderr and returning `None` for malformed values.
pub fn env_size(name: &str) -> Option<usize> {
    env_parsed(name, parse_size, "a byte count such as 67108864, 64M, or 8G")
}

/// Reads a boolean knob from the environment ([`parse_bool`] syntax),
/// warning on stderr and returning `None` for malformed values.
pub fn env_bool(name: &str) -> Option<bool> {
    env_parsed(name, parse_bool, "one of 1/0/true/false/yes/no/on/off")
}

/// Reads an integer knob from the environment, warning on stderr and
/// returning `None` for malformed values.
pub fn env_u64(name: &str) -> Option<u64> {
    env_parsed(name, |s| s.trim().parse().ok(), "an unsigned integer")
}

/// Reads a path knob from the environment, warning on stderr and
/// returning `None` for malformed (empty/whitespace) values.
pub fn env_path(name: &str) -> Option<PathBuf> {
    env_parsed(
        name,
        |s| {
            let t = s.trim();
            (!t.is_empty()).then(|| PathBuf::from(t))
        },
        "a non-empty file path",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MeshConfig::default();
        assert_eq!(c.probe_limit, 64, "t = 64 (§3.3)");
        assert_eq!(c.mesh_period, Duration::from_millis(100), "§4.5 rate limit");
        assert_eq!(c.min_mesh_gain_bytes, 1 << 20, "1 MB rule (§4.5)");
        assert_eq!(c.max_dirty_bytes, 64 << 20, "64 MB dirty threshold (§4.4.1)");
        assert!(c.meshing && c.randomize && c.write_barrier);
        assert!(c.validate().is_ok());
        assert!(
            c.initial_segment_bytes <= c.max_heap_bytes
                && c.segment_bytes <= c.max_heap_bytes,
            "default segments fit under the default cap"
        );
    }

    #[test]
    fn segment_builders_and_accessors() {
        let c = MeshConfig::default()
            .max_heap_bytes(256 << 20)
            .initial_segment_bytes(1 << 20)
            .segment_bytes(2 << 20);
        assert_eq!(c.max_heap_size(), 256 << 20);
        assert_eq!(c.initial_segment_size(), 1 << 20);
        assert_eq!(c.segment_size(), 2 << 20);
        assert_eq!(c.arena_size(), 256 << 20, "legacy accessor reads the cap");
        assert!(c.validate().is_ok());
        // The legacy builder name sets the cap.
        assert_eq!(MeshConfig::default().arena_bytes(64 << 20).max_heap_size(), 64 << 20);
    }

    #[test]
    fn builder_chains() {
        let c = MeshConfig::default()
            .seed(7)
            .meshing(false)
            .randomize(false)
            .probe_limit(8)
            .occupancy_cutoff(0.5)
            .arena_bytes(1 << 24);
        assert_eq!(c.seed, Some(7));
        assert!(!c.meshing && !c.randomize);
        assert_eq!(c.probe_limit, 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn parse_size_suffixes() {
        assert_eq!(parse_size("4096"), Some(4096));
        assert_eq!(parse_size(" 64k "), Some(64 << 10));
        assert_eq!(parse_size("64K"), Some(64 << 10));
        assert_eq!(parse_size("64KB"), Some(64 << 10));
        assert_eq!(parse_size("64KiB"), Some(64 << 10));
        assert_eq!(parse_size("512M"), Some(512 << 20));
        assert_eq!(parse_size("8G"), Some(8usize << 30));
        assert_eq!(parse_size("2T"), Some(2usize << 40));
        assert_eq!(parse_size("2g"), Some(2usize << 30));
        for bad in ["", "  ", "G", "12Q", "0x10", "-4", "4.5M", "9999999999999999G"] {
            assert_eq!(parse_size(bad), None, "{bad:?} must be rejected");
        }
    }

    #[test]
    fn parse_bool_spellings() {
        for t in ["1", "true", "YES", "On"] {
            assert_eq!(parse_bool(t), Some(true));
        }
        for f in ["0", "false", "No", "OFF"] {
            assert_eq!(parse_bool(f), Some(false));
        }
        assert_eq!(parse_bool("maybe"), None);
        assert_eq!(parse_bool(""), None);
    }

    // `apply_env` itself is covered by `tests/env_knobs.rs` (an
    // integration test with its own process): mutating the process
    // environment from this parallel unit-test harness would race other
    // threads' getenv calls.

    #[test]
    fn profiling_knobs_build_and_validate() {
        let c = MeshConfig::default();
        assert!(!c.is_profiling(), "profiling is off by default");
        assert_eq!(c.prof_sample_size(), 512 << 10, "tcmalloc's classic rate");
        assert_eq!(c.prof_dump_interval(), None);
        assert_eq!(c.prof_dump_path(), None);
        let c = MeshConfig::default()
            .profiling(true)
            .prof_sample_bytes(64 << 10)
            .prof_interval(Some(Duration::from_millis(250)))
            .prof_path(Some("/tmp/prof.json".into()));
        assert!(c.is_profiling());
        assert_eq!(c.prof_sample_size(), 64 << 10);
        assert_eq!(c.prof_dump_interval(), Some(Duration::from_millis(250)));
        assert_eq!(
            c.prof_dump_path(),
            Some(std::path::Path::new("/tmp/prof.json"))
        );
        assert!(c.validate().is_ok());
        // Zero sample rate only matters when profiling is on.
        assert!(MeshConfig::default().prof_sample_bytes(0).validate().is_ok());
        assert!(MeshConfig::default()
            .profiling(true)
            .prof_sample_bytes(0)
            .validate()
            .is_err());
    }

    #[test]
    fn trace_knobs_build_and_validate() {
        let c = MeshConfig::default();
        assert!(!c.is_tracing(), "tracing is off by default");
        assert_eq!(c.trace_buf_event_count(), 64 << 10);
        assert_eq!(c.trace_dump_path(), None);
        let c = MeshConfig::default()
            .tracing(true)
            .trace_buf_events(4096)
            .trace_path(Some("/tmp/trace.json".into()));
        assert!(c.is_tracing());
        assert_eq!(c.trace_buf_event_count(), 4096);
        assert_eq!(
            c.trace_dump_path(),
            Some(std::path::Path::new("/tmp/trace.json"))
        );
        assert!(c.validate().is_ok());
        // Ring bounds only matter when tracing is on.
        assert!(MeshConfig::default().trace_buf_events(1).validate().is_ok());
        assert!(MeshConfig::default()
            .tracing(true)
            .trace_buf_events(1)
            .validate()
            .is_err());
        assert!(MeshConfig::default()
            .tracing(true)
            .trace_buf_events((1 << 22) + 1)
            .validate()
            .is_err());
    }

    #[test]
    fn sense_knobs_build_and_validate() {
        let c = MeshConfig::default();
        assert!(c.is_sensing(), "sensing is on by default");
        assert_eq!(c.sense_poll_interval(), Some(Duration::from_millis(1000)));
        assert_eq!(c.sense_history_len(), 120);
        assert_eq!(c.sense_mincore_page_budget(), 256);
        assert_eq!(c.sense_dump_path(), None);
        let c = MeshConfig::default()
            .sense_interval(Some(Duration::from_millis(100)))
            .sense_history(16)
            .sense_mincore_pages(0)
            .sense_path(Some("/tmp/sense.json".into()));
        assert_eq!(c.sense_poll_interval(), Some(Duration::from_millis(100)));
        assert_eq!(c.sense_history_len(), 16);
        assert_eq!(c.sense_mincore_page_budget(), 0, "0 = no sweep, still valid");
        assert_eq!(
            c.sense_dump_path(),
            Some(std::path::Path::new("/tmp/sense.json"))
        );
        assert!(c.validate().is_ok());
        let off = MeshConfig::default().sense_interval(None);
        assert!(!off.is_sensing());
        // Ring/budget bounds only matter when sensing is on.
        assert!(off.clone().sense_history(1).validate().is_ok());
        assert!(MeshConfig::default().sense_history(1).validate().is_err());
        assert!(MeshConfig::default().sense_history(100_001).validate().is_err());
        assert!(MeshConfig::default()
            .sense_mincore_pages((1 << 24) + 1)
            .validate()
            .is_err());
    }

    #[test]
    fn transfer_knobs_build_and_validate() {
        let c = MeshConfig::default();
        assert_eq!(c.transfer_batch_size(), 32);
        assert_eq!(c.transfer_cache_slot_count(), 8);
        let c = MeshConfig::default().transfer_batch(1).transfer_cache_slots(0);
        assert_eq!(c.transfer_batch_size(), 1, "degenerate mode is valid");
        assert!(c.validate().is_ok());
        assert!(MeshConfig::default().transfer_batch(0).validate().is_err());
        assert!(MeshConfig::default().transfer_batch(257).validate().is_err());
        assert!(MeshConfig::default().transfer_cache_slots(1025).validate().is_err());
    }

    #[test]
    fn ctl_knobs_build_and_validate() {
        let c = MeshConfig::default();
        assert_eq!(c.ctl_socket_path(), None, "ctl socket is off by default");
        assert_eq!(c.ctl_client_cap(), 4);
        let c = MeshConfig::default()
            .ctl(Some("/tmp/mesh-ctl.sock".into()))
            .ctl_max_clients(8);
        assert_eq!(
            c.ctl_socket_path(),
            Some(std::path::Path::new("/tmp/mesh-ctl.sock"))
        );
        assert_eq!(c.ctl_client_cap(), 8);
        assert!(c.validate().is_ok());
        // sun_path holds at most CTL_PATH_MAX bytes plus the NUL.
        let long = "/tmp/".to_string() + &"x".repeat(CTL_PATH_MAX);
        assert!(MeshConfig::default().ctl(Some(long.into())).validate().is_err());
        assert!(MeshConfig::default().ctl(Some("".into())).validate().is_err());
        // Client-cap bounds only matter while the socket is on.
        let on = MeshConfig::default().ctl(Some("/tmp/s".into()));
        assert!(on.clone().ctl_max_clients(0).validate().is_err());
        assert!(on.ctl_max_clients(65).validate().is_err());
        assert!(MeshConfig::default().ctl_max_clients(0).validate().is_ok());
    }

    #[test]
    fn harden_knobs_build_and_validate() {
        let c = MeshConfig::default();
        assert!(!c.is_hardened(), "hardened mode is off by default");
        let h = c.harden_config();
        assert_eq!(h.policy, HardenPolicy::Off);
        assert!(h.poison && h.quarantine && h.guard && h.canary, "features default on");
        assert_eq!(h.quarantine_bytes, 256 << 10);
        assert_eq!(h.quarantine_slots, 512);
        let c = MeshConfig::default()
            .harden_policy(HardenPolicy::Count)
            .harden_poison(true)
            .harden_quarantine(true)
            .harden_guard(false)
            .harden_canary(false)
            .harden_quarantine_bytes(64 << 10)
            .harden_quarantine_slots(32);
        assert!(c.is_hardened());
        let h = c.harden_config();
        assert!(h.poison_on() && h.quarantine_on());
        assert!(!h.guard_on() && !h.canary_on());
        assert_eq!(h.quarantine_bytes, 64 << 10);
        assert_eq!(h.quarantine_slots, 32);
        assert!(c.validate().is_ok());
        // Quarantine bounds only matter while hardening (and the
        // quarantine) are on.
        assert!(MeshConfig::default().harden_quarantine_slots(0).validate().is_ok());
        let on = MeshConfig::default().harden_policy(HardenPolicy::Count);
        assert!(on.clone().harden_quarantine_slots(0).validate().is_err());
        assert!(on.clone().harden_quarantine_slots((1 << 20) + 1).validate().is_err());
        assert!(on.clone().harden_quarantine_bytes(16).validate().is_err());
        assert!(on.clone().harden_quarantine_bytes(2 << 30).validate().is_err());
        assert!(on
            .clone()
            .harden_quarantine(false)
            .harden_quarantine_slots(0)
            .validate()
            .is_ok());
        // Canary without poison has nothing to verify.
        assert!(on.clone().harden_poison(false).validate().is_err());
        assert!(on.harden_poison(false).harden_canary(false).validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(MeshConfig::default().arena_bytes(4096).validate().is_err());
        assert!(MeshConfig::default().initial_segment_bytes(4096).validate().is_err());
        assert!(MeshConfig::default().segment_bytes(4096).validate().is_err());
        assert!(MeshConfig::default().probe_limit(0).validate().is_err());
        assert!(MeshConfig::default().occupancy_cutoff(0.0).validate().is_err());
        assert!(MeshConfig::default().occupancy_cutoff(1.5).validate().is_err());
        assert!(MeshConfig::default().max_span_count(1).validate().is_err());
    }
}
