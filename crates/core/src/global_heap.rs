//! The global heap (§4.4): MiniHeap allocation, occupancy bins, non-local
//! frees, large objects, and meshing coordination.
//!
//! All state here lives under one mutex (see DESIGN.md's locking
//! discipline): thread-local heaps take the lock only to refill or detach
//! shuffle vectors and for non-local frees; the meshing pass runs entirely
//! under it, which keeps detached MiniHeap bitmaps stable while the
//! SplitMesher probes them.

use crate::arena::Arena;
use crate::config::MeshConfig;
use crate::error::MeshError;
use crate::meshing::{self, MeshSummary};
use crate::miniheap::{AttachState, MiniHeap, MiniHeapId, Slab, NOT_BINNED};
use crate::shuffle_vector::ShuffleVector;
use crate::rng::Rng;
use crate::size_classes::{SizeClass, NUM_SIZE_CLASSES, PAGE_SIZE};
use crate::stats::Counters;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of partial-occupancy bins per size class (§3.1: the global heap
/// groups spans by decreasing occupancy, e.g. 75–99% in one bin, 50–74% in
/// the next).
pub(crate) const PARTIAL_BINS: usize = 4;

/// Bin index used for completely full MiniHeaps.
pub(crate) const FULL_BIN: u8 = PARTIAL_BINS as u8;

/// Occupancy bins for one size class.
#[derive(Debug, Default)]
pub(crate) struct ClassBins {
    /// `partial[0]` holds the fullest spans ([75%, 100%)), `partial[3]`
    /// the emptiest ((0%, 25%)).
    pub partial: [Vec<MiniHeapId>; PARTIAL_BINS],
    /// Completely full spans (not allocation candidates).
    pub full: Vec<MiniHeapId>,
}

impl ClassBins {
    fn list_mut(&mut self, bin: u8) -> &mut Vec<MiniHeapId> {
        if bin == FULL_BIN {
            &mut self.full
        } else {
            &mut self.partial[bin as usize]
        }
    }
}

/// Computes the occupancy bin for `in_use` live objects of `count` slots.
///
/// # Panics
///
/// Panics (debug) if `in_use` is zero — empty MiniHeaps are freed, never
/// binned — or exceeds `count`.
pub(crate) fn bin_for_occupancy(in_use: usize, count: usize) -> u8 {
    debug_assert!(in_use > 0 && in_use <= count);
    if in_use == count {
        FULL_BIN
    } else {
        // quartile 3 ([75%,100%)) → bin 0, …, quartile 0 ((0,25%)) → bin 3.
        (3 - (in_use * PARTIAL_BINS / count).min(3)) as u8
    }
}

/// All mutable global-heap state, guarded by `Mesh`'s mutex.
pub(crate) struct GlobalState {
    pub arena: Arena,
    pub slab: Slab,
    pub bins: Vec<ClassBins>,
    pub rng: Rng,
    pub config: MeshConfig,
    pub last_mesh: Instant,
    /// Set after a low-yield pass: the timer is not restarted until a
    /// subsequent free reaches the global heap (§4.5).
    pub mesh_timer_paused: bool,
    /// When the meshing path last purged dirty pages. Purge-on-mesh
    /// (§4.4.1) is rate-limited to `mesh_period` so harnesses that force
    /// passes faster than the wall-clock limiter (for time-compressed
    /// replays) do not cycle pages through release/refault at an
    /// unrealistic rate; the 64 MB threshold path is unaffected.
    pub last_mesh_purge: Instant,
    pub counters: Arc<Counters>,
}

impl std::fmt::Debug for GlobalState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalState")
            .field("miniheaps", &self.slab.len())
            .field("committed_pages", &self.arena.committed_pages())
            .finish_non_exhaustive()
    }
}

impl GlobalState {
    pub fn new(config: MeshConfig, counters: Arc<Counters>) -> Result<GlobalState, MeshError> {
        config.validate()?;
        let arena = Arena::new(&config, Arc::clone(&counters))?;
        let seed = config.seed.unwrap_or_else(|| Rng::from_entropy().next_u64());
        Ok(GlobalState {
            arena,
            slab: Slab::new(),
            bins: (0..NUM_SIZE_CLASSES).map(|_| ClassBins::default()).collect(),
            rng: Rng::with_seed(seed ^ 0x6d65_7368_2d67_6c6f), // "mesh-glo"
            config,
            last_mesh: Instant::now(),
            mesh_timer_paused: false,
            last_mesh_purge: Instant::now() - Duration::from_secs(3600),
            counters,
        })
    }

    // ----- occupancy-bin bookkeeping ------------------------------------

    /// Inserts a detached, non-empty MiniHeap into its occupancy bin.
    pub fn bin_insert(&mut self, id: MiniHeapId) {
        let mh = self.slab.get(id).expect("binning a dead MiniHeap");
        debug_assert!(!mh.is_attached() && !mh.is_large());
        let class = mh.size_class().expect("large objects are not binned");
        let bin = bin_for_occupancy(mh.in_use(), mh.object_count());
        let list = self.bins[class.index()].list_mut(bin);
        let slot = list.len() as u32;
        list.push(id);
        let mh = self.slab.get_mut(id).expect("just observed");
        mh.bin = bin;
        mh.bin_slot = slot;
    }

    /// Removes a MiniHeap from its current bin (no-op if unbinned).
    pub fn bin_remove(&mut self, id: MiniHeapId) {
        let mh = self.slab.get(id).expect("unbinning a dead MiniHeap");
        let (bin, slot) = (mh.bin, mh.bin_slot);
        if bin == NOT_BINNED {
            return;
        }
        let class = mh.size_class().expect("large objects are not binned");
        let list = self.bins[class.index()].list_mut(bin);
        list.swap_remove(slot as usize);
        if let Some(&moved) = list.get(slot as usize) {
            self.slab
                .get_mut(moved)
                .expect("binned ids are live")
                .bin_slot = slot;
        }
        let mh = self.slab.get_mut(id).expect("just observed");
        mh.bin = NOT_BINNED;
        mh.bin_slot = 0;
    }

    /// Moves a MiniHeap between bins after its occupancy changed.
    pub fn rebin(&mut self, id: MiniHeapId) {
        let mh = self.slab.get(id).expect("rebinning a dead MiniHeap");
        let new_bin = bin_for_occupancy(mh.in_use(), mh.object_count());
        if mh.bin != new_bin {
            self.bin_remove(id);
            self.bin_insert(id);
        }
    }

    /// Selects a partially full MiniHeap for reuse: first non-empty bin by
    /// decreasing occupancy, random span within it (§3.1). The MiniHeap is
    /// removed from its bin.
    pub fn select_partial(&mut self, class: SizeClass) -> Option<MiniHeapId> {
        for bin in 0..PARTIAL_BINS {
            let len = self.bins[class.index()].partial[bin].len();
            if len > 0 {
                let pick = self.rng.below(len as u32) as usize;
                let id = self.bins[class.index()].partial[bin][pick];
                self.bin_remove(id);
                return Some(id);
            }
        }
        None
    }

    // ----- MiniHeap lifecycle -------------------------------------------

    /// Allocates and registers a fresh MiniHeap for `class` (§4.4.2).
    pub fn fresh_miniheap(&mut self, class: SizeClass) -> Result<MiniHeapId, MeshError> {
        let (span, _) = self.arena.alloc_span(class.span_pages() as u32)?;
        let id = self.slab.insert(MiniHeap::new_small(class, span));
        self.arena.set_owner(span, id);
        Ok(id)
    }

    /// Destroys an empty, detached MiniHeap: restores identity mappings for
    /// meshed aliases, returns spans to the arena, clears page ownership.
    pub fn free_miniheap(&mut self, id: MiniHeapId) {
        self.bin_remove(id);
        let mut mh = self.slab.remove(id);
        debug_assert_eq!(mh.in_use(), 0, "freeing a MiniHeap with live objects");
        for alias in mh.take_alias_spans() {
            // Alias file ranges were released when the mesh happened; the
            // virtual spans just need their identity mappings back.
            self.arena
                .restore_identity(alias)
                .expect("identity restore failed");
            self.arena.clear_owner(alias);
            self.arena.free_span_clean(alias);
        }
        let primary = mh.span();
        self.arena.clear_owner(primary);
        self.arena.free_span_dirty(primary);
    }

    /// Refills `sv` with a MiniHeap for `class`: detaches the exhausted one
    /// (returning it to the global heap), then attaches a partially-full or
    /// fresh MiniHeap (§3.1).
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::ArenaExhausted`] when no span can be carved.
    pub fn refill(
        &mut self,
        sv: &mut ShuffleVector,
        class: SizeClass,
        token: u64,
        thread_rng: &mut Rng,
    ) -> Result<(), MeshError> {
        self.release_vector(sv);
        let id = match self.select_partial(class) {
            Some(id) => id,
            None => self.fresh_miniheap(class)?,
        };
        let mh = self.slab.get_mut(id).expect("selected id is live");
        mh.set_state(AttachState::Attached(token));
        let arena_base = self.arena.base_addr();
        let mh = self.slab.get(id).expect("selected id is live");
        let span = mh.span();
        sv.attach(
            id,
            arena_base + span.byte_offset(),
            span.byte_len(),
            mh.object_count(),
            mh.object_size(),
            mh.bitmap(),
            thread_rng,
        );
        for alias in &mh.virtual_spans()[1..] {
            sv.push_span_alias(arena_base + alias.byte_offset());
        }
        Ok(())
    }

    /// Detaches `sv`'s MiniHeap (if any) back to the global heap: leftover
    /// offsets are returned to the bitmap, then the MiniHeap is binned or —
    /// if empty — destroyed.
    pub fn release_vector(&mut self, sv: &mut ShuffleVector) {
        let Some(old) = sv.miniheap() else { return };
        {
            let mh = self.slab.get(old).expect("attached id is live");
            sv.detach(mh.bitmap());
        }
        let mh = self.slab.get_mut(old).expect("attached id is live");
        mh.set_state(AttachState::Detached);
        if mh.in_use() == 0 {
            self.free_miniheap(old);
        } else {
            self.bin_insert(old);
        }
    }

    // ----- large objects (§4.4.3) ---------------------------------------

    /// Allocates a large object: the request is rounded up to whole pages
    /// and a singleton MiniHeap accounts for it.
    pub fn malloc_large(&mut self, size: usize) -> Result<usize, MeshError> {
        let requested = size.div_ceil(PAGE_SIZE).max(1);
        // Absurd sizes (near usize::MAX) must fail as exhaustion, not
        // truncate in the page-count narrowing below.
        let Ok(pages) = u32::try_from(requested) else {
            return Err(MeshError::ArenaExhausted {
                requested_pages: requested,
                capacity_pages: self.arena.capacity_pages() as usize,
            });
        };
        let (span, _) = self.arena.alloc_span(pages)?;
        let id = self.slab.insert(MiniHeap::new_large(span));
        self.arena.set_owner(span, id);
        self.counters.large_allocs.fetch_add(1, Ordering::Relaxed);
        self.counters.mallocs.fetch_add(1, Ordering::Relaxed);
        self.counters
            .live_bytes
            .fetch_add(span.byte_len(), Ordering::Relaxed);
        Ok(self.arena.addr_of_page(span.offset))
    }

    // ----- non-local frees (§4.4.4) -------------------------------------

    /// Frees `addr` through the global heap. Invalid pointers and double
    /// frees are detected via the page table / bitmap and discarded.
    /// Returns whether the free was accepted.
    pub fn free_global(&mut self, addr: usize) -> bool {
        let Some(id) = self.arena.owner_of_addr(addr) else {
            self.counters.invalid_frees.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        let mh = self.slab.get(id).expect("page table points at live MiniHeap");
        let slot = mh
            .slot_of_addr(self.arena.base_addr(), addr)
            .expect("owner lookup implies containment");
        if !mh.bitmap().unset(slot) {
            self.counters.double_frees.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let object_size = mh.object_size();
        let is_large = mh.is_large();
        let attached = mh.is_attached();
        let now_empty = mh.in_use() == 0;
        self.counters.frees.fetch_add(1, Ordering::Relaxed);
        self.counters.remote_frees.fetch_add(1, Ordering::Relaxed);
        self.counters.live_bytes.fetch_sub(object_size, Ordering::Relaxed);

        if is_large {
            let mh = self.slab.remove(id);
            let span = mh.span();
            self.arena.clear_owner(span);
            // Large-object pages go straight back to the OS (§4).
            self.arena.release_span(span);
        } else if !attached {
            if now_empty {
                self.free_miniheap(id);
            } else {
                self.rebin(id);
            }
        }
        // A free reaching the global heap restarts a paused mesh timer
        // (§4.5's "until a subsequent allocation is freed through the
        // global heap").
        if self.mesh_timer_paused {
            self.mesh_timer_paused = false;
            self.last_mesh = Instant::now();
        }
        self.maybe_mesh();
        true
    }

    // ----- meshing entry points -----------------------------------------

    /// Runs a meshing pass if meshing is enabled and the rate limiter
    /// allows it (§4.5).
    pub fn maybe_mesh(&mut self) {
        if !self.config.meshing || self.mesh_timer_paused {
            return;
        }
        if self.last_mesh.elapsed() < self.config.mesh_period {
            return;
        }
        self.mesh_now();
    }

    /// Runs a meshing pass immediately (bypassing the rate limiter),
    /// returning its summary. Still a no-op when meshing is disabled —
    /// the "Mesh (no meshing)" configuration never meshes (§6.3).
    pub fn mesh_now(&mut self) -> MeshSummary {
        if !self.config.meshing {
            return MeshSummary::default();
        }
        let summary = meshing::mesh_all_classes(self);
        self.last_mesh = Instant::now();
        self.mesh_timer_paused =
            summary.bytes_released() < self.config.min_mesh_gain_bytes;
        summary
    }

    /// Object size usable at `addr`, or `None` for foreign pointers.
    pub fn usable_size(&self, addr: usize) -> Option<usize> {
        let id = self.arena.owner_of_addr(addr)?;
        let mh = self.slab.get(id)?;
        mh.slot_of_addr(self.arena.base_addr(), addr)?;
        Some(mh.object_size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> GlobalState {
        let counters = Arc::new(Counters::default());
        GlobalState::new(
            MeshConfig::default()
                .arena_bytes(16 << 20)
                .seed(7)
                .write_barrier(false),
            counters,
        )
        .unwrap()
    }

    #[test]
    fn bin_for_occupancy_quartiles() {
        assert_eq!(bin_for_occupancy(256, 256), FULL_BIN);
        assert_eq!(bin_for_occupancy(255, 256), 0); // [75%, 100%)
        assert_eq!(bin_for_occupancy(192, 256), 0);
        assert_eq!(bin_for_occupancy(191, 256), 1);
        assert_eq!(bin_for_occupancy(128, 256), 1);
        assert_eq!(bin_for_occupancy(127, 256), 2);
        assert_eq!(bin_for_occupancy(64, 256), 2);
        assert_eq!(bin_for_occupancy(63, 256), 3);
        assert_eq!(bin_for_occupancy(1, 256), 3);
    }

    #[test]
    fn fresh_miniheap_registers_pages() {
        let mut st = state();
        let class = SizeClass::for_size(64).unwrap();
        let id = st.fresh_miniheap(class).unwrap();
        let mh = st.slab.get(id).unwrap();
        let addr = st.arena.base_addr() + mh.span().byte_offset() + 64 * 3;
        assert_eq!(st.arena.owner_of_addr(addr), Some(id));
    }

    #[test]
    fn refill_attach_detach_cycle() {
        let mut st = state();
        let class = SizeClass::for_size(128).unwrap();
        let mut sv = ShuffleVector::new(true);
        let mut rng = Rng::with_seed(1);
        st.refill(&mut sv, class, 1, &mut rng).unwrap();
        assert_eq!(sv.available(), class.object_count());
        // Allocate a couple of objects, then force a detach via refill.
        let a = sv.malloc().unwrap();
        let _b = sv.malloc().unwrap();
        let first = sv.miniheap().unwrap();
        // Exhaust and refill: old MiniHeap must land in a bin (2 live).
        while sv.malloc().is_some() {}
        st.refill(&mut sv, class, 1, &mut rng).unwrap();
        let second = sv.miniheap().unwrap();
        assert_ne!(first, second);
        let old = st.slab.get(first).unwrap();
        assert!(!old.is_attached());
        assert_eq!(old.in_use(), class.object_count(), "all slots were allocated");
        assert_eq!(old.bin, FULL_BIN);
        // Free one object globally: it must drop out of the full bin.
        assert!(st.free_global(a));
        assert_eq!(st.slab.get(first).unwrap().bin, 0);
    }

    #[test]
    fn select_partial_prefers_fullest_bin() {
        let mut st = state();
        let class = SizeClass::for_size(64).unwrap();
        let count = class.object_count();
        // Create two detached MiniHeaps with different occupancies.
        let make = |st: &mut GlobalState, live: usize| {
            let id = st.fresh_miniheap(class).unwrap();
            let mh = st.slab.get(id).unwrap();
            for slot in 0..live {
                mh.bitmap().try_set(slot);
            }
            st.bin_insert(id);
            id
        };
        let low = make(&mut st, 1);
        let high = make(&mut st, count * 9 / 10);
        let picked = st.select_partial(class).unwrap();
        assert_eq!(picked, high, "fullest bin scanned first");
        let picked2 = st.select_partial(class).unwrap();
        assert_eq!(picked2, low);
        assert!(st.select_partial(class).is_none());
    }

    #[test]
    fn empty_detach_destroys_miniheap() {
        let mut st = state();
        let class = SizeClass::for_size(48).unwrap();
        let mut sv = ShuffleVector::new(true);
        let mut rng = Rng::with_seed(2);
        st.refill(&mut sv, class, 1, &mut rng).unwrap();
        let id = sv.miniheap().unwrap();
        let committed_before = st.arena.committed_pages();
        // Nothing allocated: releasing the vector should destroy it.
        st.release_vector(&mut sv);
        assert!(st.slab.get(id).is_none());
        assert_eq!(st.slab.len(), 0);
        // Span went to the dirty bin; committed unchanged until purge.
        assert_eq!(st.arena.committed_pages(), committed_before);
    }

    #[test]
    fn malloc_large_and_free_releases_pages() {
        let mut st = state();
        let addr = st.malloc_large(100_000).unwrap();
        let pages = 100_000usize.div_ceil(PAGE_SIZE);
        assert_eq!(st.arena.committed_pages(), pages);
        assert_eq!(st.usable_size(addr), Some(pages * PAGE_SIZE));
        assert!(st.free_global(addr));
        assert_eq!(st.arena.committed_pages(), 0, "large pages released on free");
        assert_eq!(st.slab.len(), 0);
    }

    #[test]
    fn invalid_and_double_frees_discarded() {
        let mut st = state();
        assert!(!st.free_global(0xdead_beef));
        let addr = st.malloc_large(4096).unwrap();
        assert!(st.free_global(addr));
        assert!(!st.free_global(addr), "double free rejected");
        let s = st.counters.snapshot();
        // After the large object died its page-table entry is cleared, so
        // the second free reads as invalid (wild), not double.
        assert_eq!(s.invalid_frees, 2);
        assert_eq!(s.double_frees, 0);
    }

    #[test]
    fn usable_size_for_small_classes() {
        let mut st = state();
        let class = SizeClass::for_size(100).unwrap();
        let mut sv = ShuffleVector::new(true);
        let mut rng = Rng::with_seed(3);
        st.refill(&mut sv, class, 1, &mut rng).unwrap();
        let addr = sv.malloc().unwrap();
        assert_eq!(st.usable_size(addr), Some(112));
        assert_eq!(st.usable_size(0x40), None);
    }
}
