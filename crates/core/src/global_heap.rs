//! The sharded global heap (§4.4): MiniHeap allocation, occupancy bins,
//! non-local frees, large objects, and meshing coordination.
//!
//! The seed kept all of this under one mutex; this version shards it so
//! threads working in different size classes never contend (see DESIGN.md
//! "Sharded locking discipline"):
//!
//! * **Class shards** — each size class owns a mutex guarding its slab of
//!   MiniHeaps, its occupancy bins, and its PRNG, plus a lock-free MPSC
//!   [`RemoteFreeQueue`]. Refills, detaches, and meshing of a class touch
//!   only that class's lock.
//! * **Arena leaf lock** — span hand-out/return, dirty purging, remaps,
//!   page-map writes, and the whole segment table: growth on miss (a span
//!   request that misses every segment maps a new one under this lock)
//!   and segment retirement both happen here. Acquired *after* at most
//!   one class (or the large) lock, never the other way around.
//! * **Large shard** — large-object singletons (§4.4.3) behind their own
//!   mutex, ordered like a class lock.
//! * **Lock-free structures** — the [`PageMap`] routes frees without any
//!   lock; remote frees enqueue lock-free and are applied by whichever
//!   thread next holds the class lock (refill, meshing pass, or stats
//!   flush).
//!
//! Meshing runs one class at a time, holding that class's lock (which
//! keeps detached MiniHeap bitmaps stable while the SplitMesher probes
//! them) and the arena lock for the remap itself. With
//! [`MeshConfig::background_meshing`] set, passes run on a dedicated
//! thread (see [`crate::mesher`]) instead of the free path.

use crate::arena::Arena;
use crate::config::MeshConfig;
use crate::error::MeshError;
use crate::harden::{self, HardenConfig, HardenKind};
use crate::meshing::{self, MeshSummary};
use crate::miniheap::{AttachState, MiniHeap, MiniHeapId, Slab, NOT_BINNED};
use crate::page_map::{PageMap, LARGE_CLASS};
use crate::remote_free::RemoteFreeQueue;
use crate::rng::Rng;
use crate::shuffle_vector::ShuffleVector;
use crate::size_classes::{SizeClass, NUM_SIZE_CLASSES, PAGE_SIZE};
use crate::stats::Counters;
use crate::sync::{Mutex, MutexGuard};
use crate::telemetry::{
    self, CtlState, HeapSpectrum, MeshLedger, SenseSnapshot, SenseState, Telemetry, TimedOp,
    TraceSet, ABSENT, CTL_PARK,
};
use crate::transfer_cache::TransferCache;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of partial-occupancy bins per size class (§3.1: the global heap
/// groups spans by decreasing occupancy, e.g. 75–99% in one bin, 50–74% in
/// the next).
pub(crate) const PARTIAL_BINS: usize = 4;

/// Bin index used for completely full MiniHeaps.
pub(crate) const FULL_BIN: u8 = PARTIAL_BINS as u8;

/// Occupancy bins for one size class.
#[derive(Debug, Default)]
pub(crate) struct ClassBins {
    /// `partial[0]` holds the fullest spans ([75%, 100%)), `partial[3]`
    /// the emptiest ((0%, 25%)).
    pub partial: [Vec<MiniHeapId>; PARTIAL_BINS],
    /// Completely full spans (not allocation candidates).
    pub full: Vec<MiniHeapId>,
}

impl ClassBins {
    fn list_mut(&mut self, bin: u8) -> &mut Vec<MiniHeapId> {
        if bin == FULL_BIN {
            &mut self.full
        } else {
            &mut self.partial[bin as usize]
        }
    }
}

/// Computes the occupancy bin for `in_use` live objects of `count` slots.
///
/// # Panics
///
/// Panics (debug) if `in_use` is zero — empty MiniHeaps are freed, never
/// binned — or exceeds `count`.
pub(crate) fn bin_for_occupancy(in_use: usize, count: usize) -> u8 {
    debug_assert!(in_use > 0 && in_use <= count);
    if in_use == count {
        FULL_BIN
    } else {
        // quartile 3 ([75%,100%)) → bin 0, …, quartile 0 ((0,25%)) → bin 3.
        (3 - (in_use * PARTIAL_BINS / count).min(3)) as u8
    }
}

/// Mutable state of one size class, guarded by its shard's mutex.
#[derive(Debug)]
pub(crate) struct ClassState {
    /// MiniHeaps of this class. Ids are unique *within* the class; the
    /// page map disambiguates with the class code.
    pub slab: Slab,
    pub bins: ClassBins,
    /// Class-private PRNG (random span selection within a bin, §3.1, and
    /// the SplitMesher shuffle, §3.3).
    pub rng: Rng,
}

impl ClassState {
    // ----- occupancy-bin bookkeeping ------------------------------------

    /// Inserts a detached, non-empty MiniHeap into its occupancy bin.
    pub fn bin_insert(&mut self, id: MiniHeapId) {
        let mh = self.slab.get(id).expect("binning a dead MiniHeap");
        debug_assert!(!mh.is_attached() && !mh.is_large());
        let bin = bin_for_occupancy(mh.in_use(), mh.object_count());
        let list = self.bins.list_mut(bin);
        let slot = list.len() as u32;
        list.push(id);
        let mh = self.slab.get_mut(id).expect("just observed");
        mh.bin = bin;
        mh.bin_slot = slot;
    }

    /// Removes a MiniHeap from its current bin (no-op if unbinned).
    pub fn bin_remove(&mut self, id: MiniHeapId) {
        let mh = self.slab.get(id).expect("unbinning a dead MiniHeap");
        let (bin, slot) = (mh.bin, mh.bin_slot);
        if bin == NOT_BINNED {
            return;
        }
        let list = self.bins.list_mut(bin);
        list.swap_remove(slot as usize);
        if let Some(&moved) = list.get(slot as usize) {
            self.slab
                .get_mut(moved)
                .expect("binned ids are live")
                .bin_slot = slot;
        }
        let mh = self.slab.get_mut(id).expect("just observed");
        mh.bin = NOT_BINNED;
        mh.bin_slot = 0;
    }

    /// Moves a MiniHeap between bins after its occupancy changed.
    pub fn rebin(&mut self, id: MiniHeapId) {
        let mh = self.slab.get(id).expect("rebinning a dead MiniHeap");
        let new_bin = bin_for_occupancy(mh.in_use(), mh.object_count());
        if mh.bin != new_bin {
            self.bin_remove(id);
            self.bin_insert(id);
        }
    }

    /// Selects a partially full MiniHeap for reuse: first non-empty bin by
    /// decreasing occupancy, random span within it (§3.1). The MiniHeap is
    /// removed from its bin.
    pub fn select_partial(&mut self) -> Option<MiniHeapId> {
        for bin in 0..PARTIAL_BINS {
            let len = self.bins.partial[bin].len();
            if len > 0 {
                let pick = self.rng.below(len as u32) as usize;
                let id = self.bins.partial[bin][pick];
                self.bin_remove(id);
                return Some(id);
            }
        }
        None
    }
}

/// One size class's shard: its lock plus its lock-free remote-free queue.
#[derive(Debug)]
struct ClassShard {
    state: Mutex<ClassState>,
    queue: RemoteFreeQueue,
}

/// Every lock of the heap, held at once: the fork-quiescence state built
/// by [`GlobalHeap::lock_all`] (see `Mesh::fork_prepare`). The guards are
/// held purely for their locking effect; dropping the struct releases
/// everything.
pub(crate) struct AllShardGuards<'a> {
    _classes: Vec<MutexGuard<'a, ClassState>>,
    _large: MutexGuard<'a, Slab>,
    _arena: MutexGuard<'a, Arena>,
    _transfer: Vec<MutexGuard<'a, Vec<Vec<usize>>>>,
    _sched_mesh: MutexGuard<'a, Instant>,
    _sched_purge: MutexGuard<'a, Option<Instant>>,
    _sched_drain: MutexGuard<'a, Instant>,
    _stat_locals: MutexGuard<'a, Vec<Arc<crate::stats::LocalCounters>>>,
    _senders: MutexGuard<'a, Vec<std::sync::Weak<crate::remote_free::SenderBufs>>>,
    _telemetry_dump: Option<MutexGuard<'a, Instant>>,
    _sense_clock: Option<MutexGuard<'a, Instant>>,
    _hist_locals: MutexGuard<'a, Vec<Arc<crate::telemetry::LocalHists>>>,
    _trace_rings: Option<MutexGuard<'a, Vec<Arc<crate::telemetry::TraceRing>>>>,
    /// Last in the order: no ctl response write may be in flight across
    /// `fork`, so a client sees a complete envelope or a clean EOF.
    _ctl: Option<MutexGuard<'a, crate::telemetry::CtlIo>>,
}

/// Runtime-tunable configuration (the `mallctl` analogs, §4.5) as
/// atomics, so controls never take a heap lock.
#[derive(Debug)]
pub(crate) struct RuntimeConfig {
    meshing: AtomicBool,
    mesh_period_nanos: AtomicU64,
    min_mesh_gain_bytes: AtomicUsize,
    probe_limit: AtomicUsize,
    occupancy_cutoff_bits: AtomicU64,
    max_span_count: AtomicUsize,
    /// Whether a background mesher thread owns the meshing schedule.
    pub background_meshing: bool,
}

impl RuntimeConfig {
    fn new(config: &MeshConfig) -> RuntimeConfig {
        RuntimeConfig {
            meshing: AtomicBool::new(config.meshing),
            mesh_period_nanos: AtomicU64::new(
                config.mesh_period.as_nanos().min(u64::MAX as u128) as u64,
            ),
            min_mesh_gain_bytes: AtomicUsize::new(config.min_mesh_gain_bytes),
            probe_limit: AtomicUsize::new(config.probe_limit),
            occupancy_cutoff_bits: AtomicU64::new(config.occupancy_cutoff.to_bits()),
            max_span_count: AtomicUsize::new(config.max_span_count),
            background_meshing: config.background_meshing && config.meshing,
        }
    }

    pub fn meshing(&self) -> bool {
        self.meshing.load(Ordering::Relaxed)
    }

    pub fn set_meshing(&self, enabled: bool) {
        self.meshing.store(enabled, Ordering::Relaxed);
    }

    pub fn mesh_period(&self) -> Duration {
        Duration::from_nanos(self.mesh_period_nanos.load(Ordering::Relaxed))
    }

    pub fn set_mesh_period(&self, period: Duration) {
        self.mesh_period_nanos
            .store(period.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    pub fn min_mesh_gain_bytes(&self) -> usize {
        self.min_mesh_gain_bytes.load(Ordering::Relaxed)
    }

    pub fn probe_limit(&self) -> usize {
        self.probe_limit.load(Ordering::Relaxed)
    }

    pub fn set_probe_limit(&self, t: usize) {
        if t > 0 {
            self.probe_limit.store(t, Ordering::Relaxed);
        }
    }

    pub fn occupancy_cutoff(&self) -> f64 {
        f64::from_bits(self.occupancy_cutoff_bits.load(Ordering::Relaxed))
    }

    #[cfg(test)]
    pub fn set_occupancy_cutoff(&self, cutoff: f64) {
        self.occupancy_cutoff_bits
            .store(cutoff.to_bits(), Ordering::Relaxed);
    }

    pub fn max_span_count(&self) -> usize {
        self.max_span_count.load(Ordering::Relaxed)
    }
}

/// The §4.5 meshing rate limiter, shared by the inline and background
/// meshing paths. Leaf locks only — never held while meshing runs.
#[derive(Debug)]
pub(crate) struct MeshScheduler {
    last_mesh: Mutex<Instant>,
    /// `None` until the first purge, which is always allowed. (A
    /// subtracted-epoch sentinel would panic on hosts whose monotonic
    /// clock is younger than the subtrahend.)
    last_purge: Mutex<Option<Instant>>,
    last_drain: Mutex<Instant>,
    /// Set after a low-yield pass: the timer is not restarted until a
    /// subsequent free reaches the global heap (§4.5).
    paused: AtomicBool,
}

impl MeshScheduler {
    fn new() -> MeshScheduler {
        MeshScheduler {
            last_mesh: Mutex::new(Instant::now()),
            last_purge: Mutex::new(None),
            last_drain: Mutex::new(Instant::now()),
            paused: AtomicBool::new(false),
        }
    }

    /// A free reached the global heap: restart a paused timer (§4.5's
    /// "until a subsequent allocation is freed through the global heap").
    pub fn on_global_free(&self) {
        // Read-only fast path: the flag is clear almost always, and an
        // unconditional swap would make every accepted global free a
        // write-mode RMW on a cache line shared by all threads.
        if self.paused.load(Ordering::Relaxed) && self.paused.swap(false, Ordering::Relaxed) {
            *self.last_mesh.lock() = Instant::now();
        }
    }

    /// Whether the timer is currently paused after a low-yield pass.
    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::Relaxed)
    }

    /// Time until the next meshing pass becomes due, or `None` while the
    /// timer is paused (§4.5: nothing will be due until a free reaches
    /// the global heap). The background thread parks on this instead of
    /// polling in fixed slices.
    pub(crate) fn time_until_due(&self, period: Duration) -> Option<Duration> {
        if self.is_paused() {
            return None;
        }
        Some(period.saturating_sub(self.last_mesh.lock().elapsed()))
    }

    /// Claims a rate-limited meshing slot: true at most once per `period`,
    /// and never while paused. Claiming resets the timer so concurrent
    /// callers cannot both start a pass for the same slot.
    fn due(&self, period: Duration) -> bool {
        if self.is_paused() {
            return false;
        }
        let mut last = self.last_mesh.lock();
        if last.elapsed() >= period {
            *last = Instant::now();
            true
        } else {
            false
        }
    }

    /// Records the end of a pass and whether it paused the timer.
    fn finish_pass(&self, low_yield: bool) {
        *self.last_mesh.lock() = Instant::now();
        self.paused.store(low_yield, Ordering::Relaxed);
    }

    /// Rate limiter for purge-on-mesh (§4.4.1): true at most once per
    /// `period`, so harnesses that force passes faster than wall clock do
    /// not cycle pages through release/refault at an unrealistic rate.
    pub(crate) fn should_purge(&self, period: Duration) -> bool {
        let mut last = self.last_purge.lock();
        match *last {
            Some(at) if at.elapsed() < period => false,
            _ => {
                *last = Some(Instant::now());
                true
            }
        }
    }

    /// Acquires all three scheduler leaf locks (fork quiescence: a child
    /// must not inherit a scheduler mutex locked by some other thread).
    pub(crate) fn lock_all(
        &self,
    ) -> (
        MutexGuard<'_, Instant>,
        MutexGuard<'_, Option<Instant>>,
        MutexGuard<'_, Instant>,
    ) {
        (
            self.last_mesh.lock(),
            self.last_purge.lock(),
            self.last_drain.lock(),
        )
    }

    /// Rate limiter for queue settlement when no meshing pass will run
    /// (meshing disabled and no background thread): true at most once per
    /// `period`, claiming the slot.
    fn should_drain(&self, period: Duration) -> bool {
        let mut last = self.last_drain.lock();
        if last.elapsed() >= period {
            *last = Instant::now();
            true
        } else {
            false
        }
    }
}

/// The sharded global heap. All public entry points are `&self`; each
/// method takes only the shard locks it needs (see module docs).
pub(crate) struct GlobalHeap {
    classes: Vec<ClassShard>,
    /// Large-object singletons (§4.4.3), ordered like a class lock.
    large: Mutex<Slab>,
    /// The meshable arena — the leaf lock of the discipline.
    pub arena: Mutex<Arena>,
    /// Lock-free page → MiniHeap routing table.
    pub page_map: PageMap,
    /// The tcmalloc-style middle tier: per-class stacks of claimed-object
    /// batches exchanged between thread heaps without the class lock.
    pub(crate) transfer: TransferCache,
    /// Registry of live threads' sender-side remote-free buffers, so
    /// settled readers ([`GlobalHeap::drain_all`]) and the exhaustion
    /// fallback can flush frees still buffered in *other* threads. Weak:
    /// a thread's teardown must not need the registry lock.
    senders: Mutex<Vec<std::sync::Weak<crate::remote_free::SenderBufs>>>,
    /// Bumped when the registry is wiped (fork child), so surviving cores
    /// know to re-register. Starts at 1 because cores start at 0 =
    /// "never registered".
    sender_epoch: AtomicU64,
    pub rt: RuntimeConfig,
    pub scheduler: MeshScheduler,
    pub counters: Arc<Counters>,
    /// Sampled-profiling state (`None` when `MESH_PROF` is off — the
    /// zero-overhead mode).
    pub(crate) telemetry: Option<Arc<Telemetry>>,
    /// mesh-sense pressure/residency polling state (`None` when
    /// `MESH_SENSE_INTERVAL_MS=0`; on by default).
    pub(crate) sense: Option<SenseState>,
    /// Per-pass meshing-effectiveness ledger (always on; one lock + a few
    /// atomic adds per rate-limited pass).
    pub(crate) ledger: MeshLedger,
    /// Hardened-mode configuration (`MESH_HARDEN`; policy `Off` keeps
    /// every hardened branch to one predictable test).
    pub(crate) harden: HardenConfig,
    /// mesh-ctl control-socket server (`None` unless `MESH_CTL` names a
    /// path). Served by the background thread; the malloc fast path never
    /// touches it.
    pub(crate) ctl: Option<CtlState>,
    /// Seed-derived canary word per size class (class-keyed, never
    /// address-keyed: meshing aliases several addresses onto one slot).
    class_canaries: [u64; NUM_SIZE_CLASSES],
    base: usize,
    pages: u32,
}

impl std::fmt::Debug for GlobalHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalHeap")
            .field("base", &(self.base as *const u8))
            .field("pages", &self.pages)
            .finish_non_exhaustive()
    }
}

impl GlobalHeap {
    pub fn new(config: MeshConfig, counters: Arc<Counters>) -> Result<GlobalHeap, MeshError> {
        config.validate()?;
        // Start the uptime/trace clock at heap birth, and install the
        // opt-in trace rings before any instrumented path can run.
        counters.epoch();
        if let Some(trace) = TraceSet::new(&config) {
            counters.set_trace(trace);
        }
        let arena = Arena::new(&config, Arc::clone(&counters))?;
        let base = arena.base_addr();
        let pages = arena.capacity_pages();
        let seed = config.seed.unwrap_or_else(|| Rng::from_entropy().next_u64());
        let classes = (0..NUM_SIZE_CLASSES)
            .map(|i| ClassShard {
                state: Mutex::new(ClassState {
                    slab: Slab::new(),
                    bins: ClassBins::default(),
                    rng: Rng::with_seed(
                        seed ^ 0x6d65_7368_2d67_6c6f ^ ((i as u64) << 56), // "mesh-glo"
                    ),
                }),
                queue: RemoteFreeQueue::new(),
            })
            .collect();
        Ok(GlobalHeap {
            classes,
            large: Mutex::new(Slab::new()),
            arena: Mutex::new(arena),
            page_map: PageMap::new(pages as usize),
            transfer: TransferCache::new(config.transfer_batch, config.transfer_cache_slots),
            senders: Mutex::new(Vec::new()),
            sender_epoch: AtomicU64::new(1),
            rt: RuntimeConfig::new(&config),
            scheduler: MeshScheduler::new(),
            counters,
            telemetry: Telemetry::new(&config),
            sense: SenseState::new(&config),
            ledger: MeshLedger::new(),
            harden: config.harden,
            ctl: config
                .ctl_socket_path()
                .map(|p| CtlState::bind(p, config.ctl_client_cap())),
            class_canaries: std::array::from_fn(|i| harden::canary_word(seed, i)),
            base,
            pages,
        })
    }

    /// Base address of the arena mapping (lock-free).
    #[inline]
    pub fn base_addr(&self) -> usize {
        self.base
    }

    /// Total arena capacity in pages (lock-free).
    #[inline]
    pub fn capacity_pages(&self) -> u32 {
        self.pages
    }

    /// Arena page containing `addr`, or `None` outside the arena
    /// (lock-free).
    #[inline]
    pub fn page_of_addr(&self, addr: usize) -> Option<u32> {
        if addr < self.base {
            return None;
        }
        let page = (addr - self.base) / PAGE_SIZE;
        if page < self.pages as usize {
            Some(page as u32)
        } else {
            None
        }
    }

    // ----- hardened-mode policy engine ----------------------------------

    /// The canary word objects of size class `class_idx` carry while free.
    #[inline]
    pub(crate) fn canary(&self, class_idx: usize) -> u64 {
        self.class_canaries[class_idx]
    }

    /// Records one hardened-mode violation at `addr`: no-op with
    /// hardening off, a `harden_*` counter bump under the count policy,
    /// and a one-line diagnostic plus `SIGABRT` under the die policy.
    #[inline]
    pub(crate) fn harden_violation(&self, kind: HardenKind, addr: usize) {
        if !self.harden.active() {
            return;
        }
        self.counters.harden_violations[kind as usize].fetch_add(1, Ordering::Relaxed);
        if self.harden.aborts() {
            harden::harden_abort(kind, addr);
        }
    }

    /// Writes the free-object poison layout over one small object (no-op
    /// unless poisoning is on).
    #[inline]
    pub(crate) fn poison_object(&self, addr: usize, size: usize, class_idx: usize) {
        if self.harden.poison_on() {
            unsafe { harden::poison_fill(addr, size, self.class_canaries[class_idx]) };
        }
    }

    /// Verifies the poison layout of a free small object about to be
    /// handed out again; a mismatch is a use-after-free write
    /// (`kind=poison`). No-op unless poisoning is on.
    #[inline]
    pub(crate) fn verify_poison(&self, addr: usize, size: usize, class_idx: usize) {
        if self.harden.poison_on()
            && !unsafe { harden::poison_verify(addr, size, self.class_canaries[class_idx]) }
        {
            self.harden_violation(HardenKind::Poison, addr);
        }
    }

    // ----- lock acquisition (with contention accounting) ----------------

    /// Acquires one size class's lock, counting contended acquisitions.
    /// Contended waits feed the class-lock-wait histogram and — when a
    /// mesh pass is active and the waiter is not the mesher — the
    /// mutator-pause histogram. The uncontended path pays no clock read.
    pub fn lock_class(&self, class: SizeClass) -> MutexGuard<'_, ClassState> {
        self.lock_class_reporting(class).0
    }

    /// [`GlobalHeap::lock_class`] variant that also reports whether the
    /// acquisition was contended — the meshing ledger's class-contention
    /// signal (a pass that waited for the lock ran against a heap some
    /// mutator was reshaping moments earlier).
    pub(crate) fn lock_class_reporting(
        &self,
        class: SizeClass,
    ) -> (MutexGuard<'_, ClassState>, bool) {
        let shard = &self.classes[class.index()];
        let (guard, waited) = shard.state.lock_timed();
        if let Some(ns) = waited {
            self.counters.class_lock_contention[class.index()].fetch_add(1, Ordering::Relaxed);
            self.counters.record_lock_wait(TimedOp::ClassLockWait, ns);
        }
        (guard, waited.is_some())
    }

    /// Acquires the arena leaf lock, counting contended acquisitions
    /// (timed like [`GlobalHeap::lock_class`]).
    /// Lock order: at most one class (or large) lock may be held.
    pub fn lock_arena(&self) -> MutexGuard<'_, Arena> {
        let (guard, waited) = self.arena.lock_timed();
        if let Some(ns) = waited {
            self.counters.arena_lock_contention.fetch_add(1, Ordering::Relaxed);
            self.counters.record_lock_wait(TimedOp::ArenaLockWait, ns);
        }
        guard
    }

    // ----- remote-free queues -------------------------------------------

    /// Applies every queued remote free of `class` under its (held) lock:
    /// the single-drainer side of the MPSC queue protocol.
    ///
    /// Drained frees are *not* recycled into the transfer cache: a
    /// recycled object's claim bit is set again, which would let a
    /// duplicate free arriving in a later drain epoch — after the object
    /// moved into some thread's popped batch — pass `unset` validation and
    /// corrupt both the accounting and the cache. Only detach-spills feed
    /// the cache, because spilled slots come from the shuffle vector's
    /// avail mask and a hostile back-to-back duplicate cannot interleave
    /// with a detach.
    pub(crate) fn drain_class_locked(&self, class: SizeClass, st: &mut ClassState) {
        let shard = &self.classes[class.index()];
        if shard.queue.is_empty() {
            return;
        }
        let t0 = Instant::now();
        let mut drained = 0u64;
        for addr in shard.queue.drain() {
            drained += 1;
            self.apply_remote_free(class, st, addr);
        }
        self.counters.remote_free_drained.fetch_add(drained, Ordering::Relaxed);
        self.counters.record_slow(TimedOp::RemoteDrain, t0, drained);
    }

    /// Validates and applies one queued free. Invalid pointers and double
    /// frees are detected here — the queue push was optimistic.
    fn apply_remote_free(&self, class: SizeClass, st: &mut ClassState, addr: usize) {
        let invalid = |h: &GlobalHeap| {
            h.counters.invalid_frees.fetch_add(1, Ordering::Relaxed);
            h.harden_violation(HardenKind::InvalidFree, addr);
        };
        let Some(page) = self.page_of_addr(addr) else {
            return invalid(self);
        };
        // Re-resolve through the page map: meshing may have retargeted the
        // span to a surviving MiniHeap since the enqueue (same class, same
        // slot offsets — §4.5.1 keeps virtual addresses stable).
        let Some(info) = self.page_map.get(page) else {
            return invalid(self);
        };
        if info.class_code as usize != class.index() {
            return invalid(self);
        }
        let (object_size, attached, now_empty) = {
            let Some(mh) = st.slab.get(info.id) else {
                return invalid(self);
            };
            let offset = addr - info.span_start(self.base, page);
            let slot = offset / mh.object_size();
            // Tail waste and misaligned interior pointers are hostile
            // frees, mirroring the local path's validation.
            if slot >= mh.object_count() || !offset.is_multiple_of(mh.object_size()) {
                return invalid(self);
            }
            // A cached (detach-spilled) object's claim bit is set, so
            // `unset` alone would wave a duplicate of it through: catch
            // shared-cache membership explicitly. (Objects in a thread's
            // popped batch are invisible here — that residual window
            // matches the pre-existing attached-vector one.)
            if self.transfer.contains(class.index(), addr) {
                self.counters.double_frees.fetch_add(1, Ordering::Relaxed);
                self.harden_violation(HardenKind::DoubleFree, addr);
                return;
            }
            if !mh.bitmap().unset(slot) {
                self.counters.double_frees.fetch_add(1, Ordering::Relaxed);
                self.harden_violation(HardenKind::DoubleFree, addr);
                return;
            }
            (mh.object_size(), mh.is_attached(), mh.in_use() == 0)
        };
        // The slot is free as of this unset: write the poison layout so a
        // later reallocation (or the mesh-time canary sweep) can vouch
        // nothing wrote through the stale pointer.
        self.poison_object(addr, object_size, class.index());
        self.counters.frees.fetch_add(1, Ordering::Relaxed);
        self.counters.remote_frees.fetch_add(1, Ordering::Relaxed);
        self.counters
            .live_bytes
            .fetch_sub(object_size, Ordering::Relaxed);
        if !attached {
            if now_empty {
                self.free_miniheap_locked(st, info.id);
            } else {
                st.rebin(info.id);
            }
        }
    }

    /// Un-claims an address whose bit was held by the transfer cache or a
    /// thread's batch cache, *without* touching app accounting (its free
    /// was counted when it entered the cache). The owning class's lock
    /// must be held.
    pub(crate) fn release_claimed(&self, class: SizeClass, st: &mut ClassState, addr: usize) {
        let Some(page) = self.page_of_addr(addr) else { return };
        let Some(info) = self.page_map.get(page) else { return };
        if info.class_code as usize != class.index() {
            return;
        }
        let (attached, now_empty) = {
            let Some(mh) = st.slab.get(info.id) else { return };
            let slot = (addr - info.span_start(self.base, page)) / mh.object_size();
            let was_set = mh.bitmap().unset(slot);
            debug_assert!(was_set, "cached object's claim bit must be set");
            if !was_set {
                return;
            }
            (mh.is_attached(), mh.in_use() == 0)
        };
        if !attached {
            if now_empty {
                self.free_miniheap_locked(st, info.id);
            } else {
                st.rebin(info.id);
            }
        }
    }

    /// Empties `class`'s transfer-cache slots back into the spans, so
    /// occupancy reflects reality. Meshing calls this before collecting
    /// candidates: a cached object keeps its claim bit set, which would
    /// otherwise make a meshable span look occupied — and, worse, a span
    /// whose only "live" objects sit in the cache would never be meshed
    /// or reclaimed. The class lock must be held. Returns the number of
    /// cached objects released (the ledger's "pinned by transfer cache"
    /// signal: spans those objects sat in could not have been candidates
    /// until this flush).
    pub(crate) fn purge_transfer_locked(&self, class: SizeClass, st: &mut ClassState) -> u64 {
        let mut released = 0u64;
        for batch in self.transfer.take_all(class.index()) {
            for addr in batch {
                self.release_claimed(class, st, addr);
                released += 1;
            }
        }
        released
    }

    /// Empties every class's transfer cache (one class lock at a time):
    /// the memory-pressure fallback, releasing spans kept alive only by
    /// cached objects before the allocator reports exhaustion.
    pub(crate) fn purge_transfer_all(&self) {
        for class in SizeClass::all() {
            let mut st = self.lock_class(class);
            self.drain_class_locked(class, &mut st);
            self.purge_transfer_locked(class, &mut st);
        }
    }

    // ----- sender-buffer registry ---------------------------------------

    /// Registers a thread's sender buffers, pruning entries whose threads
    /// have exited. Returns the current epoch, which the caller remembers
    /// to avoid re-registering on every free.
    pub(crate) fn register_sender(&self, bufs: &Arc<crate::remote_free::SenderBufs>) -> u64 {
        let mut reg = self.senders.lock();
        reg.retain(|w| w.strong_count() > 0);
        reg.push(Arc::downgrade(bufs));
        // Read under the registry lock so a concurrent fork's wipe-and-bump
        // cannot be missed: either we see the new epoch, or the wipe sees
        // (and discards) our entry.
        self.sender_epoch.load(Ordering::Relaxed)
    }

    /// The current registry epoch (see `register_sender`).
    #[inline]
    pub(crate) fn sender_epoch(&self) -> u64 {
        self.sender_epoch.load(Ordering::Relaxed)
    }

    /// Wipes the registry and bumps the epoch. Called in the fork child:
    /// the parent's other threads do not exist there, and touching their
    /// buffer locks (possibly held mid-free at fork time) would deadlock.
    /// The child's own cores re-register lazily via the epoch check.
    pub(crate) fn clear_senders(&self) {
        let mut reg = self.senders.lock();
        reg.clear();
        self.sender_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Flushes every registered thread's sender-side buffers into the
    /// remote-free queues. The registry lock is released before any buffer
    /// (leaf) lock or class lock is taken, so this never deadlocks with
    /// concurrent registration or `lock_all`.
    pub(crate) fn flush_all_senders(&self) {
        let bufs: Vec<Arc<crate::remote_free::SenderBufs>> = {
            let reg = self.senders.lock();
            reg.iter().filter_map(|w| w.upgrade()).collect()
        };
        for sender in bufs {
            for idx in 0..NUM_SIZE_CLASSES {
                let mut buf = sender.take(idx);
                if !buf.is_empty() {
                    self.flush_remote_batch(idx, &mut buf);
                }
            }
        }
    }

    /// Flushes every live sender's buffers and every class's remote-free
    /// queue (taking each class lock in turn, never two at once). Called
    /// before stats snapshots and by the background mesher so occupancy
    /// accounting stays settled.
    pub fn drain_all(&self) {
        self.flush_all_senders();
        for class in SizeClass::all() {
            if !self.classes[class.index()].queue.is_empty() {
                let mut st = self.lock_class(class);
                self.drain_class_locked(class, &mut st);
            }
        }
    }

    // ----- MiniHeap lifecycle (class lock held) -------------------------

    /// Allocates and registers a fresh MiniHeap for `class` (§4.4.2).
    pub(crate) fn fresh_miniheap_locked(
        &self,
        st: &mut ClassState,
        class: SizeClass,
    ) -> Result<MiniHeapId, MeshError> {
        let mut arena = self.lock_arena();
        let (span, _) = arena.alloc_span(class.span_pages() as u32)?;
        let id = st.slab.insert(MiniHeap::new_small(class, span));
        self.page_map.set_span(span, id, class.index() as u8);
        drop(arena);
        if self.harden.poison_on() {
            // A fresh span's slots are all free: give each the poison
            // layout so first-allocation verification has something to
            // check (mmap zero fill would read as a violation).
            let start = self.base + span.byte_offset();
            let size = class.object_size();
            let canary = self.class_canaries[class.index()];
            for slot in 0..class.object_count() {
                unsafe { harden::poison_fill(start + slot * size, size, canary) };
            }
        }
        Ok(id)
    }

    /// Destroys an empty, detached MiniHeap: restores identity mappings
    /// for meshed aliases, returns spans to the arena, clears ownership.
    pub(crate) fn free_miniheap_locked(&self, st: &mut ClassState, id: MiniHeapId) {
        st.bin_remove(id);
        let mut mh = st.slab.remove(id);
        debug_assert_eq!(mh.in_use(), 0, "freeing a MiniHeap with live objects");
        let mut arena = self.lock_arena();
        for alias in mh.take_alias_spans() {
            // Alias file ranges were released when the mesh happened; the
            // virtual spans just need their identity mappings back.
            arena
                .restore_identity(alias)
                .expect("identity restore failed");
            self.page_map.clear_span(alias);
            arena.free_span_clean(alias);
        }
        let primary = mh.span();
        self.page_map.clear_span(primary);
        arena.free_span_dirty(primary);
    }

    /// Refills `sv` with a MiniHeap for `class`: drains the class's remote
    /// frees, detaches the exhausted vector, then attaches a partially
    /// full or fresh MiniHeap (§3.1). Takes only this class's lock (plus
    /// the arena leaf lock if a fresh span is needed).
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::ArenaExhausted`] when no span can be carved.
    pub fn refill(
        &self,
        sv: &mut ShuffleVector,
        class: SizeClass,
        token: u64,
        thread_rng: &mut Rng,
    ) -> Result<(), MeshError> {
        let mut st = self.lock_class(class);
        self.counters.refills.fetch_add(1, Ordering::Relaxed);
        self.drain_class_locked(class, &mut st);
        self.release_vector_locked(class, &mut st, sv);
        let id = match st.select_partial() {
            Some(id) => id,
            None => self.fresh_miniheap_locked(&mut st, class)?,
        };
        let mh = st.slab.get_mut(id).expect("selected id is live");
        mh.set_state(AttachState::Attached(token));
        let mh = st.slab.get(id).expect("selected id is live");
        let span = mh.span();
        sv.attach(
            id,
            self.base + span.byte_offset(),
            span.byte_len(),
            mh.object_count(),
            mh.object_size(),
            mh.bitmap(),
            thread_rng,
        );
        for alias in &mh.virtual_spans()[1..] {
            sv.push_span_alias(self.base + alias.byte_offset());
        }
        Ok(())
    }

    /// Detaches `sv`'s MiniHeap (if any) back to this class's shard.
    pub fn release_vector(&self, class: SizeClass, sv: &mut ShuffleVector) {
        if sv.miniheap().is_none() {
            return;
        }
        let mut st = self.lock_class(class);
        self.drain_class_locked(class, &mut st);
        self.release_vector_locked(class, &mut st, sv);
    }

    /// Teardown path for a batched thread heap: detaches the vector *and*
    /// returns the thread's popped-batch remainder (`cache`) to the
    /// transfer cache, releasing claims that no longer fit.
    pub fn release_vector_and_cache(
        &self,
        class: SizeClass,
        sv: &mut ShuffleVector,
        cache: &mut Vec<usize>,
    ) {
        if cache.is_empty() {
            return self.release_vector(class, sv);
        }
        let mut st = self.lock_class(class);
        self.drain_class_locked(class, &mut st);
        self.release_vector_locked(class, &mut st, sv);
        let t0 = Instant::now();
        let returned = cache.len() as u64;
        let batch = self.transfer.batch();
        while !cache.is_empty() {
            let n = batch.min(cache.len());
            let chunk: Vec<usize> = cache.drain(cache.len() - n..).collect();
            match self.transfer.try_push(class.index(), chunk) {
                Ok(()) => {
                    self.counters.transfer_spills.fetch_add(1, Ordering::Relaxed);
                }
                Err(chunk) => {
                    for addr in chunk {
                        self.release_claimed(class, &mut st, addr);
                    }
                }
            }
        }
        self.counters.record_slow(TimedOp::TransferSpill, t0, returned);
    }

    fn release_vector_locked(&self, class: SizeClass, st: &mut ClassState, sv: &mut ShuffleVector) {
        let Some(old) = sv.miniheap() else { return };
        // Detach-spill: when the span will survive detaching anyway (live
        // objects beyond the vector's claims), park surplus vector slots
        // in the transfer cache so the next refill skips the class lock.
        // Only mostly-live spans spill (≥ half the slots hold objects the
        // app still owns): a mostly-free span is a reclamation candidate,
        // and cached claims would pin it — the free path could never
        // destroy it once its last live object dies, and meshing would
        // have to purge the cache to see its true occupancy.
        if self.transfer.cache_enabled() && sv.available() > 0 {
            let mh = st.slab.get(old).expect("attached id is live");
            let (in_use, count) = (mh.in_use(), mh.object_count());
            if in_use - sv.available() >= count.div_ceil(2) {
                let t0 = Instant::now();
                let mut spilled = 0u64;
                let batch = self.transfer.batch();
                let mut budget =
                    (self.transfer.room(class.index()) * batch).min(sv.available());
                while budget > 0 {
                    let chunk = sv.spill(batch.min(budget));
                    if chunk.is_empty() {
                        break;
                    }
                    budget -= chunk.len();
                    spilled += chunk.len() as u64;
                    match self.transfer.try_push(class.index(), chunk) {
                        Ok(()) => {
                            self.counters.transfer_spills.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(chunk) => {
                            for addr in chunk {
                                self.release_claimed(class, st, addr);
                            }
                        }
                    }
                }
                self.counters.record_slow(TimedOp::TransferSpill, t0, spilled);
            }
        }
        {
            let mh = st.slab.get(old).expect("attached id is live");
            sv.detach(mh.bitmap());
        }
        let mh = st.slab.get_mut(old).expect("attached id is live");
        mh.set_state(AttachState::Detached);
        if mh.in_use() == 0 {
            self.free_miniheap_locked(st, old);
        } else {
            st.bin_insert(old);
        }
    }

    // ----- large objects (§4.4.3) ---------------------------------------

    /// Allocates a large object: the request is rounded up to whole pages
    /// and a singleton MiniHeap accounts for it. Takes the large-shard
    /// lock, then the arena lock.
    pub fn malloc_large(&self, size: usize) -> Result<usize, MeshError> {
        self.malloc_large_aligned(size, PAGE_SIZE)
    }

    /// Allocates a large object aligned to `align` (a power of two).
    /// Alignments above the page size are served by over-allocating
    /// `align/PAGE_SIZE − 1` extra pages and returning the first aligned
    /// address inside the span — every page of the span routes through the
    /// page map to the same singleton MiniHeap, so `free`/`usable_size` on
    /// the interior pointer behave normally.
    pub fn malloc_large_aligned(&self, size: usize, align: usize) -> Result<usize, MeshError> {
        debug_assert!(align.is_power_of_two());
        let guarded = self.harden.guard_on();
        let extra = (align / PAGE_SIZE).saturating_sub(1) + usize::from(guarded);
        let requested = size.div_ceil(PAGE_SIZE).max(1).saturating_add(extra);
        // Absurd sizes (near usize::MAX) must fail as exhaustion, not
        // truncate in the page-count narrowing below; the byte length must
        // also fit the MiniHeap's u32 object size.
        let exhausted = || MeshError::ArenaExhausted {
            requested_pages: requested,
            capacity_pages: self.pages as usize,
        };
        if requested > (u32::MAX as usize) / PAGE_SIZE {
            return Err(exhausted());
        }
        let Ok(pages) = u32::try_from(requested) else {
            return Err(exhausted());
        };
        let (span, object_bytes, addr) = {
            let mut large = self.large.lock();
            let mut arena = self.lock_arena();
            let (span, _) = arena.alloc_span(pages)?;
            let start = self.base + span.offset as usize * PAGE_SIZE;
            let addr = if align > PAGE_SIZE {
                (start + align - 1) & !(align - 1)
            } else {
                start
            };
            let mut mh = if guarded {
                MiniHeap::new_large_guarded(span)
            } else {
                MiniHeap::new_large(span)
            };
            if addr != start {
                // Hardened frees are pinned to the exact handed-out
                // address, so remember where the over-aligned object
                // actually starts.
                mh.set_large_start_off(addr - start);
            }
            let object_bytes = mh.object_size();
            let id = large.insert(mh);
            self.page_map.set_span(span, id, LARGE_CLASS);
            (span, object_bytes, addr)
        };
        if guarded {
            // The span's last page is the guard. Die policy: register the
            // page with the write-barrier fault handler (so its faults
            // forward to SIG_DFL instead of the barrier's retry loop) and
            // make it PROT_NONE — a linear overflow then faults on the
            // first byte past the object. Count policy — or a full guard
            // registry — degrades to a poison fill verified when the
            // object dies. The fill goes in first either way, so even a
            // failed mprotect leaves a checkable guard.
            let tail = (self.base + span.byte_offset() + span.byte_len() - PAGE_SIZE) as *mut u8;
            unsafe {
                std::ptr::write_bytes(tail, harden::POISON_BYTE, PAGE_SIZE);
                if self.harden.aborts() && crate::barrier::register_guard_page(tail as usize) {
                    let _ = crate::sys::protect_none(tail, PAGE_SIZE);
                }
            }
        }
        self.counters.large_allocs.fetch_add(1, Ordering::Relaxed);
        self.counters.mallocs.fetch_add(1, Ordering::Relaxed);
        self.counters
            .live_bytes
            .fetch_add(object_bytes, Ordering::Relaxed);
        let start = self.base + span.offset as usize * PAGE_SIZE;
        debug_assert!(addr + size <= start + object_bytes);
        if let Some(t) = &self.telemetry {
            // Large objects are traced exactly (sampling probability ≈ 1
            // at these sizes); keyed by the address actually handed out,
            // which is what free() will present.
            t.record_large(addr, object_bytes);
        }
        Ok(addr)
    }

    fn free_large(&self, addr: usize, page: u32) -> bool {
        let mut large = self.large.lock();
        // Re-check under the lock: a racing free may already have retired
        // this object (its page-map entries are then cleared or reused).
        let Some(info) = self.page_map.get(page) else {
            self.counters.invalid_frees.fetch_add(1, Ordering::Relaxed);
            self.harden_violation(HardenKind::InvalidFree, addr);
            return false;
        };
        if !info.is_large() {
            self.counters.invalid_frees.fetch_add(1, Ordering::Relaxed);
            self.harden_violation(HardenKind::InvalidFree, addr);
            return false;
        }
        let Some(mh) = large.get(info.id) else {
            self.counters.invalid_frees.fetch_add(1, Ordering::Relaxed);
            self.harden_violation(HardenKind::InvalidFree, addr);
            return false;
        };
        // Classic mode accepts any pointer into the live span (C-lenient,
        // like the interior-offset tolerance on the small path). Hardened
        // mode pins free to the exact address malloc returned: an interior
        // pointer must not be able to release — or double-count — the
        // whole object.
        if self.harden.active() {
            let start = self.base + mh.span().byte_offset() + mh.large_start_off();
            if addr != start {
                self.counters.invalid_frees.fetch_add(1, Ordering::Relaxed);
                self.harden_violation(HardenKind::InvalidFree, addr);
                return false;
            }
        }
        if !mh.bitmap().unset(0) {
            self.counters.double_frees.fetch_add(1, Ordering::Relaxed);
            self.harden_violation(HardenKind::DoubleFree, addr);
            return false;
        }
        let mh = large.remove(info.id);
        let span = mh.span();
        if mh.is_guarded() {
            let tail = (self.base + span.byte_offset() + span.byte_len() - PAGE_SIZE) as *mut u8;
            unsafe {
                if crate::barrier::unregister_guard_page(tail as usize) {
                    // Faulting guard: it was PROT_NONE (nothing can have
                    // been written through it) and the span is about to
                    // be released and recycled, so restore protection.
                    let _ = crate::sys::protect_read_write(tail, PAGE_SIZE);
                } else {
                    // Poison-scan guard (count policy, or die policy
                    // degraded on a full registry): any write past the
                    // object corrupted the fill.
                    let tail_bytes = std::slice::from_raw_parts(tail, PAGE_SIZE);
                    if tail_bytes.iter().any(|&b| b != harden::POISON_BYTE) {
                        self.harden_violation(HardenKind::Guard, tail as usize);
                    }
                }
            }
        }
        {
            let mut arena = self.lock_arena();
            self.page_map.clear_span(span);
            // Large-object pages go straight back to the OS (§4).
            arena.release_span(span);
        }
        self.counters.frees.fetch_add(1, Ordering::Relaxed);
        self.counters.remote_frees.fetch_add(1, Ordering::Relaxed);
        self.counters
            .live_bytes
            .fetch_sub(mh.object_size(), Ordering::Relaxed);
        true
    }

    // ----- non-local frees (§4.4.4) -------------------------------------

    /// Resolves `addr` to its arena page and page-map entry, or `None`
    /// for foreign/unowned pointers (lock-free).
    #[inline]
    fn resolve_free(&self, addr: usize) -> Option<(u32, crate::page_map::PageInfo)> {
        let page = self.page_of_addr(addr)?;
        let info = self.page_map.get(page)?;
        Some((page, info))
    }

    /// Frees `addr` through the global heap. Small objects are *enqueued*
    /// lock-free on their class's remote-free queue (validation happens at
    /// drain time); large objects are freed immediately under the large
    /// lock. Returns whether the free was accepted (optimistically, for
    /// the queued path).
    pub fn free_global(&self, addr: usize) -> bool {
        if let Some(t) = &self.telemetry {
            t.on_free(addr);
        }
        match self.resolve_free(addr) {
            Some((page, info)) => self.free_routed(addr, page, info),
            None => {
                self.counters.invalid_frees.fetch_add(1, Ordering::Relaxed);
                self.harden_violation(HardenKind::InvalidFree, addr);
                false
            }
        }
    }

    /// Frees `addr` given its already-decoded page-map entry — the entry
    /// point used by the thread-heap fast path, which resolved the entry
    /// for its own local/remote decision and passes it down instead of
    /// having the global heap re-derive it.
    pub(crate) fn free_routed(
        &self,
        addr: usize,
        page: u32,
        info: crate::page_map::PageInfo,
    ) -> bool {
        let accepted = self.free_resolved_inner(addr, page, info);
        if accepted {
            self.scheduler.on_global_free();
            self.settle_after_free();
        }
        accepted
    }

    /// The inline meshing/settlement that follows an accepted global
    /// free. Must be called with no shard locks held.
    pub(crate) fn settle_after_free(&self) {
        if !self.rt.background_meshing {
            if self.rt.meshing() {
                // Inline meshing (seed semantics): rate-limited by the
                // scheduler; no locks are held here. Passes drain every
                // class's queue.
                self.maybe_mesh();
            } else if self.scheduler.should_drain(self.rt.mesh_period()) {
                // "Mesh (no meshing)" configuration: no pass will ever
                // drain the queues, so settle them on the mesh period
                // instead — reclamation must not be deferred unboundedly.
                self.drain_all();
            }
        }
    }

    /// Flushes a sender-side buffer of small-object frees for one class
    /// as a single batch node: one allocation and one CAS per buffer.
    /// Takes no locks; the caller runs [`GlobalHeap::settle_after_free`]
    /// afterwards from a lock-free context.
    pub(crate) fn flush_remote_batch(&self, class_idx: usize, buf: &mut Vec<usize>) {
        if buf.is_empty() {
            return;
        }
        self.counters
            .remote_free_queued
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.counters
            .remote_free_batches
            .fetch_add(1, Ordering::Relaxed);
        self.classes[class_idx].queue.push_batch(std::mem::take(buf));
        self.scheduler.on_global_free();
    }

    fn free_resolved_inner(&self, addr: usize, page: u32, info: crate::page_map::PageInfo) -> bool {
        if info.is_large() {
            return self.free_large(addr, page);
        }
        self.counters
            .remote_free_queued
            .fetch_add(1, Ordering::Relaxed);
        self.classes[info.class_code as usize].queue.push(addr);
        true
    }

    /// Frees `addr` through the global path *without* running inline
    /// meshing or queue settlement: the route for frees arriving from
    /// internal contexts (which may already hold a shard lock a meshing
    /// pass would retake). The queued free is applied at the next refill,
    /// pass, or stats flush.
    pub fn free_global_deferred(&self, addr: usize) -> bool {
        if let Some(t) = &self.telemetry {
            t.on_free(addr);
        }
        let Some((page, info)) = self.resolve_free(addr) else {
            self.counters.invalid_frees.fetch_add(1, Ordering::Relaxed);
            self.harden_violation(HardenKind::InvalidFree, addr);
            return false;
        };
        let accepted = self.free_resolved_inner(addr, page, info);
        if accepted {
            self.scheduler.on_global_free();
        }
        accepted
    }

    // ----- fork support --------------------------------------------------

    /// Acquires every heap lock in the canonical order — size classes by
    /// index, then the large shard, then the arena leaf, then the
    /// transfer-cache leaves, then the scheduler leaves, then the
    /// per-thread stats registry, then the sender-buffer registry, then
    /// the telemetry dump clock, then the sense poll clock, then the
    /// histogram-block registry, then the trace-ring registry, then the
    /// ctl socket's I/O lock — quiescing the heap for `fork()`. Any
    /// in-flight refill, drain, meshing pass, thread-block
    /// (un)registration, or dump-clock claim completes before this
    /// returns, so a child forked at any moment inherits consistent heap
    /// state.
    pub(crate) fn lock_all(&self) -> AllShardGuards<'_> {
        let classes = SizeClass::all().map(|c| self.lock_class(c)).collect();
        let large = self.large.lock();
        let arena = self.lock_arena();
        let transfer = self.transfer.lock_all();
        let (sched_mesh, sched_purge, sched_drain) = self.scheduler.lock_all();
        let stat_locals = self.counters.lock_locals();
        let senders = self.senders.lock();
        let telemetry_dump = self.telemetry.as_ref().map(|t| t.lock_dump_clock());
        let sense_clock = self.sense.as_ref().map(|s| s.lock_poll_clock());
        let hist_locals = self.counters.lock_hist_locals();
        let trace_rings = self.counters.trace_set().map(|t| t.lock_rings());
        let ctl = self.ctl.as_ref().map(|c| c.lock_io());
        AllShardGuards {
            _classes: classes,
            _large: large,
            _arena: arena,
            _transfer: transfer,
            _sched_mesh: sched_mesh,
            _sched_purge: sched_purge,
            _sched_drain: sched_drain,
            _stat_locals: stat_locals,
            _senders: senders,
            _telemetry_dump: telemetry_dump,
            _sense_clock: sense_clock,
            _hist_locals: hist_locals,
            _trace_rings: trace_rings,
            _ctl: ctl,
        }
    }

    /// Child-side fork recovery: re-backs every segment with a private
    /// file copy and re-establishes mesh alias mappings (which the
    /// identity remap clobbers; large objects are never meshed, so
    /// identity is already right for them). Runs in the single-threaded
    /// child with no locks held; takes them normally. Returns whether
    /// privatization succeeded.
    pub(crate) fn privatize_after_fork(&self) -> bool {
        if let Err(e) = self.lock_arena().privatize_segments() {
            eprintln!(
                "mesh: fork privatization failed ({e}); child still shares parent heap pages"
            );
            return false;
        }
        let mut ok = true;
        for class in SizeClass::all() {
            let st = self.lock_class(class);
            for (_, mh) in st.slab.iter() {
                if mh.span_count() > 1 {
                    let spans = mh.virtual_spans();
                    let mut arena = self.lock_arena();
                    for alias in &spans[1..] {
                        // Warn-and-continue, like the copy failure above: a
                        // degraded child beats aborting someone's shell from
                        // an atfork handler. (The alias range then reads its
                        // own identity pages instead of the meshed data.)
                        if let Err(e) = arena.remap_alias(*alias, spans[0]) {
                            eprintln!(
                                "mesh: fork alias remap failed ({e}); \
                                 meshed span {alias} left unaliased in the child"
                            );
                            ok = false;
                        }
                    }
                }
            }
        }
        if self.harden.guard_on() && self.harden.aborts() {
            // The identity remap re-backed every page read-write, clobbering
            // the PROT_NONE guard tails of live large objects.
            let large = self.large.lock();
            for (_, mh) in large.iter() {
                if mh.is_guarded() {
                    let span = mh.span();
                    let tail =
                        (self.base + span.byte_offset() + span.byte_len() - PAGE_SIZE) as *mut u8;
                    // Degraded (poison-scan) guards must stay readable —
                    // only registered faulting guards get PROT_NONE back.
                    if !crate::barrier::guard_page_registered(tail as usize) {
                        continue;
                    }
                    if let Err(e) = unsafe { crate::sys::protect_none(tail, PAGE_SIZE) } {
                        eprintln!("mesh: fork guard re-protect failed ({e})");
                        ok = false;
                    }
                }
            }
        }
        ok
    }

    // ----- meshing entry points -----------------------------------------

    /// Runs a meshing pass if meshing is enabled and the rate limiter
    /// allows it (§4.5). Must be called with no shard locks held.
    pub fn maybe_mesh(&self) {
        if !self.rt.meshing() {
            return;
        }
        if self.scheduler.due(self.rt.mesh_period()) {
            self.mesh_now();
        }
    }

    /// Runs a meshing pass immediately (bypassing the rate limiter),
    /// returning its summary. Still a no-op when meshing is disabled —
    /// the "Mesh (no meshing)" configuration never meshes (§6.3). Must be
    /// called with no shard locks held.
    pub fn mesh_now(&self) -> MeshSummary {
        if !self.rt.meshing() {
            return MeshSummary::default();
        }
        // While this scope lives, other threads' contended lock waits are
        // pauses inflicted by the mesher (this thread's own are not).
        let _pass = crate::stats::MeshPassScope::enter(&self.counters);
        let summary = meshing::mesh_all_classes(self);
        self.scheduler
            .finish_pass(summary.bytes_released() < self.rt.min_mesh_gain_bytes());
        summary
    }

    // ----- queries ------------------------------------------------------

    /// Object size usable at `addr`, or `None` for foreign pointers —
    /// including addresses in a span's tail waste past the last object
    /// slot. For interior pointers into a large span (over-aligned
    /// allocations return those) this is the bytes remaining to the span
    /// end, matching what `malloc_usable_size` promises for the pointer
    /// actually handed out. Lock-free for small classes.
    pub fn usable_size(&self, addr: usize) -> Option<usize> {
        let page = self.page_of_addr(addr)?;
        let info = self.page_map.get(page)?;
        if info.is_large() {
            let large = self.large.lock();
            let mh = large.get(info.id)?;
            let span_start = self.base + mh.span().byte_offset();
            debug_assert!(addr >= span_start);
            Some(mh.object_size() - (addr - span_start))
        } else {
            let class = SizeClass::from_index(info.class_code as usize);
            let slot = (addr - info.span_start(self.base, page)) / class.object_size();
            if slot >= class.object_count() {
                return None;
            }
            Some(class.object_size())
        }
    }

    /// Whether the allocation at `addr` already satisfies `new_size`
    /// without moving: same size class for small objects; still within
    /// the page span at ≥ 50% utilization for large ones. One page-map
    /// resolution (plus the large lock only for large pointers) —
    /// `realloc`'s fast-path decision.
    pub fn realloc_fits_in_place(&self, addr: usize, new_size: usize) -> bool {
        let Some((page, info)) = self.resolve_free(addr) else {
            return false;
        };
        if info.is_large() {
            let usable = {
                let large = self.large.lock();
                let Some(mh) = large.get(info.id) else {
                    return false;
                };
                // Bytes to the span end, as for `usable_size` (interior
                // pointers from over-aligned allocations are legal here).
                mh.object_size() - (addr - (self.base + mh.span().byte_offset()))
            };
            new_size <= usable && new_size * 2 >= usable
        } else {
            let class = SizeClass::from_index(info.class_code as usize);
            let offset = addr - info.span_start(self.base, page);
            offset / class.object_size() < class.object_count()
                && offset.is_multiple_of(class.object_size())
                && SizeClass::for_size(new_size) == Some(class)
        }
    }

    /// Per-segment accounting snapshots (takes the arena leaf lock).
    pub fn segment_stats(&self) -> Vec<crate::segment::SegmentStats> {
        self.lock_arena().segment_stats()
    }

    /// Purges dirty pages and retires any segment left with all pages
    /// clean. Transfer-cache claims are released first (one class lock at
    /// a time, before the arena leaf): a span whose only "live" objects
    /// sit in the cache would otherwise pin its pages committed forever.
    pub fn purge_and_retire(&self) {
        let _pass = crate::stats::MeshPassScope::enter(&self.counters);
        self.purge_transfer_all();
        let mut arena = self.lock_arena();
        arena.purge_dirty();
        arena.retire_empty_segments(&self.page_map);
    }

    /// Snapshots of every live MiniHeap (shard locks taken one at a time).
    pub fn span_snapshots(&self) -> Vec<crate::stats::SpanSnapshot> {
        let mut out = Vec::new();
        let snap = |mh: &MiniHeap| crate::stats::SpanSnapshot {
            object_size: mh.object_size(),
            object_count: mh.object_count(),
            in_use: mh.in_use(),
            bitmap_words: mh.bitmap().load_words(),
            virtual_span_count: mh.span_count(),
            attached: mh.is_attached(),
            large: mh.is_large(),
        };
        for class in SizeClass::all() {
            let st = self.lock_class(class);
            out.extend(st.slab.iter().map(|(_, mh)| snap(mh)));
        }
        let large = self.large.lock();
        out.extend(large.iter().map(|(_, mh)| snap(mh)));
        out
    }

    // ----- telemetry (mesh-insight) -------------------------------------

    /// Computes the occupancy spectrum: per-class span histograms over
    /// the occupancy bins plus a meshability estimate, and the
    /// large-object tally. Takes one class lock at a time — never two,
    /// never across classes — so it can run against live traffic.
    pub fn occupancy_spectrum(&self) -> HeapSpectrum {
        let cutoff = self.rt.occupancy_cutoff();
        let mut spec = HeapSpectrum::default();
        let mut candidates: Vec<u32> = Vec::new();
        for class in SizeClass::all() {
            let slots = class.object_count();
            let cs = &mut spec.classes[class.index()];
            cs.object_size = class.object_size() as u32;
            cs.meshable = class.is_meshable();
            candidates.clear();
            let st = self.lock_class(class);
            for (_, mh) in st.slab.iter() {
                let in_use = mh.in_use();
                cs.live_objects += in_use as u64;
                cs.total_slots += slots as u64;
                if mh.is_attached() {
                    cs.attached_spans += 1;
                } else {
                    // Recompute rather than trusting `mh.bin`: a span can
                    // be transiently unbinned (mid-selection) and drained
                    // occupancy may have moved since binning.
                    let bin = if in_use == 0 {
                        // Empty MiniHeaps are freed, not binned; a
                        // transient zero counts with the emptiest.
                        PARTIAL_BINS as u8 - 1
                    } else {
                        bin_for_occupancy(in_use, slots)
                    };
                    cs.bins[bin as usize] += 1;
                    if cs.meshable
                        && mh.span_count() < self.rt.max_span_count()
                        && (in_use as f64 / slots as f64) <= cutoff
                    {
                        candidates.push(in_use as u32);
                    }
                }
            }
            drop(st);
            cs.est_meshable_pairs =
                telemetry::estimate_meshable_pairs(&mut candidates, slots as u32);
        }
        let large = self.large.lock();
        spec.large_spans = large.len() as u32;
        spec.large_bytes = large.iter().map(|(_, mh)| mh.object_size() as u64).sum();
        spec
    }

    /// Renders the version-1 JSON heap profile, or `None` when profiling
    /// is off. Allocates; callers hold the internal-alloc guard (and no
    /// shard locks — the drain takes them).
    pub fn profile_json(&self) -> Option<String> {
        let t = self.telemetry.as_ref()?;
        // Settle the remote-free queues first: the estimator side retired
        // sampled objects at free-*enqueue* time, while the exact counter
        // only moves when a queued free is applied. Without the drain,
        // the dump's live_bytes_exact cross-check field would read high
        // on remote-free-heavy workloads and belie a correct estimator.
        self.drain_all();
        let prof = t.stats();
        let entries = t.site_snapshots();
        Some(telemetry::profile_json(
            &prof,
            &entries,
            self.counters.snapshot().live_bytes,
            self.counters.uptime_ms(),
        ))
    }

    /// Takes one mesh-sense poll: reads the pressure sources, decomposes
    /// residency from the segment snapshots, advances the bounded
    /// `mincore` sweep, and appends a snapshot to the ring. Called by
    /// [`GlobalHeap::telemetry_tick`] and by synchronous dump paths.
    /// Takes the arena leaf lock briefly (for the segment snapshots),
    /// then the sense poll clock — the ring's single-writer guard —
    /// for the sweep and push. Respects the canonical lock order (the
    /// clock comes after the arena; neither is held across the other).
    pub(crate) fn sense_poll(&self) {
        let Some(sense) = &self.sense else { return };
        let segs = self.segment_stats();
        let res = telemetry::decompose(&segs);
        let p = telemetry::read_pressure();
        let stats = self.counters.snapshot();
        let _clock = sense.lock_poll_clock();
        let est_resident_bytes =
            sense.sweep(self.base, &segs, res.mapped_bytes, res.committed_bytes);
        sense.push(&SenseSnapshot {
            at_ms: self.counters.uptime_ms(),
            rss_bytes: p.rss_bytes.unwrap_or(ABSENT),
            est_resident_bytes,
            live_bytes: res.live_bytes,
            heap_bytes: stats.heap_bytes() as u64,
            mapped_bytes: res.mapped_bytes,
            free_dirty_bytes: res.free_dirty_bytes,
            free_clean_bytes: res.free_clean_bytes,
            meta_bytes: res.meta_bytes,
            psi_avg10_milli: p.psi_avg10_milli.unwrap_or(ABSENT),
            psi_avg60_milli: p.psi_avg60_milli.unwrap_or(ABSENT),
            cgroup_limit_bytes: p.cgroup_limit_bytes.unwrap_or(ABSENT),
            cgroup_usage_bytes: p.cgroup_usage_bytes.unwrap_or(ABSENT),
            mallocs: stats.mallocs,
            frees: stats.frees,
            mesh_passes: stats.mesh_passes,
            pairs_meshed: stats.spans_meshed,
        });
    }

    /// Renders the version-1 mesh-sense JSON: current residency (per
    /// segment and heap-wide), the mesh-pass effectiveness ledger, and
    /// the retained snapshot time series. `None` when sensing is off.
    /// Allocates; callers hold the internal-alloc guard.
    pub fn sense_json(&self) -> Option<String> {
        let sense = self.sense.as_ref()?;
        let segs = self.segment_stats();
        let res = telemetry::decompose(&segs);
        let mut seg_rows = String::new();
        for (i, s) in res.segments.iter().enumerate() {
            if i > 0 {
                seg_rows.push(',');
            }
            seg_rows.push_str(&format!(
                "{{\"id\":{},\"start_page\":{},\"pages\":{},\"live_pages\":{},\
                 \"free_dirty_pages\":{},\"free_clean_pages\":{},\"meta_pages\":{},\
                 \"committed_pages\":{}}}",
                s.id,
                s.start_page,
                s.pages,
                s.live_pages,
                s.free_dirty_pages,
                s.free_clean_pages,
                s.meta_pages,
                s.committed_pages,
            ));
        }
        let totals = self.ledger.reject_totals();
        let mut reject_rows = String::new();
        for (i, r) in telemetry::ALL_REJECT_REASONS.iter().enumerate() {
            if i > 0 {
                reject_rows.push(',');
            }
            reject_rows.push_str(&format!("\"{}\":{}", r.name(), totals[i]));
        }
        let passes: Vec<String> = self.ledger.recent().iter().map(|p| p.json()).collect();
        let snaps: Vec<String> = sense.snapshots().iter().map(|s| s.json()).collect();
        Some(format!(
            "{{\"mesh_sense_version\":1,\"uptime_ms\":{},\
             \"interval_ms\":{},\"history\":{},\"mincore_page_budget\":{},\
             \"residency\":{{\"mapped_bytes\":{},\"live_bytes\":{},\
             \"free_dirty_bytes\":{},\"free_clean_bytes\":{},\"meta_bytes\":{},\
             \"committed_bytes\":{},\"segments\":[{}]}},\
             \"ledger\":{{\"passes_recorded\":{},\"rejected_total\":{{{}}},\
             \"passes\":[{}]}},\
             \"snapshots\":[{}]}}",
            self.counters.uptime_ms(),
            sense.interval().as_millis(),
            sense.history(),
            sense.mincore_page_budget(),
            res.mapped_bytes,
            res.live_bytes,
            res.free_dirty_bytes,
            res.free_clean_bytes,
            res.meta_bytes,
            res.committed_bytes,
            seg_rows,
            self.ledger.passes_recorded(),
            reject_rows,
            passes.join(","),
            snaps.join(","),
        ))
    }

    /// One background-thread telemetry beat: writes a profile dump when
    /// one is due (interval expired, or a request from `SIGUSR2` /
    /// [`Telemetry::request_dump`]), a trace dump when one was requested,
    /// a mesh-sense poll when the poll clock expires, and a sense dump
    /// when one was requested — then a beat of the mesh-ctl socket. No-op
    /// without profiling, tracing, sensing, or a control socket.
    pub(crate) fn telemetry_tick(&self) {
        if let Some(t) = &self.telemetry {
            if t.take_dump_due() {
                if let Some(json) = self.profile_json() {
                    t.write_dump(&json);
                }
            }
        }
        if let Some(trace) = self.counters.trace_set() {
            if trace.take_dump_due() {
                let json = trace.chrome_json(self.counters.uptime_ms());
                trace.write_dump(&json);
            }
        }
        if let Some(sense) = &self.sense {
            if sense.take_poll_due() {
                self.sense_poll();
            }
            if sense.take_dump_due() {
                if let Some(json) = self.sense_json() {
                    sense.write_dump(&json);
                }
            }
        }
        self.ctl_tick();
    }

    /// How long the background thread may park: until the meshing
    /// scheduler's next deadline or the next interval dump, whichever is
    /// closer — or a full idle slice when neither is pending (paused
    /// timer, no interval). Replaces the old fixed 50 ms polling slices,
    /// cutting idle wakeups ~20×.
    pub(crate) fn next_park(&self) -> Duration {
        let mut park = crate::mesher::IDLE_PARK;
        if self.rt.background_meshing && self.rt.meshing() {
            if let Some(d) = self.scheduler.time_until_due(self.rt.mesh_period()) {
                park = park.min(d);
            }
        }
        if let Some(t) = &self.telemetry {
            if let Some(d) = t.time_until_dump() {
                park = park.min(d);
            }
        }
        if let Some(s) = &self.sense {
            park = park.min(s.time_until_poll());
        }
        // A live control socket needs polling-grade latency; a ctl that
        // failed to bind costs nothing.
        if self.ctl.as_ref().is_some_and(|c| c.is_listening()) {
            park = park.min(CTL_PARK);
        }
        park.clamp(Duration::from_millis(1), crate::mesher::IDLE_PARK)
    }

    /// Whether a heap with this configuration runs the background thread:
    /// for background meshing, for telemetry duties (interval dumps,
    /// signal- or API-requested profile, trace, and sense dumps; periodic
    /// sense polls), to serve the mesh-ctl socket, or any combination.
    pub(crate) fn background_thread_wanted(&self) -> bool {
        self.rt.background_meshing
            || self.telemetry.is_some()
            || self.counters.trace_set().is_some()
            || self.sense.is_some()
            || self.ctl.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> GlobalHeap {
        let counters = Arc::new(Counters::default());
        GlobalHeap::new(
            MeshConfig::default()
                .arena_bytes(16 << 20)
                .seed(7)
                .write_barrier(false),
            counters,
        )
        .unwrap()
    }

    #[test]
    fn bin_for_occupancy_quartiles() {
        assert_eq!(bin_for_occupancy(256, 256), FULL_BIN);
        assert_eq!(bin_for_occupancy(255, 256), 0); // [75%, 100%)
        assert_eq!(bin_for_occupancy(192, 256), 0);
        assert_eq!(bin_for_occupancy(191, 256), 1);
        assert_eq!(bin_for_occupancy(128, 256), 1);
        assert_eq!(bin_for_occupancy(127, 256), 2);
        assert_eq!(bin_for_occupancy(64, 256), 2);
        assert_eq!(bin_for_occupancy(63, 256), 3);
        assert_eq!(bin_for_occupancy(1, 256), 3);
    }

    #[test]
    fn fresh_miniheap_registers_pages() {
        let h = heap();
        let class = SizeClass::for_size(64).unwrap();
        let (id, addr) = {
            let mut st = h.lock_class(class);
            let id = h.fresh_miniheap_locked(&mut st, class).unwrap();
            let mh = st.slab.get(id).unwrap();
            (id, h.base_addr() + mh.span().byte_offset() + 64 * 3)
        };
        let info = h.page_map.get(h.page_of_addr(addr).unwrap()).unwrap();
        assert_eq!(info.id, id);
        assert_eq!(info.class_code as usize, class.index());
    }

    #[test]
    fn refill_attach_detach_cycle() {
        // transfer_batch(1): legacy drain semantics (no recycling), so the
        // drained free must rebin the span. Recycling behaviour has its
        // own test below.
        let h = GlobalHeap::new(
            MeshConfig::default()
                .arena_bytes(16 << 20)
                .seed(7)
                .write_barrier(false)
                .transfer_batch(1),
            Arc::new(Counters::default()),
        )
        .unwrap();
        let class = SizeClass::for_size(128).unwrap();
        let mut sv = ShuffleVector::new(true);
        let mut rng = Rng::with_seed(1);
        h.refill(&mut sv, class, 1, &mut rng).unwrap();
        assert_eq!(sv.available(), class.object_count());
        // Allocate a couple of objects, then force a detach via refill.
        let a = sv.malloc().unwrap();
        let _b = sv.malloc().unwrap();
        let first = sv.miniheap().unwrap();
        // Exhaust and refill: old MiniHeap must land in a bin (full).
        while sv.malloc().is_some() {}
        h.refill(&mut sv, class, 1, &mut rng).unwrap();
        let second = sv.miniheap().unwrap();
        assert_ne!(first, second);
        {
            let st = h.lock_class(class);
            let old = st.slab.get(first).unwrap();
            assert!(!old.is_attached());
            assert_eq!(old.in_use(), class.object_count(), "all slots allocated");
            assert_eq!(old.bin, FULL_BIN);
        }
        // Free one object globally: queued lock-free, applied at drain,
        // after which it must drop out of the full bin.
        assert!(h.free_global(a));
        {
            let st = h.lock_class(class);
            assert_eq!(st.slab.get(first).unwrap().bin, FULL_BIN, "not yet drained");
        }
        h.drain_all();
        let st = h.lock_class(class);
        assert_eq!(st.slab.get(first).unwrap().bin, 0);
    }

    #[test]
    fn detach_spills_surplus_into_transfer_cache() {
        // Default batching knobs: a detach with avail slots — while other
        // objects of the span are still app-live — parks the surplus in
        // the transfer cache instead of handing it back to the span. A
        // long mesh period keeps inline passes (which purge the cache)
        // out of the way.
        let h = GlobalHeap::new(
            MeshConfig::default()
                .arena_bytes(16 << 20)
                .seed(7)
                .write_barrier(false)
                .mesh_period(Duration::from_secs(3600)),
            Arc::new(Counters::default()),
        )
        .unwrap();
        let class = SizeClass::for_size(128).unwrap();
        let count = class.object_count();
        let mut sv = ShuffleVector::new(true);
        let mut rng = Rng::with_seed(1);
        h.refill(&mut sv, class, 1, &mut rng).unwrap();
        let first = sv.miniheap().unwrap();
        let mut addrs = Vec::new();
        while let Some(a) = sv.malloc() {
            addrs.push(a);
        }
        // Locally free 10 objects back into the avail mask; the rest stay
        // "app-live", so detaching cannot reclaim the span.
        let returned: Vec<usize> = addrs.drain(..10).collect();
        for &a in &returned {
            unsafe { sv.free(a, &mut rng) };
        }
        h.release_vector(class, &mut sv);
        {
            let st = h.lock_class(class);
            let mh = st.slab.get(first).unwrap();
            assert_eq!(mh.bin, FULL_BIN, "spilled claims keep occupancy");
            assert_eq!(mh.in_use(), count, "cached slots stay claimed");
        }
        for &a in &returned {
            assert!(h.transfer.contains(class.index(), a), "address parked");
        }
        assert_eq!(h.counters.snapshot().transfer_spills, 1, "one batch pushed");
        // A hostile free of a cache-held address is caught by membership.
        assert!(h.free_global(returned[0]), "push is optimistic");
        h.drain_all();
        let s = h.counters.snapshot();
        assert_eq!(s.frees, 0);
        assert_eq!(s.double_frees, 1, "cache membership caught the dup");
        // The parked batch refills a vector without touching the shard.
        let popped = h.transfer.pop(class.index()).unwrap();
        assert_eq!(popped.len(), 10);
        // Purging returns the claims to the span: occupancy drops and the
        // span rebins as partial (the meshing-truthfulness hook).
        let mut st = h.lock_class(class);
        for a in popped {
            h.release_claimed(class, &mut st, a);
        }
        let mh = st.slab.get(first).unwrap();
        assert_eq!(mh.in_use(), count - 10);
        assert!(mh.bin < FULL_BIN, "span visible to meshing again");
    }

    #[test]
    fn select_partial_prefers_fullest_bin() {
        let h = heap();
        let class = SizeClass::for_size(64).unwrap();
        let count = class.object_count();
        // Create two detached MiniHeaps with different occupancies.
        let mut st = h.lock_class(class);
        let make = |st: &mut ClassState, live: usize| {
            let id = h.fresh_miniheap_locked(st, class).unwrap();
            let mh = st.slab.get(id).unwrap();
            for slot in 0..live {
                mh.bitmap().try_set(slot);
            }
            st.bin_insert(id);
            id
        };
        let low = make(&mut st, 1);
        let high = make(&mut st, count * 9 / 10);
        let picked = st.select_partial().unwrap();
        assert_eq!(picked, high, "fullest bin scanned first");
        let picked2 = st.select_partial().unwrap();
        assert_eq!(picked2, low);
        assert!(st.select_partial().is_none());
    }

    #[test]
    fn empty_detach_destroys_miniheap() {
        let h = heap();
        let class = SizeClass::for_size(48).unwrap();
        let mut sv = ShuffleVector::new(true);
        let mut rng = Rng::with_seed(2);
        h.refill(&mut sv, class, 1, &mut rng).unwrap();
        let id = sv.miniheap().unwrap();
        let committed_before = h.lock_arena().committed_pages();
        // Nothing allocated: releasing the vector should destroy it.
        h.release_vector(class, &mut sv);
        let st = h.lock_class(class);
        assert!(st.slab.get(id).is_none());
        assert_eq!(st.slab.len(), 0);
        // Span went to the dirty bin; committed unchanged until purge.
        assert_eq!(h.lock_arena().committed_pages(), committed_before);
    }

    #[test]
    fn malloc_large_and_free_releases_pages() {
        let h = heap();
        let addr = h.malloc_large(100_000).unwrap();
        let pages = 100_000usize.div_ceil(PAGE_SIZE);
        assert_eq!(h.lock_arena().committed_pages(), pages);
        assert_eq!(h.usable_size(addr), Some(pages * PAGE_SIZE));
        assert!(h.free_global(addr));
        assert_eq!(
            h.lock_arena().committed_pages(),
            0,
            "large pages released on free"
        );
        assert_eq!(h.large.lock().len(), 0);
    }

    #[test]
    fn malloc_large_aligned_over_page_alignment() {
        let h = heap();
        for align in [8192usize, 1 << 16, 2 << 20] {
            let addr = h.malloc_large_aligned(100_000, align).unwrap();
            assert_eq!(addr % align, 0, "align {align}");
            // Usable size of the aligned (possibly interior) pointer is
            // the bytes remaining to the span end.
            let usable = h.usable_size(addr).unwrap();
            assert!(usable >= 100_000, "align {align}: usable {usable}");
            unsafe { std::ptr::write_bytes(addr as *mut u8, 0x3D, usable) };
            assert!(h.free_global(addr), "align {align}");
        }
        let s = h.counters.snapshot();
        assert_eq!(s.live_bytes, 0, "over-aligned accounting balanced");
        assert_eq!(s.invalid_frees, 0);
    }

    #[test]
    fn invalid_and_double_frees_discarded() {
        let h = heap();
        assert!(!h.free_global(0xdead_beef));
        let addr = h.malloc_large(4096).unwrap();
        assert!(h.free_global(addr));
        assert!(!h.free_global(addr), "double free rejected");
        let s = h.counters.snapshot();
        // After the large object died its page-table entry is cleared, so
        // the second free reads as invalid (wild), not double.
        assert_eq!(s.invalid_frees, 2);
        assert_eq!(s.double_frees, 0);
    }

    #[test]
    fn queued_double_free_detected_at_drain() {
        let h = heap();
        let class = SizeClass::for_size(256).unwrap();
        let mut sv = ShuffleVector::new(true);
        let mut rng = Rng::with_seed(9);
        h.refill(&mut sv, class, 1, &mut rng).unwrap();
        let a = sv.malloc().unwrap();
        // Keep a second object live so the MiniHeap survives the first
        // drained free (a dead MiniHeap would make the duplicate read as
        // *invalid* instead, exactly like the seed's large-object case).
        let _b = sv.malloc().unwrap();
        // Detach so the frees take the global path.
        h.release_vector(class, &mut sv);
        assert!(h.free_global(a));
        assert!(h.free_global(a), "second push is optimistically accepted");
        h.drain_all();
        let s = h.counters.snapshot();
        assert_eq!(s.frees, 1, "only one free applied");
        assert_eq!(s.double_frees, 1, "duplicate rejected at drain");
        assert_eq!(s.remote_free_queued, 2);
        assert_eq!(s.remote_free_drained, 2);
    }

    #[test]
    fn usable_size_for_small_classes() {
        let h = heap();
        let class = SizeClass::for_size(100).unwrap();
        let mut sv = ShuffleVector::new(true);
        let mut rng = Rng::with_seed(3);
        h.refill(&mut sv, class, 1, &mut rng).unwrap();
        let addr = sv.malloc().unwrap();
        assert_eq!(h.usable_size(addr), Some(112));
        assert_eq!(h.usable_size(0x40), None);
    }

    #[test]
    fn usable_size_rejects_span_tail_waste() {
        // 4096 % 48 != 0: the span has tail waste past the last slot, and
        // addresses there are foreign even though the page is owned.
        let h = heap();
        let class = SizeClass::for_size(48).unwrap();
        let mut sv = ShuffleVector::new(true);
        let mut rng = Rng::with_seed(4);
        h.refill(&mut sv, class, 1, &mut rng).unwrap();
        let first = {
            let st = h.lock_class(class);
            let mh = st.slab.get(sv.miniheap().unwrap()).unwrap();
            h.base_addr() + mh.span().byte_offset()
        };
        assert_eq!(h.usable_size(first), Some(48));
        assert_eq!(
            h.usable_size(first + class.object_count() * 48 - 1),
            Some(48),
            "last slot is valid"
        );
        assert_eq!(
            h.usable_size(first + class.object_count() * 48),
            None,
            "tail waste is foreign"
        );
    }

    #[test]
    fn no_meshing_config_still_drains_queues_on_free_path() {
        // The "Mesh (no meshing)" ablation never runs a pass, so the free
        // path itself must settle queues on the mesh-period rate limit.
        let h = GlobalHeap::new(
            MeshConfig::default()
                .arena_bytes(16 << 20)
                .seed(8)
                .meshing(false)
                .mesh_period(Duration::ZERO)
                .write_barrier(false),
            Arc::new(Counters::default()),
        )
        .unwrap();
        let class = SizeClass::for_size(8192).unwrap(); // non-meshable class
        let mut sv = ShuffleVector::new(true);
        let mut rng = Rng::with_seed(5);
        h.refill(&mut sv, class, 1, &mut rng).unwrap();
        let a = sv.malloc().unwrap();
        h.release_vector(class, &mut sv);
        assert!(h.free_global(a));
        // No drain_all(), no stats(): the free path's own settlement must
        // have applied the queued free and destroyed the empty MiniHeap.
        let s = h.counters.snapshot();
        assert_eq!(s.frees, 1, "queued free was never applied");
        assert_eq!(h.lock_class(class).slab.len(), 0);
    }

    #[test]
    fn different_classes_use_disjoint_locks() {
        // Holding one class's lock must not block another class's refill —
        // the acceptance criterion of the sharding refactor.
        let h = Arc::new(heap());
        let c16 = SizeClass::for_size(16).unwrap();
        let c1024 = SizeClass::for_size(1024).unwrap();
        let guard = h.lock_class(c16);
        let h2 = Arc::clone(&h);
        let t = std::thread::spawn(move || {
            let mut sv = ShuffleVector::new(true);
            let mut rng = Rng::with_seed(4);
            h2.refill(&mut sv, c1024, 1, &mut rng).unwrap();
            let p = sv.malloc().unwrap();
            h2.release_vector(c1024, &mut sv);
            p
        });
        let p = t.join().expect("1 KiB refill proceeded under held 16 B lock");
        assert!(p >= h.base_addr());
        drop(guard);
    }

    #[test]
    fn remote_free_enqueue_takes_no_class_lock() {
        // A free routed to a class whose lock is held must complete
        // without blocking (it only pushes onto the lock-free queue).
        // Inline meshing is pushed out of the way: a due pass inside
        // free_global would itself want the held class lock.
        let h = Arc::new(
            GlobalHeap::new(
                MeshConfig::default()
                    .arena_bytes(16 << 20)
                    .seed(7)
                    .mesh_period(Duration::from_secs(3600))
                    .write_barrier(false),
                Arc::new(Counters::default()),
            )
            .unwrap(),
        );
        let class = SizeClass::for_size(512).unwrap();
        let mut sv = ShuffleVector::new(true);
        let mut rng = Rng::with_seed(5);
        h.refill(&mut sv, class, 1, &mut rng).unwrap();
        let addr = sv.malloc().unwrap();
        h.release_vector(class, &mut sv);

        let guard = h.lock_class(class);
        let h2 = Arc::clone(&h);
        let t = std::thread::spawn(move || h2.free_global(addr));
        assert!(t.join().expect("free must not block on the class lock"));
        drop(guard);
        h.drain_all();
        assert_eq!(h.counters.snapshot().frees, 1);
    }
}
