//! Per-span allocation bitmaps (§4.1).
//!
//! Every MiniHeap carries a bitmap with one bit per object slot: bit `i` is
//! set iff the slot at offset `i` is unavailable (allocated, or currently
//! owned by an attached shuffle vector). Bits are manipulated atomically
//! because non-local frees may originate from any thread (§3.2), while the
//! meshability test — *do two spans collide anywhere?* — reduces to a
//! word-wise `AND` over the two bitmaps (Definition 5.1).
//!
//! A span holds at most 256 objects (§4.2), so four 64-bit words suffice;
//! the bitmap is a fixed-size inline array with no heap allocation.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of 64-bit words backing the bitmap.
const WORDS: usize = 4;

/// Maximum number of bits (= maximum objects per span).
pub const MAX_BITS: usize = WORDS * 64;

/// A fixed-capacity atomic bitmap of up to 256 bits.
///
/// # Examples
///
/// ```
/// use mesh_core::bitmap::AtomicBitmap;
///
/// let bm = AtomicBitmap::new(128);
/// assert!(bm.try_set(3));
/// assert!(!bm.try_set(3), "second set must fail");
/// assert_eq!(bm.in_use(), 1);
/// assert!(bm.unset(3));
/// assert_eq!(bm.in_use(), 0);
/// ```
#[derive(Debug)]
pub struct AtomicBitmap {
    words: [AtomicU64; WORDS],
    len: u16,
}

impl AtomicBitmap {
    /// Creates a bitmap tracking `len` slots, all initially clear
    /// (the paper's "initialized to objectCount zero bits", §4.1).
    ///
    /// # Panics
    ///
    /// Panics if `len > 256`.
    pub fn new(len: usize) -> Self {
        assert!(len <= MAX_BITS, "bitmap supports at most {MAX_BITS} bits");
        AtomicBitmap {
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
            len: len as u16,
        }
    }

    /// Number of tracked slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the bitmap tracks zero slots (never true for real spans).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn check(&self, bit: usize) {
        assert!(bit < self.len as usize, "bit {bit} out of range {}", self.len);
    }

    /// Atomically sets `bit`; returns `true` if this call changed it from
    /// clear to set (the reference implementation's `bitmap.tryToSet`).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= len`.
    #[inline]
    pub fn try_set(&self, bit: usize) -> bool {
        self.check(bit);
        let mask = 1u64 << (bit % 64);
        let prev = self.words[bit / 64].fetch_or(mask, Ordering::AcqRel);
        prev & mask == 0
    }

    /// Atomically clears `bit`; returns `true` if this call changed it from
    /// set to clear. A `false` return on a free path indicates a double
    /// free (§4.4.4 discovers those via the bitmap).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= len`.
    #[inline]
    pub fn unset(&self, bit: usize) -> bool {
        self.check(bit);
        let mask = 1u64 << (bit % 64);
        let prev = self.words[bit / 64].fetch_and(!mask, Ordering::AcqRel);
        prev & mask != 0
    }

    /// Returns whether `bit` is currently set.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= len`.
    #[inline]
    pub fn is_set(&self, bit: usize) -> bool {
        self.check(bit);
        self.words[bit / 64].load(Ordering::Acquire) & (1u64 << (bit % 64)) != 0
    }

    /// Number of set bits (objects in use).
    #[inline]
    pub fn in_use(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Acquire).count_ones() as usize)
            .sum()
    }

    /// Snapshot of the backing words (bits past `len` are zero by
    /// invariant). Used by the mesher to test candidates without holding
    /// references into the atomics.
    #[inline]
    pub fn load_words(&self) -> [u64; WORDS] {
        [
            self.words[0].load(Ordering::Acquire),
            self.words[1].load(Ordering::Acquire),
            self.words[2].load(Ordering::Acquire),
            self.words[3].load(Ordering::Acquire),
        ]
    }

    /// The meshability predicate of Definition 5.1: two spans mesh iff no
    /// slot is set in both bitmaps.
    #[inline]
    pub fn meshes_with(&self, other: &AtomicBitmap) -> bool {
        let a = self.load_words();
        let b = other.load_words();
        (a[0] & b[0]) | (a[1] & b[1]) | (a[2] & b[2]) | (a[3] & b[3]) == 0
    }

    /// Iterates over the indices of set bits, ascending.
    pub fn iter_set(&self) -> SetBits {
        SetBits {
            words: self.load_words(),
            word_idx: 0,
            len: self.len as usize,
        }
    }

    /// Iterates over the indices of clear bits, ascending.
    pub fn iter_clear(&self) -> ClearBits {
        let mut words = self.load_words();
        for (i, w) in words.iter_mut().enumerate() {
            // Invert, masking off bits beyond `len`.
            let base = i * 64;
            let valid = if self.len as usize >= base + 64 {
                u64::MAX
            } else if (self.len as usize) <= base {
                0
            } else {
                (1u64 << (self.len as usize - base)) - 1
            };
            *w = !*w & valid;
        }
        ClearBits(SetBits {
            words,
            word_idx: 0,
            len: self.len as usize,
        })
    }

    /// Clears every bit.
    pub fn clear_all(&self) {
        for w in &self.words {
            w.store(0, Ordering::Release);
        }
    }
}

/// Iterator over set-bit indices, produced by [`AtomicBitmap::iter_set`].
#[derive(Debug, Clone)]
pub struct SetBits {
    words: [u64; WORDS],
    word_idx: usize,
    len: usize,
}

impl Iterator for SetBits {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.word_idx < WORDS {
            let w = self.words[self.word_idx];
            if w == 0 {
                self.word_idx += 1;
                continue;
            }
            let bit = w.trailing_zeros() as usize;
            self.words[self.word_idx] = w & (w - 1); // clear lowest set bit
            let idx = self.word_idx * 64 + bit;
            if idx >= self.len {
                return None;
            }
            return Some(idx);
        }
        None
    }
}

/// Iterator over clear-bit indices, produced by [`AtomicBitmap::iter_clear`].
#[derive(Debug, Clone)]
pub struct ClearBits(SetBits);

impl Iterator for ClearBits {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        self.0.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn set_unset_roundtrip() {
        let bm = AtomicBitmap::new(256);
        for i in 0..256 {
            assert!(!bm.is_set(i));
            assert!(bm.try_set(i));
            assert!(bm.is_set(i));
        }
        assert_eq!(bm.in_use(), 256);
        for i in 0..256 {
            assert!(bm.unset(i));
            assert!(!bm.is_set(i));
        }
        assert_eq!(bm.in_use(), 0);
    }

    #[test]
    fn double_set_and_double_unset_detected() {
        let bm = AtomicBitmap::new(64);
        assert!(bm.try_set(10));
        assert!(!bm.try_set(10));
        assert!(bm.unset(10));
        assert!(!bm.unset(10), "double free must be detectable");
    }

    #[test]
    fn meshes_with_disjoint_and_overlapping() {
        let a = AtomicBitmap::new(128);
        let b = AtomicBitmap::new(128);
        a.try_set(0);
        a.try_set(100);
        b.try_set(1);
        b.try_set(99);
        assert!(a.meshes_with(&b));
        assert!(b.meshes_with(&a));
        b.try_set(100);
        assert!(!a.meshes_with(&b));
    }

    #[test]
    fn empty_bitmaps_always_mesh() {
        let a = AtomicBitmap::new(8);
        let b = AtomicBitmap::new(8);
        assert!(a.meshes_with(&b));
    }

    #[test]
    fn iter_set_matches_contents() {
        let bm = AtomicBitmap::new(200);
        let bits = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &b in &bits {
            bm.try_set(b);
        }
        let got: Vec<usize> = bm.iter_set().collect();
        assert_eq!(got, bits);
    }

    #[test]
    fn iter_clear_is_complement() {
        let bm = AtomicBitmap::new(70);
        for i in (0..70).step_by(2) {
            bm.try_set(i);
        }
        let clear: Vec<usize> = bm.iter_clear().collect();
        assert_eq!(clear, (1..70).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn iter_clear_respects_len_boundary() {
        // Bits past len must never be reported clear.
        for len in [1usize, 63, 64, 65, 130, 256] {
            let bm = AtomicBitmap::new(len);
            assert_eq!(bm.iter_clear().count(), len, "len={len}");
            assert_eq!(bm.iter_set().count(), 0);
        }
    }

    #[test]
    fn concurrent_try_set_claims_each_bit_once() {
        let bm = Arc::new(AtomicBitmap::new(256));
        let mut handles = vec![];
        let winners = Arc::new(std::sync::Mutex::new(vec![0u8; 256]));
        for _ in 0..8 {
            let bm = Arc::clone(&bm);
            let winners = Arc::clone(&winners);
            handles.push(std::thread::spawn(move || {
                let mut mine = vec![];
                for i in 0..256 {
                    if bm.try_set(i) {
                        mine.push(i);
                    }
                }
                let mut w = winners.lock().unwrap();
                for i in mine {
                    w[i] += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let w = winners.lock().unwrap();
        assert!(w.iter().all(|&c| c == 1), "every bit claimed exactly once");
        assert_eq!(bm.in_use(), 256);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        AtomicBitmap::new(8).is_set(8);
    }

    #[test]
    fn clear_all_resets() {
        let bm = AtomicBitmap::new(100);
        for i in 0..100 {
            bm.try_set(i);
        }
        bm.clear_all();
        assert_eq!(bm.in_use(), 0);
    }
}
