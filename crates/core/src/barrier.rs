//! The concurrent-meshing write barrier (§4.5.2).
//!
//! Meshing runs concurrently with application threads. Mesh maintains two
//! invariants: reads of objects being relocated always succeed, and objects
//! are never written *while* being copied between physical spans. Reads are
//! safe because `mmap(MAP_FIXED)` swaps mappings atomically; writes are
//! fenced by this barrier: source spans are `mprotect`ed read-only before
//! the copy, so a concurrent write raises SIGSEGV, lands in the handler
//! below, spins until the meshing pass completes (its last step remaps the
//! source span read-write), and then retries the faulting instruction —
//! which now succeeds against the fully relocated object.
//!
//! The handler must be async-signal-safe: it reads a fixed-size lock-free
//! registry of `(arena_start, arena_end, meshing_flag)` triples and spins
//! with `sched_yield`; faults outside any registered arena are forwarded to
//! the previously installed handler (preserving, e.g., Rust's stack-overflow
//! detection).

use crate::ffi as libc;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Once;

/// Maximum number of concurrently registered arenas.
const MAX_ARENAS: usize = 128;

/// Registry slots: `[start, end, flag_ptr]` per arena; all zero = free.
static SLOTS: [[AtomicUsize; 3]; MAX_ARENAS] =
    [const { [AtomicUsize::new(0), AtomicUsize::new(0), AtomicUsize::new(0)] }; MAX_ARENAS];

static INSTALL: Once = Once::new();
static mut OLD_ACTION: MaybeUninit<libc::sigaction> = MaybeUninit::uninit();

/// Registry of hardened-mode guard pages living *inside* registered
/// arenas. The handler's contract for arena faults is "retry until the
/// meshing pass that protected the span finishes" — but a guard page (the
/// `PROT_NONE` tail of a guarded large object) is unwritable for the
/// object's whole lifetime, so its faults must be forwarded to the
/// default action instead of retried forever. A fixed-size linear-probe
/// table: registrations are mutated from allocation/free paths and read
/// lock-free from the signal handler.
const GUARD_CAP: usize = 1024;
const GUARD_PROBES: usize = 64;
const GUARD_TOMB: usize = usize::MAX;
static GUARD_PAGES: [AtomicUsize; GUARD_CAP] =
    [const { AtomicUsize::new(0) }; GUARD_CAP];

fn guard_probe_seq(page: usize) -> impl Iterator<Item = usize> {
    let h = (page >> 12).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..GUARD_PROBES).map(move |i| h.wrapping_add(i) & (GUARD_CAP - 1))
}

/// Registers the guard page at `page` for fault forwarding. Returns
/// `false` when the probe window is full — the caller must then degrade
/// to a non-faulting (poison-scan) guard for that object.
pub(crate) fn register_guard_page(page: usize) -> bool {
    debug_assert_eq!(page & 0xFFF, 0, "guard registrations are page-aligned");
    for slot in guard_probe_seq(page) {
        let e = &GUARD_PAGES[slot];
        let cur = e.load(Ordering::Relaxed);
        if (cur == 0 || cur == GUARD_TOMB)
            && e.compare_exchange(cur, page, Ordering::Release, Ordering::Relaxed)
                .is_ok()
        {
            return true;
        }
    }
    false
}

/// Removes `page` from the registry; returns whether it was registered
/// (i.e. whether the object carried a faulting guard rather than a
/// degraded poison-scan one).
pub(crate) fn unregister_guard_page(page: usize) -> bool {
    for slot in guard_probe_seq(page) {
        let e = &GUARD_PAGES[slot];
        let cur = e.load(Ordering::Relaxed);
        if cur == page {
            // Tombstone, not zero: later entries in some other page's
            // probe sequence may live past this slot.
            e.store(GUARD_TOMB, Ordering::Release);
            return true;
        }
        if cur == 0 {
            return false;
        }
    }
    false
}

/// Whether `page` is a registered guard page. Async-signal-safe (atomic
/// loads only); also consulted by fork privatization to know which tails
/// to re-protect.
pub(crate) fn guard_page_registered(page: usize) -> bool {
    for slot in guard_probe_seq(page) {
        let cur = GUARD_PAGES[slot].load(Ordering::Acquire);
        if cur == page {
            return true;
        }
        if cur == 0 {
            return false;
        }
    }
    false
}

/// Registration handle for one arena's address range. Deregisters on drop.
#[derive(Debug)]
pub struct BarrierGuard {
    slot: usize,
    flag: &'static AtomicBool,
}

impl BarrierGuard {
    /// Registers `[start, start+len)` with the fault handler and installs
    /// the handler on first use. Returns `None` when the registry is full
    /// (the caller should then disable concurrent meshing).
    pub fn register(start: usize, len: usize) -> Option<BarrierGuard> {
        INSTALL.call_once(install_handler);
        // Flags are intentionally leaked: the handler may race with arena
        // teardown, and one byte per arena is a trivial price for making
        // that race unconditionally safe.
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        for (i, slot) in SLOTS.iter().enumerate() {
            if slot[0]
                .compare_exchange(0, start, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                slot[2].store(flag as *const AtomicBool as usize, Ordering::Release);
                slot[1].store(start + len, Ordering::Release);
                return Some(BarrierGuard { slot: i, flag });
            }
        }
        None
    }

    /// Marks the arena as mid-mesh: faults inside it will spin instead of
    /// being forwarded.
    #[inline]
    pub fn begin_meshing(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Clears the mid-mesh mark, releasing any spinning writers.
    #[inline]
    pub fn end_meshing(&self) {
        self.flag.store(false, Ordering::Release);
    }

    /// Whether a meshing pass is currently marked active.
    #[inline]
    pub fn is_meshing(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

impl Drop for BarrierGuard {
    fn drop(&mut self) {
        self.flag.store(false, Ordering::Release);
        let slot = &SLOTS[self.slot];
        // Clear end first so concurrent lookups fail the range test before
        // the start word is recycled.
        slot[1].store(0, Ordering::Release);
        slot[2].store(0, Ordering::Release);
        slot[0].store(0, Ordering::Release);
    }
}

fn install_handler() {
    unsafe {
        let mut action: libc::sigaction = std::mem::zeroed();
        action.sa_sigaction = segv_handler
            as extern "C" fn(libc::c_int, *mut libc::siginfo_t, *mut libc::c_void)
            as usize;
        action.sa_flags = libc::SA_SIGINFO | libc::SA_NODEFER | libc::SA_ONSTACK;
        libc::sigemptyset(&mut action.sa_mask);
        let old = std::ptr::addr_of_mut!(OLD_ACTION);
        libc::sigaction(libc::SIGSEGV, &action, (*old).as_mut_ptr());
    }
}

/// The SIGSEGV handler. Async-signal-safe: only atomics, `sched_yield`,
/// and (on the forwarding path) `sigaction`/`raise`.
extern "C" fn segv_handler(
    sig: libc::c_int,
    info: *mut libc::siginfo_t,
    ctx: *mut libc::c_void,
) {
    let addr = unsafe { (*info).si_addr() } as usize;
    // A hardened-mode guard page is permanently unwritable: forward the
    // fault (normally to SIG_DFL, so the process dies with SIGSEGV at
    // the overflowing instruction) instead of entering the retry loop.
    if guard_page_registered(addr & !0xFFF) {
        forward(sig, info, ctx);
        return;
    }
    for slot in &SLOTS {
        let start = slot[0].load(Ordering::Acquire);
        if start == 0 || addr < start {
            continue;
        }
        let end = slot[1].load(Ordering::Acquire);
        if addr >= end {
            continue;
        }
        let flag_ptr = slot[2].load(Ordering::Acquire) as *const AtomicBool;
        if flag_ptr.is_null() {
            continue;
        }
        // Inside a registered arena (and not a guard page): wait out the
        // meshing pass, then return to retry the faulting instruction. If
        // no pass is active the fault raced with pass completion (the
        // remap already made the page writable), so retrying is also
        // correct.
        let flag = unsafe { &*flag_ptr };
        while flag.load(Ordering::Acquire) {
            unsafe { libc::sched_yield() };
        }
        return;
    }
    forward(sig, info, ctx);
}

/// Forwards a non-arena fault to the previously installed handler.
fn forward(sig: libc::c_int, info: *mut libc::siginfo_t, ctx: *mut libc::c_void) {
    unsafe {
        let old = (*std::ptr::addr_of!(OLD_ACTION)).assume_init_ref();
        let handler = old.sa_sigaction;
        if handler == libc::SIG_DFL {
            // Restore the default action and re-raise so the process dies
            // with the expected SIGSEGV semantics (core dump, exit code).
            let mut dfl: libc::sigaction = std::mem::zeroed();
            dfl.sa_sigaction = libc::SIG_DFL;
            libc::sigemptyset(&mut dfl.sa_mask);
            libc::sigaction(libc::SIGSEGV, &dfl, std::ptr::null_mut());
            libc::raise(libc::SIGSEGV);
        } else if handler == libc::SIG_IGN {
            // Ignored: nothing to do.
        } else if old.sa_flags & libc::SA_SIGINFO != 0 {
            let f: extern "C" fn(libc::c_int, *mut libc::siginfo_t, *mut libc::c_void) =
                std::mem::transmute(handler);
            f(sig, info, ctx);
        } else {
            let f: extern "C" fn(libc::c_int) = std::mem::transmute(handler);
            f(sig);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sys::{map_file_shared, protect_read, protect_read_write, unmap, MemFile, PAGE_SIZE};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn guard_page_registry_roundtrip() {
        let page = 0x7f12_3456_7000usize;
        assert!(!guard_page_registered(page));
        assert!(register_guard_page(page));
        assert!(guard_page_registered(page));
        // A colliding-but-different page is not reported.
        assert!(!guard_page_registered(page + 0x1000));
        assert!(unregister_guard_page(page));
        assert!(!guard_page_registered(page));
        assert!(!unregister_guard_page(page), "second remove is a no-op");
        // Tombstoned slots are reusable.
        assert!(register_guard_page(page));
        assert!(unregister_guard_page(page));
    }

    #[test]
    fn register_and_drop_free_slots() {
        let g1 = BarrierGuard::register(0x10_0000, 0x1000).unwrap();
        let g2 = BarrierGuard::register(0x20_0000, 0x1000).unwrap();
        assert!(!g1.is_meshing());
        g1.begin_meshing();
        assert!(g1.is_meshing());
        g1.end_meshing();
        drop(g1);
        drop(g2);
        // Slots must be reusable afterwards.
        let g3 = BarrierGuard::register(0x30_0000, 0x1000).unwrap();
        drop(g3);
    }

    #[test]
    fn writer_blocked_during_meshing_then_proceeds() {
        // End-to-end barrier test: protect a page, start a writer thread,
        // verify it blocks, then unprotect + end meshing and verify the
        // write lands.
        let f = MemFile::create(4 * PAGE_SIZE).unwrap();
        let base = map_file_shared(&f).unwrap();
        let guard = Arc::new(BarrierGuard::register(base as usize, 4 * PAGE_SIZE).unwrap());

        guard.begin_meshing();
        unsafe { protect_read(base, PAGE_SIZE).unwrap() };

        let done = Arc::new(AtomicBool::new(false));
        let writer = {
            let done = Arc::clone(&done);
            let addr = base as usize;
            std::thread::spawn(move || {
                // This write faults, spins in the handler, and completes
                // only after end_meshing().
                unsafe { *(addr as *mut u8) = 0x99 };
                done.store(true, Ordering::SeqCst);
            })
        };

        std::thread::sleep(Duration::from_millis(50));
        assert!(
            !done.load(Ordering::SeqCst),
            "writer should be blocked by the barrier"
        );

        unsafe { protect_read_write(base, PAGE_SIZE).unwrap() };
        guard.end_meshing();
        writer.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
        unsafe {
            assert_eq!(*base, 0x99, "the blocked write must land after meshing");
            unmap(base, 4 * PAGE_SIZE);
        }
    }

    #[test]
    fn fault_with_no_active_pass_retries_after_unprotect() {
        // A racing fault that arrives when the flag is already cleared must
        // simply retry; if the page is writable again the write succeeds.
        let f = MemFile::create(PAGE_SIZE).unwrap();
        let base = map_file_shared(&f).unwrap();
        let guard = BarrierGuard::register(base as usize, PAGE_SIZE).unwrap();
        unsafe { protect_read(base, PAGE_SIZE).unwrap() };
        let addr = base as usize;
        let t = std::thread::spawn(move || {
            unsafe { *(addr as *mut u8) = 7 };
        });
        std::thread::sleep(Duration::from_millis(20));
        unsafe { protect_read_write(base, PAGE_SIZE).unwrap() };
        t.join().unwrap();
        unsafe {
            assert_eq!(*base, 7);
            unmap(base, PAGE_SIZE);
        }
        drop(guard);
    }
}
