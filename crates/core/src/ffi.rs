//! Minimal Linux libc bindings for the syscalls Mesh needs.
//!
//! The build environment is offline, so the `libc` crate cannot be a
//! dependency; this module declares exactly the symbols, types, and
//! constants the allocator uses (`mmap`, `mprotect`, `madvise`,
//! `fallocate`, `memfd_create`, `sigaction`, …) against the C library the
//! Rust standard library already links. Layouts and constants are the
//! glibc definitions for `x86_64`/`aarch64` Linux — the only platforms the
//! arena's `memfd`/`MAP_FIXED` machinery targets in the first place.

#![allow(non_camel_case_types, non_upper_case_globals, clippy::upper_case_acronyms)]

pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_char = core::ffi::c_char;
pub type c_void = core::ffi::c_void;
pub type off_t = i64;
pub type size_t = usize;
/// Signal handler address as stored in `sigaction.sa_sigaction`.
pub type sighandler_t = size_t;

// ---- mmap / mprotect / madvise ---------------------------------------

pub const PROT_NONE: c_int = 0x0;
pub const PROT_READ: c_int = 0x1;
pub const PROT_WRITE: c_int = 0x2;
pub const MAP_SHARED: c_int = 0x01;
pub const MAP_PRIVATE: c_int = 0x02;
pub const MAP_FIXED: c_int = 0x10;
pub const MAP_ANONYMOUS: c_int = 0x20;
pub const MAP_NORESERVE: c_int = 0x4000;
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

pub const MADV_DONTNEED: c_int = 4;
pub const MADV_REMOVE: c_int = 9;

// ---- fallocate / memfd -----------------------------------------------

pub const FALLOC_FL_KEEP_SIZE: c_int = 0x01;
pub const FALLOC_FL_PUNCH_HOLE: c_int = 0x02;
pub const MFD_CLOEXEC: c_uint = 0x0001;

#[cfg(target_arch = "x86_64")]
pub const SYS_memfd_create: c_long = 319;
#[cfg(target_arch = "aarch64")]
pub const SYS_memfd_create: c_long = 279;
// Fallback for other Linux targets: the generic asm-generic number.
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub const SYS_memfd_create: c_long = 279;

// ---- lseek hole probing (sparse file copy on fork) --------------------

/// `lseek` whence: seek to the next data extent at or after the offset.
pub const SEEK_DATA: c_int = 3;
/// `lseek` whence: seek to the next hole at or after the offset.
pub const SEEK_HOLE: c_int = 4;

pub const EINTR: c_int = 4;
/// Returned by `lseek(SEEK_DATA)` when no data follows the offset.
pub const ENXIO: c_int = 6;
pub const ENOMEM: c_int = 12;
pub const EINVAL: c_int = 22;

// ---- signals ----------------------------------------------------------

pub const SIGSEGV: c_int = 11;
/// `SIGUSR2`: the C ABI layer's opt-in "dump the heap profile" signal.
pub const SIGUSR2: c_int = 12;
pub const SA_SIGINFO: c_int = 0x0000_0004;
pub const SA_RESTART: c_int = 0x1000_0000;
pub const SA_ONSTACK: c_int = 0x0800_0000;
pub const SA_NODEFER: c_int = 0x4000_0000;
pub const SIG_DFL: sighandler_t = 0;
pub const SIG_IGN: sighandler_t = 1;

/// glibc `sigset_t`: 1024 bits.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigset_t {
    __val: [u64; 16],
}

/// glibc `struct sigaction` (handler, mask, flags, restorer — in that
/// order on both x86_64 and aarch64).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigaction {
    pub sa_sigaction: sighandler_t,
    pub sa_mask: sigset_t,
    pub sa_flags: c_int,
    pub sa_restorer: Option<unsafe extern "C" fn()>,
}

/// glibc `siginfo_t`: three `int`s, alignment padding, then the payload
/// union whose first pointer-sized field is `si_addr` for SIGSEGV.
#[repr(C)]
pub struct siginfo_t {
    pub si_signo: c_int,
    pub si_errno: c_int,
    pub si_code: c_int,
    _pad: c_int,
    _data: [usize; 14],
}

impl siginfo_t {
    /// Faulting address of a SIGSEGV/SIGBUS (`si_addr`).
    ///
    /// # Safety
    ///
    /// Only meaningful inside a handler for a fault signal delivered with
    /// `SA_SIGINFO`.
    pub unsafe fn si_addr(&self) -> *mut c_void {
        self._data[0] as *mut c_void
    }
}

extern "C" {
    pub fn syscall(num: c_long, ...) -> c_long;
    pub fn memfd_create(name: *const c_char, flags: c_uint) -> c_int;
    pub fn ftruncate(fd: c_int, length: off_t) -> c_int;
    pub fn close(fd: c_int) -> c_int;
    pub fn mkstemp(template: *mut c_char) -> c_int;
    pub fn unlink(path: *const c_char) -> c_int;
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn mprotect(addr: *mut c_void, len: size_t, prot: c_int) -> c_int;
    pub fn madvise(addr: *mut c_void, len: size_t, advice: c_int) -> c_int;
    // Residency sampling (mesh-sense): one byte per page, bit 0 set when
    // the page is resident.
    pub fn mincore(addr: *mut c_void, length: size_t, vec: *mut u8) -> c_int;
    pub fn fallocate(fd: c_int, mode: c_int, offset: off_t, len: off_t) -> c_int;
    pub fn sigaction(signum: c_int, act: *const sigaction, oldact: *mut sigaction) -> c_int;
    pub fn sigemptyset(set: *mut sigset_t) -> c_int;
    pub fn sched_yield() -> c_int;
    pub fn raise(sig: c_int) -> c_int;
    // Fork-protocol surface: the sparse segment copy probes file extents
    // with lseek, and the parent/child handshake rides a pipe.
    pub fn lseek(fd: c_int, offset: off_t, whence: c_int) -> off_t;
    pub fn pipe(fds: *mut c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> isize;
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> isize;
    pub fn fork() -> c_int;
    pub fn waitpid(pid: c_int, status: *mut c_int, options: c_int) -> c_int;
    pub fn _exit(status: c_int) -> !;
    pub fn __errno_location() -> *mut c_int;
    // Best-effort symbolization for the pprof export (glibc ≥ 2.34 ships
    // dladdr in libc proper; no -ldl needed).
    pub fn dladdr(addr: *const c_void, info: *mut Dl_info) -> c_int;
}

/// `dladdr(3)`'s result record. Pointers are into loader-owned storage
/// and stay valid for the life of the mapped object; they may be null
/// when no symbol (or no object) covers the address.
#[repr(C)]
#[allow(non_camel_case_types)]
pub struct Dl_info {
    pub dli_fname: *const c_char,
    pub dli_fbase: *mut c_void,
    pub dli_sname: *const c_char,
    pub dli_saddr: *mut c_void,
}

/// The calling thread's `errno` value.
pub fn errno() -> c_int {
    unsafe { *__errno_location() }
}

/// Sets the calling thread's `errno`.
pub fn set_errno(value: c_int) {
    unsafe { *__errno_location() = value };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_match_glibc() {
        assert_eq!(std::mem::size_of::<sigset_t>(), 128);
        assert_eq!(std::mem::size_of::<siginfo_t>(), 128);
        // handler + 128-byte mask + flags (+pad) + restorer.
        assert_eq!(std::mem::size_of::<sigaction>(), 8 + 128 + 8 + 8);
    }

    #[test]
    fn memfd_and_mmap_roundtrip() {
        unsafe {
            let fd = memfd_create(c"ffi-test".as_ptr(), MFD_CLOEXEC);
            assert!(fd >= 0, "memfd_create failed");
            assert_eq!(ftruncate(fd, 4096), 0);
            let p = mmap(
                std::ptr::null_mut(),
                4096,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                fd,
                0,
            );
            assert_ne!(p, MAP_FAILED);
            *(p as *mut u8) = 0x5A;
            assert_eq!(*(p as *const u8), 0x5A);
            assert_eq!(munmap(p, 4096), 0);
            assert_eq!(close(fd), 0);
        }
    }
}
