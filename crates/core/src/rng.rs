//! Small, fast, deterministic PRNG used by every randomized component.
//!
//! Mesh's guarantees (§2.2, §5) rest on uniform randomness in two places:
//! the initial Knuth–Fisher–Yates shuffle of each shuffle vector (§4.2) and
//! the random placement of freed offsets. Both the reference implementation
//! and this reproduction use a non-cryptographic generator; we use
//! xoshiro256++ seeded via SplitMix64, which passes BigCrush and is cheap
//! enough for the malloc fast path.
//!
//! The generator is deliberately *not* `rand`-based: the allocator core must
//! stay dependency-light, and experiments need bit-for-bit reproducibility
//! from a single `u64` seed.

/// xoshiro256++ pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use mesh_core::rng::Rng;
///
/// let mut rng = Rng::with_seed(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// // Deterministic: the same seed yields the same stream.
/// let mut rng2 = Rng::with_seed(42);
/// assert_eq!(rng2.next_u64(), a);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a single `u64` seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed (including zero) is valid; the state is expanded with
    /// SplitMix64 so correlated seeds still produce uncorrelated streams.
    pub fn with_seed(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Creates a generator seeded from the operating system clock and the
    /// address of a stack local. Used when the user does not fix a seed.
    pub fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        let local = 0u8;
        Rng::with_seed(t ^ ((&local as *const u8 as u64).rotate_left(32)))
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `[0, bound)` using Lemire's
    /// nearly-divisionless method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        let mut x = self.next_u32();
        let mut m = (x as u64).wrapping_mul(bound as u64);
        let mut lo = m as u32;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u32();
                m = (x as u64).wrapping_mul(bound as u64);
                lo = m as u32;
            }
        }
        (m >> 32) as u32
    }

    /// Returns a uniformly distributed value in the inclusive range
    /// `[lo, hi]`, mirroring the reference implementation's
    /// `MWC::inRange` used by `ShuffleVector::free`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn in_range(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "invalid range: {lo} > {hi}");
        lo + self.below(hi - lo + 1)
    }

    /// Performs an in-place Knuth–Fisher–Yates shuffle of `slice` (§4.2).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        // Iterate downward so each element is swapped with a uniformly
        // chosen element at or below it: the classic unbiased shuffle.
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u32 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Returns `true` with probability `num / denom`.
    ///
    /// # Panics
    ///
    /// Panics if `denom` is zero.
    #[inline]
    pub fn chance(&mut self, num: u32, denom: u32) -> bool {
        self.below(denom) < num
    }
}

impl Default for Rng {
    fn default() -> Self {
        Rng::from_entropy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng::with_seed(7);
        let mut b = Rng::with_seed(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::with_seed(1);
        let mut b = Rng::with_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = Rng::with_seed(0);
        // State must not be all-zero (xoshiro would then emit only zeros).
        assert!((0..16).any(|_| r.next_u64() != 0));
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::with_seed(99);
        for bound in [1u32, 2, 3, 7, 10, 255, 256, 1 << 20] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::with_seed(123);
        let bound = 8u32;
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.below(bound) as usize] += 1;
        }
        let expected = n / bound as usize;
        for &c in &counts {
            // Loose 10% tolerance; chi-square would be overkill here.
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.1,
                "bucket count {c} too far from expected {expected}"
            );
        }
    }

    #[test]
    fn in_range_inclusive() {
        let mut r = Rng::with_seed(5);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.in_range(3, 6);
            assert!((3..=6).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 6;
        }
        assert!(saw_lo && saw_hi, "inclusive endpoints never drawn");
    }

    #[test]
    fn in_range_degenerate() {
        let mut r = Rng::with_seed(5);
        assert_eq!(r.in_range(9, 9), 9);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::with_seed(11);
        let mut v: Vec<u32> = (0..256).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..256).collect::<Vec<_>>());
        // And it actually moved things (probability of identity is ~0).
        assert_ne!(v, (0..256).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_uniformity_smoke() {
        // Position of element 0 after shuffling [0,1,2,3] should be uniform.
        let mut r = Rng::with_seed(2024);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            let mut v = [0u8, 1, 2, 3];
            r.shuffle(&mut v);
            let pos = v.iter().position(|&x| x == 0).unwrap();
            counts[pos] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0, "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        Rng::with_seed(1).below(0);
    }
}
