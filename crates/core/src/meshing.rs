//! Meshing: finding and merging spans with disjoint allocations
//! (§3.3 SplitMesher, §4.5 implementation).
//!
//! A pass runs one size class at a time, holding only that class's shard
//! lock (plus the arena leaf lock around the virtual-memory operations) —
//! see DESIGN.md's locking discipline. For each class it first drains the
//! class's remote-free queue (so occupancy reflects every queued free),
//! then collects the detached, partially-occupied MiniHeaps, randomly
//! splits them into two halves, and probes pairs between the halves at
//! most `t` times per span (Figure 2). Candidate pairs found by
//! SplitMesher are recorded and then meshed en masse (§4.5).
//!
//! Meshing a pair is the two-step §4.5 process. With the source span
//! write-protected behind the §4.5.2 barrier, every live object of the
//! source is copied *to the same slot offset* in the destination span —
//! no application pointer changes because the virtual addresses of the
//! source span survive: its mapping is atomically retargeted at the
//! destination's physical span, and the source's physical pages return to
//! the OS. The ordering of release vs. remap depends on the release
//! primitive (see [`crate::sys::ReleaseStrategy`]): punch-hole variants
//! release *after* the remap (by file offset, or through a scratch
//! mapping) so concurrent readers never observe zeros; the `MADV_DONTNEED`
//! fallback releases *before* the remap, which is safe because it
//! preserves file contents.
//!
//! Passes may be initiated inline (the §4.5 free-path rate limiter) or by
//! the background mesher thread ([`crate::mesher`]); the per-class locks
//! make concurrent passes safe, and the scheduler's claim-based timer
//! makes them rare.

use crate::global_heap::{ClassState, GlobalHeap, PARTIAL_BINS};
use crate::miniheap::MiniHeapId;
use crate::size_classes::{SizeClass, PAGE_SIZE};
use crate::span::Span;
use crate::sys::ReleaseStrategy;
use crate::telemetry::{PassRecord, RejectReason, TimedOp, REJECT_REASONS};
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Outcome of one meshing pass.
///
/// # Examples
///
/// ```
/// use mesh_core::{Mesh, MeshConfig};
///
/// # fn main() -> Result<(), mesh_core::MeshError> {
/// let mesh = Mesh::new(MeshConfig::default().arena_bytes(16 << 20))?;
/// let summary = mesh.mesh_now();
/// assert_eq!(summary.pairs_meshed, 0, "empty heap has nothing to mesh");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeshSummary {
    /// Number of span pairs merged.
    pub pairs_meshed: usize,
    /// Physical pages released by those merges.
    pub pages_released: usize,
    /// Object bytes copied between spans.
    pub bytes_copied: usize,
    /// Pair candidates probed (the `t`-bounded search cost).
    pub pairs_probed: usize,
}

impl MeshSummary {
    /// Bytes of physical memory this pass returned to the OS.
    pub fn bytes_released(&self) -> usize {
        self.pages_released * crate::size_classes::PAGE_SIZE
    }
}

/// Runs SplitMesher and meshes the found pairs for every meshable size
/// class, taking one class lock at a time. Also purges dirty pages, as
/// §4.4.1 prescribes whenever meshing is invoked.
pub(crate) fn mesh_all_classes(heap: &GlobalHeap) -> MeshSummary {
    let t0 = Instant::now();
    // §4.4.1 ties a dirty-page purge to every meshing invocation; the
    // purge itself is wall-clock rate-limited by the scheduler. A purge
    // can leave non-initial segments with all pages clean, so segment
    // retirement rides the same rate limiter.
    // Ledger bookkeeping: `pages_purged` moved by this pass's purge work
    // becomes the pass's madvise-bytes figure.
    let purged_before = heap.counters.pages_purged.load(Ordering::Relaxed);
    if heap.scheduler.should_purge(heap.rt.mesh_period()) {
        heap.purge_and_retire();
    }
    let mut summary = MeshSummary::default();
    let mut candidates_scanned = 0u64;
    let mut rejected = [0u64; REJECT_REASONS];
    // Every class drains — non-meshable classes (≥ one page per object)
    // still rely on passes to apply queued remote frees promptly.
    for class in SizeClass::all() {
        let (mut st, contended) = heap.lock_class_reporting(class);
        if contended {
            rejected[RejectReason::ClassContention as usize] += 1;
        }
        heap.drain_class_locked(class, &mut st);
        if !class.is_meshable() {
            continue;
        }
        // Cached objects hold claim bits that inflate occupancy; return
        // them to their spans so candidate collection sees the truth (and
        // empty-but-cached spans get reclaimed rather than pinned). Every
        // flushed object marks a span the cache was pinning.
        rejected[RejectReason::PinnedTransfer as usize] +=
            heap.purge_transfer_locked(class, &mut st);
        // The selection phase is timed even when it comes up dry: the
        // partial-bin scan is the `t`-bounded search cost the histogram
        // exists to expose, and a dry scan (arg 0) is still that cost.
        let select_t0 = Instant::now();
        let candidates = collect_candidates(heap, &st);
        candidates_scanned += candidates.len() as u64;
        if candidates.len() < 2 {
            heap.counters.record_slow(TimedOp::MeshCandidates, select_t0, 0);
            continue;
        }
        let pairs = split_mesher(
            &mut st,
            candidates,
            heap.rt.probe_limit(),
            heap.rt.max_span_count(),
            &mut summary.pairs_probed,
            &mut rejected[RejectReason::OccupancyOverlap as usize],
        );
        heap.counters
            .record_slow(TimedOp::MeshCandidates, select_t0, pairs.len() as u64);
        for (a, b) in pairs {
            mesh_pair(heap, &mut st, class, a, b, &mut summary, &mut rejected);
        }
    }
    let nanos = t0.elapsed().as_nanos() as u64;
    heap.counters.record_mesh_pass(nanos);
    heap.counters
        .record_slow(TimedOp::MeshPass, t0, summary.pairs_meshed as u64);
    heap.counters
        .spans_meshed
        .fetch_add(summary.pairs_meshed as u64, Ordering::Relaxed);
    heap.counters
        .mesh_pages_released
        .fetch_add(summary.pages_released as u64, Ordering::Relaxed);
    heap.counters
        .mesh_bytes_copied
        .fetch_add(summary.bytes_copied as u64, Ordering::Relaxed);
    let purged = heap.counters.pages_purged.load(Ordering::Relaxed) - purged_before;
    heap.ledger.record(PassRecord {
        at_ms: heap.counters.uptime_ms(),
        candidates: candidates_scanned,
        probes: summary.pairs_probed as u64,
        rejected,
        pairs_meshed: summary.pairs_meshed as u64,
        bytes_recovered: summary.bytes_released() as u64,
        madvise_bytes: purged * PAGE_SIZE as u64,
    });
    summary
}

/// Collects the detached MiniHeaps of `class` that are eligible for
/// meshing: partially occupied, below the occupancy cutoff, and with room
/// left in their virtual-span list.
fn collect_candidates(heap: &GlobalHeap, st: &ClassState) -> Vec<MiniHeapId> {
    let cutoff = heap.rt.occupancy_cutoff();
    let max_spans = heap.rt.max_span_count();
    let mut out = Vec::new();
    for bin in 0..PARTIAL_BINS {
        for &id in &st.bins.partial[bin] {
            let mh = st.slab.get(id).expect("binned ids are live");
            debug_assert!(!mh.is_attached());
            if mh.occupancy() <= cutoff && mh.span_count() < max_spans {
                out.push(id);
            }
        }
    }
    out
}

/// The SplitMesher procedure of Figure 2: shuffle the candidate list,
/// split it into halves, and probe `Sl[j]` against `Sr[(j+i) % len]` for
/// `i < t`. Returns the pairs to mesh (each span in at most one pair).
/// Every probed pair that fails — overlapping bitmaps, or a combined
/// alias count over the page-table budget — bumps `rejects` (the
/// ledger's occupancy-overlap tally).
fn split_mesher(
    st: &mut ClassState,
    mut candidates: Vec<MiniHeapId>,
    probe_limit: usize,
    max_spans: usize,
    probes: &mut usize,
    rejects: &mut u64,
) -> Vec<(MiniHeapId, MiniHeapId)> {
    st.rng.shuffle(&mut candidates);
    let half = candidates.len() / 2;
    let (left, right) = candidates.split_at(half);
    // `left` has `half` entries; `right` has `half` or `half + 1`.
    let len = half;
    if len == 0 {
        return Vec::new();
    }
    let mut used_l = vec![false; left.len()];
    let mut used_r = vec![false; right.len()];
    let mut pairs = Vec::new();
    for i in 0..probe_limit {
        for j in 0..len {
            if used_l[j] {
                continue;
            }
            let k = (j + i) % right.len();
            if used_r[k] {
                continue;
            }
            *probes += 1;
            let a = st.slab.get(left[j]).expect("candidate is live");
            let b = st.slab.get(right[k]).expect("candidate is live");
            // Combined alias count must stay within the page-table budget.
            if a.span_count() + b.span_count() > max_spans {
                *rejects += 1;
                continue;
            }
            if a.bitmap().meshes_with(b.bitmap()) {
                used_l[j] = true;
                used_r[k] = true;
                pairs.push((left[j], right[k]));
            } else {
                *rejects += 1;
            }
        }
    }
    pairs
}

/// Meshes one pair: consolidates objects onto the higher-occupancy span
/// (fewer bytes to copy), retargets the source's virtual spans, and
/// releases the source's physical span (§4.5). The caller holds the class
/// lock; the arena lock is held across the VM operations.
fn mesh_pair(
    heap: &GlobalHeap,
    st: &mut ClassState,
    class: SizeClass,
    a: MiniHeapId,
    b: MiniHeapId,
    summary: &mut MeshSummary,
    rejected: &mut [u64; REJECT_REASONS],
) {
    // Destination = more live objects → we copy the smaller side. Ties
    // break segment-aware: evacuate the span whose segment has fewer
    // outstanding pages, so sparse segments drain toward retirement.
    let (dst_id, src_id) = {
        let ma = st.slab.get(a).expect("mesh candidate is live");
        let mb = st.slab.get(b).expect("mesh candidate is live");
        if ma.in_use() > mb.in_use() {
            (a, b)
        } else if ma.in_use() < mb.in_use() {
            (b, a)
        } else {
            let arena = heap.lock_arena();
            if arena.segment_outstanding_of(ma.span())
                >= arena.segment_outstanding_of(mb.span())
            {
                (a, b)
            } else {
                (b, a)
            }
        }
    };

    let arena_base = heap.base_addr();
    let (src_spans, src_slots, object_size, src_primary) = {
        let src = st.slab.get(src_id).expect("mesh source is live");
        (
            src.virtual_spans().to_vec(),
            src.bitmap().iter_set().collect::<Vec<_>>(),
            src.object_size(),
            src.span(),
        )
    };
    let dst_primary = st.slab.get(dst_id).expect("mesh dest is live").span();
    debug_assert_eq!(src_primary.pages, dst_primary.pages);

    let mut arena = heap.lock_arena();

    // Copy-window phase: barrier raise through the object copies — the
    // window during which mutator writes to the source spans fault.
    let copy_t0 = Instant::now();

    // Raise the write barrier and protect every virtual span of the source
    // so no thread can write to an object while it is being copied.
    if let Some(guard) = arena.barrier() {
        guard.begin_meshing();
    }
    for &vs in &src_spans {
        arena.protect_span(vs);
    }

    // Hardened canary sweep: with the sources frozen behind the barrier,
    // every *free* slot of both primaries must still hold its class
    // canary (written when the slot died). A corrupt canary means a
    // dangling write landed in memory this pair is about to copy over or
    // alias; refuse to mesh and surface the violation instead of baking
    // the corruption into a shared physical span.
    if heap.harden.canary_on() {
        let canary = heap.canary(class.index());
        let mut bad = None;
        'sweep: for (id, primary) in [(src_id, src_primary), (dst_id, dst_primary)] {
            let mh = st.slab.get(id).expect("mesh candidate is live");
            let base = arena_base + primary.byte_offset();
            for slot in 0..class.object_count() {
                if mh.bitmap().is_set(slot) {
                    continue;
                }
                let addr = base + slot * object_size;
                if !unsafe { crate::harden::canary_intact(addr, object_size, canary) } {
                    bad = Some(addr);
                    break 'sweep;
                }
            }
        }
        if let Some(addr) = bad {
            // Unwind the copy window: restore write access and drop the
            // barrier, leaving both spans exactly as found.
            for &vs in &src_spans {
                arena.unprotect_span(vs);
            }
            if let Some(guard) = arena.barrier() {
                guard.end_meshing();
            }
            rejected[RejectReason::CanaryTrip as usize] += 1;
            heap.harden_violation(crate::harden::HardenKind::Canary, addr);
            return;
        }
    }

    // Copy each live source object to the same slot of the destination.
    {
        let dst = st.slab.get(dst_id).expect("mesh dest is live");
        let src_base = arena_base + src_primary.byte_offset();
        let dst_base = arena_base + dst_primary.byte_offset();
        for &slot in &src_slots {
            let claimed = dst.bitmap().try_set(slot);
            debug_assert!(claimed, "mesh candidates were not disjoint");
            // SAFETY: both addresses lie in the arena mapping; slots are
            // in-bounds; the ranges cannot overlap (distinct spans); the
            // write barrier prevents concurrent writes to the source.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    (src_base + slot * object_size) as *const u8,
                    (dst_base + slot * object_size) as *mut u8,
                    object_size,
                );
            }
            summary.bytes_copied += object_size;
        }
    }

    heap.counters
        .record_slow(TimedOp::MeshCopy, copy_t0, src_slots.len() as u64);

    // Remap phase: physical release + alias retargeting through the
    // barrier drop.
    let remap_t0 = Instant::now();

    // Release the source's physical pages and retarget its virtual spans.
    // Ordering depends on the release primitive; see module docs.
    let release_before_remap = arena.release_strategy() == ReleaseStrategy::MadviseDontNeed;
    if release_before_remap {
        arena.release_physical(src_primary);
    }
    for &vs in &src_spans {
        arena
            .remap_alias(vs, dst_primary)
            .expect("mesh remap failed");
        heap.page_map.set_span(vs, dst_id, class.index() as u8);
    }
    if !release_before_remap {
        arena.release_after_remap(src_primary);
    }
    // The remap itself restored PROT_READ|WRITE on all source spans, so
    // spinning writers proceed as soon as the barrier drops.
    if let Some(guard) = arena.barrier() {
        guard.end_meshing();
    }
    heap.counters
        .record_slow(TimedOp::MeshRemap, remap_t0, src_spans.len() as u64);
    drop(arena);

    // Fold the source's spans into the destination MiniHeap and retire it.
    st.bin_remove(src_id);
    let src = st.slab.remove(src_id);
    debug_assert_eq!(src.bitmap().in_use(), src_slots.len());
    st.slab
        .get_mut(dst_id)
        .expect("mesh dest is live")
        .absorb_spans(&src_spans);
    st.rebin(dst_id);

    summary.pairs_meshed += 1;
    summary.pages_released += src_primary.pages as usize;
}

/// Pure helper exposed for tests and the theory crate: would these two
/// bitmap word-arrays mesh? (Definition 5.1 on raw words.)
pub fn words_mesh(a: &[u64; 4], b: &[u64; 4]) -> bool {
    (a[0] & b[0]) | (a[1] & b[1]) | (a[2] & b[2]) | (a[3] & b[3]) == 0
}

#[allow(unused)]
fn span_addr(arena_base: usize, span: Span) -> usize {
    arena_base + span.byte_offset()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MeshConfig;
    use crate::rng::Rng;
    use crate::shuffle_vector::ShuffleVector;
    use crate::stats::Counters;
    use std::sync::Arc;

    fn heap(seed: u64) -> GlobalHeap {
        GlobalHeap::new(
            MeshConfig::default()
                .arena_bytes(64 << 20)
                .seed(seed)
                .write_barrier(false),
            Arc::new(Counters::default()),
        )
        .unwrap()
    }

    /// Builds a detached MiniHeap of `class` with objects at `slots`, each
    /// filled with `fill`.
    fn detached_with_slots(
        h: &GlobalHeap,
        class: SizeClass,
        slots: &[usize],
        fill: u8,
    ) -> MiniHeapId {
        let mut st = h.lock_class(class);
        let id = h.fresh_miniheap_locked(&mut st, class).unwrap();
        let mh = st.slab.get(id).unwrap();
        let start = h.base_addr() + mh.span().byte_offset();
        for &s in slots {
            assert!(mh.bitmap().try_set(s));
            unsafe {
                std::ptr::write_bytes(
                    (start + s * class.object_size()) as *mut u8,
                    fill,
                    class.object_size(),
                );
            }
        }
        st.bin_insert(id);
        id
    }

    #[test]
    fn words_mesh_predicate() {
        assert!(words_mesh(&[0b0101, 0, 0, 0], &[0b1010, 0, 0, 0]));
        assert!(!words_mesh(&[0b0101, 0, 0, 0], &[0b0100, 0, 0, 0]));
        assert!(words_mesh(&[0; 4], &[u64::MAX; 4]));
    }

    #[test]
    fn mesh_pair_preserves_object_contents_and_addresses() {
        let h = heap(1);
        let class = SizeClass::for_size(256).unwrap();
        let a = detached_with_slots(&h, class, &[0, 2, 4], 0xAA);
        let b = detached_with_slots(&h, class, &[1, 3, 5], 0xBB);
        let base = h.base_addr();
        let mut st = h.lock_class(class);
        let addr_a = base + st.slab.get(a).unwrap().span().byte_offset();
        let addr_b = base + st.slab.get(b).unwrap().span().byte_offset();
        let committed_before = h.lock_arena().committed_pages();

        let mut summary = MeshSummary::default();
        let mut rejected = [0u64; REJECT_REASONS];
        mesh_pair(&h, &mut st, class, a, b, &mut summary, &mut rejected);
        assert_eq!(summary.pairs_meshed, 1);
        assert_eq!(summary.pages_released, class.span_pages());
        assert_eq!(
            h.lock_arena().committed_pages(),
            committed_before - class.span_pages()
        );

        // Exactly one MiniHeap survives, with both virtual spans.
        assert_eq!(st.slab.len(), 1);
        let (survivor_id, survivor) = st.slab.iter().next().unwrap();
        assert_eq!(survivor.span_count(), 2);
        assert_eq!(survivor.in_use(), 6);

        // All six objects readable at their ORIGINAL virtual addresses.
        for &(addr, slots, fill) in
            &[(addr_a, [0usize, 2, 4], 0xAAu8), (addr_b, [1, 3, 5], 0xBB)]
        {
            for s in slots {
                let p = (addr + s * 256) as *const u8;
                unsafe {
                    assert_eq!(*p, fill, "object at slot {s} corrupted");
                    assert_eq!(*p.add(255), fill);
                }
            }
        }

        // Both spans' pages resolve to the survivor.
        let owner = |addr: usize| h.page_map.get(h.page_of_addr(addr).unwrap()).map(|i| i.id);
        assert_eq!(owner(addr_a + 10), Some(survivor_id));
        assert_eq!(owner(addr_b + 10), Some(survivor_id));
    }

    #[test]
    fn meshed_survivor_frees_through_both_spans_then_dies() {
        let h = heap(2);
        let class = SizeClass::for_size(512).unwrap();
        let a = detached_with_slots(&h, class, &[0, 1], 1);
        let b = detached_with_slots(&h, class, &[6, 7], 2);
        let base = h.base_addr();
        let (addr_a, addr_b) = {
            let mut st = h.lock_class(class);
            let addr_a = base + st.slab.get(a).unwrap().span().byte_offset();
            let addr_b = base + st.slab.get(b).unwrap().span().byte_offset();
            let mut summary = MeshSummary::default();
            let mut rejected = [0u64; REJECT_REASONS];
            mesh_pair(&h, &mut st, class, a, b, &mut summary, &mut rejected);
            (addr_a, addr_b)
        };

        // Free objects through their original (virtual) addresses.
        assert!(h.free_global(addr_a));
        assert!(h.free_global(addr_a + 512));
        assert!(h.free_global(addr_b + 6 * 512));
        assert!(h.free_global(addr_b + 7 * 512));
        h.drain_all();
        {
            let st = h.lock_class(class);
            assert_eq!(st.slab.len(), 0, "survivor destroyed when empty");
        }
        // Identity restored: both page ranges unowned again.
        assert_eq!(h.page_map.get(h.page_of_addr(addr_a).unwrap()), None);
        assert_eq!(h.page_map.get(h.page_of_addr(addr_b).unwrap()), None);
    }

    #[test]
    fn split_mesher_finds_disjoint_pairs() {
        let h = heap(3);
        let class = SizeClass::for_size(1024).unwrap();
        // Even-slot and odd-slot heaps: any (even, odd) pair meshes.
        for i in 0..8 {
            let slots: Vec<usize> = if i % 2 == 0 { vec![0, 2] } else { vec![1, 3] };
            detached_with_slots(&h, class, &slots, i as u8);
        }
        let mut st = h.lock_class(class);
        let candidates = collect_candidates(&h, &st);
        assert_eq!(candidates.len(), 8);
        let mut probes = 0;
        let mut rejects = 0u64;
        let pairs = split_mesher(&mut st, candidates, 64, 3, &mut probes, &mut rejects);
        assert!(probes > 0);
        // With t=64 and only two "shapes", SplitMesher should pair nearly
        // everything; at minimum one pair must exist.
        assert!(!pairs.is_empty());
        for (x, y) in &pairs {
            let a = st.slab.get(*x).unwrap();
            let b = st.slab.get(*y).unwrap();
            assert!(a.bitmap().meshes_with(b.bitmap()));
        }
    }

    #[test]
    fn full_pass_meshes_compatible_spans_and_respects_span_limit() {
        let h = heap(4);
        let class = SizeClass::for_size(128).unwrap();
        for i in 0..6 {
            let slots = vec![i]; // all singletons at distinct offsets: all mesh
            detached_with_slots(&h, class, &slots, i as u8);
        }
        let summary = mesh_all_classes(&h);
        assert!(summary.pairs_meshed >= 2, "got {summary:?}");
        // max_span_count = 3 by default: no MiniHeap may exceed 3 spans.
        let st = h.lock_class(class);
        for (_, mh) in st.slab.iter() {
            assert!(mh.span_count() <= 3);
        }
        let stats = h.counters.snapshot();
        assert_eq!(stats.mesh_passes, 1);
        assert!(stats.mesh_pages_released >= 2);
    }

    #[test]
    fn occupancy_cutoff_excludes_full_spans() {
        let h = heap(5);
        h.rt.set_occupancy_cutoff(0.5);
        let class = SizeClass::for_size(2048).unwrap();
        let count = class.object_count(); // 8
        // 75% occupied: above cutoff → not a candidate.
        let dense: Vec<usize> = (0..count * 3 / 4).collect();
        detached_with_slots(&h, class, &dense, 1);
        detached_with_slots(&h, class, &[0], 2);
        let st = h.lock_class(class);
        let candidates = collect_candidates(&h, &st);
        assert_eq!(candidates.len(), 1);
    }

    #[test]
    fn attached_miniheaps_are_never_candidates() {
        let h = heap(6);
        let class = SizeClass::for_size(64).unwrap();
        let mut sv = ShuffleVector::new(true);
        let mut rng = Rng::with_seed(1);
        h.refill(&mut sv, class, 1, &mut rng).unwrap();
        sv.malloc().unwrap();
        let st = h.lock_class(class);
        assert!(collect_candidates(&h, &st).is_empty());
    }

    #[test]
    fn non_meshable_classes_skipped_but_still_drained() {
        let h = heap(7);
        let class = SizeClass::for_size(8192).unwrap();
        assert!(!class.is_meshable());
        let a = detached_with_slots(&h, class, &[0], 1);
        detached_with_slots(&h, class, &[1], 2);
        // Queue a remote free for the non-meshable class, then run a pass:
        // the pass must not mesh it but must apply the queued free.
        let addr = {
            let st = h.lock_class(class);
            h.base_addr() + st.slab.get(a).unwrap().span().byte_offset()
        };
        assert!(h.free_global(addr), "free enqueues on the class queue");
        let summary = mesh_all_classes(&h);
        assert_eq!(summary.pairs_meshed, 0);
        let st = h.lock_class(class);
        assert!(st.slab.get(a).is_none(), "queued free not applied by the pass");
    }
}
