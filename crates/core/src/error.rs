//! Error types for the Mesh allocator.

use std::fmt;
use std::io;

/// Errors surfaced by fallible Mesh operations (heap construction and
/// explicit management calls; the malloc path itself reports failure by
/// returning a null pointer, as malloc does).
#[derive(Debug)]
pub enum MeshError {
    /// Creating or sizing a segment's backing memory file failed (at heap
    /// construction or during on-demand growth).
    ArenaCreation(io::Error),
    /// Mapping, remapping or protecting arena memory failed.
    Map(io::Error),
    /// The configured hard heap cap (`max_heap_bytes`) has no room for the
    /// request: every segment missed and no further segment can be placed.
    /// This — and only this — is how the segmented arena reports OOM; the
    /// malloc path converts it to a null return.
    ArenaExhausted {
        /// Pages requested by the failing operation.
        requested_pages: usize,
        /// Total pages under the configured hard cap.
        capacity_pages: usize,
    },
    /// A configuration value is out of its valid range.
    InvalidConfig(String),
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::ArenaCreation(e) => write!(f, "arena backing file creation failed: {e}"),
            MeshError::Map(e) => write!(f, "virtual memory operation failed: {e}"),
            MeshError::ArenaExhausted {
                requested_pages,
                capacity_pages,
            } => write!(
                f,
                "heap cap exhausted: requested {requested_pages} pages, hard cap {capacity_pages}"
            ),
            MeshError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for MeshError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MeshError::ArenaCreation(e) | MeshError::Map(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MeshError::ArenaExhausted {
            requested_pages: 10,
            capacity_pages: 4,
        };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains('4'));
    }

    #[test]
    fn error_trait_source() {
        use std::error::Error;
        let e = MeshError::Map(io::Error::other("boom"));
        assert!(e.source().is_some());
        let e = MeshError::InvalidConfig("x".into());
        assert!(e.source().is_none());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MeshError>();
    }
}
