//! Transfer cache: a tcmalloc-style middle tier between thread heaps and
//! the per-class global shards.
//!
//! Each size class owns a small stack of fixed-size *batches* — `Vec`s of
//! claimed object addresses whose MiniHeap bitmap bits are **set** (exactly
//! like slots held by an attached shuffle vector). A thread heap that
//! misses its shuffle vector first pops a whole batch here, paying one
//! mutex op per `batch` objects instead of one class-lock acquisition per
//! refill; the drain path recycles validated remote frees into batches
//! instead of rebinning them, and detaching vectors spill their surplus
//! here for the next thread.
//!
//! ## Locking discipline
//!
//! The per-class mutexes are **strict leaves**: no code acquires any other
//! lock while holding one, and they are never held across a call into the
//! global heap. Pushes happen only while the owning class's shard lock is
//! held, so `room()` observed under the class lock cannot shrink before a
//! subsequent `try_push` (concurrent pops only *increase* room).
//! [`TransferCache::lock_all`] participates in fork quiescence; the guards
//! are acquired after the arena lock in the canonical `lock_all` order.
//!
//! Objects parked here are invisible to occupancy accounting on purpose:
//! their bits being set keeps `in_use > 0`, so the spans backing them can
//! never be freed while a cached address is outstanding. Meshing passes
//! purge the cache for a class (via `take_all`) before collecting
//! candidates so cached-but-dead slots do not pin or inflate spans.

use crate::size_classes::NUM_SIZE_CLASSES;
use crate::sync::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-size-class stacks of object-address batches.
#[derive(Debug)]
pub(crate) struct TransferCache {
    /// Objects per batch; 1 disables batching entirely (legacy path).
    /// Atomic so mesh-ctl's `set transfer_batch` can retune a live
    /// process; in-flight batches built at the old size stay valid —
    /// consumers take whatever length a popped batch has.
    batch: AtomicUsize,
    /// Max batches cached per class; 0 disables the cache (but not
    /// sender-side free batching).
    slots: usize,
    classes: Vec<Mutex<Vec<Vec<usize>>>>,
}

impl TransferCache {
    pub fn new(batch: usize, slots: usize) -> TransferCache {
        TransferCache {
            batch: AtomicUsize::new(batch.max(1)),
            slots,
            classes: (0..NUM_SIZE_CLASSES).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Objects moved per batch.
    #[inline]
    pub fn batch(&self) -> usize {
        self.batch.load(Ordering::Relaxed)
    }

    /// Retunes the batch size at runtime (mesh-ctl `set transfer_batch`,
    /// clamped to ≥ 1). Already-parked batches keep their old length;
    /// only newly built ones see the new size.
    pub fn set_batch(&self, batch: usize) {
        self.batch.store(batch.max(1), Ordering::Relaxed);
    }

    /// Whether remote frees are buffered in the sender and pushed as
    /// batch nodes. Batch size 1 degenerates to today's one-push-per-free
    /// path exactly.
    #[inline]
    pub fn batching_enabled(&self) -> bool {
        self.batch() > 1
    }

    /// Whether object batches are parked between threads at all.
    #[inline]
    pub fn cache_enabled(&self) -> bool {
        self.batch() > 1 && self.slots > 0
    }

    /// Pops one batch for a refill. Lock order: leaf only.
    pub fn pop(&self, class_idx: usize) -> Option<Vec<usize>> {
        if !self.cache_enabled() {
            return None;
        }
        self.classes[class_idx].lock().pop()
    }

    /// How many more batches the class can accept. Stable while the
    /// caller holds the class shard lock (pushes require it).
    pub fn room(&self, class_idx: usize) -> usize {
        if !self.cache_enabled() {
            return 0;
        }
        self.slots.saturating_sub(self.classes[class_idx].lock().len())
    }

    /// Pushes one batch; returns it back on overflow (or when the cache
    /// is disabled) so the caller can release the objects properly.
    /// Must be called with the class's shard lock held.
    pub fn try_push(&self, class_idx: usize, batch: Vec<usize>) -> Result<(), Vec<usize>> {
        if !self.cache_enabled() || batch.is_empty() {
            return Err(batch);
        }
        let mut stack = self.classes[class_idx].lock();
        if stack.len() >= self.slots {
            return Err(batch);
        }
        stack.push(batch);
        Ok(())
    }

    /// Whether `addr` is currently parked in the class's cache. Used by
    /// the drain path (under the class lock) to catch duplicate frees of
    /// cache-held objects across drain epochs.
    pub fn contains(&self, class_idx: usize, addr: usize) -> bool {
        if !self.cache_enabled() {
            return false;
        }
        self.classes[class_idx]
            .lock()
            .iter()
            .any(|b| b.contains(&addr))
    }

    /// Removes and returns every cached batch for the class (meshing
    /// purge, heap teardown).
    pub fn take_all(&self, class_idx: usize) -> Vec<Vec<usize>> {
        std::mem::take(&mut *self.classes[class_idx].lock())
    }

    /// Acquires every per-class guard, in index order, for fork
    /// quiescence. The guards are leaves; holding them all is safe from
    /// any lock state that already follows the canonical order.
    pub fn lock_all(&self) -> Vec<MutexGuard<'_, Vec<Vec<usize>>>> {
        self.classes.iter().map(|m| m.lock()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo_per_class() {
        let tc = TransferCache::new(4, 2);
        assert!(tc.cache_enabled());
        assert_eq!(tc.room(0), 2);
        tc.try_push(0, vec![1, 2, 3, 4]).unwrap();
        tc.try_push(0, vec![5, 6]).unwrap();
        assert_eq!(tc.room(0), 0);
        // Third batch bounces back intact.
        let back = tc.try_push(0, vec![7]).unwrap_err();
        assert_eq!(back, vec![7]);
        // Classes are independent.
        tc.try_push(1, vec![9]).unwrap();
        assert_eq!(tc.pop(0), Some(vec![5, 6]));
        assert_eq!(tc.pop(0), Some(vec![1, 2, 3, 4]));
        assert_eq!(tc.pop(0), None);
        assert_eq!(tc.pop(1), Some(vec![9]));
    }

    #[test]
    fn contains_scans_all_batches() {
        let tc = TransferCache::new(2, 4);
        tc.try_push(3, vec![10, 20]).unwrap();
        tc.try_push(3, vec![30]).unwrap();
        assert!(tc.contains(3, 10));
        assert!(tc.contains(3, 30));
        assert!(!tc.contains(3, 40));
        assert!(!tc.contains(2, 10));
    }

    #[test]
    fn disabled_modes_reject_everything() {
        // batch=1: degenerate mode, no batching at all.
        let tc = TransferCache::new(1, 8);
        assert!(!tc.batching_enabled());
        assert!(!tc.cache_enabled());
        assert_eq!(tc.room(0), 0);
        assert!(tc.try_push(0, vec![1]).is_err());
        assert_eq!(tc.pop(0), None);
        assert!(!tc.contains(0, 1));
        // slots=0: sender batching on, parking off.
        let tc = TransferCache::new(32, 0);
        assert!(tc.batching_enabled());
        assert!(!tc.cache_enabled());
        assert!(tc.try_push(0, vec![1]).is_err());
        assert_eq!(tc.pop(0), None);
    }

    #[test]
    fn take_all_empties_class() {
        let tc = TransferCache::new(2, 4);
        tc.try_push(0, vec![1]).unwrap();
        tc.try_push(0, vec![2, 3]).unwrap();
        let all = tc.take_all(0);
        assert_eq!(all.len(), 2);
        assert_eq!(tc.room(0), 4);
        assert_eq!(tc.take_all(0), Vec::<Vec<usize>>::new());
    }

    #[test]
    fn lock_all_covers_every_class() {
        let tc = TransferCache::new(2, 1);
        let guards = tc.lock_all();
        assert_eq!(guards.len(), NUM_SIZE_CLASSES);
    }
}
