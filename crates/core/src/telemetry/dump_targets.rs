//! One shared gate for the three dump channels (profile / trace /
//! sense). Each channel used to hand-roll the same trio — a
//! `MESH_*_PATH` destination, a signal-safe request flag for the SIGUSR2
//! co-dump, and a never-panicking writer for atexit — so the three
//! copies drifted independently. [`DumpTarget`] is that trio once;
//! [`DumpKind`] names the channel (stderr prefix, failure label, and the
//! matching mesh-ctl envelope command).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

/// Which dump channel a [`DumpTarget`] serves. Each maps to one
/// `MESH_*_PATH` knob, one stderr prefix, and one mesh-ctl envelope
/// command of the same name as [`DumpKind::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DumpKind {
    Profile,
    Trace,
    Sense,
}

impl DumpKind {
    /// The stderr line prefix (`mesh-prof: {json}` and friends) — stable
    /// grep targets for the interposition tests.
    pub(crate) fn prefix(self) -> &'static str {
        match self {
            DumpKind::Profile => "mesh-prof",
            DumpKind::Trace => "mesh-trace",
            DumpKind::Sense => "mesh-sense",
        }
    }

    /// Human label used in failure messages and as the mesh-ctl command
    /// that returns this channel's envelope.
    pub(crate) fn label(self) -> &'static str {
        match self {
            DumpKind::Profile => "profile",
            DumpKind::Trace => "trace",
            DumpKind::Sense => "sense",
        }
    }
}

/// Destination + request flag for one dump channel. Rendering stays with
/// the channel owner (profile JSON, Chrome trace JSON, sense JSON); this
/// type only decides *where* a rendered envelope goes and *when* one was
/// asked for.
#[derive(Debug)]
pub(crate) struct DumpTarget {
    kind: DumpKind,
    path: Option<PathBuf>,
    /// Set by `request` (the SIGUSR2 handler's entire body — one atomic
    /// store is all a signal context may do here), claimed by the
    /// background thread's tick.
    requested: AtomicBool,
}

impl DumpTarget {
    pub(crate) fn new(kind: DumpKind, path: Option<PathBuf>) -> Self {
        DumpTarget {
            kind,
            path,
            requested: AtomicBool::new(false),
        }
    }

    /// The configured dump destination (`MESH_*_PATH`), if any.
    pub(crate) fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Requests a dump at the next telemetry tick. The only entry point
    /// safe from a signal handler: one relaxed atomic store.
    #[inline]
    pub(crate) fn request(&self) {
        self.requested.store(true, Ordering::Relaxed);
    }

    /// Whether a dump was requested; claims the request.
    pub(crate) fn take_requested(&self) -> bool {
        self.requested.swap(false, Ordering::Relaxed)
    }

    /// Drops any pending request (fork children inherit none).
    pub(crate) fn clear_requested(&self) {
        self.requested.store(false, Ordering::Relaxed);
    }

    /// Writes one rendered envelope: to the configured path (truncating —
    /// the file always holds the latest dump) or, with no path, to stderr
    /// as a single prefixed line. Never panics: an allocator must survive
    /// a read-only filesystem or a closed stderr.
    pub(crate) fn write(&self, json: &str) {
        match &self.path {
            Some(path) => {
                if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                    let msg = format!(
                        "mesh: {} dump to {} failed: {e}\n",
                        self.kind.label(),
                        path.display()
                    );
                    unsafe {
                        crate::ffi::write(2, msg.as_ptr() as *const crate::ffi::c_void, msg.len())
                    };
                }
            }
            None => {
                let line = format!("{}: {json}\n", self.kind.prefix());
                unsafe {
                    crate::ffi::write(2, line.as_ptr() as *const crate::ffi::c_void, line.len())
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_is_one_shot_and_clearable() {
        let t = DumpTarget::new(DumpKind::Trace, None);
        assert!(!t.take_requested());
        t.request();
        assert!(t.take_requested());
        assert!(!t.take_requested(), "claim is one-shot");
        t.request();
        t.clear_requested();
        assert!(!t.take_requested(), "clear drops a pending request");
    }

    #[test]
    fn write_truncates_the_file() {
        let path = std::env::temp_dir().join(format!("mesh-dt-test-{}.json", std::process::id()));
        let t = DumpTarget::new(DumpKind::Profile, Some(path.clone()));
        assert_eq!(t.path(), Some(path.as_path()));
        t.write("{\"a\":1}");
        t.write("{\"b\":2}");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"b\":2}\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kinds_name_their_channels() {
        assert_eq!(DumpKind::Profile.prefix(), "mesh-prof");
        assert_eq!(DumpKind::Sense.label(), "sense");
        assert_eq!(DumpKind::Trace.label(), "trace");
    }
}
