//! Exposition: Prometheus-style text and the JSON heap-profile dump.
//!
//! Both formats are assembled as plain strings (no serde in the offline
//! build) from data the caller already snapshotted — nothing here takes a
//! heap lock.
//!
//! ## Profile dump schema (version 1)
//!
//! ```json
//! {
//!   "mesh_profile_version": 1,
//!   "uptime_ms": 1234,
//!   "sample_bytes": 524288,
//!   "samples": 123, "samples_dropped": 0, "sampled_frees": 100,
//!   "sites": 7, "live_samples": 23,
//!   "live_bytes_exact": 1048576,
//!   "live_bytes_estimate": 1012345,
//!   "entries": [
//!     {"site": 17, "frames": ["0x55d0c0ffee00", "…"],
//!      "live_bytes": 900000, "live_samples": 20,
//!      "alloc_bytes": 5000000, "alloc_samples": 110,
//!      "freed_bytes": 4100000, "free_samples": 90}
//!   ]
//! }
//! ```
//!
//! `entries` is sorted by `live_bytes` descending — entry 0 is the top
//! leak suspect. `frames` are raw return addresses (innermost first),
//! hex-encoded; symbolize offline against `/proc/<pid>/maps`. An entry
//! with `"site": 4294967295` and empty `frames` is the overflow
//! catch-all. `*_bytes` fields are unbiased estimates (see the sampling
//! math in DESIGN.md); `live_bytes_exact` is the allocator's exact
//! counter for cross-checking the estimator.

use super::{ProfileStats, SiteSnapshot};
use crate::harden::ALL_HARDEN_KINDS;
use crate::stats::HeapStats;
use crate::telemetry::histogram::{bucket_upper_ns, LatencySnapshot, ALL_TIMED_OPS, LATENCY_BUCKETS};
use crate::telemetry::{HeapSpectrum, SenseSnapshot, ABSENT, ALL_REJECT_REASONS, REJECT_REASONS};

/// Renders the version-1 JSON heap profile.
pub(crate) fn profile_json(
    prof: &ProfileStats,
    entries: &[SiteSnapshot],
    live_bytes_exact: usize,
    uptime_ms: u64,
) -> String {
    let mut out = String::with_capacity(256 + entries.len() * 160);
    out.push_str(&format!(
        "{{\"mesh_profile_version\":1,\"uptime_ms\":{uptime_ms},\"sample_bytes\":{},\
         \"samples\":{},\"samples_dropped\":{},\"sampled_frees\":{},\
         \"sites\":{},\"live_samples\":{},\
         \"live_bytes_exact\":{},\"live_bytes_estimate\":{},\"entries\":[",
        prof.sample_bytes,
        prof.samples,
        prof.samples_dropped,
        prof.sampled_frees,
        prof.sites,
        prof.live_samples,
        live_bytes_exact,
        prof.live_bytes_estimate,
    ));
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let frames: Vec<String> = e.frames.iter().map(|f| format!("\"{f:#x}\"")).collect();
        out.push_str(&format!(
            "{{\"site\":{},\"frames\":[{}],\
             \"live_bytes\":{},\"live_samples\":{},\
             \"alloc_bytes\":{},\"alloc_samples\":{},\
             \"freed_bytes\":{},\"free_samples\":{}}}",
            e.site,
            frames.join(","),
            e.live_bytes(),
            e.live_samples(),
            e.alloc_bytes,
            e.alloc_samples,
            e.freed_bytes,
            e.free_samples,
        ));
    }
    out.push_str("]}");
    out
}

/// Appends one Prometheus metric with `# HELP` and `# TYPE` headers.
fn metric(out: &mut String, name: &str, kind: &str, help: &str, value: impl std::fmt::Display) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
    ));
}

/// Formats nanoseconds as a Prometheus seconds value (plain decimal;
/// Rust's `f64` `Display` never uses exponent notation).
fn seconds(ns: u64) -> String {
    format!("{}", ns as f64 / 1e9)
}

/// Renders the heap's state as Prometheus text-format metrics: the
/// [`HeapStats`] counters/gauges, the slow-path latency histograms, the
/// per-class occupancy spectrum, the meshing-effectiveness reject
/// totals, (when sensing) the latest pressure/residency snapshot, and
/// (when profiling) the sampler's own summary.
pub(crate) fn prom_text(
    stats: &HeapStats,
    prof: Option<&ProfileStats>,
    sense: Option<&SenseSnapshot>,
    rejects: &[u64; REJECT_REASONS],
) -> String {
    let mut out = String::with_capacity(8192);
    let counters: &[(&str, &str, u64)] = &[
        ("mesh_mallocs_total", "Successful allocations.", stats.mallocs),
        ("mesh_frees_total", "Frees, all paths.", stats.frees),
        (
            "mesh_remote_frees_total",
            "Frees routed through the global heap.",
            stats.remote_frees,
        ),
        (
            "mesh_invalid_frees_total",
            "Frees of pointers the heap does not own (discarded).",
            stats.invalid_frees,
        ),
        (
            "mesh_double_frees_total",
            "Frees of already-free objects (discarded).",
            stats.double_frees,
        ),
        (
            "mesh_large_allocs_total",
            "Allocations above the largest size class.",
            stats.large_allocs,
        ),
        ("mesh_mesh_passes_total", "Completed meshing passes.", stats.mesh_passes),
        ("mesh_spans_meshed_total", "Span pairs merged by meshing.", stats.spans_meshed),
        (
            "mesh_mesh_pages_released_total",
            "Physical pages released by meshing.",
            stats.mesh_pages_released,
        ),
        (
            "mesh_mesh_bytes_copied_total",
            "Object bytes copied while meshing.",
            stats.mesh_bytes_copied,
        ),
        (
            "mesh_dirty_purges_total",
            "Dirty-page purge events.",
            stats.dirty_purges,
        ),
        (
            "mesh_pages_purged_total",
            "Pages released by dirty purges.",
            stats.pages_purged,
        ),
        (
            "mesh_refills_total",
            "Shuffle-vector refills (one class-lock acquisition each).",
            stats.refills,
        ),
        (
            "mesh_remote_free_queued_total",
            "Non-local frees enqueued lock-free.",
            stats.remote_free_queued,
        ),
        (
            "mesh_remote_free_drained_total",
            "Queued remote frees applied under their class lock.",
            stats.remote_free_drained,
        ),
        (
            "mesh_reallocs_in_place_total",
            "realloc calls satisfied without moving the allocation.",
            stats.reallocs_in_place,
        ),
        ("mesh_forks_total", "Heap privatizations in forked children.", stats.forks),
        (
            "mesh_transfer_hits_total",
            "Refills served by popping a transfer-cache batch.",
            stats.transfer_hits,
        ),
        (
            "mesh_transfer_misses_total",
            "Refills that missed the transfer cache.",
            stats.transfer_misses,
        ),
        (
            "mesh_transfer_spills_total",
            "Batches pushed into the transfer cache.",
            stats.transfer_spills,
        ),
        (
            "mesh_remote_free_batches_total",
            "Sender-side remote-free batches flushed as single queue nodes.",
            stats.remote_free_batches,
        ),
        (
            "mesh_segments_created_total",
            "Segments mapped over the heap's lifetime.",
            stats.segments_created,
        ),
        (
            "mesh_segments_retired_total",
            "Segments unmapped after all their pages went clean.",
            stats.segments_retired,
        ),
    ];
    for &(name, help, value) in counters {
        metric(&mut out, name, "counter", help, value);
    }
    metric(
        &mut out,
        "mesh_live_bytes",
        "gauge",
        "Live application bytes (allocated minus freed).",
        stats.live_bytes,
    );
    metric(
        &mut out,
        "mesh_heap_bytes",
        "gauge",
        "Committed pages in bytes - the physical heap footprint.",
        stats.heap_bytes(),
    );
    metric(
        &mut out,
        "mesh_heap_peak_bytes",
        "gauge",
        "Peak committed bytes over the heap's lifetime.",
        stats.peak_heap_bytes(),
    );
    // Renamed series kept one release for dashboards still scraping it.
    out.push_str(
        "# EOL mesh_heap_bytes_peak is a deprecated alias of mesh_heap_peak_bytes, \
         removal no earlier than 2026-12-01\n",
    );
    metric(
        &mut out,
        "mesh_heap_bytes_peak",
        "gauge",
        "Deprecated alias of mesh_heap_peak_bytes.",
        stats.peak_heap_bytes(),
    );
    metric(
        &mut out,
        "mesh_mapped_bytes",
        "gauge",
        "Bytes mapped to segment files - the virtual footprint.",
        stats.mapped_bytes(),
    );
    metric(
        &mut out,
        "mesh_segments",
        "gauge",
        "Segments currently mapped.",
        stats.segment_count,
    );
    metric(
        &mut out,
        "mesh_uptime_seconds",
        "gauge",
        "Seconds since heap initialization.",
        seconds(stats.uptime_ms.saturating_mul(1_000_000)),
    );
    latency_metrics(&mut out, &stats.latency);
    spectrum_metrics(&mut out, &stats.spectrum);
    // The effectiveness ledger's per-reason reject totals. Every reason
    // label is always emitted (zeros included) so rate() queries never
    // see a series appear from nowhere.
    out.push_str(
        "# HELP mesh_pass_rejected_total Mesh-pass pair rejections by reason.\n\
         # TYPE mesh_pass_rejected_total counter\n",
    );
    for reason in ALL_REJECT_REASONS {
        out.push_str(&format!(
            "mesh_pass_rejected_total{{reason=\"{}\"}} {}\n",
            reason.name(),
            rejects[reason as usize]
        ));
    }
    // Hardened-mode violations by kind. Like the reject counter, every
    // kind label is emitted even at zero (and even with `MESH_HARDEN`
    // off) so alerting rules can be written once.
    out.push_str(
        "# HELP mesh_harden_violations_total Hardened-mode memory-safety violations by kind.\n\
         # TYPE mesh_harden_violations_total counter\n",
    );
    for kind in ALL_HARDEN_KINDS {
        out.push_str(&format!(
            "mesh_harden_violations_total{{kind=\"{}\"}} {}\n",
            kind.name(),
            stats.harden_violations[kind as usize]
        ));
    }
    if let Some(s) = sense {
        sense_metrics(&mut out, s);
    }
    if let Some(p) = prof {
        metric(
            &mut out,
            "mesh_prof_sample_bytes",
            "gauge",
            "Configured geometric sampling rate in bytes.",
            p.sample_bytes,
        );
        metric(
            &mut out,
            "mesh_prof_samples_total",
            "counter",
            "Allocations sampled.",
            p.samples,
        );
        metric(
            &mut out,
            "mesh_prof_samples_dropped_total",
            "counter",
            "Samples dropped by the overflow catch-all.",
            p.samples_dropped,
        );
        metric(
            &mut out,
            "mesh_prof_sampled_frees_total",
            "counter",
            "Sampled objects retired by free.",
            p.sampled_frees,
        );
        metric(
            &mut out,
            "mesh_prof_sites",
            "gauge",
            "Distinct allocation sites tracked.",
            p.sites,
        );
        metric(
            &mut out,
            "mesh_prof_live_samples",
            "gauge",
            "Sampled objects still live.",
            p.live_samples,
        );
        metric(
            &mut out,
            "mesh_prof_live_bytes_estimate",
            "gauge",
            "Unbiased live-bytes estimate from the sampler.",
            p.live_bytes_estimate,
        );
    }
    out
}

/// Formats a milli-percent PSI reading as a plain decimal percentage.
fn psi_pct(milli: u64) -> String {
    format!("{}.{:03}", milli / 1000, milli % 1000)
}

/// The latest sense snapshot as gauges. Sources that were unreadable on
/// this host (no cgroup limit, no PSI, no /proc) carry the [`ABSENT`]
/// sentinel and their series are simply omitted — absence of data, not a
/// zero reading.
fn sense_metrics(out: &mut String, s: &SenseSnapshot) {
    if s.rss_bytes != ABSENT {
        metric(
            out,
            "mesh_rss_bytes",
            "gauge",
            "Process resident set size from /proc.",
            s.rss_bytes,
        );
    }
    if s.est_resident_bytes != ABSENT {
        metric(
            out,
            "mesh_resident_est_bytes",
            "gauge",
            "Estimated resident bytes of the heap mapping (sampled mincore).",
            s.est_resident_bytes,
        );
    }
    if s.psi_avg10_milli != ABSENT {
        metric(
            out,
            "mesh_pressure_psi_avg10",
            "gauge",
            "Memory PSI some avg10 percentage from /proc/pressure/memory.",
            psi_pct(s.psi_avg10_milli),
        );
    }
    if s.psi_avg60_milli != ABSENT {
        metric(
            out,
            "mesh_pressure_psi_avg60",
            "gauge",
            "Memory PSI some avg60 percentage from /proc/pressure/memory.",
            psi_pct(s.psi_avg60_milli),
        );
    }
    if s.cgroup_limit_bytes != ABSENT {
        metric(
            out,
            "mesh_cgroup_limit_bytes",
            "gauge",
            "Effective cgroup memory limit (absent when unlimited).",
            s.cgroup_limit_bytes,
        );
    }
    if s.cgroup_usage_bytes != ABSENT {
        metric(
            out,
            "mesh_cgroup_usage_bytes",
            "gauge",
            "Cgroup memory usage reported by the controller.",
            s.cgroup_usage_bytes,
        );
    }
}

/// The slow-path latency histograms as Prometheus `_bucket`/`_sum`/
/// `_count` series (seconds units). Every op emits a family even when it
/// never fired (so dashboards can rely on the series existing); zero
/// buckets below `+Inf` are elided — cumulative counts make them
/// recoverable — keeping the exposition compact.
fn latency_metrics(out: &mut String, latency: &LatencySnapshot) {
    for op in ALL_TIMED_OPS {
        let name = op.prom_name();
        out.push_str(&format!(
            "# HELP {name} Latency of {} slow-path operations.\n# TYPE {name} histogram\n",
            op.name()
        ));
        let buckets = &latency.counts[op.index()];
        let mut cumulative = 0u64;
        // The overflow bucket has no finite upper bound: it only feeds
        // the +Inf line below.
        for (b, &c) in buckets.iter().enumerate().take(LATENCY_BUCKETS - 1) {
            if c == 0 {
                continue;
            }
            cumulative += c;
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                seconds(bucket_upper_ns(b))
            ));
        }
        cumulative += buckets[LATENCY_BUCKETS - 1];
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!("{name}_sum {}\n", seconds(latency.sum_ns(op))));
        out.push_str(&format!("{name}_count {cumulative}\n"));
    }
}

/// The spectrum as labelled gauges (only classes holding spans emit
/// series, so an idle heap's exposition stays small).
fn spectrum_metrics(out: &mut String, spec: &HeapSpectrum) {
    out.push_str(
        "# HELP mesh_class_spans Spans per size class by occupancy bin.\n\
         # TYPE mesh_class_spans gauge\n",
    );
    for c in spec.classes.iter().filter(|c| c.spans() > 0) {
        out.push_str(&format!(
            "mesh_class_spans{{class=\"{}\",bin=\"attached\"}} {}\n",
            c.object_size, c.attached_spans
        ));
        for (bin, &count) in c.bins.iter().enumerate() {
            let label: &str = match bin {
                0 => "q75_100",
                1 => "q50_75",
                2 => "q25_50",
                3 => "q0_25",
                _ => "full",
            };
            out.push_str(&format!(
                "mesh_class_spans{{class=\"{}\",bin=\"{label}\"}} {count}\n",
                c.object_size
            ));
        }
    }
    out.push_str(
        "# HELP mesh_class_occupancy Fraction of a class's slots holding live objects.\n\
         # TYPE mesh_class_occupancy gauge\n",
    );
    for c in spec.classes.iter().filter(|c| c.total_slots > 0) {
        out.push_str(&format!(
            "mesh_class_occupancy{{class=\"{}\"}} {:.4}\n",
            c.object_size,
            c.occupancy()
        ));
    }
    out.push_str(
        "# HELP mesh_class_est_meshable_pairs Estimated meshable span pairs per class.\n\
         # TYPE mesh_class_est_meshable_pairs gauge\n",
    );
    for c in spec.classes.iter().filter(|c| c.est_meshable_pairs > 0) {
        out.push_str(&format!(
            "mesh_class_est_meshable_pairs{{class=\"{}\"}} {}\n",
            c.object_size, c.est_meshable_pairs
        ));
    }
    metric(
        out,
        "mesh_est_releasable_bytes",
        "gauge",
        "Estimated bytes releasable by meshing every estimated pair.",
        spec.est_releasable_bytes(),
    );
    if spec.large_spans > 0 {
        metric(
            out,
            "mesh_large_spans",
            "gauge",
            "Live large-object spans.",
            spec.large_spans,
        );
        metric(
            out,
            "mesh_large_bytes",
            "gauge",
            "Bytes held by live large objects.",
            spec.large_bytes,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof() -> ProfileStats {
        ProfileStats {
            sample_bytes: 4096,
            samples: 10,
            samples_dropped: 1,
            sampled_frees: 4,
            sites: 2,
            live_samples: 6,
            live_bytes_estimate: 24_000,
        }
    }

    #[test]
    fn profile_json_is_wellformed_and_ordered() {
        let entries = vec![
            SiteSnapshot {
                site: 5,
                frames: vec![0x1000, 0x2000],
                alloc_samples: 8,
                alloc_bytes: 30_000,
                free_samples: 2,
                freed_bytes: 8_000,
            },
            SiteSnapshot {
                site: super::super::OVERFLOW_SITE,
                frames: vec![],
                alloc_samples: 2,
                alloc_bytes: 2_000,
                free_samples: 2,
                freed_bytes: 2_000,
            },
        ];
        let json = profile_json(&prof(), &entries, 30_000, 777);
        assert!(json.starts_with("{\"mesh_profile_version\":1,"));
        assert!(json.contains("\"uptime_ms\":777"));
        assert!(json.contains("\"sample_bytes\":4096"));
        assert!(json.contains("\"live_bytes_exact\":30000"));
        assert!(json.contains("\"frames\":[\"0x1000\",\"0x2000\"]"));
        assert!(json.contains("\"frames\":[]"));
        assert!(json.contains("\"live_bytes\":22000"));
        assert!(json.ends_with("}]}"));
        // Balanced braces/brackets (cheap well-formedness check).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        assert!(!json.contains('\n'), "dump is a single line");
    }

    #[test]
    fn prom_text_has_headers_and_spectrum() {
        let mut stats = HeapStats {
            mallocs: 7,
            live_bytes: 1234,
            ..Default::default()
        };
        stats.spectrum.classes[2] = crate::telemetry::ClassSpectrum {
            object_size: 48,
            attached_spans: 1,
            bins: [0, 1, 0, 2, 0],
            live_objects: 10,
            total_slots: 340,
            est_meshable_pairs: 1,
            meshable: true,
        };
        let text = prom_text(&stats, Some(&prof()), None, &[0; REJECT_REASONS]);
        assert!(text.contains("# TYPE mesh_mallocs_total counter\nmesh_mallocs_total 7\n"));
        assert!(text.contains("mesh_live_bytes 1234"));
        assert!(text.contains("mesh_class_spans{class=\"48\",bin=\"attached\"} 1"));
        assert!(text.contains("mesh_class_spans{class=\"48\",bin=\"q0_25\"} 2"));
        assert!(text.contains("mesh_class_est_meshable_pairs{class=\"48\"} 1"));
        assert!(text.contains("mesh_prof_live_bytes_estimate 24000"));
        // Every reject reason emits a series even at zero.
        assert!(text.contains("mesh_pass_rejected_total{reason=\"occupancy_overlap\"} 0"));
        assert!(text.contains("mesh_pass_rejected_total{reason=\"copy_abort\"} 0"));
        // Without profiling, the prof series are absent; without a sense
        // snapshot, the sense gauges are too.
        let text = prom_text(&stats, None, None, &[0; REJECT_REASONS]);
        assert!(!text.contains("mesh_prof_"));
        assert!(!text.contains("mesh_rss_bytes"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }

    #[test]
    fn prom_text_emits_latency_histograms() {
        use crate::telemetry::histogram::TimedOp;
        let mut stats = HeapStats::default();
        // Refill: 3 ops in bucket 5, 1 overflow; sum 5 µs, max 2 µs.
        let r = TimedOp::Refill.index();
        stats.latency.counts[r][5] = 3;
        stats.latency.counts[r][LATENCY_BUCKETS - 1] = 1;
        stats.latency.sums[r] = 5_000;
        stats.latency.maxes[r] = 2_000;
        let text = prom_text(&stats, None, None, &[0; REJECT_REASONS]);
        // The populated family: elided zero buckets, cumulative counts,
        // the overflow landing only in +Inf.
        assert!(text.contains("# TYPE mesh_refill_seconds histogram\n"));
        let le5 = format!(
            "mesh_refill_seconds_bucket{{le=\"{}\"}} 3\n",
            seconds(bucket_upper_ns(5))
        );
        assert!(text.contains(&le5), "bucket 5 line missing in:\n{text}");
        assert!(text.contains("mesh_refill_seconds_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("mesh_refill_seconds_sum 0.000005\n"));
        assert!(text.contains("mesh_refill_seconds_count 4\n"));
        // Families that never fired still exist with an empty +Inf.
        assert!(text.contains("mesh_mutator_pause_seconds_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("mesh_mesh_pass_seconds_count 0\n"));
        // Uptime gauge and the heap-peak rename with its EOL alias.
        assert!(text.contains("# TYPE mesh_uptime_seconds gauge\n"));
        assert!(text.contains("# TYPE mesh_heap_peak_bytes gauge\n"));
        assert!(text.contains("# EOL mesh_heap_bytes_peak"));
        assert!(text.contains("# TYPE mesh_heap_bytes_peak gauge\n"));
    }

    /// Conformance lint over the full exposition: `# HELP` precedes every
    /// `# TYPE`; counter names end `_total`; gauge names do not;
    /// histogram `_bucket` series are cumulative-monotone and end at
    /// `+Inf` with a matching `_count`.
    #[test]
    fn prom_text_naming_and_structure_conformance() {
        let mut stats = HeapStats {
            mallocs: 3,
            uptime_ms: 1500,
            ..Default::default()
        };
        let r = super::ALL_TIMED_OPS[0].index();
        stats.latency.counts[r][3] = 2;
        stats.latency.counts[r][9] = 1;
        stats.latency.sums[r] = 900;
        // Sense on, with a mixed present/absent snapshot, so the lint
        // also covers the mesh-sense gauge families and the labelled
        // reject counter.
        let sense = SenseSnapshot {
            at_ms: 1000,
            rss_bytes: 10 << 20,
            est_resident_bytes: 8 << 20,
            psi_avg10_milli: 12_340,
            psi_avg60_milli: ABSENT,
            cgroup_limit_bytes: ABSENT,
            cgroup_usage_bytes: 9 << 20,
            ..Default::default()
        };
        let text = prom_text(&stats, Some(&prof()), Some(&sense), &[3, 1, 0, 0, 0]);

        let mut kinds: std::collections::HashMap<String, String> = Default::default();
        let mut last_help: Option<String> = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                last_help = Some(rest.split(' ').next().unwrap().to_string());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split(' ');
                let (name, kind) = (it.next().unwrap(), it.next().unwrap());
                assert_eq!(
                    last_help.as_deref(),
                    Some(name),
                    "# TYPE {name} not preceded by its # HELP"
                );
                kinds.insert(name.to_string(), kind.to_string());
            }
        }
        for (name, kind) in &kinds {
            match kind.as_str() {
                "counter" => assert!(name.ends_with("_total"), "counter {name} lacks _total"),
                "gauge" => assert!(!name.ends_with("_total"), "gauge {name} ends _total"),
                "histogram" => {}
                other => panic!("unexpected kind {other} for {name}"),
            }
        }
        // Histogram structure: per family, bucket counts monotone, last
        // le is +Inf, and its value equals the family's _count.
        for (name, kind) in &kinds {
            if kind != "histogram" {
                continue;
            }
            let mut prev = 0u64;
            let mut last_le = String::new();
            let mut inf_value = None;
            for line in text.lines().filter(|l| l.starts_with(&format!("{name}_bucket{{"))) {
                let le = line.split("le=\"").nth(1).unwrap().split('"').next().unwrap();
                let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(v >= prev, "{name}: bucket counts not cumulative");
                prev = v;
                last_le = le.to_string();
                if le == "+Inf" {
                    inf_value = Some(v);
                }
            }
            assert_eq!(last_le, "+Inf", "{name}: buckets must end at +Inf");
            let count_line = text
                .lines()
                .find(|l| l.starts_with(&format!("{name}_count ")))
                .unwrap_or_else(|| panic!("{name}_count missing"));
            let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
            assert_eq!(Some(count), inf_value, "{name}: +Inf != _count");
            assert!(
                text.lines().any(|l| l.starts_with(&format!("{name}_sum "))),
                "{name}_sum missing"
            );
        }
        // The renamed peak gauge carries its EOL marker immediately
        // before the alias's own headers.
        let eol_pos = text.find("# EOL mesh_heap_bytes_peak").expect("EOL marker");
        let alias_pos = text.find("# HELP mesh_heap_bytes_peak ").expect("alias series");
        assert!(eol_pos < alias_pos);
        assert!(text.find("mesh_heap_peak_bytes ").unwrap() < eol_pos, "new name first");
        // Present sense sources emit gauges; absent ones emit nothing.
        assert!(text.contains("mesh_rss_bytes 10485760\n"));
        assert!(text.contains("mesh_resident_est_bytes 8388608\n"));
        assert!(text.contains("mesh_pressure_psi_avg10 12.340\n"));
        assert!(text.contains("mesh_cgroup_usage_bytes 9437184\n"));
        assert!(!text.contains("mesh_pressure_psi_avg60"), "ABSENT source elided");
        assert!(!text.contains("mesh_cgroup_limit_bytes"), "unlimited cgroup elided");
        assert!(text.contains("mesh_pass_rejected_total{reason=\"occupancy_overlap\"} 3\n"));
        assert!(text.contains("mesh_pass_rejected_total{reason=\"pinned_transfer\"} 1\n"));
    }

    /// Pins the names of the hostile-input counter families and the
    /// hardened-mode violation family: dashboards and the CI gauntlet
    /// grep for these exact series, so renaming any of them is a
    /// breaking change to the exposition contract.
    #[test]
    fn hostile_input_and_harden_families_are_pinned() {
        let mut stats = HeapStats {
            invalid_frees: 4,
            double_frees: 2,
            ..Default::default()
        };
        stats.harden_violations[crate::harden::HardenKind::Poison as usize] = 3;
        let text = prom_text(&stats, None, None, &[0; REJECT_REASONS]);
        assert!(text.contains("# TYPE mesh_invalid_frees_total counter\nmesh_invalid_frees_total 4\n"));
        assert!(text.contains("# TYPE mesh_double_frees_total counter\nmesh_double_frees_total 2\n"));
        // Every harden kind emits a labelled series, zeros included and
        // regardless of whether hardening is enabled.
        assert!(text.contains("# TYPE mesh_harden_violations_total counter\n"));
        assert!(text.contains("mesh_harden_violations_total{kind=\"double_free\"} 0\n"));
        assert!(text.contains("mesh_harden_violations_total{kind=\"invalid_free\"} 0\n"));
        assert!(text.contains("mesh_harden_violations_total{kind=\"poison\"} 3\n"));
        assert!(text.contains("mesh_harden_violations_total{kind=\"guard\"} 0\n"));
        assert!(text.contains("mesh_harden_violations_total{kind=\"canary\"} 0\n"));
    }

    /// Pins the deprecation contract for the renamed peak gauge: the
    /// canonical `mesh_heap_peak_bytes` and the deprecated
    /// `mesh_heap_bytes_peak` alias are emitted side by side, carry the
    /// same value, and the alias's `# EOL` marker names its earliest
    /// removal date. Remove the alias (and this test) no earlier than
    /// 2026-12-01.
    #[test]
    fn heap_peak_alias_emitted_until_eol_date() {
        let stats = HeapStats {
            committed_pages_peak: 1792,
            ..Default::default()
        };
        let text = prom_text(&stats, None, None, &[0; REJECT_REASONS]);
        let value_of = |name: &str| -> u64 {
            text.lines()
                .find(|l| l.starts_with(&format!("{name} ")))
                .unwrap_or_else(|| panic!("{name} series missing"))
                .rsplit(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let peak = stats.peak_heap_bytes() as u64;
        assert!(peak > 0);
        assert_eq!(value_of("mesh_heap_peak_bytes"), peak);
        assert_eq!(value_of("mesh_heap_bytes_peak"), peak, "alias tracks canonical");
        assert!(
            text.contains("# EOL mesh_heap_bytes_peak is a deprecated alias of mesh_heap_peak_bytes, removal no earlier than 2026-12-01\n"),
            "EOL marker must state the removal date"
        );
    }
}
