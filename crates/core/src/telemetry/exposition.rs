//! Exposition: Prometheus-style text and the JSON heap-profile dump.
//!
//! Both formats are assembled as plain strings (no serde in the offline
//! build) from data the caller already snapshotted — nothing here takes a
//! heap lock.
//!
//! ## Profile dump schema (version 1)
//!
//! ```json
//! {
//!   "mesh_profile_version": 1,
//!   "sample_bytes": 524288,
//!   "samples": 123, "samples_dropped": 0, "sampled_frees": 100,
//!   "sites": 7, "live_samples": 23,
//!   "live_bytes_exact": 1048576,
//!   "live_bytes_estimate": 1012345,
//!   "entries": [
//!     {"site": 17, "frames": ["0x55d0c0ffee00", "…"],
//!      "live_bytes": 900000, "live_samples": 20,
//!      "alloc_bytes": 5000000, "alloc_samples": 110,
//!      "freed_bytes": 4100000, "free_samples": 90}
//!   ]
//! }
//! ```
//!
//! `entries` is sorted by `live_bytes` descending — entry 0 is the top
//! leak suspect. `frames` are raw return addresses (innermost first),
//! hex-encoded; symbolize offline against `/proc/<pid>/maps`. An entry
//! with `"site": 4294967295` and empty `frames` is the overflow
//! catch-all. `*_bytes` fields are unbiased estimates (see the sampling
//! math in DESIGN.md); `live_bytes_exact` is the allocator's exact
//! counter for cross-checking the estimator.

use super::{ProfileStats, SiteSnapshot};
use crate::stats::HeapStats;
use crate::telemetry::HeapSpectrum;

/// Renders the version-1 JSON heap profile.
pub(crate) fn profile_json(
    prof: &ProfileStats,
    entries: &[SiteSnapshot],
    live_bytes_exact: usize,
) -> String {
    let mut out = String::with_capacity(256 + entries.len() * 160);
    out.push_str(&format!(
        "{{\"mesh_profile_version\":1,\"sample_bytes\":{},\
         \"samples\":{},\"samples_dropped\":{},\"sampled_frees\":{},\
         \"sites\":{},\"live_samples\":{},\
         \"live_bytes_exact\":{},\"live_bytes_estimate\":{},\"entries\":[",
        prof.sample_bytes,
        prof.samples,
        prof.samples_dropped,
        prof.sampled_frees,
        prof.sites,
        prof.live_samples,
        live_bytes_exact,
        prof.live_bytes_estimate,
    ));
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let frames: Vec<String> = e.frames.iter().map(|f| format!("\"{f:#x}\"")).collect();
        out.push_str(&format!(
            "{{\"site\":{},\"frames\":[{}],\
             \"live_bytes\":{},\"live_samples\":{},\
             \"alloc_bytes\":{},\"alloc_samples\":{},\
             \"freed_bytes\":{},\"free_samples\":{}}}",
            e.site,
            frames.join(","),
            e.live_bytes(),
            e.live_samples(),
            e.alloc_bytes,
            e.alloc_samples,
            e.freed_bytes,
            e.free_samples,
        ));
    }
    out.push_str("]}");
    out
}

/// Appends one Prometheus metric with `# TYPE` header.
fn metric(out: &mut String, name: &str, kind: &str, value: impl std::fmt::Display) {
    out.push_str(&format!("# TYPE {name} {kind}\n{name} {value}\n"));
}

/// Renders the heap's state as Prometheus text-format metrics: the
/// [`HeapStats`] counters/gauges, the per-class occupancy spectrum, and
/// (when profiling) the sampler's own summary.
pub(crate) fn prom_text(stats: &HeapStats, prof: Option<&ProfileStats>) -> String {
    let mut out = String::with_capacity(4096);
    metric(&mut out, "mesh_mallocs_total", "counter", stats.mallocs);
    metric(&mut out, "mesh_frees_total", "counter", stats.frees);
    metric(&mut out, "mesh_remote_frees_total", "counter", stats.remote_frees);
    metric(&mut out, "mesh_invalid_frees_total", "counter", stats.invalid_frees);
    metric(&mut out, "mesh_double_frees_total", "counter", stats.double_frees);
    metric(&mut out, "mesh_large_allocs_total", "counter", stats.large_allocs);
    metric(&mut out, "mesh_mesh_passes_total", "counter", stats.mesh_passes);
    metric(&mut out, "mesh_spans_meshed_total", "counter", stats.spans_meshed);
    metric(
        &mut out,
        "mesh_mesh_pages_released_total",
        "counter",
        stats.mesh_pages_released,
    );
    metric(&mut out, "mesh_pages_purged_total", "counter", stats.pages_purged);
    metric(&mut out, "mesh_reallocs_in_place_total", "counter", stats.reallocs_in_place);
    metric(&mut out, "mesh_forks_total", "counter", stats.forks);
    metric(&mut out, "mesh_transfer_hits_total", "counter", stats.transfer_hits);
    metric(&mut out, "mesh_transfer_misses_total", "counter", stats.transfer_misses);
    metric(&mut out, "mesh_transfer_spills_total", "counter", stats.transfer_spills);
    metric(
        &mut out,
        "mesh_remote_free_batches_total",
        "counter",
        stats.remote_free_batches,
    );
    metric(&mut out, "mesh_live_bytes", "gauge", stats.live_bytes);
    metric(&mut out, "mesh_heap_bytes", "gauge", stats.heap_bytes());
    metric(&mut out, "mesh_heap_bytes_peak", "gauge", stats.peak_heap_bytes());
    metric(&mut out, "mesh_mapped_bytes", "gauge", stats.mapped_bytes());
    metric(&mut out, "mesh_segments", "gauge", stats.segment_count);
    spectrum_metrics(&mut out, &stats.spectrum);
    if let Some(p) = prof {
        metric(&mut out, "mesh_prof_sample_bytes", "gauge", p.sample_bytes);
        metric(&mut out, "mesh_prof_samples_total", "counter", p.samples);
        metric(&mut out, "mesh_prof_samples_dropped_total", "counter", p.samples_dropped);
        metric(&mut out, "mesh_prof_sampled_frees_total", "counter", p.sampled_frees);
        metric(&mut out, "mesh_prof_sites", "gauge", p.sites);
        metric(&mut out, "mesh_prof_live_samples", "gauge", p.live_samples);
        metric(
            &mut out,
            "mesh_prof_live_bytes_estimate",
            "gauge",
            p.live_bytes_estimate,
        );
    }
    out
}

/// The spectrum as labelled gauges (only classes holding spans emit
/// series, so an idle heap's exposition stays small).
fn spectrum_metrics(out: &mut String, spec: &HeapSpectrum) {
    out.push_str("# TYPE mesh_class_spans gauge\n");
    for c in spec.classes.iter().filter(|c| c.spans() > 0) {
        out.push_str(&format!(
            "mesh_class_spans{{class=\"{}\",bin=\"attached\"}} {}\n",
            c.object_size, c.attached_spans
        ));
        for (bin, &count) in c.bins.iter().enumerate() {
            let label: &str = match bin {
                0 => "q75_100",
                1 => "q50_75",
                2 => "q25_50",
                3 => "q0_25",
                _ => "full",
            };
            out.push_str(&format!(
                "mesh_class_spans{{class=\"{}\",bin=\"{label}\"}} {count}\n",
                c.object_size
            ));
        }
    }
    out.push_str("# TYPE mesh_class_occupancy gauge\n");
    for c in spec.classes.iter().filter(|c| c.total_slots > 0) {
        out.push_str(&format!(
            "mesh_class_occupancy{{class=\"{}\"}} {:.4}\n",
            c.object_size,
            c.occupancy()
        ));
    }
    out.push_str("# TYPE mesh_class_est_meshable_pairs gauge\n");
    for c in spec.classes.iter().filter(|c| c.est_meshable_pairs > 0) {
        out.push_str(&format!(
            "mesh_class_est_meshable_pairs{{class=\"{}\"}} {}\n",
            c.object_size, c.est_meshable_pairs
        ));
    }
    metric(
        out,
        "mesh_est_releasable_bytes",
        "gauge",
        spec.est_releasable_bytes(),
    );
    if spec.large_spans > 0 {
        metric(out, "mesh_large_spans", "gauge", spec.large_spans);
        metric(out, "mesh_large_bytes", "gauge", spec.large_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof() -> ProfileStats {
        ProfileStats {
            sample_bytes: 4096,
            samples: 10,
            samples_dropped: 1,
            sampled_frees: 4,
            sites: 2,
            live_samples: 6,
            live_bytes_estimate: 24_000,
        }
    }

    #[test]
    fn profile_json_is_wellformed_and_ordered() {
        let entries = vec![
            SiteSnapshot {
                site: 5,
                frames: vec![0x1000, 0x2000],
                alloc_samples: 8,
                alloc_bytes: 30_000,
                free_samples: 2,
                freed_bytes: 8_000,
            },
            SiteSnapshot {
                site: super::super::OVERFLOW_SITE,
                frames: vec![],
                alloc_samples: 2,
                alloc_bytes: 2_000,
                free_samples: 2,
                freed_bytes: 2_000,
            },
        ];
        let json = profile_json(&prof(), &entries, 30_000);
        assert!(json.starts_with("{\"mesh_profile_version\":1,"));
        assert!(json.contains("\"sample_bytes\":4096"));
        assert!(json.contains("\"live_bytes_exact\":30000"));
        assert!(json.contains("\"frames\":[\"0x1000\",\"0x2000\"]"));
        assert!(json.contains("\"frames\":[]"));
        assert!(json.contains("\"live_bytes\":22000"));
        assert!(json.ends_with("}]}"));
        // Balanced braces/brackets (cheap well-formedness check).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        assert!(!json.contains('\n'), "dump is a single line");
    }

    #[test]
    fn prom_text_has_headers_and_spectrum() {
        let mut stats = HeapStats {
            mallocs: 7,
            live_bytes: 1234,
            ..Default::default()
        };
        stats.spectrum.classes[2] = crate::telemetry::ClassSpectrum {
            object_size: 48,
            attached_spans: 1,
            bins: [0, 1, 0, 2, 0],
            live_objects: 10,
            total_slots: 340,
            est_meshable_pairs: 1,
            meshable: true,
        };
        let text = prom_text(&stats, Some(&prof()));
        assert!(text.contains("# TYPE mesh_mallocs_total counter\nmesh_mallocs_total 7\n"));
        assert!(text.contains("mesh_live_bytes 1234"));
        assert!(text.contains("mesh_class_spans{class=\"48\",bin=\"attached\"} 1"));
        assert!(text.contains("mesh_class_spans{class=\"48\",bin=\"q0_25\"} 2"));
        assert!(text.contains("mesh_class_est_meshable_pairs{class=\"48\"} 1"));
        assert!(text.contains("mesh_prof_live_bytes_estimate 24000"));
        // Without profiling, the prof series are absent.
        let text = prom_text(&stats, None);
        assert!(!text.contains("mesh_prof_"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }
}
