//! Geometric byte-sampling (the tcmalloc heap-profiler discipline).
//!
//! Every thread heap owns a [`ThreadSampler`] when profiling is on. The
//! sampler maintains a *byte countdown* drawn from an exponential
//! distribution with mean `MESH_PROF_SAMPLE_BYTES`; each allocation
//! subtracts its size, and the allocation that drives the countdown
//! through zero is *sampled*: its call-site chain is captured by walking
//! frame pointers and the object is entered into the sampled set with an
//! unbiased weight. The countdown makes the probability that a given
//! allocation of `s` bytes is sampled exactly `1 − exp(−s/rate)` —
//! independent of how allocations interleave — so scaling each sample by
//! the inverse probability yields an unbiased live/allocated byte
//! estimator (see DESIGN.md "Telemetry & profiling" for the math).
//!
//! Cost model: when profiling is off no sampler exists — the fast path
//! pays one branch on an `Option` already in the thread heap's cache
//! line. When on, the common case is a subtract-and-compare; the capture
//! path (one allocation per ~rate bytes) walks at most [`MAX_FRAMES`]
//! frames and performs two lock-free table operations.
//!
//! Frame-pointer walking is best-effort by design: the workspace builds
//! with `-C force-frame-pointers=yes` (see `.cargo/config.toml`) and the
//! walk validates every hop (monotone, aligned, within a 1 MiB window
//! above the current frame) so foreign frames without frame pointers
//! truncate the chain instead of faulting.

use super::profile_table::MAX_FRAMES;
use super::Telemetry;
use crate::rng::Rng;
use std::sync::Arc;

/// Per-thread sampling state (single-writer, owned by the thread heap).
#[derive(Debug)]
pub(crate) struct ThreadSampler {
    telemetry: Arc<Telemetry>,
    rng: Rng,
    /// Bytes left until the next sample fires.
    bytes_until: i64,
}

impl ThreadSampler {
    pub fn new(telemetry: Arc<Telemetry>, seed: u64) -> ThreadSampler {
        let mut rng = Rng::with_seed(seed ^ 0x7072_6f66); // "prof"
        let gap = next_gap(&mut rng, telemetry.sample_bytes());
        ThreadSampler {
            telemetry,
            rng,
            bytes_until: gap,
        }
    }

    /// The shared telemetry state this sampler feeds.
    #[inline]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Per-allocation hook: subtract, compare, and (rarely) sample.
    #[inline]
    pub fn on_alloc(&mut self, addr: usize, size: usize) {
        self.bytes_until -= size as i64;
        if self.bytes_until <= 0 {
            self.sample(addr, size);
        }
    }

    /// Captures and records one sample, then re-arms the countdown.
    #[cold]
    #[inline(never)]
    fn sample(&mut self, addr: usize, size: usize) {
        self.bytes_until = next_gap(&mut self.rng, self.telemetry.sample_bytes());
        let mut frames = [0usize; MAX_FRAMES];
        let depth = capture_frames(&mut frames);
        let weight = unsample_weight(size, self.telemetry.sample_bytes());
        self.telemetry
            .record_sample(addr, weight, &frames[..depth]);
    }
}

/// Draws the next inter-sample byte gap from Exp(mean = `rate`).
fn next_gap(rng: &mut Rng, rate: usize) -> i64 {
    // 53 uniform bits in (0, 1]: never zero, so ln() is finite.
    let u = ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
    let gap = -(rate as f64) * u.ln();
    gap.min(i64::MAX as f64 / 2.0).max(0.0) as i64
}

/// Unbiased weight of one sampled allocation of `size` bytes: each sample
/// represents `size / P(sampled)` bytes with `P = 1 − exp(−size/rate)`.
/// For `size ≫ rate` the probability saturates at 1 and the weight is the
/// size itself (large objects are effectively traced exactly).
pub(crate) fn unsample_weight(size: usize, rate: usize) -> u64 {
    let s = size.max(1) as f64;
    let r = rate.max(1) as f64;
    let x = s / r;
    if x >= 32.0 {
        return size as u64; // exp(-32) underflows any meaningful correction
    }
    let p = 1.0 - (-x).exp();
    (s / p).round() as u64
}

/// Walks the frame-pointer chain of the calling thread, storing return
/// addresses innermost-first. Returns the number captured (possibly 0 —
/// the walk is best-effort and every hop is validated before it is
/// dereferenced).
#[inline(never)]
pub(crate) fn capture_frames(out: &mut [usize; MAX_FRAMES]) -> usize {
    let anchor = {
        let probe = 0u8;
        &probe as *const u8 as usize
    };
    let mut fp = frame_pointer();
    let mut depth = 0;
    // Hops must walk monotonically *up* the stack, stay 8-byte aligned,
    // and remain within a 1 MiB window above this frame: every
    // dereference below then lands in our own live stack. Garbage frame
    // pointers (foreign frames compiled without them) fail the checks and
    // truncate the chain.
    while depth < MAX_FRAMES {
        if fp <= anchor || fp >= anchor + (1 << 20) || !fp.is_multiple_of(8) {
            break;
        }
        // SAFETY: fp passed the bounds checks above — both words lie in
        // the calling thread's stack between this frame and its base.
        let (next, ret) = unsafe { (*(fp as *const usize), *((fp + 8) as *const usize)) };
        if ret < 0x1000 {
            break;
        }
        out[depth] = ret;
        depth += 1;
        if next <= fp {
            break;
        }
        fp = next;
    }
    depth
}

#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn frame_pointer() -> usize {
    let fp: usize;
    unsafe { std::arch::asm!("mov {}, rbp", out(reg) fp, options(nomem, nostack, preserves_flags)) };
    fp
}

#[cfg(target_arch = "aarch64")]
#[inline(always)]
fn frame_pointer() -> usize {
    let fp: usize;
    unsafe { std::arch::asm!("mov {}, x29", out(reg) fp, options(nomem, nostack, preserves_flags)) };
    fp
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
#[inline(always)]
fn frame_pointer() -> usize {
    0 // no frame-pointer convention known: capture_frames returns 0 frames
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_average_the_sample_rate() {
        let mut rng = Rng::with_seed(7);
        let rate = 64 * 1024;
        let n = 20_000;
        let total: i64 = (0..n).map(|_| next_gap(&mut rng, rate)).sum();
        let mean = total as f64 / n as f64;
        // Exp(rate) mean with n=20k: standard error rate/sqrt(n) ≈ 0.7%.
        assert!(
            (mean - rate as f64).abs() < rate as f64 * 0.05,
            "mean gap {mean} far from rate {rate}"
        );
    }

    #[test]
    fn weights_are_unbiased_scalings() {
        // Tiny objects: weight ≈ rate (each sample stands in for ~rate bytes).
        let w = unsample_weight(16, 1 << 19);
        assert!((w as f64 - (1 << 19) as f64).abs() < (1 << 19) as f64 * 0.01, "{w}");
        // size == rate: weight = size / (1 - 1/e).
        let w = unsample_weight(4096, 4096);
        assert!((w as f64 - 4096.0 / (1.0 - (-1.0f64).exp())).abs() < 1.0);
        // Huge objects: sampled with certainty, weight is exact.
        assert_eq!(unsample_weight(100 << 20, 4096), 100 << 20);
        // Weight never undercounts the object itself.
        for size in [1usize, 100, 4096, 65536] {
            assert!(unsample_weight(size, 8192) >= size as u64);
        }
    }

    #[test]
    fn sampling_probability_matches_model() {
        // Feed a long malloc stream of one size through the countdown and
        // check the empirical sample rate against 1 − exp(−s/rate).
        let rate = 4096usize;
        let size = 512usize;
        let mut rng = Rng::with_seed(42);
        let mut until = next_gap(&mut rng, rate);
        let (mut samples, n) = (0u64, 200_000u64);
        for _ in 0..n {
            until -= size as i64;
            if until <= 0 {
                samples += 1;
                until = next_gap(&mut rng, rate);
            }
        }
        let p_expected = 1.0 - (-(size as f64) / rate as f64).exp();
        let p_actual = samples as f64 / n as f64;
        assert!(
            (p_actual - p_expected).abs() < 0.01,
            "empirical {p_actual:.4} vs model {p_expected:.4}"
        );
    }

    #[test]
    fn capture_walks_at_least_own_frames() {
        #[inline(never)]
        fn deep(n: usize, out: &mut [usize; MAX_FRAMES]) -> usize {
            if n == 0 {
                capture_frames(out)
            } else {
                let d = deep(n - 1, out);
                std::hint::black_box(d)
            }
        }
        let mut frames = [0usize; MAX_FRAMES];
        let depth = deep(6, &mut frames);
        // With forced frame pointers the chain covers the recursion; on
        // exotic targets it may be empty — the walk is best-effort, but it
        // must never report garbage (every entry a plausible code address).
        for &f in &frames[..depth] {
            assert!(f >= 0x1000, "bogus frame {f:#x}");
        }
        #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
        assert!(depth >= 5, "frame-pointer walk too shallow: {depth}");
    }
}
