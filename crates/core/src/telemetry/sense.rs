//! mesh-sense: the pressure/residency sensing layer.
//!
//! A 1 Hz (default) poll on the existing background thread reads three
//! kinds of external signal —
//!
//! 1. **OS memory pressure**: `/proc/pressure/memory` PSI `avg10`/`avg60`,
//! 2. **container limits**: cgroup v2 (`memory.max`/`memory.current`,
//!    located via `/proc/self/cgroup`) falling back to cgroup v1
//!    (`memory.limit_in_bytes`/`memory.usage_in_bytes`),
//! 3. **process RSS**: `/proc/self/smaps_rollup` falling back to
//!    `/proc/self/statm`,
//!
//! — combines them with the heap's own residency decomposition
//! ([`super::residency`]) and throughput counters, and appends one
//! [`SenseSnapshot`] to a lock-free ring of the last `MESH_SENSE_HISTORY`
//! snapshots. Every source degrades gracefully: absent files (non-Linux
//! test stubs, locked-down containers) simply leave their fields at the
//! [`ABSENT`] sentinel and the poll carries on.
//!
//! The ring is a per-slot seqlock over `AtomicU64` words: the single
//! writer (the background thread, serialized by the poll clock) marks a
//! slot odd, stores the words, and marks it even; readers retry on a seq
//! mismatch. No `unsafe`, no locks on the read side — `sense_json()` can
//! run concurrently with polling.

use crate::config::MeshConfig;
use crate::sync::{Mutex, MutexGuard};
use std::path::Path;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Sentinel for "source absent / unlimited" in snapshot fields.
pub const ABSENT: u64 = u64::MAX;

/// Words per snapshot slot (one per [`SenseSnapshot`] field).
const SNAPSHOT_WORDS: usize = 17;

/// One periodic sense snapshot. All fields are plain `u64`s so the ring
/// can store them as atomic words; optional sources use [`ABSENT`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SenseSnapshot {
    /// Snapshot time, milliseconds since heap construction.
    pub at_ms: u64,
    /// Process RSS from the kernel ([`ABSENT`] when procfs is missing).
    pub rss_bytes: u64,
    /// Estimated resident bytes of the heap mapping, from the sampled
    /// `mincore` sweep (committed bytes when the sweep is disabled).
    pub est_resident_bytes: u64,
    /// Bytes in pages handed out as spans.
    pub live_bytes: u64,
    /// Live object bytes as the allocator counts them (`heap_bytes`).
    pub heap_bytes: u64,
    /// Mapped bytes across all segments.
    pub mapped_bytes: u64,
    /// Freed-but-committed (dirty) bytes.
    pub free_dirty_bytes: u64,
    /// Released or never-touched (clean/fresh) bytes.
    pub free_clean_bytes: u64,
    /// Metadata/slack bytes.
    pub meta_bytes: u64,
    /// PSI `some avg10`, in thousandths of a percent ([`ABSENT`] = no PSI).
    pub psi_avg10_milli: u64,
    /// PSI `some avg60`, in thousandths of a percent ([`ABSENT`] = no PSI).
    pub psi_avg60_milli: u64,
    /// cgroup memory limit ([`ABSENT`] = none/unlimited).
    pub cgroup_limit_bytes: u64,
    /// cgroup memory usage ([`ABSENT`] = no cgroup accounting).
    pub cgroup_usage_bytes: u64,
    /// Cumulative allocations (consumers diff consecutive snapshots for
    /// throughput).
    pub mallocs: u64,
    /// Cumulative frees.
    pub frees: u64,
    /// Cumulative mesh passes.
    pub mesh_passes: u64,
    /// Cumulative pairs meshed.
    pub pairs_meshed: u64,
}

impl SenseSnapshot {
    fn to_words(self) -> [u64; SNAPSHOT_WORDS] {
        [
            self.at_ms,
            self.rss_bytes,
            self.est_resident_bytes,
            self.live_bytes,
            self.heap_bytes,
            self.mapped_bytes,
            self.free_dirty_bytes,
            self.free_clean_bytes,
            self.meta_bytes,
            self.psi_avg10_milli,
            self.psi_avg60_milli,
            self.cgroup_limit_bytes,
            self.cgroup_usage_bytes,
            self.mallocs,
            self.frees,
            self.mesh_passes,
            self.pairs_meshed,
        ]
    }

    fn from_words(w: &[u64; SNAPSHOT_WORDS]) -> SenseSnapshot {
        SenseSnapshot {
            at_ms: w[0],
            rss_bytes: w[1],
            est_resident_bytes: w[2],
            live_bytes: w[3],
            heap_bytes: w[4],
            mapped_bytes: w[5],
            free_dirty_bytes: w[6],
            free_clean_bytes: w[7],
            meta_bytes: w[8],
            psi_avg10_milli: w[9],
            psi_avg60_milli: w[10],
            cgroup_limit_bytes: w[11],
            cgroup_usage_bytes: w[12],
            mallocs: w[13],
            frees: w[14],
            mesh_passes: w[15],
            pairs_meshed: w[16],
        }
    }

    /// Renders the snapshot as one JSON object; [`ABSENT`] fields become
    /// `null` so consumers need no sentinel knowledge.
    pub(crate) fn json(&self) -> String {
        fn opt(v: u64) -> String {
            if v == ABSENT {
                "null".to_string()
            } else {
                v.to_string()
            }
        }
        format!(
            "{{\"at_ms\":{},\"rss_bytes\":{},\"est_resident_bytes\":{},\
             \"live_bytes\":{},\"heap_bytes\":{},\"mapped_bytes\":{},\
             \"free_dirty_bytes\":{},\"free_clean_bytes\":{},\"meta_bytes\":{},\
             \"psi_avg10_milli\":{},\"psi_avg60_milli\":{},\
             \"cgroup_limit_bytes\":{},\"cgroup_usage_bytes\":{},\
             \"mallocs\":{},\"frees\":{},\"mesh_passes\":{},\"pairs_meshed\":{}}}",
            self.at_ms,
            opt(self.rss_bytes),
            self.est_resident_bytes,
            self.live_bytes,
            self.heap_bytes,
            self.mapped_bytes,
            self.free_dirty_bytes,
            self.free_clean_bytes,
            self.meta_bytes,
            opt(self.psi_avg10_milli),
            opt(self.psi_avg60_milli),
            opt(self.cgroup_limit_bytes),
            opt(self.cgroup_usage_bytes),
            self.mallocs,
            self.frees,
            self.mesh_passes,
            self.pairs_meshed,
        )
    }
}

/// One seqlock-protected ring slot: odd `seq` = mid-write.
#[derive(Debug)]
struct SnapshotSlot {
    seq: AtomicU64,
    words: [AtomicU64; SNAPSHOT_WORDS],
}

impl SnapshotSlot {
    fn new() -> SnapshotSlot {
        SnapshotSlot {
            seq: AtomicU64::new(0),
            words: Default::default(),
        }
    }

    /// Single-writer store (the caller holds the poll clock).
    fn store(&self, snap: &SenseSnapshot) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s + 1, Ordering::Relaxed);
        // Any reader that observes the new words must also observe the
        // odd seq that preceded them.
        fence(Ordering::Release);
        for (w, v) in self.words.iter().zip(snap.to_words()) {
            w.store(v, Ordering::Relaxed);
        }
        self.seq.store(s + 2, Ordering::Release);
    }

    /// Lock-free read; `None` while a write is in flight.
    fn load(&self) -> Option<SenseSnapshot> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 == 1 {
            return None;
        }
        let mut w = [0u64; SNAPSHOT_WORDS];
        for (out, word) in w.iter_mut().zip(&self.words) {
            *out = word.load(Ordering::Relaxed);
        }
        fence(Ordering::Acquire);
        (self.seq.load(Ordering::Relaxed) == s1).then(|| SenseSnapshot::from_words(&w))
    }
}

/// External pressure signals, read fresh each poll.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PressureReading {
    /// PSI `some avg10` in milli-percent, if PSI is available.
    pub psi_avg10_milli: Option<u64>,
    /// PSI `some avg60` in milli-percent.
    pub psi_avg60_milli: Option<u64>,
    /// cgroup memory limit in bytes (`None` = no cgroup or unlimited).
    pub cgroup_limit_bytes: Option<u64>,
    /// cgroup memory usage in bytes.
    pub cgroup_usage_bytes: Option<u64>,
    /// Process RSS in bytes, if procfs is available.
    pub rss_bytes: Option<u64>,
}

/// Reads every pressure source once, degrading field-by-field.
pub fn read_pressure() -> PressureReading {
    let (psi_avg10_milli, psi_avg60_milli) = match read_psi() {
        Some((a10, a60)) => (Some(a10), Some(a60)),
        None => (None, None),
    };
    let (cgroup_limit_bytes, cgroup_usage_bytes) = read_cgroup_memory();
    PressureReading {
        psi_avg10_milli,
        psi_avg60_milli,
        cgroup_limit_bytes,
        cgroup_usage_bytes,
        rss_bytes: read_rss_bytes(),
    }
}

/// `/proc/pressure/memory` → (avg10, avg60) in milli-percent.
fn read_psi() -> Option<(u64, u64)> {
    let text = std::fs::read_to_string("/proc/pressure/memory").ok()?;
    parse_psi(&text)
}

/// Parses PSI text: the `some` line's `avg10=`/`avg60=` fields.
pub(crate) fn parse_psi(text: &str) -> Option<(u64, u64)> {
    let line = text.lines().find(|l| l.starts_with("some"))?;
    let mut a10 = None;
    let mut a60 = None;
    for field in line.split_whitespace() {
        if let Some(v) = field.strip_prefix("avg10=") {
            a10 = parse_pct_milli(v);
        } else if let Some(v) = field.strip_prefix("avg60=") {
            a60 = parse_pct_milli(v);
        }
    }
    Some((a10?, a60?))
}

/// `"12.34"` → 12340 (percent in thousandths, no floating point).
pub(crate) fn parse_pct_milli(s: &str) -> Option<u64> {
    let (int, frac) = match s.split_once('.') {
        Some((i, f)) => (i, f),
        None => (s, ""),
    };
    let int: u64 = int.parse().ok()?;
    let mut milli = 0u64;
    for (i, c) in frac.chars().take(3).enumerate() {
        milli += c.to_digit(10)? as u64 * 10u64.pow(2 - i as u32);
    }
    Some(int * 1000 + milli)
}

/// cgroup memory (limit, usage): v2 via `/proc/self/cgroup`, then the v2
/// root files, then v1. `"max"` (unlimited) reads as `None` for the limit.
fn read_cgroup_memory() -> (Option<u64>, Option<u64>) {
    // cgroup v2: /proc/self/cgroup has a "0::<path>" line.
    if let Ok(s) = std::fs::read_to_string("/proc/self/cgroup") {
        if let Some(path) = s.lines().find_map(|l| l.strip_prefix("0::")) {
            let dir = format!("/sys/fs/cgroup{}", path.trim_end());
            let limit = read_cgroup_value(&format!("{dir}/memory.max"));
            let usage = read_cgroup_value(&format!("{dir}/memory.current"));
            if limit.is_some() || usage.is_some() {
                return (limit.flatten(), usage.flatten());
            }
            // Namespaced path not visible from here: try the v2 root.
            let limit = read_cgroup_value("/sys/fs/cgroup/memory.max");
            let usage = read_cgroup_value("/sys/fs/cgroup/memory.current");
            if limit.is_some() || usage.is_some() {
                return (limit.flatten(), usage.flatten());
            }
        }
    }
    // cgroup v1 memory controller.
    let limit = read_cgroup_value("/sys/fs/cgroup/memory/memory.limit_in_bytes");
    let usage = read_cgroup_value("/sys/fs/cgroup/memory/memory.usage_in_bytes");
    (limit.flatten(), usage.flatten())
}

/// Reads one cgroup scalar file. Outer `None` = file absent; inner `None`
/// = present but unlimited (`"max"` or the v1 "no limit" huge value).
fn read_cgroup_value(path: &str) -> Option<Option<u64>> {
    let s = std::fs::read_to_string(path).ok()?;
    Some(parse_cgroup_value(&s))
}

/// `"max"` and v1's PAGE-rounded `i64::MAX` both mean "unlimited".
pub(crate) fn parse_cgroup_value(s: &str) -> Option<u64> {
    let t = s.trim();
    if t == "max" {
        return None;
    }
    let v: u64 = t.parse().ok()?;
    // cgroup v1 reports "no limit" as a value near i64::MAX.
    (v < (1 << 62)).then_some(v)
}

/// Process RSS: `smaps_rollup` (exact) falling back to `statm` (pages).
fn read_rss_bytes() -> Option<u64> {
    if let Ok(s) = std::fs::read_to_string("/proc/self/smaps_rollup") {
        if let Some(kb) = parse_smaps_rss_kb(&s) {
            return Some(kb * 1024);
        }
    }
    crate::sys::process_rss_kb().map(|kb| kb * 1024)
}

/// The `Rss:` line of an smaps rollup, in kB.
pub(crate) fn parse_smaps_rss_kb(text: &str) -> Option<u64> {
    let line = text.lines().find(|l| l.starts_with("Rss:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Per-heap sensing state: the poll clock, the snapshot ring, and the
/// `mincore` sweep's persistent cursor. `None` on the heap when sensing
/// is off (`MESH_SENSE_INTERVAL_MS=0`).
#[derive(Debug)]
pub struct SenseState {
    /// Poll interval in nanoseconds. Atomic so mesh-ctl's
    /// `set sense_interval_ms` can retune a live process; the background
    /// thread re-reads it at every park computation.
    interval_ns: AtomicU64,
    mincore_pages: usize,
    /// Destination + SIGUSR2 request flag (`MESH_SENSE_PATH`).
    target: super::DumpTarget,
    /// Poll clock; claimed by the background thread, joins `lock_all`'s
    /// fork-quiescence set. Also serializes ring writes.
    last_poll: Mutex<Instant>,
    slots: Vec<SnapshotSlot>,
    /// Snapshots ever written (write cursor = `total % slots.len()`).
    total: AtomicUsize,
    /// Mapped-page-sequence position where the next sweep resumes.
    sweep_cursor: AtomicUsize,
    /// Smoothed resident fraction of the mapping, fixed-point /2^16;
    /// [`ABSENT`] until the first successful sweep.
    resident_ratio_fp: AtomicU64,
}

impl SenseState {
    /// Builds sensing state for `config`, or `None` when sensing is off.
    pub(crate) fn new(config: &MeshConfig) -> Option<SenseState> {
        let interval = config.sense_interval?;
        let history = config.sense_history.max(2);
        Some(SenseState {
            interval_ns: AtomicU64::new(interval.as_nanos() as u64),
            mincore_pages: config.sense_mincore_pages,
            target: super::DumpTarget::new(super::DumpKind::Sense, config.sense_path.clone()),
            last_poll: Mutex::new(Instant::now()),
            slots: (0..history).map(|_| SnapshotSlot::new()).collect(),
            total: AtomicUsize::new(0),
            sweep_cursor: AtomicUsize::new(0),
            resident_ratio_fp: AtomicU64::new(ABSENT),
        })
    }

    /// The poll interval.
    pub fn interval(&self) -> Duration {
        Duration::from_nanos(self.interval_ns.load(Ordering::Relaxed))
    }

    /// Retunes the poll interval at runtime (mesh-ctl
    /// `set sense_interval_ms`). Zero is clamped to 1 ms — sensing
    /// cannot be turned fully off this way, only made slow or fast —
    /// and the new deadline takes effect at the next park computation.
    pub fn set_interval(&self, interval: Duration) {
        let ns = interval.as_nanos().max(1_000_000) as u64;
        self.interval_ns.store(ns, Ordering::Relaxed);
    }

    /// Ring capacity in snapshots.
    pub fn history(&self) -> usize {
        self.slots.len()
    }

    /// Pages the `mincore` sweep may touch per poll (0 = sweep off).
    pub fn mincore_page_budget(&self) -> usize {
        self.mincore_pages
    }

    /// The configured dump destination (`MESH_SENSE_PATH`), if any.
    pub fn dump_path(&self) -> Option<&Path> {
        self.target.path()
    }

    /// Requests a sense dump at the next telemetry tick. Signal-safe.
    #[inline]
    pub fn request_dump(&self) {
        self.target.request();
    }

    /// Whether an explicit dump request is pending (claims it).
    pub(crate) fn take_dump_due(&self) -> bool {
        self.target.take_requested()
    }

    /// Whether a poll is due; claims the slot (the clock restarts).
    pub(crate) fn take_poll_due(&self) -> bool {
        let mut last = self.last_poll.lock();
        if last.elapsed() >= self.interval() {
            *last = Instant::now();
            true
        } else {
            false
        }
    }

    /// Time until the poll clock next expires: the background thread's
    /// park bound.
    pub(crate) fn time_until_poll(&self) -> Duration {
        self.interval().saturating_sub(self.last_poll.lock().elapsed())
    }

    /// Holds the poll-clock lock (fork quiescence). A leaf lock.
    pub(crate) fn lock_poll_clock(&self) -> MutexGuard<'_, Instant> {
        self.last_poll.lock()
    }

    /// Appends one snapshot. Single writer: callers are serialized by the
    /// poll clock (only the claiming thread pushes).
    pub(crate) fn push(&self, snap: &SenseSnapshot) {
        let total = self.total.load(Ordering::Relaxed);
        self.slots[total % self.slots.len()].store(snap);
        self.total.store(total + 1, Ordering::Release);
    }

    /// Snapshots ever recorded (the ring retains the last `history()`).
    pub fn snapshots_recorded(&self) -> usize {
        self.total.load(Ordering::Acquire)
    }

    /// The retained snapshots, oldest first. Lock-free; a slot the writer
    /// is mid-overwrite is skipped rather than torn.
    pub fn snapshots(&self) -> Vec<SenseSnapshot> {
        let total = self.total.load(Ordering::Acquire);
        let len = self.slots.len();
        let kept = total.min(len);
        let mut out = Vec::with_capacity(kept);
        for k in 0..kept {
            let idx = (total - kept + k) % len;
            if let Some(s) = self.slots[idx].load() {
                out.push(s);
            }
        }
        out
    }

    /// The most recent stable snapshot, if any.
    pub fn latest(&self) -> Option<SenseSnapshot> {
        self.snapshots().pop()
    }

    /// Resumes the `mincore` sweep: samples up to the budget, folds the
    /// measured resident fraction into the smoothed ratio, and returns
    /// the estimated resident bytes for `mapped_bytes` of mapping.
    pub(crate) fn sweep(
        &self,
        base: usize,
        segs: &[crate::segment::SegmentStats],
        mapped_bytes: u64,
        committed_bytes: u64,
    ) -> u64 {
        if self.mincore_pages == 0 {
            return committed_bytes;
        }
        let cursor = self.sweep_cursor.load(Ordering::Relaxed);
        let (sampled, resident, next) =
            super::residency::sample_residency(base, segs, cursor, self.mincore_pages);
        self.sweep_cursor.store(next, Ordering::Relaxed);
        if sampled == 0 {
            let prev = self.resident_ratio_fp.load(Ordering::Relaxed);
            if prev == ABSENT {
                return committed_bytes;
            }
            return (mapped_bytes * prev) >> 16;
        }
        let measured = ((resident as u64) << 16) / sampled as u64;
        let prev = self.resident_ratio_fp.load(Ordering::Relaxed);
        // EWMA (α = ½) so one unlucky sample window doesn't whipsaw the
        // estimate; seeded directly by the first measurement.
        let ratio = if prev == ABSENT { measured } else { (prev + measured) / 2 };
        self.resident_ratio_fp.store(ratio, Ordering::Relaxed);
        (mapped_bytes * ratio) >> 16
    }

    /// Writes one dump via the shared [`super::DumpTarget`]: to
    /// `MESH_SENSE_PATH` (truncating) or stderr as a single
    /// `mesh-sense: ` line.
    pub(crate) fn write_dump(&self, json: &str) {
        self.target.write(json);
    }

    /// Forgets all snapshots and sweep state: a forked child's history
    /// belongs to its parent.
    pub(crate) fn wipe_for_child(&self) {
        self.total.store(0, Ordering::Relaxed);
        self.sweep_cursor.store(0, Ordering::Relaxed);
        self.resident_ratio_fp.store(ABSENT, Ordering::Relaxed);
        self.target.clear_requested();
        for slot in &self.slots {
            let s = slot.seq.load(Ordering::Relaxed);
            slot.seq.store(s + 2, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at_ms: u64) -> SenseSnapshot {
        SenseSnapshot {
            at_ms,
            rss_bytes: 1000 + at_ms,
            est_resident_bytes: 2000,
            live_bytes: 3000,
            heap_bytes: 2500,
            mapped_bytes: 8000,
            free_dirty_bytes: 1000,
            free_clean_bytes: 3500,
            meta_bytes: 500,
            psi_avg10_milli: ABSENT,
            psi_avg60_milli: ABSENT,
            cgroup_limit_bytes: ABSENT,
            cgroup_usage_bytes: ABSENT,
            mallocs: at_ms * 10,
            frees: at_ms * 9,
            mesh_passes: 1,
            pairs_meshed: 2,
        }
    }

    fn state(history: usize) -> SenseState {
        SenseState::new(
            &MeshConfig::default()
                .sense_interval(Some(Duration::from_millis(5)))
                .sense_history(history),
        )
        .unwrap()
    }

    #[test]
    fn off_config_builds_no_state() {
        assert!(SenseState::new(&MeshConfig::default().sense_interval(None)).is_none());
        let s = SenseState::new(&MeshConfig::default()).unwrap();
        assert_eq!(s.interval(), Duration::from_millis(1000));
        assert_eq!(s.history(), 120);
        assert_eq!(s.mincore_page_budget(), 256);
    }

    #[test]
    fn ring_roundtrip_and_overwrite() {
        let s = state(4);
        assert!(s.snapshots().is_empty());
        assert_eq!(s.latest(), None);
        for i in 0..6 {
            s.push(&snap(i));
        }
        assert_eq!(s.snapshots_recorded(), 6);
        let got = s.snapshots();
        assert_eq!(got.len(), 4, "ring keeps the last `history` snapshots");
        assert_eq!(got[0].at_ms, 2, "oldest retained");
        assert_eq!(got[3].at_ms, 5);
        assert_eq!(s.latest().unwrap().at_ms, 5);
        let w = snap(9).to_words();
        assert_eq!(SenseSnapshot::from_words(&w), snap(9), "word codec is lossless");
        s.wipe_for_child();
        assert!(s.snapshots().is_empty());
    }

    #[test]
    fn poll_clock_claims_and_bounds() {
        let s = state(4);
        assert!(!s.take_poll_due(), "fresh clock");
        assert!(s.time_until_poll() <= Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(7));
        assert!(s.take_poll_due());
        assert!(!s.take_poll_due(), "claiming restarts the clock");
        assert!(!s.take_dump_due());
        s.request_dump();
        assert!(s.take_dump_due());
        assert!(!s.take_dump_due(), "request is one-shot");
    }

    #[test]
    fn snapshot_json_nulls_absent_fields() {
        let j = snap(3).json();
        assert!(j.contains("\"at_ms\":3"));
        assert!(j.contains("\"psi_avg10_milli\":null"));
        assert!(j.contains("\"cgroup_limit_bytes\":null"));
        assert!(j.contains("\"rss_bytes\":1003"));
        assert!(j.contains("\"mapped_bytes\":8000"));
    }

    #[test]
    fn psi_and_smaps_parsers() {
        let psi = "some avg10=1.25 avg60=0.40 avg300=0.10 total=12345\n\
                   full avg10=0.00 avg60=0.00 avg300=0.00 total=0\n";
        assert_eq!(parse_psi(psi), Some((1250, 400)));
        assert_eq!(parse_psi("full avg10=0.00 avg60=0.00\n"), None, "no some line");
        assert_eq!(parse_psi("some avg10=x avg60=0.1"), None, "malformed field");
        assert_eq!(parse_pct_milli("0.00"), Some(0));
        assert_eq!(parse_pct_milli("12"), Some(12_000));
        assert_eq!(parse_pct_milli("3.1"), Some(3_100));
        assert_eq!(parse_pct_milli("3.14159"), Some(3_141), "extra digits truncated");
        assert_eq!(parse_pct_milli(""), None);
        let smaps = "Rss:            5124 kB\nPss:            5000 kB\n";
        assert_eq!(parse_smaps_rss_kb(smaps), Some(5124));
        assert_eq!(parse_smaps_rss_kb("Pss: 1 kB\n"), None);
    }

    #[test]
    fn cgroup_value_parser() {
        assert_eq!(parse_cgroup_value("max\n"), None, "unlimited");
        assert_eq!(parse_cgroup_value("1073741824\n"), Some(1 << 30));
        assert_eq!(
            parse_cgroup_value("9223372036854771712\n"),
            None,
            "v1 'no limit' sentinel"
        );
        assert_eq!(parse_cgroup_value("garbage"), None);
    }

    #[test]
    fn read_pressure_degrades_gracefully() {
        // Whatever this kernel/container exposes, reading must not panic
        // and present fields must be sane.
        let p = read_pressure();
        if let Some(rss) = p.rss_bytes {
            assert!(rss > 0);
        }
        if let (Some(limit), Some(usage)) = (p.cgroup_limit_bytes, p.cgroup_usage_bytes) {
            assert!(limit > 0);
            assert!(usage < (1 << 62));
        }
    }

    #[test]
    fn sweep_estimates_resident_bytes() {
        use crate::size_classes::PAGE_SIZE;
        let s = SenseState::new(
            &MeshConfig::default()
                .sense_interval(Some(Duration::from_millis(5)))
                .sense_mincore_pages(4),
        )
        .unwrap();
        let f = crate::sys::MemFile::create(8 * PAGE_SIZE).unwrap();
        let base = crate::sys::map_file_shared(&f).unwrap() as usize;
        unsafe { std::ptr::write_bytes(base as *mut u8, 1, 8 * PAGE_SIZE) };
        let seg = crate::segment::SegmentStats {
            id: 0,
            start_page: 0,
            pages: 8,
            fresh_pages: 0,
            committed_pages: 8,
            dirty_pages: 0,
            clean_pages: 0,
            outstanding_pages: 8,
            retirable: false,
        };
        let mapped = 8 * PAGE_SIZE as u64;
        let est = s.sweep(base, &[seg], mapped, mapped);
        assert!(est > 0, "touched mapping must estimate resident");
        assert!(est <= mapped);
        // Budget 0 falls back to committed bytes.
        let s0 = SenseState::new(
            &MeshConfig::default()
                .sense_interval(Some(Duration::from_millis(5)))
                .sense_mincore_pages(0),
        )
        .unwrap();
        assert_eq!(s0.sweep(base, &[seg], mapped, 1234), 1234);
        unsafe { crate::sys::unmap(base as *mut u8, 8 * PAGE_SIZE) };
    }
}
