//! Occupancy-spectrum snapshots: the paper's Figure-style "how full is
//! every span" view, computed online from the global heap's occupancy
//! bins plus a per-class meshability estimate.
//!
//! A snapshot visits the classes one at a time, holding only that class's
//! shard lock (never two at once, never across classes), so it can run
//! while allocation traffic continues — the per-class numbers are each
//! internally consistent and the cross-class skew is bounded by the walk
//! itself, which is the same coherence contract as [`crate::HeapStats`].

use crate::size_classes::{SizeClass, NUM_SIZE_CLASSES, PAGE_SIZE};

/// Occupancy bins per class in a spectrum: the four partial quartiles of
/// the global heap's binning (§3.1: fullest first) plus the full bin.
pub const SPECTRUM_BINS: usize = 5;

/// One size class's slice of the occupancy spectrum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassSpectrum {
    /// Object size in bytes.
    pub object_size: u32,
    /// Spans currently attached to thread heaps (not mesh candidates).
    pub attached_spans: u32,
    /// Detached spans per occupancy bin: `bins[0]` = [75%, 100%), …,
    /// `bins[3]` = (0%, 25%), `bins[4]` = completely full.
    pub bins: [u32; SPECTRUM_BINS],
    /// Live objects across all spans of this class.
    pub live_objects: u64,
    /// Object slots across all spans of this class.
    pub total_slots: u64,
    /// Upper-bound estimate of span *pairs* meshable right now: detached
    /// spans under the occupancy cutoff, greedily paired so each pair's
    /// combined live count fits one span. Each pair would release one
    /// span's pages. (A bound, not a promise — it ignores slot overlap,
    /// which the paper shows is rare at low occupancy, §2.2.)
    pub est_meshable_pairs: u32,
    /// Whether this class participates in meshing at all (objects under
    /// one page, §4).
    pub meshable: bool,
}

impl ClassSpectrum {
    /// Total spans of this class (attached + detached).
    pub fn spans(&self) -> u64 {
        self.attached_spans as u64 + self.bins.iter().map(|&b| b as u64).sum::<u64>()
    }

    /// Mean occupancy across every slot of the class, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.total_slots == 0 {
            0.0
        } else {
            self.live_objects as f64 / self.total_slots as f64
        }
    }

    /// Pages this class's estimated meshable pairs would release.
    pub fn est_releasable_pages(&self) -> u64 {
        let class = match SizeClass::for_size(self.object_size as usize) {
            Some(c) if c.object_size() == self.object_size as usize => c,
            _ => return 0,
        };
        self.est_meshable_pairs as u64 * class.span_pages() as u64
    }
}

/// A whole-heap occupancy-spectrum snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapSpectrum {
    /// Per-class spectra, indexed like [`SizeClass::index`].
    pub classes: [ClassSpectrum; NUM_SIZE_CLASSES],
    /// Live large-object singleton spans (§4.4.3; never meshed).
    pub large_spans: u32,
    /// Bytes held by large-object spans.
    pub large_bytes: u64,
}

impl HeapSpectrum {
    /// Whether any span exists anywhere in the snapshot.
    pub fn is_empty(&self) -> bool {
        self.large_spans == 0 && self.classes.iter().all(|c| c.spans() == 0)
    }

    /// Bytes the estimated meshable pairs across all classes would
    /// release (the "how compactable is the heap right now" headline).
    pub fn est_releasable_bytes(&self) -> u64 {
        self.classes
            .iter()
            .map(|c| c.est_releasable_pages() * PAGE_SIZE as u64)
            .sum()
    }

    /// One compact `;`-separated summary of the classes that hold spans,
    /// `sizeB:a<attached>+p<q3>/<q2>/<q1>/<q0>+f<full>~<pairs>` each —
    /// the form [`crate::HeapStats::render`] appends so `malloc_stats(3)`
    /// shows meshability at a glance. Empty when no spans exist.
    pub fn render_compact(&self) -> String {
        let mut parts: Vec<String> = self
            .classes
            .iter()
            .filter(|c| c.spans() > 0)
            .map(|c| {
                format!(
                    "{}B:a{}+p{}/{}/{}/{}+f{}~{}",
                    c.object_size,
                    c.attached_spans,
                    c.bins[0],
                    c.bins[1],
                    c.bins[2],
                    c.bins[3],
                    c.bins[4],
                    c.est_meshable_pairs,
                )
            })
            .collect();
        if self.large_spans > 0 {
            parts.push(format!("large:{}x{}B", self.large_spans, self.large_bytes));
        }
        parts.join(";")
    }
}

/// Greedy pairing bound: given the live-object counts of the meshable
/// candidates of one class (each < `slots`), the maximum number of pairs
/// whose combined occupancy fits a single span. Sort ascending, then
/// two-pointer: pair the emptiest with the fullest that still fits.
pub(crate) fn estimate_meshable_pairs(candidates: &mut [u32], slots: u32) -> u32 {
    candidates.sort_unstable();
    let mut pairs = 0;
    let (mut lo, mut hi) = (0usize, candidates.len());
    while lo + 1 < hi {
        if candidates[lo] + candidates[hi - 1] <= slots {
            pairs += 1;
            lo += 1;
            hi -= 1;
        } else {
            hi -= 1;
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairing_bound_two_pointer() {
        let mut c = [10, 200, 50, 60, 250, 5];
        // slots=256: sorted [5,10,50,60,200,250]; 5+250, 10+200, 50+60.
        assert_eq!(estimate_meshable_pairs(&mut c, 256), 3);
        let mut c = [200, 201, 202];
        assert_eq!(estimate_meshable_pairs(&mut c, 256), 0, "nothing fits");
        let mut c = [1];
        assert_eq!(estimate_meshable_pairs(&mut c, 256), 0, "no partner");
        let mut empty: [u32; 0] = [];
        assert_eq!(estimate_meshable_pairs(&mut empty, 256), 0);
    }

    #[test]
    fn class_spectrum_helpers() {
        let mut c = ClassSpectrum {
            object_size: 256,
            attached_spans: 1,
            bins: [2, 0, 0, 1, 3],
            live_objects: 70,
            total_slots: 112,
            est_meshable_pairs: 1,
            meshable: true,
        };
        assert_eq!(c.spans(), 7);
        assert!((c.occupancy() - 0.625).abs() < 1e-12);
        // 256 B spans are 1 page each → 1 pair releases 1 page.
        assert_eq!(c.est_releasable_pages(), 1);
        c.object_size = 999; // not a real class size
        assert_eq!(c.est_releasable_pages(), 0);
    }

    #[test]
    fn compact_render_shape() {
        let mut spec = HeapSpectrum::default();
        assert!(spec.is_empty());
        assert_eq!(spec.render_compact(), "");
        spec.classes[3] = ClassSpectrum {
            object_size: 64,
            attached_spans: 1,
            bins: [0, 2, 0, 4, 1],
            live_objects: 100,
            total_slots: 512,
            est_meshable_pairs: 2,
            meshable: true,
        };
        spec.large_spans = 1;
        spec.large_bytes = 8192;
        assert!(!spec.is_empty());
        let s = spec.render_compact();
        assert_eq!(s, "64B:a1+p0/2/0/4+f1~2;large:1x8192B");
        assert!(!s.contains(' '), "stays one key=value token");
        // 64 B spans are 1 page: 2 pairs → 2 pages → 8192 bytes.
        assert_eq!(spec.est_releasable_bytes(), 8192);
    }
}
