//! mesh-insight: the always-on telemetry & sampled heap-profiling
//! subsystem.
//!
//! Three capabilities, layered over the allocator without touching its
//! O(1) fast path when disabled:
//!
//! 1. **Sampled allocation profiling** ([`sampler`]) — tcmalloc-style
//!    geometric byte-sampling hooked into each thread heap. Sampled
//!    objects carry a best-effort frame-pointer call-site chain into a
//!    lock-free fingerprint table ([`profile_table`]) and are tracked
//!    through `free`, so the profile is a *live-heap* (leak) profile, not
//!    just cumulative counts.
//! 2. **Occupancy spectra** ([`spectrum`]) — per-class span-occupancy
//!    histograms plus a meshability estimate, computed online one class
//!    lock at a time.
//! 3. **Exposition** ([`exposition`]) — Prometheus-style text
//!    ([`crate::Mesh::prom_text`]) and a JSON heap-profile dump reachable
//!    from the C ABI (`mesh_prof_dump()`), an opt-in SIGUSR2 handler,
//!    interval dumps riding the background thread, and at exit.
//!
//! Enable with `MESH_PROF=1` (or [`crate::MeshConfig::profiling`]); tune
//! with `MESH_PROF_SAMPLE_BYTES`, `MESH_PROF_INTERVAL_MS`,
//! `MESH_PROF_PATH`. See DESIGN.md "Telemetry & profiling" for the
//! sampling math, the tables' lock-freedom argument, and the dump path's
//! signal-safety.

mod ctl;
mod dump_targets;
mod exposition;
mod histogram;
mod ledger;
mod pprof;
mod profile_table;
mod residency;
mod sampler;
mod sense;
mod spectrum;
mod trace;

pub use histogram::{
    bucket_upper_ns, LatencySnapshot, TimedOp, ALL_TIMED_OPS, LATENCY_BUCKETS, NUM_TIMED_OPS,
};
pub use ledger::{
    MeshLedger, PassRecord, RejectReason, ALL_REJECT_REASONS, LEDGER_PASSES, REJECT_REASONS,
};
pub use profile_table::{SiteSnapshot, MAX_FRAMES, OVERFLOW_SITE};
pub use residency::{decompose, ResidencyBreakdown, SegmentResidency};
pub use sense::{PressureReading, SenseSnapshot, SenseState, ABSENT};
pub use spectrum::{ClassSpectrum, HeapSpectrum, SPECTRUM_BINS};
pub use trace::TraceEvent;

pub use pprof::{parse_pprof, PprofParseError, PprofSummary};

pub(crate) use ctl::{CtlIo, CtlState, CTL_PARK};
pub(crate) use dump_targets::{DumpKind, DumpTarget};
pub(crate) use exposition::{profile_json, prom_text};
pub(crate) use sense::read_pressure;
pub(crate) use histogram::{HistSet, LocalHists};
pub(crate) use sampler::ThreadSampler;
pub(crate) use spectrum::estimate_meshable_pairs;
pub(crate) use trace::{trace_tid, TraceRing, TraceSet};

use crate::config::MeshConfig;
use crate::sync::{Mutex, MutexGuard};
use profile_table::{FingerprintTable, SampledSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fingerprint-table capacity: distinct call-site chains kept before new
/// chains fold into the overflow site.
const SITE_CAPACITY: usize = 2048;

/// A point-in-time summary of the profiler itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileStats {
    /// Mean bytes between samples (`MESH_PROF_SAMPLE_BYTES`).
    pub sample_bytes: usize,
    /// Samples recorded.
    pub samples: u64,
    /// Samples dropped because the sampled set was full.
    pub samples_dropped: u64,
    /// Sampled objects seen through their free.
    pub sampled_frees: u64,
    /// Distinct call-site fingerprints interned.
    pub sites: usize,
    /// Sampled objects currently live.
    pub live_samples: usize,
    /// Unbiased estimate of live bytes from the sampled population.
    pub live_bytes_estimate: u64,
}

/// Shared profiling state of one heap: the fingerprint table, the live
/// sampled set, and the dump schedule. `None` on the heap when profiling
/// is off — every hook is behind that `Option`.
#[derive(Debug)]
pub struct Telemetry {
    /// Mean bytes between samples. Atomic so mesh-ctl's
    /// `set prof_sample_bytes` can retune a live process; samplers
    /// re-read it at each countdown re-arm, so changes propagate within
    /// one sampling period per thread.
    sample_bytes: AtomicUsize,
    table: FingerprintTable,
    live: SampledSet,
    dump_interval: Option<Duration>,
    /// Destination + SIGUSR2 request flag (`MESH_PROF_PATH`).
    target: DumpTarget,
    /// Interval-dump clock. Held only for the claim instant, never across
    /// the dump I/O; joins `GlobalHeap::lock_all`'s fork-quiescence set.
    last_dump: Mutex<Instant>,
    samples: AtomicU64,
    samples_dropped: AtomicU64,
    sampled_frees: AtomicU64,
}

impl Telemetry {
    /// Builds the telemetry state for `config`, or `None` when profiling
    /// is off (the zero-overhead mode: no tables exist, heaps carry no
    /// sampler, and every hook is one `Option` branch).
    pub(crate) fn new(config: &MeshConfig) -> Option<Arc<Telemetry>> {
        if !config.profiling {
            return None;
        }
        let rate = config.prof_sample_bytes.max(1);
        // Expected live samples ≈ live bytes / rate; double for headroom,
        // clamped so a tiny rate cannot demand a gigantic table.
        let capacity = (config.max_heap_bytes / rate)
            .saturating_mul(2)
            .clamp(1 << 12, 1 << 20);
        Some(Arc::new(Telemetry {
            sample_bytes: AtomicUsize::new(rate),
            table: FingerprintTable::new(SITE_CAPACITY),
            live: SampledSet::new(capacity),
            dump_interval: config.prof_interval,
            target: DumpTarget::new(DumpKind::Profile, config.prof_path.clone()),
            last_dump: Mutex::new(Instant::now()),
            samples: AtomicU64::new(0),
            samples_dropped: AtomicU64::new(0),
            sampled_frees: AtomicU64::new(0),
        }))
    }

    /// Mean bytes between samples.
    #[inline]
    pub fn sample_bytes(&self) -> usize {
        self.sample_bytes.load(Ordering::Relaxed)
    }

    /// Retunes the mean bytes between samples (mesh-ctl
    /// `set prof_sample_bytes`). Zero is clamped to 1; already-armed
    /// per-thread countdowns finish at the old rate, and their recorded
    /// weights stay consistent because each sample carries the rate it
    /// was drawn at.
    pub fn set_sample_bytes(&self, rate: usize) {
        self.sample_bytes.store(rate.max(1), Ordering::Relaxed);
    }

    /// The configured dump destination (`MESH_PROF_PATH`), if any.
    pub fn dump_path(&self) -> Option<&Path> {
        self.target.path()
    }

    /// Records one sample: interns the chain, tracks the object as live,
    /// credits the site. Called by thread samplers and (with exact
    /// weights) by the large-object path.
    pub(crate) fn record_sample(&self, addr: usize, weight: u64, frames: &[usize]) {
        let site = self.table.intern(frames);
        if self.live.insert(addr, weight, site) {
            self.table.record_alloc(site, weight);
            self.samples.fetch_add(1, Ordering::Relaxed);
        } else {
            // Table full: drop the sample *before* crediting the site so
            // the alloc and free sides of the estimator stay paired.
            self.samples_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a large allocation (§4.4.3). Large objects bypass the
    /// thread samplers' countdown: they are big enough that the sampling
    /// probability saturates anyway, so each is traced exactly (weight =
    /// its own size) — and the path is already heavyweight (page-table
    /// work under locks), so one frame walk is noise.
    pub(crate) fn record_large(&self, addr: usize, bytes: usize) {
        let mut frames = [0usize; MAX_FRAMES];
        let depth = sampler::capture_frames(&mut frames);
        self.record_sample(addr, bytes as u64, &frames[..depth]);
    }

    /// Free hook (any thread, lock-free): if `addr` is a tracked sampled
    /// object, retire it and credit its site.
    #[inline]
    pub(crate) fn on_free(&self, addr: usize) {
        if let Some((weight, site)) = self.live.remove(addr) {
            self.table.record_free(site, weight);
            self.sampled_frees.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Unbiased live-byte estimate from the sampled population.
    pub fn live_bytes_estimate(&self) -> u64 {
        self.table.live_bytes_estimate()
    }

    /// Profiler self-summary.
    pub fn stats(&self) -> ProfileStats {
        ProfileStats {
            sample_bytes: self.sample_bytes(),
            samples: self.samples.load(Ordering::Relaxed),
            samples_dropped: self.samples_dropped.load(Ordering::Relaxed),
            sampled_frees: self.sampled_frees.load(Ordering::Relaxed),
            sites: self.table.site_count(),
            live_samples: self.live.len(),
            live_bytes_estimate: self.table.live_bytes_estimate(),
        }
    }

    /// Snapshots of every site with samples, sorted by live bytes
    /// descending (allocates; callers hold the internal-alloc guard).
    pub fn site_snapshots(&self) -> Vec<SiteSnapshot> {
        self.table.snapshots()
    }

    /// Requests a profile dump at the next telemetry tick. The only entry
    /// point safe from a signal handler: one relaxed atomic store.
    #[inline]
    pub fn request_dump(&self) {
        self.target.request();
    }

    /// Whether a dump is due (an explicit request, or the interval clock
    /// expiring). Claims the slot: the interval clock restarts.
    pub(crate) fn take_dump_due(&self) -> bool {
        if self.target.take_requested() {
            return true;
        }
        let Some(interval) = self.dump_interval else {
            return false;
        };
        let mut last = self.last_dump.lock();
        if last.elapsed() >= interval {
            *last = Instant::now();
            true
        } else {
            false
        }
    }

    /// Time until the interval clock next expires (`None` without an
    /// interval): the background thread's park bound.
    pub(crate) fn time_until_dump(&self) -> Option<Duration> {
        let interval = self.dump_interval?;
        Some(interval.saturating_sub(self.last_dump.lock().elapsed()))
    }

    /// Writes one dump via the shared [`DumpTarget`]: to `MESH_PROF_PATH`
    /// (truncating — the file always holds the latest profile) or, with
    /// no path, to stderr as a single `mesh-prof: `-prefixed line.
    pub(crate) fn write_dump(&self, json: &str) {
        self.target.write(json);
    }

    /// Holds the dump-clock lock (fork quiescence: a child must not
    /// inherit it mid-claim). A leaf lock like the scheduler's.
    pub(crate) fn lock_dump_clock(&self) -> MutexGuard<'_, Instant> {
        self.last_dump.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof_config() -> MeshConfig {
        MeshConfig::default()
            .profiling(true)
            .prof_sample_bytes(4096)
            .arena_bytes(32 << 20)
    }

    #[test]
    fn disabled_config_builds_no_state() {
        assert!(Telemetry::new(&MeshConfig::default()).is_none());
        assert!(Telemetry::new(&prof_config()).is_some());
    }

    #[test]
    fn sample_free_roundtrip_and_stats() {
        let t = Telemetry::new(&prof_config()).unwrap();
        t.record_sample(0x10_0000, 5000, &[0xaa, 0xbb]);
        t.record_sample(0x10_4000, 7000, &[0xaa, 0xcc]);
        let s = t.stats();
        assert_eq!(s.samples, 2);
        assert_eq!(s.sites, 2);
        assert_eq!(s.live_samples, 2);
        assert_eq!(s.live_bytes_estimate, 12_000);
        t.on_free(0x10_0000);
        t.on_free(0xdead_0000); // unsampled: a one-probe miss
        let s = t.stats();
        assert_eq!(s.sampled_frees, 1);
        assert_eq!(s.live_bytes_estimate, 7000);
        let snaps = t.site_snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].live_bytes(), 7000, "sorted live-first");
        assert_eq!(snaps[1].live_bytes(), 0);
    }

    #[test]
    fn dump_due_via_request_and_interval() {
        let mut cfg = prof_config();
        cfg = cfg.prof_interval(Some(Duration::from_millis(10)));
        let t = Telemetry::new(&cfg).unwrap();
        assert!(!t.take_dump_due(), "fresh clock: nothing due");
        assert!(t.time_until_dump().unwrap() <= Duration::from_millis(10));
        t.request_dump();
        assert!(t.take_dump_due(), "explicit request fires");
        assert!(!t.take_dump_due(), "request is one-shot");
        std::thread::sleep(Duration::from_millis(12));
        assert!(t.take_dump_due(), "interval clock fires");
        assert!(!t.take_dump_due(), "claiming restarts the clock");
    }

    #[test]
    fn no_interval_means_no_clock() {
        let t = Telemetry::new(&prof_config()).unwrap();
        assert_eq!(t.time_until_dump(), None);
        assert!(!t.take_dump_due());
    }

    #[test]
    fn dump_writes_to_path() {
        let path = std::env::temp_dir().join(format!("mesh-prof-test-{}.json", std::process::id()));
        let cfg = prof_config().prof_path(Some(path.clone()));
        let t = Telemetry::new(&cfg).unwrap();
        t.write_dump("{\"ok\":1}");
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "{\"ok\":1}\n");
        std::fs::remove_file(&path).ok();
    }
}
