//! Log2-bucketed latency histograms for every slow-path operation.
//!
//! HDR-style: 64 buckets at half-octave resolution from 16 ns up
//! (bucket 62's upper bound is ≈ 34 s; bucket 63 is the overflow
//! catch-all), so two buckets per power of two keep the relative
//! quantization error under 50% across nine decades while the whole
//! histogram stays a flat array of counters.
//!
//! Two recording tiers mirror [`crate::stats::LocalCounters`]:
//!
//! * a **shared block** (relaxed `fetch_add`) for operations recorded
//!   under global-heap or arena locks — lock waits, drains, mesh phases,
//!   segment and `madvise` work. These paths already pay a lock, so one
//!   more RMW is noise.
//! * **per-thread blocks** (single-writer plain load+store, one cacheline
//!   set per thread, registered like `LocalCounters`) for operations a
//!   mutator thread records about itself — shuffle-vector refills and
//!   sender-side flushes. Merged on [`HistSet::snapshot`].
//!
//! The malloc/free fast path records nothing: every instrumented site is
//! one that already took a lock, a queue, or a syscall.

use crate::sync::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets (shared by every op).
pub const LATENCY_BUCKETS: usize = 64;

/// The slow-path operations with recorded durations.
///
/// The discriminants index the histogram arrays and the trace-event
/// `op` field; they are stable within one build but not an ABI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum TimedOp {
    /// Shuffle-vector refill: transfer-cache pop or class-shard visit.
    Refill = 0,
    /// Contended class-shard lock acquisition (blocked time only).
    ClassLockWait = 1,
    /// Contended arena leaf-lock acquisition (blocked time only).
    ArenaLockWait = 2,
    /// Mutator blocked on a lock while a mesh pass held it: the pause
    /// the paper's §6.2.2 "longest pause" claim is about.
    MutatorPause = 3,
    /// Remote-free queue drain under a class lock.
    RemoteDrain = 4,
    /// Batch push into the transfer cache (spill side).
    TransferSpill = 5,
    /// Sender-side remote-free batch flush.
    TransferFlush = 6,
    /// Mesh-pass phase 1: candidate collection + SplitMesher probing.
    MeshCandidates = 7,
    /// Mesh-pass phase 2: write-protect + copy window (the §4.5.2
    /// barrier is up for exactly this duration).
    MeshCopy = 8,
    /// Mesh-pass phase 3: physical release + virtual remap.
    MeshRemap = 9,
    /// One whole meshing pass (all classes).
    MeshPass = 10,
    /// Mapping a new segment (memfd + mmap).
    SegmentGrow = 11,
    /// Retiring empty segments (unmap back to the reservation).
    SegmentRetire = 12,
    /// Physical-page release calls (`madvise`/hole punching), including
    /// dirty purges.
    Madvise = 13,
}

/// Number of [`TimedOp`] variants (array dimension).
pub const NUM_TIMED_OPS: usize = 14;

/// All ops, in discriminant order.
pub const ALL_TIMED_OPS: [TimedOp; NUM_TIMED_OPS] = [
    TimedOp::Refill,
    TimedOp::ClassLockWait,
    TimedOp::ArenaLockWait,
    TimedOp::MutatorPause,
    TimedOp::RemoteDrain,
    TimedOp::TransferSpill,
    TimedOp::TransferFlush,
    TimedOp::MeshCandidates,
    TimedOp::MeshCopy,
    TimedOp::MeshRemap,
    TimedOp::MeshPass,
    TimedOp::SegmentGrow,
    TimedOp::SegmentRetire,
    TimedOp::Madvise,
];

impl TimedOp {
    /// Array index of this op.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short machine-readable name (trace events, `render()` keys).
    pub fn name(self) -> &'static str {
        match self {
            TimedOp::Refill => "refill",
            TimedOp::ClassLockWait => "class_lock_wait",
            TimedOp::ArenaLockWait => "arena_lock_wait",
            TimedOp::MutatorPause => "mutator_pause",
            TimedOp::RemoteDrain => "remote_drain",
            TimedOp::TransferSpill => "transfer_spill",
            TimedOp::TransferFlush => "transfer_flush",
            TimedOp::MeshCandidates => "mesh_candidates",
            TimedOp::MeshCopy => "mesh_copy",
            TimedOp::MeshRemap => "mesh_remap",
            TimedOp::MeshPass => "mesh_pass",
            TimedOp::SegmentGrow => "segment_grow",
            TimedOp::SegmentRetire => "segment_retire",
            TimedOp::Madvise => "madvise",
        }
    }

    /// Prometheus base name of this op's histogram (seconds units, per
    /// convention; `_bucket`/`_sum`/`_count` series hang off it).
    pub fn prom_name(self) -> &'static str {
        match self {
            TimedOp::Refill => "mesh_refill_seconds",
            TimedOp::ClassLockWait => "mesh_class_lock_wait_seconds",
            TimedOp::ArenaLockWait => "mesh_arena_lock_wait_seconds",
            TimedOp::MutatorPause => "mesh_mutator_pause_seconds",
            TimedOp::RemoteDrain => "mesh_remote_drain_seconds",
            TimedOp::TransferSpill => "mesh_transfer_spill_seconds",
            TimedOp::TransferFlush => "mesh_transfer_flush_seconds",
            TimedOp::MeshCandidates => "mesh_mesh_candidates_seconds",
            TimedOp::MeshCopy => "mesh_mesh_copy_seconds",
            TimedOp::MeshRemap => "mesh_mesh_remap_seconds",
            TimedOp::MeshPass => "mesh_mesh_pass_seconds",
            TimedOp::SegmentGrow => "mesh_segment_grow_seconds",
            TimedOp::SegmentRetire => "mesh_segment_retire_seconds",
            TimedOp::Madvise => "mesh_madvise_seconds",
        }
    }

    /// Op from a raw discriminant (trace-event decoding).
    pub fn from_u16(raw: u16) -> Option<TimedOp> {
        ALL_TIMED_OPS.get(raw as usize).copied()
    }
}

/// Bucket index for a duration of `ns` nanoseconds.
///
/// Bucket 0 holds everything under 16 ns; above that, each power of two
/// splits into two half-octave buckets (`[2^p, 1.5·2^p)` and
/// `[1.5·2^p, 2^(p+1))`); bucket 63 is the overflow catch-all.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    if ns < 16 {
        return 0;
    }
    let p = 63 - ns.leading_zeros() as usize; // floor(log2 ns), ≥ 4
    let half = ((ns >> (p - 1)) & 1) as usize; // upper half of the octave?
    ((p - 4) * 2 + half + 1).min(LATENCY_BUCKETS - 1)
}

/// Exclusive upper bound of bucket `b` in nanoseconds (`u64::MAX` for
/// the overflow bucket).
pub fn bucket_upper_ns(b: usize) -> u64 {
    debug_assert!(b < LATENCY_BUCKETS);
    if b == 0 {
        return 16;
    }
    if b == LATENCY_BUCKETS - 1 {
        return u64::MAX;
    }
    let k = b - 1;
    let p = 4 + k / 2;
    if k.is_multiple_of(2) {
        3u64 << (p - 1) // 1.5 · 2^p
    } else {
        1u64 << (p + 1)
    }
}

/// One flat block of histogram counters: per-op bucket counts plus the
/// total duration and the running maximum. Field layout is identical for
/// the shared and per-thread tiers; only the write discipline differs.
struct HistBlock {
    counts: [[AtomicU64; LATENCY_BUCKETS]; NUM_TIMED_OPS],
    sums: [AtomicU64; NUM_TIMED_OPS],
    maxes: [AtomicU64; NUM_TIMED_OPS],
}

impl Default for HistBlock {
    fn default() -> HistBlock {
        HistBlock {
            counts: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            sums: std::array::from_fn(|_| AtomicU64::new(0)),
            maxes: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl HistBlock {
    /// Multi-writer record (relaxed RMW).
    fn record_shared(&self, op: TimedOp, ns: u64) {
        let i = op.index();
        self.counts[i][bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.sums[i].fetch_add(ns, Ordering::Relaxed);
        self.maxes[i].fetch_max(ns, Ordering::Relaxed);
    }

    /// Single-writer record: plain load+store pairs, no `lock` prefix
    /// (the [`crate::stats::LocalCounters`] discipline — only the owning
    /// thread writes, any thread may read).
    fn record_local(&self, op: TimedOp, ns: u64) {
        #[inline]
        fn bump(cell: &AtomicU64, v: u64) {
            cell.store(cell.load(Ordering::Relaxed).wrapping_add(v), Ordering::Relaxed);
        }
        let i = op.index();
        bump(&self.counts[i][bucket_of(ns)], 1);
        bump(&self.sums[i], ns);
        let max = &self.maxes[i];
        if max.load(Ordering::Relaxed) < ns {
            max.store(ns, Ordering::Relaxed);
        }
    }

    fn add_into(&self, snap: &mut LatencySnapshot) {
        for i in 0..NUM_TIMED_OPS {
            for b in 0..LATENCY_BUCKETS {
                snap.counts[i][b] =
                    snap.counts[i][b].wrapping_add(self.counts[i][b].load(Ordering::Relaxed));
            }
            snap.sums[i] = snap.sums[i].wrapping_add(self.sums[i].load(Ordering::Relaxed));
            snap.maxes[i] = snap.maxes[i].max(self.maxes[i].load(Ordering::Relaxed));
        }
    }

    fn zero(&self) {
        for i in 0..NUM_TIMED_OPS {
            for b in 0..LATENCY_BUCKETS {
                self.counts[i][b].store(0, Ordering::Relaxed);
            }
            self.sums[i].store(0, Ordering::Relaxed);
            self.maxes[i].store(0, Ordering::Relaxed);
        }
    }
}

/// One thread's single-writer histogram block, registered with the
/// heap's [`HistSet`] for the lifetime of the thread heap.
#[repr(align(64))] // own cachelines: no false sharing between threads
#[derive(Default)]
pub(crate) struct LocalHists(HistBlock);

impl std::fmt::Debug for LocalHists {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalHists").finish_non_exhaustive()
    }
}

impl LocalHists {
    /// Records one duration (owner thread only).
    #[inline]
    pub(crate) fn record(&self, op: TimedOp, ns: u64) {
        self.0.record_local(op, ns);
    }
}

/// The heap's latency-histogram state: the shared block plus the live
/// per-thread blocks. Lives on [`crate::stats::Counters`] so every layer
/// holding the counters (arena included) can record.
pub(crate) struct HistSet {
    shared: HistBlock,
    locals: Mutex<Vec<Arc<LocalHists>>>,
}

impl Default for HistSet {
    fn default() -> HistSet {
        HistSet {
            shared: HistBlock::default(),
            locals: Mutex::new(Vec::new()),
        }
    }
}

impl std::fmt::Debug for HistSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistSet").finish_non_exhaustive()
    }
}

impl HistSet {
    /// Records one duration into the shared (multi-writer) block.
    #[inline]
    pub(crate) fn record(&self, op: TimedOp, ns: u64) {
        self.shared.record_shared(op, ns);
    }

    /// Creates and registers a per-thread single-writer block.
    pub(crate) fn register_local(&self) -> Arc<LocalHists> {
        let block = Arc::new(LocalHists::default());
        self.locals.lock().push(Arc::clone(&block));
        block
    }

    /// Folds a dying thread's block into the shared tier and removes it
    /// from the registry (totals survive the thread).
    pub(crate) fn unregister_local(&self, block: &Arc<LocalHists>) {
        let mut snap = LatencySnapshot::default();
        block.0.add_into(&mut snap);
        for op in ALL_TIMED_OPS {
            let i = op.index();
            for b in 0..LATENCY_BUCKETS {
                if snap.counts[i][b] > 0 {
                    self.shared.counts[i][b].fetch_add(snap.counts[i][b], Ordering::Relaxed);
                }
            }
            if snap.sums[i] > 0 {
                self.shared.sums[i].fetch_add(snap.sums[i], Ordering::Relaxed);
            }
            self.shared.maxes[i].fetch_max(snap.maxes[i], Ordering::Relaxed);
        }
        self.locals.lock().retain(|b| !Arc::ptr_eq(b, block));
    }

    /// Holds the registry lock (fork quiescence; a leaf lock).
    pub(crate) fn lock_locals(&self) -> MutexGuard<'_, Vec<Arc<LocalHists>>> {
        self.locals.lock()
    }

    /// Merged view: shared block + every live per-thread block.
    pub(crate) fn snapshot(&self) -> LatencySnapshot {
        let mut snap = LatencySnapshot::default();
        self.shared.add_into(&mut snap);
        for block in self.locals.lock().iter() {
            block.0.add_into(&mut snap);
        }
        snap
    }

    /// Zeroes every tier (forked child: its latency timeline starts
    /// fresh; single-threaded post-fork, so plain stores are safe).
    pub(crate) fn zero_all(&self) {
        self.shared.zero();
        for block in self.locals.lock().iter() {
            block.0.zero();
        }
    }
}

/// A point-in-time merge of every latency histogram, carried on
/// [`crate::HeapStats`].
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Bucket counts, indexed `[op][bucket]` (see [`bucket_upper_ns`]).
    pub counts: [[u64; LATENCY_BUCKETS]; NUM_TIMED_OPS],
    /// Total recorded nanoseconds per op.
    pub sums: [u64; NUM_TIMED_OPS],
    /// Longest recorded duration per op, nanoseconds.
    pub maxes: [u64; NUM_TIMED_OPS],
}

impl Default for LatencySnapshot {
    fn default() -> LatencySnapshot {
        LatencySnapshot {
            counts: [[0; LATENCY_BUCKETS]; NUM_TIMED_OPS],
            sums: [0; NUM_TIMED_OPS],
            maxes: [0; NUM_TIMED_OPS],
        }
    }
}

impl std::fmt::Debug for LatencySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("LatencySnapshot");
        for op in ALL_TIMED_OPS {
            if self.count(op) > 0 {
                s.field(op.name(), &(self.count(op), self.sum_ns(op), self.max_ns(op)));
            }
        }
        s.finish_non_exhaustive()
    }
}

impl LatencySnapshot {
    /// Number of recorded durations for `op`.
    pub fn count(&self, op: TimedOp) -> u64 {
        self.counts[op.index()].iter().sum()
    }

    /// Total recorded nanoseconds for `op`.
    pub fn sum_ns(&self, op: TimedOp) -> u64 {
        self.sums[op.index()]
    }

    /// Longest recorded duration for `op`, nanoseconds.
    pub fn max_ns(&self, op: TimedOp) -> u64 {
        self.maxes[op.index()]
    }

    /// Whether any op recorded anything.
    pub fn is_empty(&self) -> bool {
        ALL_TIMED_OPS.iter().all(|&op| self.count(op) == 0)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) for `op`, reported as the upper
    /// bound of the bucket holding it (the HDR convention: an
    /// overestimate by at most half an octave). Returns 0 with no
    /// recordings; the overflow bucket reports the exact maximum.
    pub fn percentile_ns(&self, op: TimedOp, q: f64) -> u64 {
        let total = self.count(op);
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, &c) in self.counts[op.index()].iter().enumerate() {
            seen += c;
            if seen >= target {
                return if b == LATENCY_BUCKETS - 1 {
                    self.max_ns(op)
                } else {
                    bucket_upper_ns(b)
                };
            }
        }
        self.max_ns(op)
    }

    /// Per-op difference against an earlier snapshot (bucket counts and
    /// sums subtract; maxes keep this snapshot's value — a max cannot be
    /// un-observed). The windowed view benches report from.
    pub fn minus(&self, earlier: &LatencySnapshot) -> LatencySnapshot {
        let mut out = *self;
        for i in 0..NUM_TIMED_OPS {
            for b in 0..LATENCY_BUCKETS {
                out.counts[i][b] = out.counts[i][b].wrapping_sub(earlier.counts[i][b]);
            }
            out.sums[i] = out.sums[i].wrapping_sub(earlier.sums[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_is_monotone_and_half_octave() {
        // Exhaustive boundary check: bucket_of is monotone in ns, and
        // every value lands strictly below its bucket's upper bound.
        let mut last = 0;
        for p in 0..40u32 {
            for ns in [1u64 << p, (1u64 << p) + 1, (3u64 << p) / 2, (1u64 << (p + 1)) - 1] {
                let b = bucket_of(ns);
                assert!(b >= last || b == LATENCY_BUCKETS - 1, "non-monotone at {ns}");
                last = last.max(b);
                assert!(ns < bucket_upper_ns(b), "{ns} >= ub({b})");
                if b > 0 {
                    assert!(ns >= bucket_upper_ns(b - 1), "{ns} < ub({})", b - 1);
                }
            }
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(15), 0);
        assert_eq!(bucket_of(16), 1);
        assert_eq!(bucket_of(23), 1);
        assert_eq!(bucket_of(24), 2);
        assert_eq!(bucket_upper_ns(1), 24);
        assert_eq!(bucket_upper_ns(2), 32);
        assert_eq!(bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
        // ~16s lands inside the table, not the overflow bucket.
        assert!(bucket_of(16_000_000_000) < LATENCY_BUCKETS - 1);
    }

    #[test]
    fn record_snapshot_percentiles() {
        let h = HistSet::default();
        for _ in 0..90 {
            h.record(TimedOp::Refill, 100);
        }
        for _ in 0..9 {
            h.record(TimedOp::Refill, 10_000);
        }
        h.record(TimedOp::Refill, 5_000_000);
        let s = h.snapshot();
        assert_eq!(s.count(TimedOp::Refill), 100);
        assert_eq!(s.sum_ns(TimedOp::Refill), 9000 + 90_000 + 5_000_000);
        assert_eq!(s.max_ns(TimedOp::Refill), 5_000_000);
        let p50 = s.percentile_ns(TimedOp::Refill, 0.50);
        assert!((96..=128).contains(&p50), "p50 {p50}");
        let p99 = s.percentile_ns(TimedOp::Refill, 0.99);
        assert!((10_000..=16_384).contains(&p99), "p99 {p99}");
        assert_eq!(s.percentile_ns(TimedOp::Refill, 1.0), 6_291_456);
        assert_eq!(s.count(TimedOp::MeshPass), 0);
        assert_eq!(s.percentile_ns(TimedOp::MeshPass, 0.5), 0);
    }

    #[test]
    fn locals_merge_on_snapshot_and_fold_on_unregister() {
        let h = HistSet::default();
        let a = h.register_local();
        let b = h.register_local();
        a.record(TimedOp::Refill, 50);
        a.record(TimedOp::Refill, 70);
        b.record(TimedOp::TransferFlush, 1000);
        let s = h.snapshot();
        assert_eq!(s.count(TimedOp::Refill), 2);
        assert_eq!(s.count(TimedOp::TransferFlush), 1);
        h.unregister_local(&a);
        let s = h.snapshot();
        assert_eq!(s.count(TimedOp::Refill), 2, "totals survive unregister");
        assert_eq!(s.sum_ns(TimedOp::Refill), 120);
        assert_eq!(s.max_ns(TimedOp::Refill), 70);
    }

    #[test]
    fn zero_all_clears_every_tier() {
        let h = HistSet::default();
        let a = h.register_local();
        a.record(TimedOp::MutatorPause, 999);
        h.record(TimedOp::MeshPass, 12345);
        h.zero_all();
        assert!(h.snapshot().is_empty());
    }

    #[test]
    fn minus_windows_counts_not_maxes() {
        let h = HistSet::default();
        h.record(TimedOp::MeshCopy, 100);
        let before = h.snapshot();
        h.record(TimedOp::MeshCopy, 200);
        let window = h.snapshot().minus(&before);
        assert_eq!(window.count(TimedOp::MeshCopy), 1);
        assert_eq!(window.sum_ns(TimedOp::MeshCopy), 200);
        assert_eq!(window.max_ns(TimedOp::MeshCopy), 200);
    }

    #[test]
    fn op_tables_agree() {
        for (i, op) in ALL_TIMED_OPS.iter().enumerate() {
            assert_eq!(op.index(), i);
            assert_eq!(TimedOp::from_u16(i as u16), Some(*op));
            assert!(op.prom_name().starts_with("mesh_"));
            assert!(op.prom_name().ends_with("_seconds"));
        }
        assert_eq!(TimedOp::from_u16(NUM_TIMED_OPS as u16), None);
    }
}
