//! The meshing-effectiveness ledger: one record per mesh pass.
//!
//! Aggregate counters (`spans_meshed`, `mesh_pages_released`) say *how
//! much* meshing recovered overall; they cannot say why a given pass
//! recovered little. This ledger keeps the last [`LEDGER_PASSES`] passes
//! with their candidate counts, per-reason rejection tallies, and the
//! bytes actually recovered and returned to the OS — the per-pass
//! effectiveness data a compaction policy (the ROADMAP's memory
//! autopilot) needs to decide whether meshing harder would help.
//!
//! The ring is guarded by a leaf mutex taken once per pass (passes are
//! rate-limited to ~10 Hz, §4.5); the per-reason totals are plain atomics
//! so `prom_text` can export `mesh_pass_rejected_total{reason=...}`
//! without the lock.

use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Mesh passes retained in the ring.
pub const LEDGER_PASSES: usize = 64;

/// Number of distinct rejection reasons.
pub const REJECT_REASONS: usize = 5;

/// Why a candidate pair (or candidate span) failed to mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bitmaps overlap (§3.3 probe miss), or merging would exceed the
    /// `max_span_count` alias budget.
    OccupancyOverlap = 0,
    /// Objects were pinned in the transfer cache when the pass started and
    /// had to be flushed back before their spans could be considered.
    PinnedTransfer = 1,
    /// The class shard lock was contended when the pass claimed it, so the
    /// pass ran against a heap another thread was mutating moments before.
    ClassContention = 2,
    /// A pair was abandoned mid-copy. Structurally zero in the current
    /// single-lock pass (the class lock is held end to end); recorded so a
    /// future concurrent mesher inherits the accounting slot.
    CopyAbort = 3,
    /// Hardened mode found a corrupted free-slot canary inside the copy
    /// window and refused to mesh the pair (`MESH_HARDEN` with the canary
    /// sweep on; also surfaces as a `harden_canary` violation).
    CanaryTrip = 4,
}

/// Every reason, in counter-index order.
pub const ALL_REJECT_REASONS: [RejectReason; REJECT_REASONS] = [
    RejectReason::OccupancyOverlap,
    RejectReason::PinnedTransfer,
    RejectReason::ClassContention,
    RejectReason::CopyAbort,
    RejectReason::CanaryTrip,
];

impl RejectReason {
    /// Stable snake_case name, used as the Prometheus `reason` label and
    /// the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::OccupancyOverlap => "occupancy_overlap",
            RejectReason::PinnedTransfer => "pinned_transfer",
            RejectReason::ClassContention => "class_contention",
            RejectReason::CopyAbort => "copy_abort",
            RejectReason::CanaryTrip => "canary_trip",
        }
    }
}

/// What one mesh pass did, as recorded at the end of the pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassRecord {
    /// Pass end time, milliseconds since heap construction.
    pub at_ms: u64,
    /// Candidate spans scanned across all size classes.
    pub candidates: u64,
    /// SplitMesher probes attempted (bounded by `t`, §3.3).
    pub probes: u64,
    /// Rejections by reason, indexed by `RejectReason as usize`.
    pub rejected: [u64; REJECT_REASONS],
    /// Pairs actually meshed.
    pub pairs_meshed: u64,
    /// Physical bytes recovered by meshing (released span pages).
    pub bytes_recovered: u64,
    /// Bytes returned to the OS during the pass (purge/madvise work the
    /// pass triggered, including the §4.4.1 dirty-threshold purge).
    pub madvise_bytes: u64,
}

impl PassRecord {
    /// Total rejections across all reasons.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.iter().sum()
    }

    /// Renders the record as one JSON object (no trailing newline).
    pub(crate) fn json(&self) -> String {
        let mut reasons = String::new();
        for (i, r) in ALL_REJECT_REASONS.iter().enumerate() {
            if i > 0 {
                reasons.push(',');
            }
            reasons.push_str(&format!("\"{}\":{}", r.name(), self.rejected[i]));
        }
        format!(
            "{{\"at_ms\":{},\"candidates\":{},\"probes\":{},\"rejected\":{{{}}},\
             \"pairs_meshed\":{},\"bytes_recovered\":{},\"madvise_bytes\":{}}}",
            self.at_ms,
            self.candidates,
            self.probes,
            reasons,
            self.pairs_meshed,
            self.bytes_recovered,
            self.madvise_bytes,
        )
    }
}

#[derive(Debug)]
struct LedgerRing {
    /// Ring storage; meaningful up to `min(total, LEDGER_PASSES)` records.
    records: Box<[PassRecord; LEDGER_PASSES]>,
    /// Passes ever recorded (the ring write cursor is `total % LEDGER_PASSES`).
    total: u64,
}

/// The per-heap mesh-pass ledger (always on; one lock + a handful of
/// atomic adds per pass).
#[derive(Debug)]
pub struct MeshLedger {
    ring: Mutex<LedgerRing>,
    reject_totals: [AtomicU64; REJECT_REASONS],
}

impl MeshLedger {
    pub(crate) fn new() -> MeshLedger {
        MeshLedger {
            ring: Mutex::new(LedgerRing {
                records: Box::new([PassRecord::default(); LEDGER_PASSES]),
                total: 0,
            }),
            reject_totals: Default::default(),
        }
    }

    /// Appends one pass record (called at the end of every mesh pass).
    pub(crate) fn record(&self, rec: PassRecord) {
        for (i, &n) in rec.rejected.iter().enumerate() {
            if n > 0 {
                self.reject_totals[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        let mut ring = self.ring.lock();
        let slot = (ring.total % LEDGER_PASSES as u64) as usize;
        ring.records[slot] = rec;
        ring.total += 1;
    }

    /// Passes recorded since heap construction (monotone; the ring only
    /// retains the last [`LEDGER_PASSES`] of them).
    pub fn passes_recorded(&self) -> u64 {
        self.ring.lock().total
    }

    /// The retained records, oldest first.
    pub fn recent(&self) -> Vec<PassRecord> {
        let ring = self.ring.lock();
        let kept = ring.total.min(LEDGER_PASSES as u64) as usize;
        let mut out = Vec::with_capacity(kept);
        for k in 0..kept {
            let idx = (ring.total - kept as u64 + k as u64) % LEDGER_PASSES as u64;
            out.push(ring.records[idx as usize]);
        }
        out
    }

    /// Cumulative rejections by reason since heap construction (feeds
    /// `mesh_pass_rejected_total`).
    pub fn reject_totals(&self) -> [u64; REJECT_REASONS] {
        let mut out = [0u64; REJECT_REASONS];
        for (o, t) in out.iter_mut().zip(&self.reject_totals) {
            *o = t.load(Ordering::Relaxed);
        }
        out
    }

    /// Forgets everything: a forked child starts with an empty ledger
    /// (its parent's passes did not happen in this process).
    pub(crate) fn wipe_for_child(&self) {
        let mut ring = self.ring.lock();
        ring.total = 0;
        for t in &self.reject_totals {
            t.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_ms: u64, meshed: u64, rejected: [u64; REJECT_REASONS]) -> PassRecord {
        PassRecord {
            at_ms,
            candidates: meshed * 2 + rejected.iter().sum::<u64>(),
            probes: 10,
            rejected,
            pairs_meshed: meshed,
            bytes_recovered: meshed * 4096,
            madvise_bytes: meshed * 4096,
        }
    }

    #[test]
    fn records_accumulate_and_totals_track() {
        let l = MeshLedger::new();
        assert_eq!(l.passes_recorded(), 0);
        assert!(l.recent().is_empty());
        l.record(rec(10, 2, [3, 1, 0, 0, 0]));
        l.record(rec(20, 0, [0, 0, 2, 0, 1]));
        assert_eq!(l.passes_recorded(), 2);
        let r = l.recent();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].at_ms, 10, "oldest first");
        assert_eq!(r[1].at_ms, 20);
        assert_eq!(l.reject_totals(), [3, 1, 2, 0, 1]);
        assert_eq!(r[0].rejected_total(), 4);
    }

    #[test]
    fn ring_keeps_only_last_passes() {
        let l = MeshLedger::new();
        for i in 0..(LEDGER_PASSES as u64 + 9) {
            l.record(rec(i, 1, [1, 0, 0, 0, 0]));
        }
        assert_eq!(l.passes_recorded(), LEDGER_PASSES as u64 + 9);
        let r = l.recent();
        assert_eq!(r.len(), LEDGER_PASSES);
        assert_eq!(r[0].at_ms, 9, "oldest retained record");
        assert_eq!(r[LEDGER_PASSES - 1].at_ms, LEDGER_PASSES as u64 + 8);
        assert_eq!(l.reject_totals()[0], LEDGER_PASSES as u64 + 9);
        l.wipe_for_child();
        assert_eq!(l.passes_recorded(), 0);
        assert_eq!(l.reject_totals(), [0; REJECT_REASONS]);
    }

    #[test]
    fn json_names_every_reason() {
        let j = rec(5, 1, [4, 3, 2, 1, 5]).json();
        for r in ALL_REJECT_REASONS {
            assert!(j.contains(&format!("\"{}\":", r.name())), "{j}");
        }
        assert!(j.contains("\"pairs_meshed\":1"));
        assert!(j.contains("\"at_ms\":5"));
    }
}
