//! Lock-free tables backing the sampled heap profiler: the *fingerprint
//! table* interning call-site chains, and the *sampled set* tracking the
//! live sampled objects through `free`.
//!
//! Both are fixed-capacity open-addressing hash tables whose slots are
//! claimed with a single CAS — no locks anywhere, so the free path's
//! lookup can run from any thread (including under a shard lock) and a
//! `fork()` can never inherit a held table lock. Capacity is fixed at
//! heap construction; overflow degrades gracefully (samples fold into a
//! catch-all site, or are dropped and counted) instead of resizing.
//!
//! ## Slot protocols
//!
//! **Fingerprint table** (one slot per distinct call-site chain, never
//! removed): `state` goes `EMPTY → CLAIMED` by CAS, the claimer writes
//! `hash`/`depth`/`frames`, then publishes with a release store of
//! `READY`. Readers that race a `CLAIMED` slot spin briefly — the window
//! is a bounded run of plain stores. Per-site counters are relaxed
//! `fetch_add`s; the dump reads them individually (cross-counter skew of
//! an in-flight sample is acceptable for reporting).
//!
//! **Sampled set** (one slot per live sampled object): the `addr` word is
//! the whole state machine — `EMPTY`/`TOMBSTONE`/`CLAIMED` sentinels or
//! the object address. Insert CASes a reusable slot to `CLAIMED`, writes
//! the payload (weight + site), then publishes the address with a release
//! store; the only reader that dereferences the payload is the `free` of
//! that same address, which cannot begin before the insert's `malloc`
//! returns. Remove reads the payload, then CASes `addr → TOMBSTONE`; a
//! lost CAS means a racing free already consumed the sample.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Maximum frames kept per call-site fingerprint.
pub const MAX_FRAMES: usize = 16;

/// Site id of the catch-all entry used when the fingerprint table is full.
pub const OVERFLOW_SITE: u32 = u32::MAX;

/// Probe ceiling for both tables: bounds worst-case lookup cost and turns
/// pathological clustering into counted drops instead of long scans.
const PROBE_LIMIT: usize = 64;

// ---------------------------------------------------------------------
// Fingerprint table
// ---------------------------------------------------------------------

const SITE_EMPTY: u32 = 0;
const SITE_CLAIMED: u32 = 1;
const SITE_READY: u32 = 2;

/// One interned call-site chain plus its sampled totals.
#[derive(Debug)]
pub(crate) struct SiteEntry {
    state: AtomicU32,
    depth: AtomicU32,
    hash: AtomicU64,
    frames: [AtomicUsize; MAX_FRAMES],
    /// Sampled allocations attributed to this site.
    pub alloc_samples: AtomicU64,
    /// Unbiased byte estimate of allocations attributed to this site.
    pub alloc_bytes: AtomicU64,
    /// Sampled frees attributed to this site.
    pub free_samples: AtomicU64,
    /// Unbiased byte estimate of frees attributed to this site.
    pub freed_bytes: AtomicU64,
}

impl SiteEntry {
    fn new() -> SiteEntry {
        SiteEntry {
            state: AtomicU32::new(SITE_EMPTY),
            depth: AtomicU32::new(0),
            hash: AtomicU64::new(0),
            frames: std::array::from_fn(|_| AtomicUsize::new(0)),
            alloc_samples: AtomicU64::new(0),
            alloc_bytes: AtomicU64::new(0),
            free_samples: AtomicU64::new(0),
            freed_bytes: AtomicU64::new(0),
        }
    }

    fn matches(&self, hash: u64, frames: &[usize]) -> bool {
        if self.hash.load(Ordering::Relaxed) != hash
            || self.depth.load(Ordering::Relaxed) as usize != frames.len()
        {
            return false;
        }
        frames
            .iter()
            .zip(&self.frames)
            .all(|(&f, slot)| slot.load(Ordering::Relaxed) == f)
    }
}

/// A point-in-time copy of one site's chain and totals, for dumps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteSnapshot {
    /// Site id (index in the fingerprint table, or [`OVERFLOW_SITE`]).
    pub site: u32,
    /// Captured return addresses, innermost first. Empty when
    /// frame-pointer walking found nothing (or for the overflow site).
    pub frames: Vec<usize>,
    /// Sampled allocations attributed to this site.
    pub alloc_samples: u64,
    /// Unbiased allocated-byte estimate.
    pub alloc_bytes: u64,
    /// Sampled frees attributed to this site.
    pub free_samples: u64,
    /// Unbiased freed-byte estimate.
    pub freed_bytes: u64,
}

impl SiteSnapshot {
    /// Estimated bytes still live at this site.
    pub fn live_bytes(&self) -> u64 {
        self.alloc_bytes.saturating_sub(self.freed_bytes)
    }

    /// Sampled objects still live at this site.
    pub fn live_samples(&self) -> u64 {
        self.alloc_samples.saturating_sub(self.free_samples)
    }
}

/// Lock-free interning table of call-site fingerprints.
#[derive(Debug)]
pub(crate) struct FingerprintTable {
    slots: Box<[SiteEntry]>,
    mask: usize,
    /// Catch-all totals once the table is full (chains are not kept).
    overflow: SiteEntry,
}

fn hash_frames(frames: &[usize]) -> u64 {
    // FNV-1a over the frame words; the length is folded in so a chain and
    // its prefix hash apart.
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ frames.len() as u64;
    for &f in frames {
        h = (h ^ f as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl FingerprintTable {
    /// Creates a table with `capacity` slots (rounded up to a power of
    /// two, minimum 64).
    pub fn new(capacity: usize) -> FingerprintTable {
        let cap = capacity.next_power_of_two().max(64);
        FingerprintTable {
            slots: (0..cap).map(|_| SiteEntry::new()).collect(),
            mask: cap - 1,
            overflow: SiteEntry::new(),
        }
    }

    /// Interns `frames`, returning its site id ([`OVERFLOW_SITE`] when the
    /// table — or this chain's probe window — is full).
    pub fn intern(&self, frames: &[usize]) -> u32 {
        let hash = hash_frames(frames);
        let mut idx = hash as usize & self.mask;
        for _ in 0..PROBE_LIMIT.min(self.slots.len()) {
            let entry = &self.slots[idx];
            match entry.state.load(Ordering::Acquire) {
                SITE_READY => {
                    if entry.matches(hash, frames) {
                        return idx as u32;
                    }
                }
                SITE_EMPTY => {
                    if entry
                        .state
                        .compare_exchange(
                            SITE_EMPTY,
                            SITE_CLAIMED,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        entry.hash.store(hash, Ordering::Relaxed);
                        entry.depth.store(frames.len() as u32, Ordering::Relaxed);
                        for (slot, &f) in entry.frames.iter().zip(frames) {
                            slot.store(f, Ordering::Relaxed);
                        }
                        entry.state.store(SITE_READY, Ordering::Release);
                        return idx as u32;
                    }
                    // Lost the claim race: fall through to the spin below.
                    if self.spin_ready(entry) && entry.matches(hash, frames) {
                        return idx as u32;
                    }
                }
                _claimed => {
                    if self.spin_ready(entry) && entry.matches(hash, frames) {
                        return idx as u32;
                    }
                }
            }
            idx = (idx + 1) & self.mask;
        }
        OVERFLOW_SITE
    }

    /// Waits (bounded) for a claimed slot to publish. Returns whether it
    /// became ready; the claim→publish window is a short run of plain
    /// stores, so in practice one or two spins suffice.
    fn spin_ready(&self, entry: &SiteEntry) -> bool {
        for i in 0..1000 {
            if entry.state.load(Ordering::Acquire) == SITE_READY {
                return true;
            }
            if i > 100 {
                unsafe { crate::ffi::sched_yield() };
            } else {
                std::hint::spin_loop();
            }
        }
        false
    }

    fn entry(&self, site: u32) -> &SiteEntry {
        if site == OVERFLOW_SITE {
            &self.overflow
        } else {
            &self.slots[site as usize]
        }
    }

    /// Credits a sampled allocation of unbiased weight `bytes` to `site`.
    pub fn record_alloc(&self, site: u32, bytes: u64) {
        let e = self.entry(site);
        e.alloc_samples.fetch_add(1, Ordering::Relaxed);
        e.alloc_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Credits the free of a sampled object of weight `bytes` to `site`.
    pub fn record_free(&self, site: u32, bytes: u64) {
        let e = self.entry(site);
        e.free_samples.fetch_add(1, Ordering::Relaxed);
        e.freed_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Estimated live bytes across every site (unbiased estimator sum).
    pub fn live_bytes_estimate(&self) -> u64 {
        self.iter_entries()
            .map(|e| {
                e.alloc_bytes
                    .load(Ordering::Relaxed)
                    .saturating_sub(e.freed_bytes.load(Ordering::Relaxed))
            })
            .sum()
    }

    /// Number of distinct interned sites (excluding the overflow entry).
    pub fn site_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|e| e.state.load(Ordering::Acquire) == SITE_READY)
            .count()
    }

    fn iter_entries(&self) -> impl Iterator<Item = &SiteEntry> {
        self.slots
            .iter()
            .filter(|e| e.state.load(Ordering::Acquire) == SITE_READY)
            .chain(
                (self.overflow.alloc_samples.load(Ordering::Relaxed) > 0)
                    .then_some(&self.overflow),
            )
    }

    /// Snapshots every site with at least one sample (allocates; callers
    /// hold the internal-alloc guard).
    pub fn snapshots(&self) -> Vec<SiteSnapshot> {
        let mut out = Vec::new();
        for (idx, e) in self.slots.iter().enumerate() {
            if e.state.load(Ordering::Acquire) != SITE_READY {
                continue;
            }
            if e.alloc_samples.load(Ordering::Relaxed) == 0 {
                continue;
            }
            let depth = (e.depth.load(Ordering::Relaxed) as usize).min(MAX_FRAMES);
            out.push(SiteSnapshot {
                site: idx as u32,
                frames: e.frames[..depth]
                    .iter()
                    .map(|f| f.load(Ordering::Relaxed))
                    .collect(),
                alloc_samples: e.alloc_samples.load(Ordering::Relaxed),
                alloc_bytes: e.alloc_bytes.load(Ordering::Relaxed),
                free_samples: e.free_samples.load(Ordering::Relaxed),
                freed_bytes: e.freed_bytes.load(Ordering::Relaxed),
            });
        }
        if self.overflow.alloc_samples.load(Ordering::Relaxed) > 0 {
            out.push(SiteSnapshot {
                site: OVERFLOW_SITE,
                frames: Vec::new(),
                alloc_samples: self.overflow.alloc_samples.load(Ordering::Relaxed),
                alloc_bytes: self.overflow.alloc_bytes.load(Ordering::Relaxed),
                free_samples: self.overflow.free_samples.load(Ordering::Relaxed),
                freed_bytes: self.overflow.freed_bytes.load(Ordering::Relaxed),
            });
        }
        out.sort_by_key(|s| std::cmp::Reverse(s.live_bytes()));
        out
    }
}

// ---------------------------------------------------------------------
// Sampled set
// ---------------------------------------------------------------------

const ADDR_EMPTY: usize = 0;
const ADDR_TOMBSTONE: usize = 1;
const ADDR_CLAIMED: usize = 2;

#[derive(Debug)]
struct LiveSlot {
    addr: AtomicUsize,
    weight: AtomicU64,
    site: AtomicU32,
}

/// Lock-free address → (weight, site) map of live sampled objects.
#[derive(Debug)]
pub(crate) struct SampledSet {
    slots: Box<[LiveSlot]>,
    mask: usize,
}

#[inline]
fn hash_addr(addr: usize) -> usize {
    // Objects are ≥16-byte aligned; drop dead bits then mix.
    (addr >> 4).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

impl SampledSet {
    /// Creates a set with `capacity` slots (rounded up to a power of two,
    /// minimum 64).
    pub fn new(capacity: usize) -> SampledSet {
        let cap = capacity.next_power_of_two().max(64);
        SampledSet {
            slots: (0..cap)
                .map(|_| LiveSlot {
                    addr: AtomicUsize::new(ADDR_EMPTY),
                    weight: AtomicU64::new(0),
                    site: AtomicU32::new(0),
                })
                .collect(),
            mask: cap - 1,
        }
    }

    /// Records `addr` as a live sampled object. Returns `false` (sample
    /// dropped) when no slot frees up within the probe window.
    pub fn insert(&self, addr: usize, weight: u64, site: u32) -> bool {
        debug_assert!(addr > ADDR_CLAIMED);
        let mut idx = hash_addr(addr) & self.mask;
        for _ in 0..PROBE_LIMIT.min(self.slots.len()) {
            let slot = &self.slots[idx];
            let cur = slot.addr.load(Ordering::Acquire);
            if (cur == ADDR_EMPTY || cur == ADDR_TOMBSTONE)
                && slot
                    .addr
                    .compare_exchange(cur, ADDR_CLAIMED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                slot.weight.store(weight, Ordering::Relaxed);
                slot.site.store(site, Ordering::Relaxed);
                slot.addr.store(addr, Ordering::Release);
                return true;
            }
            idx = (idx + 1) & self.mask;
        }
        false
    }

    /// Removes `addr` if it is a live sampled object, returning its
    /// `(weight, site)`. Misses (the common case: unsampled objects) cost
    /// one probe run that usually ends on the first empty slot.
    pub fn remove(&self, addr: usize) -> Option<(u64, u32)> {
        let mut idx = hash_addr(addr) & self.mask;
        for _ in 0..PROBE_LIMIT.min(self.slots.len()) {
            let slot = &self.slots[idx];
            let cur = slot.addr.load(Ordering::Acquire);
            if cur == addr {
                // Payload is stable while `addr` is published; read it
                // before the CAS releases the slot for reuse.
                let weight = slot.weight.load(Ordering::Relaxed);
                let site = slot.site.load(Ordering::Relaxed);
                if slot
                    .addr
                    .compare_exchange(addr, ADDR_TOMBSTONE, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return Some((weight, site));
                }
                // A racing free consumed it first (hostile double free).
                return None;
            }
            if cur == ADDR_EMPTY {
                return None;
            }
            idx = (idx + 1) & self.mask;
        }
        None
    }

    /// Live sampled objects currently tracked (dump diagnostic; O(slots)).
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.addr.load(Ordering::Relaxed) > ADDR_CLAIMED)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_distinguishes() {
        let t = FingerprintTable::new(256);
        let a = t.intern(&[0x1000, 0x2000]);
        let b = t.intern(&[0x1000, 0x2000]);
        let c = t.intern(&[0x1000, 0x2001]);
        let d = t.intern(&[0x1000]);
        assert_eq!(a, b, "identical chains intern to one site");
        assert_ne!(a, c);
        assert_ne!(a, d, "prefix chains are distinct sites");
        assert_eq!(t.site_count(), 3);
    }

    #[test]
    fn record_and_estimate() {
        let t = FingerprintTable::new(64);
        let s = t.intern(&[0xabc]);
        t.record_alloc(s, 1000);
        t.record_alloc(s, 500);
        t.record_free(s, 500);
        assert_eq!(t.live_bytes_estimate(), 1000);
        let snaps = t.snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].alloc_samples, 2);
        assert_eq!(snaps[0].live_bytes(), 1000);
        assert_eq!(snaps[0].live_samples(), 1);
        assert_eq!(snaps[0].frames, vec![0xabc]);
    }

    #[test]
    fn overflow_site_catches_spill() {
        // Capacity 64 with a probe limit of 64: fill it past the brim.
        let t = FingerprintTable::new(1);
        let mut overflowed = false;
        for i in 0..1000usize {
            let site = t.intern(&[0x1000 + i * 16]);
            if site == OVERFLOW_SITE {
                overflowed = true;
                t.record_alloc(site, 64);
            }
        }
        assert!(overflowed, "1000 chains must not fit 64 slots");
        let snaps = t.snapshots();
        let of = snaps.iter().find(|s| s.site == OVERFLOW_SITE).unwrap();
        assert!(of.alloc_samples > 0);
        assert!(of.frames.is_empty());
    }

    #[test]
    fn sampled_set_roundtrip_and_miss() {
        let set = SampledSet::new(128);
        assert!(set.insert(0x7f00_0000_1000, 4096, 3));
        assert_eq!(set.len(), 1);
        assert_eq!(set.remove(0x7f00_0000_2000), None, "miss");
        assert_eq!(set.remove(0x7f00_0000_1000), Some((4096, 3)));
        assert_eq!(set.remove(0x7f00_0000_1000), None, "double free misses");
        assert_eq!(set.len(), 0);
    }

    #[test]
    fn sampled_set_reuses_tombstones() {
        let set = SampledSet::new(64);
        for round in 0..10u64 {
            for i in 0..32usize {
                assert!(
                    set.insert(0x1_0000 + i * 16, round + 1, i as u32),
                    "round {round}: insert {i} (tombstones must be reused)"
                );
            }
            for i in 0..32usize {
                assert_eq!(set.remove(0x1_0000 + i * 16), Some((round + 1, i as u32)));
            }
        }
    }

    #[test]
    fn sampled_set_drops_on_full() {
        let set = SampledSet::new(1); // rounds up to 64
        let mut inserted = 0;
        for i in 0..200usize {
            if set.insert(0x1_0000 + i * 16, 1, 0) {
                inserted += 1;
            }
        }
        assert!(inserted >= 60, "most slots usable");
        assert!(inserted < 200, "overflow must drop, not loop");
    }

    #[test]
    fn concurrent_intern_and_set_churn() {
        let t = std::sync::Arc::new(FingerprintTable::new(512));
        let set = std::sync::Arc::new(SampledSet::new(4096));
        let mut handles = vec![];
        for th in 0..4usize {
            let t = std::sync::Arc::clone(&t);
            let set = std::sync::Arc::clone(&set);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000usize {
                    // Half the chains are shared across threads, half private.
                    let chain = if i % 2 == 0 {
                        [0x4000 + (i % 50) * 8, 0x9000]
                    } else {
                        [0x4000 + th * 0x1_0000 + i * 8, 0x9000]
                    };
                    let site = t.intern(&chain);
                    t.record_alloc(site, 100);
                    let addr = 0x7f00_0000 + th * 0x10_0000 + i * 16;
                    if set.insert(addr, 100, site) {
                        let (w, s) = set.remove(addr).expect("own insert visible");
                        t.record_free(s, w);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.live_bytes_estimate(), 0, "every sampled alloc was freed");
        assert_eq!(set.len(), 0);
    }
}
