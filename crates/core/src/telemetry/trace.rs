//! mesh-trace: opt-in (`MESH_TRACE=1`) binary event tracing of the same
//! slow-path operations the latency histograms measure, drained to
//! Chrome trace-event JSON (`chrome://tracing` / Perfetto).
//!
//! ## Event encoding
//!
//! One event is four `u64` words in a lock-free ring:
//!
//! | word | contents |
//! |---|---|
//! | 0 | bits 0‥16 [`TimedOp`] discriminant; bits 16‥48 recorder tid |
//! | 1 | start, nanoseconds since the heap's epoch |
//! | 2 | duration, nanoseconds |
//! | 3 | op-specific argument (size class, pages, batch length, …) |
//!
//! ## Ring discipline
//!
//! Rings are fixed-capacity (power-of-two, `MESH_TRACE_BUF_EVENTS`) and
//! **overwrite oldest**: writers claim slot `head.fetch_add(1) & mask`
//! and store the four words relaxed. A full ring never blocks and never
//! drops *new* events — recent history is what a trace is for. Mutator
//! threads write their own registered ring (no sharing); operations
//! recorded under global locks (mesh phases, drains, segment work) go to
//! one shared ring where the `fetch_add` claim keeps writers off each
//! other's slots. Dumps read racily by design: a slot being overwritten
//! mid-read yields one inconsistent event (all fields still numbers, so
//! the JSON stays well-formed), never a torn pointer.
//!
//! Tracing off is one `Option` load on each slow-path record; the fast
//! path is untouched either way.

use super::histogram::TimedOp;
use crate::config::MeshConfig;
use crate::sync::{Mutex, MutexGuard};
use std::cell::Cell;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// `u64` words per trace event.
const EVENT_WORDS: usize = 4;

/// Process-wide trace-thread-id source. Ids are small integers assigned
/// on a thread's first recorded event (assignment is one `fetch_add` —
/// no allocation, safe in allocator context). Tid 0 never appears: it is
/// the "unassigned" sentinel.
static NEXT_TRACE_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static TRACE_TID: Cell<u32> = const { Cell::new(0) };
}

/// The calling thread's trace tid, assigned on first use.
pub(crate) fn trace_tid() -> u32 {
    TRACE_TID.with(|c| {
        let mut tid = c.get();
        if tid == 0 {
            tid = NEXT_TRACE_TID.fetch_add(1, Ordering::Relaxed);
            c.set(tid);
        }
        tid
    })
}

/// A decoded trace event (dump-side view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The operation.
    pub op: TimedOp,
    /// Recording thread's trace tid.
    pub tid: u32,
    /// Start, nanoseconds since the heap's epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Op-specific argument.
    pub arg: u64,
}

/// One fixed-capacity, overwrite-oldest event ring.
#[derive(Debug)]
pub(crate) struct TraceRing {
    mask: usize,
    /// Total events ever claimed (monotonic; slot = `head & mask`).
    head: AtomicUsize,
    slots: Box<[AtomicU64]>,
}

impl TraceRing {
    fn new(capacity: usize) -> TraceRing {
        let cap = capacity.next_power_of_two().max(64);
        TraceRing {
            mask: cap - 1,
            head: AtomicUsize::new(0),
            slots: (0..cap * EVENT_WORDS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Event capacity (power of two).
    fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Records one event. Lock-free: one `fetch_add` claim plus four
    /// relaxed stores; a full ring overwrites its oldest event.
    pub(crate) fn push(&self, op: TimedOp, tid: u32, start_ns: u64, dur_ns: u64, arg: u64) {
        let slot = (self.head.fetch_add(1, Ordering::Relaxed) & self.mask) * EVENT_WORDS;
        let word0 = (op as u16 as u64) | ((tid as u64) << 16);
        self.slots[slot].store(word0, Ordering::Relaxed);
        self.slots[slot + 1].store(start_ns, Ordering::Relaxed);
        self.slots[slot + 2].store(dur_ns, Ordering::Relaxed);
        self.slots[slot + 3].store(arg, Ordering::Relaxed);
    }

    /// Number of events currently readable.
    pub(crate) fn len(&self) -> usize {
        self.head.load(Ordering::Relaxed).min(self.capacity())
    }

    /// Drains the readable window, oldest first. Reads race with
    /// writers by design (see module docs).
    fn drain(&self, out: &mut Vec<TraceEvent>) {
        let head = self.head.load(Ordering::Relaxed);
        let first = head.saturating_sub(self.capacity());
        for idx in first..head {
            let slot = (idx & self.mask) * EVENT_WORDS;
            let word0 = self.slots[slot].load(Ordering::Relaxed);
            let Some(op) = TimedOp::from_u16(word0 as u16) else {
                continue; // torn or never-written slot
            };
            out.push(TraceEvent {
                op,
                tid: (word0 >> 16) as u32,
                start_ns: self.slots[slot + 1].load(Ordering::Relaxed),
                dur_ns: self.slots[slot + 2].load(Ordering::Relaxed),
                arg: self.slots[slot + 3].load(Ordering::Relaxed),
            });
        }
    }

    /// Empties the ring (fork child; single-threaded there, and stale
    /// slot contents are unreachable once `head` is 0).
    fn wipe(&self) {
        self.head.store(0, Ordering::Relaxed);
        // Invalidate word 0 of every slot so a later partial lap cannot
        // resurrect pre-wipe events through a decodable op field.
        for slot in 0..=self.mask {
            self.slots[slot * EVENT_WORDS].store(u64::MAX, Ordering::Relaxed);
        }
    }
}

/// The heap's tracing state: per-thread rings plus the shared ring for
/// events recorded under global locks. `None` on the heap when
/// `MESH_TRACE` is off — every hook is behind that `Option`.
pub(crate) struct TraceSet {
    buf_events: usize,
    /// Runtime on/off gate (mesh-ctl `set trace 0|1`). Starts on; rings
    /// stay allocated while off, so re-enabling is one atomic store.
    enabled: AtomicBool,
    shared: TraceRing,
    rings: Mutex<Vec<Arc<TraceRing>>>,
    /// Destination + SIGUSR2 request flag (`MESH_TRACE_PATH`).
    target: super::DumpTarget,
}

impl std::fmt::Debug for TraceSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSet")
            .field("buf_events", &self.buf_events)
            .field("path", &self.target.path())
            .finish_non_exhaustive()
    }
}

impl TraceSet {
    /// Builds the tracing state for `config`, or `None` when tracing is
    /// off.
    pub(crate) fn new(config: &MeshConfig) -> Option<Arc<TraceSet>> {
        if !config.is_tracing() {
            return None;
        }
        let buf_events = config.trace_buf_event_count();
        Some(Arc::new(TraceSet {
            buf_events,
            enabled: AtomicBool::new(true),
            shared: TraceRing::new(buf_events),
            rings: Mutex::new(Vec::new()),
            target: super::DumpTarget::new(
                super::DumpKind::Trace,
                config.trace_dump_path().map(Path::to_path_buf),
            ),
        }))
    }

    /// The configured dump destination (`MESH_TRACE_PATH`), if any.
    pub(crate) fn dump_path(&self) -> Option<&Path> {
        self.target.path()
    }

    /// Whether event recording is currently on.
    #[inline]
    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns event recording on or off at runtime (mesh-ctl
    /// `set trace 0|1`). Rings and their history are kept either way.
    pub(crate) fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Creates and registers a per-thread ring (thread-heap creation).
    /// The ring stays registered after its thread dies: its tail of
    /// events is part of the trace.
    pub(crate) fn register_ring(&self) -> Arc<TraceRing> {
        let ring = Arc::new(TraceRing::new(self.buf_events));
        self.rings.lock().push(Arc::clone(&ring));
        ring
    }

    /// Records an event from a global-lock context into the shared ring
    /// (a no-op while recording is disabled).
    #[inline]
    pub(crate) fn record_shared(&self, op: TimedOp, start_ns: u64, dur_ns: u64, arg: u64) {
        if self.is_enabled() {
            self.shared.push(op, trace_tid(), start_ns, dur_ns, arg);
        }
    }

    /// Requests a trace dump at the next telemetry tick. Safe from a
    /// signal handler: one relaxed atomic store.
    #[inline]
    pub(crate) fn request_dump(&self) {
        self.target.request();
    }

    /// Whether a dump was requested; claims the request.
    pub(crate) fn take_dump_due(&self) -> bool {
        self.target.take_requested()
    }

    /// Holds the ring-registry lock (fork quiescence; a leaf lock).
    pub(crate) fn lock_rings(&self) -> MutexGuard<'_, Vec<Arc<TraceRing>>> {
        self.rings.lock()
    }

    /// Wipes every ring (fork child: the copied rings hold the parent's
    /// history, which is not this process's trace).
    pub(crate) fn wipe_all(&self) {
        self.shared.wipe();
        for ring in self.rings.lock().iter() {
            ring.wipe();
        }
        self.target.clear_requested();
    }

    /// Total readable events across all rings.
    pub(crate) fn event_count(&self) -> usize {
        self.shared.len() + self.rings.lock().iter().map(|r| r.len()).sum::<usize>()
    }

    /// Decoded events from every ring, oldest-first per ring.
    fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.event_count());
        self.shared.drain(&mut out);
        for ring in self.rings.lock().iter() {
            ring.drain(&mut out);
        }
        out
    }

    /// Renders every ring as Chrome trace-event JSON (the
    /// `chrome://tracing` / Perfetto "JSON object format"): complete
    /// (`"ph":"X"`) events with microsecond `ts`/`dur` at nanosecond
    /// precision, one row per recording thread.
    pub(crate) fn chrome_json(&self, uptime_ms: u64) -> String {
        let events = self.events();
        let pid = std::process::id();
        let mut out = String::with_capacity(64 + events.len() * 128);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"mesh\",\"ph\":\"X\",\
                 \"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":{pid},\"tid\":{},\
                 \"args\":{{\"arg\":{}}}}}",
                e.op.name(),
                e.start_ns / 1000,
                e.start_ns % 1000,
                e.dur_ns / 1000,
                e.dur_ns % 1000,
                e.tid,
                e.arg,
            ));
        }
        out.push_str(&format!(
            "],\"displayTimeUnit\":\"ns\",\
             \"otherData\":{{\"mesh_trace_version\":1,\"uptime_ms\":{uptime_ms}}}}}"
        ));
        out
    }

    /// Writes one trace dump via the shared [`super::DumpTarget`]: to
    /// `MESH_TRACE_PATH` (truncating) or, with no path, to stderr as a
    /// single `mesh-trace: `-prefixed line.
    pub(crate) fn write_dump(&self, json: &str) {
        self.target.write(json);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_config() -> MeshConfig {
        MeshConfig::default().tracing(true).trace_buf_events(64)
    }

    #[test]
    fn disabled_config_builds_no_state() {
        assert!(TraceSet::new(&MeshConfig::default()).is_none());
        assert!(TraceSet::new(&trace_config()).is_some());
    }

    #[test]
    fn ring_overwrites_oldest_and_drains_in_order() {
        let ring = TraceRing::new(64);
        for i in 0..100u64 {
            ring.push(TimedOp::Refill, 7, i, 10, i);
        }
        assert_eq!(ring.len(), 64);
        let mut events = Vec::new();
        ring.drain(&mut events);
        assert_eq!(events.len(), 64);
        // The newest 64 survive, oldest-first.
        assert_eq!(events.first().unwrap().arg, 36);
        assert_eq!(events.last().unwrap().arg, 99);
        assert!(events.windows(2).all(|w| w[0].arg + 1 == w[1].arg));
        assert_eq!(events[0].tid, 7);
        assert_eq!(events[0].op, TimedOp::Refill);
    }

    #[test]
    fn wipe_empties_and_blocks_resurrection() {
        let ring = TraceRing::new(64);
        for i in 0..200u64 {
            ring.push(TimedOp::MeshPass, 1, i, 1, 0);
        }
        ring.wipe();
        assert_eq!(ring.len(), 0);
        let mut events = Vec::new();
        ring.drain(&mut events);
        assert!(events.is_empty());
        // A partial lap after the wipe exposes only post-wipe events.
        ring.push(TimedOp::Madvise, 2, 5, 6, 7);
        events.clear();
        // len is 1 but a racing reader could still only decode slot 0.
        assert_eq!(ring.len(), 1);
        ring.drain(&mut events);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].op, TimedOp::Madvise);
    }

    #[test]
    fn chrome_json_is_wellformed() {
        let t = TraceSet::new(&trace_config()).unwrap();
        t.record_shared(TimedOp::MeshCopy, 1_234_567, 89_012, 42);
        let ring = t.register_ring();
        ring.push(TimedOp::Refill, trace_tid(), 2_000_000, 1_500, 3);
        let json = t.chrome_json(77);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"mesh_copy\""));
        assert!(json.contains("\"name\":\"refill\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1234.567"));
        assert!(json.contains("\"dur\":89.012"));
        assert!(json.contains("\"dur\":1.500"));
        assert!(json.contains("\"uptime_ms\":77"));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        assert!(!json.contains('\n'), "dump is a single line");
    }

    #[test]
    fn dump_request_is_one_shot_and_wipe_clears_it() {
        let t = TraceSet::new(&trace_config()).unwrap();
        assert!(!t.take_dump_due());
        t.request_dump();
        assert!(t.take_dump_due());
        assert!(!t.take_dump_due());
        t.request_dump();
        t.wipe_all();
        assert!(!t.take_dump_due(), "child inherits no pending dump");
    }

    #[test]
    fn wipe_all_empties_every_ring() {
        let t = TraceSet::new(&trace_config()).unwrap();
        t.record_shared(TimedOp::MeshPass, 1, 2, 3);
        let ring = t.register_ring();
        ring.push(TimedOp::Refill, 1, 1, 1, 1);
        assert_eq!(t.event_count(), 2);
        t.wipe_all();
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.chrome_json(0).matches("\"ph\"").count(), 0);
    }

    #[test]
    fn trace_tids_are_stable_and_nonzero() {
        let a = trace_tid();
        assert!(a > 0);
        assert_eq!(trace_tid(), a, "tid stable within a thread");
        let b = std::thread::spawn(trace_tid).join().unwrap();
        assert_ne!(a, b, "distinct threads get distinct tids");
    }

    #[test]
    fn dump_writes_to_path() {
        let path =
            std::env::temp_dir().join(format!("mesh-trace-test-{}.json", std::process::id()));
        let cfg = trace_config().trace_path(Some(path.clone()));
        let t = TraceSet::new(&cfg).unwrap();
        t.write_dump("{\"traceEvents\":[]}");
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "{\"traceEvents\":[]}\n");
        std::fs::remove_file(&path).ok();
    }
}
