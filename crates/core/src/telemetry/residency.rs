//! Residency accounting: decomposing mapped bytes into live, free-dirty,
//! free-clean, and metadata — per segment and heap-wide — plus the
//! sampled `mincore(2)` sweep that estimates how much of the mapping the
//! kernel still holds resident.
//!
//! The decomposition is pure arithmetic over the segment snapshots the
//! arena already maintains (§4.4.1 dirty/clean bins): no new bookkeeping
//! in the allocation path. The `mincore` sweep is bounded per poll
//! (`MESH_SENSE_MINCORE_PAGES`) and walks the mapped page sequence with a
//! persistent cursor, so over successive polls the whole heap is sampled
//! round-robin without any single poll touching more than the budget.

use crate::segment::SegmentStats;
use crate::size_classes::PAGE_SIZE;

/// Residency decomposition of one segment, in pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentResidency {
    /// Segment id (matches [`SegmentStats::id`]).
    pub id: u64,
    /// First page within the arena reservation.
    pub start_page: u32,
    /// Segment length in pages.
    pub pages: u32,
    /// Pages handed out as spans (live from the allocator's view; actual
    /// object occupancy within them is the spectrum's business).
    pub live_pages: usize,
    /// Freed pages still committed (dirty bins): reclaimable by purge.
    pub free_dirty_pages: usize,
    /// Freed pages already released, plus the never-touched fresh
    /// frontier: mapped but costing no physical memory.
    pub free_clean_pages: usize,
    /// Pages the decomposition cannot attribute (span headers in flight,
    /// partially carved runs): the metadata/slack remainder.
    pub meta_pages: usize,
    /// Physical pages committed in the segment's file.
    pub committed_pages: usize,
}

/// Heap-wide residency decomposition (sums over segments, in bytes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResidencyBreakdown {
    /// Per-segment rows, in arena order.
    pub segments: Vec<SegmentResidency>,
    /// Total mapped bytes (every segment's full extent).
    pub mapped_bytes: u64,
    /// Bytes in pages handed out as spans.
    pub live_bytes: u64,
    /// Bytes in freed-but-committed (dirty) pages.
    pub free_dirty_bytes: u64,
    /// Bytes in released or never-touched (clean/fresh) pages.
    pub free_clean_bytes: u64,
    /// Bytes the decomposition attributes to metadata/slack.
    pub meta_bytes: u64,
    /// Bytes committed in segment files (the kernel-side upper bound on
    /// what the heap itself keeps resident).
    pub committed_bytes: u64,
}

/// Decomposes segment snapshots into the four residency categories.
pub fn decompose(segs: &[SegmentStats]) -> ResidencyBreakdown {
    let mut out = ResidencyBreakdown::default();
    let page = PAGE_SIZE as u64;
    for s in segs {
        let pages = s.pages as usize;
        let live = s.outstanding_pages;
        let dirty = s.dirty_pages;
        let clean = s.clean_pages + s.fresh_pages as usize;
        let meta = pages.saturating_sub(live + dirty + clean);
        out.segments.push(SegmentResidency {
            id: s.id,
            start_page: s.start_page,
            pages: s.pages,
            live_pages: live,
            free_dirty_pages: dirty,
            free_clean_pages: clean,
            meta_pages: meta,
            committed_pages: s.committed_pages,
        });
        out.mapped_bytes += pages as u64 * page;
        out.live_bytes += live as u64 * page;
        out.free_dirty_bytes += dirty as u64 * page;
        out.free_clean_bytes += clean as u64 * page;
        out.meta_bytes += meta as u64 * page;
        out.committed_bytes += s.committed_pages as u64 * page;
    }
    out
}

/// Samples up to `budget` pages of the mapped segment ranges with
/// `mincore(2)`, resuming from `cursor` (a position in the concatenated
/// mapped-page sequence). Returns `(sampled, resident, next_cursor)`;
/// ranges the kernel rejects (a race with retirement) are skipped and not
/// counted as sampled.
pub(crate) fn sample_residency(
    base: usize,
    segs: &[SegmentStats],
    cursor: usize,
    budget: usize,
) -> (usize, usize, usize) {
    let total: usize = segs.iter().map(|s| s.pages as usize).sum();
    if total == 0 || budget == 0 {
        return (0, 0, 0);
    }
    let mut remaining = budget.min(total);
    let mut pos = cursor % total;
    let (mut sampled, mut resident) = (0usize, 0usize);
    while remaining > 0 {
        // Locate the segment holding sequence position `pos` and take the
        // longest contiguous run that fits the remaining budget.
        let mut acc = 0usize;
        for s in segs {
            let len = s.pages as usize;
            if pos < acc + len {
                let off = pos - acc;
                let take = remaining.min(len - off);
                let addr = base + (s.start_page as usize + off) * PAGE_SIZE;
                if let Some(r) = crate::sys::resident_pages(addr, take) {
                    sampled += take;
                    resident += r;
                }
                remaining -= take;
                pos = (pos + take) % total;
                break;
            }
            acc += len;
        }
    }
    (sampled, resident, pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(id: u64, start: u32, pages: u32, fresh: u32, dirty: usize, clean: usize, out: usize) -> SegmentStats {
        SegmentStats {
            id,
            start_page: start,
            pages,
            fresh_pages: fresh,
            committed_pages: out + dirty,
            dirty_pages: dirty,
            clean_pages: clean,
            outstanding_pages: out,
            retirable: false,
        }
    }

    #[test]
    fn decompose_partitions_every_page() {
        let segs = [
            seg(0, 0, 100, 10, 20, 30, 35),
            seg(1, 100, 50, 50, 0, 0, 0),
        ];
        let b = decompose(&segs);
        assert_eq!(b.segments.len(), 2);
        let s0 = &b.segments[0];
        assert_eq!(s0.live_pages, 35);
        assert_eq!(s0.free_dirty_pages, 20);
        assert_eq!(s0.free_clean_pages, 40, "clean bins + fresh frontier");
        assert_eq!(s0.meta_pages, 5, "remainder is metadata/slack");
        assert_eq!(
            s0.live_pages + s0.free_dirty_pages + s0.free_clean_pages + s0.meta_pages,
            100,
            "categories partition the segment"
        );
        let page = PAGE_SIZE as u64;
        assert_eq!(b.mapped_bytes, 150 * page);
        assert_eq!(b.live_bytes, 35 * page);
        assert_eq!(b.free_dirty_bytes, 20 * page);
        assert_eq!(b.free_clean_bytes, 90 * page, "segment 1 is all fresh");
        assert_eq!(b.meta_bytes, 5 * page);
        assert_eq!(b.committed_bytes, 55 * page, "outstanding + dirty");
        assert_eq!(
            b.live_bytes + b.free_dirty_bytes + b.free_clean_bytes + b.meta_bytes,
            b.mapped_bytes
        );
    }

    #[test]
    fn decompose_empty_heap() {
        let b = decompose(&[]);
        assert_eq!(b.mapped_bytes, 0);
        assert!(b.segments.is_empty());
    }

    #[test]
    fn sweep_cursor_walks_round_robin() {
        // Use a real mapping so mincore has something to inspect.
        let f = crate::sys::MemFile::create(8 * PAGE_SIZE).unwrap();
        let base = crate::sys::map_file_shared(&f).unwrap() as usize;
        unsafe {
            std::ptr::write_bytes(base as *mut u8, 1, 8 * PAGE_SIZE);
        }
        let segs = [seg(0, 0, 8, 0, 0, 0, 8)];
        let (s1, r1, c1) = sample_residency(base, &segs, 0, 3);
        assert_eq!(s1, 3);
        assert_eq!(c1, 3, "cursor advances by the budget");
        assert!(r1 <= 3);
        let (s2, _, c2) = sample_residency(base, &segs, c1, 6);
        assert_eq!(s2, 6, "wraps across the end of the sequence");
        assert_eq!(c2, 1);
        // Budget larger than the heap samples each page exactly once.
        let (s3, r3, c3) = sample_residency(base, &segs, c2, 100);
        assert_eq!(s3, 8);
        assert_eq!(c3, c2, "full wrap returns to the same position");
        assert_eq!(r3, 8, "all touched pages resident");
        // Zero budget or empty heap: no work.
        assert_eq!(sample_residency(base, &segs, 0, 0), (0, 0, 0));
        assert_eq!(sample_residency(base, &[], 0, 10), (0, 0, 0));
        unsafe { crate::sys::unmap(base as *mut u8, 8 * PAGE_SIZE) };
    }
}
