//! mesh-ctl: the opt-in (`MESH_CTL=/path/sock`) Unix-domain control
//! socket — live out-of-process introspection and control for a running
//! heap.
//!
//! ## Protocol (version 1)
//!
//! Line-oriented over `SOCK_STREAM`. On connect the server sends one
//! greeting line, `mesh-ctl 1\n`. Each request is one line; each
//! response is either
//!
//! ```text
//! ok <len>\n<len payload bytes>\n
//! err <message>\n
//! ```
//!
//! The length-prefixed framing keeps the payload binary-safe (the
//! `pprof` envelope is a protobuf, not text). Commands:
//!
//! | request | payload |
//! |---|---|
//! | `stats` | `mesh: key=value` text block (the exit-dump format) |
//! | `prom` | Prometheus text exposition |
//! | `profile` | version-1 heap-profile JSON (`err` when `MESH_PROF` off) |
//! | `pprof` | pprof protobuf of the live-heap profile (binary) |
//! | `trace` | Chrome trace-event JSON (`err` when `MESH_TRACE` off) |
//! | `sense` | version-1 mesh-sense JSON (`err` when sensing off) |
//! | `ledger` | meshing-effectiveness ledger JSON (always available) |
//! | `spectrum` | per-class occupancy-spectrum JSON |
//! | `mesh_now` | runs one meshing pass; summary JSON |
//! | `madvise_now` | purges dirty pages + retires segments; `{}` |
//! | `set <knob> <value>` | applies a whitelisted knob; ack JSON |
//! | `help` | this command list |
//!
//! ## The knob whitelist
//!
//! `set` accepts only knobs whose application is a single atomic store
//! on state that every reader already tolerates changing between two
//! loads: `meshing`, `mesh_period_ms`, `probe_limit`,
//! `sense_interval_ms`, `trace`, `prof_sample_bytes`, `transfer_batch`.
//! Structural configuration (arena size, size classes, hardening,
//! enabling a subsystem that was built disabled) is rejected — those
//! choices sized tables and spawned state at heap birth, and no lock
//! ordering lets a socket command rebuild them under live traffic.
//!
//! ## Threading and fork safety
//!
//! The socket is served entirely by the existing background thread: the
//! listener is non-blocking, [`CtlState::tick`] accepts/reads/responds
//! during the telemetry beat, and `GlobalHeap::next_park` bounds the
//! park at [`CTL_PARK`] while the socket is live. The malloc fast path
//! never touches any of this. All server allocations happen inside the
//! tick's `with_internal_alloc` scope (the mesher wraps the whole beat).
//!
//! The single I/O mutex joins `GlobalHeap::lock_all`'s fork-quiescence
//! set, so `fork()` cannot land mid-response: a client sees either a
//! complete envelope or a clean EOF, never a torn frame. The mutex is a
//! *leaf* in the lock order — [`CtlState::tick`] extracts complete
//! request lines under it, **drops it** while the dispatcher computes
//! responses (dispatch takes class/arena/sender locks that `lock_all`
//! acquires before the ctl lock; holding the ctl lock across dispatch
//! would invert that order and deadlock a concurrent `fork`), then
//! re-acquires it to write the frames. The child drops every inherited
//! connection and the inherited listener, unlinks the path, and re-binds
//! it ([`CtlState::rebind_for_child`]) — the path follows the newest
//! process, so operators who fork should configure per-process socket
//! paths (e.g. with `$$` in the wrapper).

use crate::sync::{Mutex, MutexGuard};
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Park bound for the background thread while the socket is live: the
/// worst-case latency from request to response. Large enough to keep an
/// idle-but-enabled socket near-free, small enough that `mesh-top`
/// refreshes feel live.
pub(crate) const CTL_PARK: Duration = Duration::from_millis(50);

/// Longest accepted *single* request line, bytes. Every real command
/// fits in a fraction of this; anything longer is a confused (or
/// hostile) client. The cap applies per line — complete lines are
/// drained as they arrive, so a pipelined burst of short commands may
/// total far more than this.
const MAX_REQUEST_BYTES: usize = 256;

/// Whole-frame write deadline. A client that cannot drain a frame within
/// this budget forfeits its connection rather than wedging the background
/// thread: the deadline bounds the *entire frame*, not one `write(2)`, so
/// a trickle-reading client cannot hold the I/O lock hostage by accepting
/// one byte per timeout.
const WRITE_TIMEOUT: Duration = Duration::from_secs(1);

/// Back-off between short-write retries while waiting out `WRITE_TIMEOUT`.
const WRITE_RETRY: Duration = Duration::from_millis(2);

/// The greeting sent on accept: protocol name + version.
const GREETING: &[u8] = b"mesh-ctl 1\n";

/// One accepted client connection and its partial-request buffer.
#[derive(Debug)]
struct CtlConn {
    /// Stable identity: responses computed with the I/O lock dropped are
    /// routed back by id, so a connection that vanished in between
    /// (shutdown, child rebind, client death) just loses its frames.
    id: u64,
    stream: UnixStream,
    buf: Vec<u8>,
}

/// The mutable socket state: the listener and the accepted connections.
/// One mutex guards it all so exactly one guard joins the fork-
/// quiescence set.
#[derive(Debug)]
pub(crate) struct CtlIo {
    /// `None` when binding failed (another live process owns the path) —
    /// the heap then runs with the socket disabled rather than failing
    /// construction.
    listener: Option<UnixListener>,
    conns: Vec<CtlConn>,
    next_id: u64,
}

/// The control-socket server state hung off the global heap.
#[derive(Debug)]
pub(crate) struct CtlState {
    path: PathBuf,
    max_clients: usize,
    io: Mutex<CtlIo>,
}

/// A parsed request.
enum Request<'a> {
    Envelope(&'a str),
    Set { knob: &'a str, value: &'a str },
}

/// What the dispatcher answered with.
pub(crate) enum Response {
    Ok(Vec<u8>),
    Err(String),
}

impl Response {
    fn ok_str(s: String) -> Response {
        Response::Ok(s.into_bytes())
    }

    fn err(msg: &str) -> Response {
        Response::Err(msg.to_string())
    }

    /// Serializes the wire frame: `ok <len>\n<payload>\n` / `err <msg>\n`.
    fn frame(&self) -> Vec<u8> {
        match self {
            Response::Ok(payload) => {
                let mut out = format!("ok {}\n", payload.len()).into_bytes();
                out.extend_from_slice(payload);
                out.push(b'\n');
                out
            }
            Response::Err(msg) => format!("err {msg}\n").into_bytes(),
        }
    }
}

impl CtlState {
    /// Binds the socket at `path`, handling the stale-socket case: a
    /// leftover path whose owner is gone (connect refused) is unlinked
    /// and re-bound; a path with a *live* owner is left alone and this
    /// heap runs with the socket disabled (two processes cannot share
    /// one listener, and stealing a running server's socket out from
    /// under it would be worse than a warning).
    pub(crate) fn bind(path: &Path, max_clients: usize) -> CtlState {
        let listener = Self::bind_listener(path);
        CtlState {
            path: path.to_path_buf(),
            max_clients: max_clients.max(1),
            io: Mutex::new(CtlIo {
                listener,
                conns: Vec::new(),
                next_id: 0,
            }),
        }
    }

    fn bind_listener(path: &Path) -> Option<UnixListener> {
        let listener = match UnixListener::bind(path) {
            Ok(l) => Some(l),
            Err(e) if e.kind() == ErrorKind::AddrInUse => Self::reclaim_stale(path),
            Err(e) => {
                eprintln!(
                    "mesh: ctl bind at {} failed ({e}); control socket disabled",
                    path.display()
                );
                None
            }
        };
        if let Some(l) = &listener {
            // The background thread must never block in accept().
            let _ = l.set_nonblocking(true);
        }
        listener
    }

    /// `EADDRINUSE`: the path already exists. A refused connect means the
    /// previous owner died without unlinking, and the path is reclaimed.
    ///
    /// The probe-unlink-bind sequence is serialized across processes by an
    /// exclusive lock on a `<path>.lock` sidecar: without it, two racers
    /// can both observe "refused", and the second unlink removes the
    /// first's *freshly bound* socket — both then believe they are
    /// listening, and the first's shutdown later unlinks the second's live
    /// path. Under the lock, whichever process reclaims first turns the
    /// other's probe into a live connect, and the loser stands down
    /// without unlinking anything. The sidecar itself is never unlinked
    /// (removing a lockfile re-opens the race it exists to close); it is a
    /// zero-byte file next to the socket.
    fn reclaim_stale(path: &Path) -> Option<UnixListener> {
        let mut lock_path = path.as_os_str().to_os_string();
        lock_path.push(".lock");
        let lock_file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&lock_path);
        // Held until this fn returns; best-effort — an unwritable
        // directory degrades to the (racy) unserialized probe rather than
        // disabling recovery outright.
        let _lock = match lock_file {
            Ok(f) => {
                let _ = f.lock();
                Some(f)
            }
            Err(_) => None,
        };
        match UnixStream::connect(path) {
            // NotFound: the stale owner's own cleanup won the unlink race;
            // the path is simply free now.
            Err(pe)
                if pe.kind() == ErrorKind::ConnectionRefused
                    || pe.kind() == ErrorKind::NotFound =>
            {
                let _ = std::fs::remove_file(path);
                match UnixListener::bind(path) {
                    Ok(l) => Some(l),
                    Err(e2) => {
                        eprintln!(
                            "mesh: ctl rebind of stale socket {} failed ({e2}); \
                             control socket disabled",
                            path.display()
                        );
                        None
                    }
                }
            }
            _ => {
                eprintln!(
                    "mesh: ctl socket {} has a live owner; control socket disabled \
                     for this process",
                    path.display()
                );
                None
            }
        }
    }

    /// The socket path this server was configured with.
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the listener actually bound (false: a live owner held the
    /// path, or bind failed).
    pub(crate) fn is_listening(&self) -> bool {
        self.io.lock().listener.is_some()
    }

    /// Holds the I/O lock (fork quiescence: no response write may be in
    /// flight across `fork`). Ordered after every other `lock_all` guard,
    /// and a strict *leaf*: `tick` never acquires a class/arena/sender
    /// lock while holding it — dispatch runs with it dropped — so taking
    /// it last can never invert against the shard order.
    pub(crate) fn lock_io(&self) -> MutexGuard<'_, CtlIo> {
        self.io.lock()
    }

    /// Child-side fork recovery: every inherited connection and the
    /// inherited listener belong to the parent — drop them (the parent
    /// keeps serving its accepted clients), unlink the path, and bind a
    /// fresh listener so the child answers on the same address.
    pub(crate) fn rebind_for_child(&self) {
        let mut io = self.io.lock();
        io.conns.clear();
        io.listener = None;
        let _ = std::fs::remove_file(&self.path);
        io.listener = Self::bind_listener(&self.path);
    }

    /// Stops serving: drops all connections (clients see EOF) and the
    /// listener, and unlinks the path. Idempotent.
    pub(crate) fn shutdown(&self) {
        let mut io = self.io.lock();
        if io.listener.is_some() || !io.conns.is_empty() {
            io.conns.clear();
            io.listener = None;
            let _ = std::fs::remove_file(&self.path);
        }
    }

    /// One background-thread beat: accepts pending connections (greeting
    /// each; over-cap connections are accepted and immediately dropped),
    /// reads request lines from every client, and answers them through
    /// `dispatch`. Runs under the caller's `with_internal_alloc` scope.
    ///
    /// Three phases around the I/O lock, which is a leaf in the heap's
    /// lock order: accept/read under the lock, dispatch with the lock
    /// **dropped** (the handlers take class/arena/sender locks that
    /// `GlobalHeap::lock_all` orders before the ctl lock — holding the
    /// ctl lock here would ABBA-deadlock a concurrent `fork`), then
    /// re-acquire to write the response frames. A connection that
    /// disappears between phases (shutdown, child rebind) silently drops
    /// its responses; the requests' side effects (`mesh_now`, `set`)
    /// still land, as the client had fully sent them.
    pub(crate) fn tick(&self, dispatch: &mut dyn FnMut(&str) -> Response) {
        // Phase 1 — under the I/O lock: accept and read. Nothing in here
        // touches a shard lock.
        let mut requests: Vec<(u64, String)> = Vec::new();
        {
            let mut io = self.io.lock();
            let CtlIo {
                listener,
                conns,
                next_id,
            } = &mut *io;
            if let Some(listener) = listener {
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if conns.len() >= self.max_clients {
                                drop(stream);
                                continue;
                            }
                            let _ = stream.set_nonblocking(true);
                            let mut conn = CtlConn {
                                id: *next_id,
                                stream,
                                buf: Vec::new(),
                            };
                            *next_id += 1;
                            if write_frame(&mut conn.stream, GREETING) {
                                conns.push(conn);
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }
            conns.retain_mut(|conn| read_requests(conn, &mut requests));
        }
        if requests.is_empty() {
            return;
        }
        // Phase 2 — lock dropped: the dispatcher takes whatever heap
        // locks it needs; a concurrent lock_all interleaves freely.
        let frames: Vec<(u64, Vec<u8>)> = requests
            .iter()
            .map(|(id, line)| (*id, dispatch(line).frame()))
            .collect();
        // Phase 3 — under the I/O lock again: route each frame back to
        // its connection by id and write it.
        let mut io = self.io.lock();
        for (id, frame) in frames {
            let Some(pos) = io.conns.iter().position(|c| c.id == id) else {
                continue;
            };
            if !write_frame(&mut io.conns[pos].stream, &frame) {
                io.conns.remove(pos);
            }
        }
    }
}

impl Drop for CtlState {
    fn drop(&mut self) {
        // Best-effort path cleanup on heap teardown. A forked child that
        // re-bound the same path races this when the parent exits first;
        // per-process paths avoid that (see module docs).
        self.shutdown();
    }
}

/// Reads whatever the client has sent, appending every complete request
/// line to `out` (tagged with the connection id), and says whether the
/// connection should be kept. Complete lines are drained as they arrive,
/// so [`MAX_REQUEST_BYTES`] bounds a *single line* — a pipelined burst of
/// short commands may total far more — and the residual buffer only ever
/// holds one unterminated partial line.
fn read_requests(conn: &mut CtlConn, out: &mut Vec<(u64, String)>) -> bool {
    let mut chunk = [0u8; 512];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return false, // client hung up
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = conn.buf.iter().position(|&b| b == b'\n') {
                    if pos > MAX_REQUEST_BYTES {
                        let _ = write_frame(
                            &mut conn.stream,
                            &Response::err("request line too long").frame(),
                        );
                        return false;
                    }
                    let line: Vec<u8> = conn.buf.drain(..=pos).collect();
                    let Ok(line) = std::str::from_utf8(&line[..pos]) else {
                        let _ = write_frame(
                            &mut conn.stream,
                            &Response::err("request not UTF-8").frame(),
                        );
                        return false;
                    };
                    let line = line.trim();
                    if !line.is_empty() {
                        out.push((conn.id, line.to_string()));
                    }
                }
                if conn.buf.len() > MAX_REQUEST_BYTES {
                    let _ = write_frame(
                        &mut conn.stream,
                        &Response::err("request line too long").frame(),
                    );
                    return false;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    true
}

/// Writes one frame on the (non-blocking) stream under a whole-frame
/// deadline. Returns whether the client is still good. `SO_SNDTIMEO`
/// would re-arm per `write(2)`, letting a client that drains one byte
/// per timeout hold the background thread — and with it the I/O lock —
/// indefinitely; the explicit deadline caps the total at
/// [`WRITE_TIMEOUT`] regardless of how the client trickles.
fn write_frame(stream: &mut UnixStream, bytes: &[u8]) -> bool {
    let deadline = Instant::now() + WRITE_TIMEOUT;
    let mut off = 0;
    while off < bytes.len() {
        match stream.write(&bytes[off..]) {
            Ok(0) => return false,
            Ok(n) => off += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return false;
                }
                std::thread::sleep(WRITE_RETRY);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

/// Parses one request line into a [`Request`], or an error message.
fn parse(line: &str) -> Result<Request<'_>, &'static str> {
    let mut words = line.split_whitespace();
    let cmd = words.next().ok_or("empty request")?;
    if cmd == "set" {
        let knob = words.next().ok_or("usage: set <knob> <value>")?;
        let value = words.next().ok_or("usage: set <knob> <value>")?;
        if words.next().is_some() {
            return Err("usage: set <knob> <value>");
        }
        return Ok(Request::Set { knob, value });
    }
    if words.next().is_some() {
        return Err("unexpected argument");
    }
    Ok(Request::Envelope(cmd))
}

/// The command list returned by `help`.
const HELP: &str = "stats prom profile pprof trace sense ledger spectrum \
mesh_now madvise_now set help\nknobs: meshing mesh_period_ms probe_limit \
sense_interval_ms trace prof_sample_bytes transfer_batch";

impl crate::global_heap::GlobalHeap {
    /// Serves one beat of the control socket, if one is configured.
    /// Called from the background thread's telemetry beat, inside its
    /// `with_internal_alloc` scope, with no shard locks held (both
    /// `mesh_now` and the envelope renderers take their own).
    pub(crate) fn ctl_tick(&self) {
        let Some(ctl) = &self.ctl else { return };
        ctl.tick(&mut |line| self.ctl_dispatch(line));
    }

    /// Answers one request line. Every envelope is rendered on demand
    /// from the same code paths the dump files use; every `set` is a
    /// single atomic store (see the module docs for the whitelist
    /// argument).
    pub(crate) fn ctl_dispatch(&self, line: &str) -> Response {
        let request = match parse(line) {
            Ok(r) => r,
            Err(msg) => return Response::err(msg),
        };
        match request {
            Request::Envelope("stats") => {
                self.drain_all();
                let mut stats = self.counters.snapshot();
                stats.spectrum = self.occupancy_spectrum();
                Response::ok_str(stats.render())
            }
            Request::Envelope("prom") => {
                self.drain_all();
                let mut stats = self.counters.snapshot();
                stats.spectrum = self.occupancy_spectrum();
                let prof = self.telemetry.as_ref().map(|t| t.stats());
                let sense = self.sense.as_ref().and_then(|s| s.latest());
                let rejects = self.ledger.reject_totals();
                Response::ok_str(crate::telemetry::prom_text(
                    &stats,
                    prof.as_ref(),
                    sense.as_ref(),
                    &rejects,
                ))
            }
            Request::Envelope("profile") => match self.profile_json() {
                Some(json) => Response::ok_str(json),
                None => Response::err("profiling off (set MESH_PROF=1)"),
            },
            Request::Envelope("pprof") => match self.pprof_profile() {
                Some(bytes) => Response::Ok(bytes),
                None => Response::err("profiling off (set MESH_PROF=1)"),
            },
            Request::Envelope("trace") => match self.counters.trace_set() {
                Some(trace) => Response::ok_str(trace.chrome_json(self.counters.uptime_ms())),
                None => Response::err("tracing off (set MESH_TRACE=1)"),
            },
            Request::Envelope("sense") => {
                if self.sense.is_none() {
                    return Response::err("sensing off (MESH_SENSE_INTERVAL_MS=0)");
                }
                self.sense_poll();
                match self.sense_json() {
                    Some(json) => Response::ok_str(json),
                    None => Response::err("sensing off (MESH_SENSE_INTERVAL_MS=0)"),
                }
            }
            Request::Envelope("ledger") => Response::ok_str(self.ledger_json()),
            Request::Envelope("spectrum") => {
                self.drain_all();
                Response::ok_str(spectrum_json(
                    &self.occupancy_spectrum(),
                    self.counters.uptime_ms(),
                ))
            }
            Request::Envelope("mesh_now") => {
                let s = self.mesh_now();
                Response::ok_str(format!(
                    "{{\"pairs_meshed\":{},\"pages_released\":{},\"bytes_copied\":{},\
                     \"pairs_probed\":{},\"meshing_enabled\":{}}}",
                    s.pairs_meshed,
                    s.pages_released,
                    s.bytes_copied,
                    s.pairs_probed,
                    self.rt.meshing(),
                ))
            }
            Request::Envelope("madvise_now") => {
                self.purge_and_retire();
                Response::ok_str("{\"purged\":true}".to_string())
            }
            Request::Envelope("help") => Response::ok_str(HELP.to_string()),
            Request::Envelope(_) => Response::err("unknown command (try: help)"),
            Request::Set { knob, value } => self.ctl_set(knob, value),
        }
    }

    /// Applies one whitelisted knob. Each arm is a single atomic store;
    /// a knob whose subsystem was built disabled is an error, not a
    /// silent no-op.
    fn ctl_set(&self, knob: &str, value: &str) -> Response {
        fn parse_u64(value: &str) -> Result<u64, Response> {
            value
                .parse::<u64>()
                .map_err(|_| Response::err("value must be an unsigned integer"))
        }
        fn parse_flag(value: &str) -> Result<bool, Response> {
            crate::config::parse_bool(value).ok_or_else(|| Response::err("value must be 0 or 1"))
        }
        let ack = |v: u64| Response::ok_str(format!("{{\"knob\":\"{knob}\",\"value\":{v}}}"));
        match knob {
            "meshing" => match parse_flag(value) {
                Ok(on) => {
                    self.rt.set_meshing(on);
                    ack(on as u64)
                }
                Err(e) => e,
            },
            "mesh_period_ms" => match parse_u64(value) {
                Ok(ms) if ms > 0 => {
                    self.rt.set_mesh_period(Duration::from_millis(ms));
                    ack(ms)
                }
                Ok(_) => Response::err("mesh_period_ms must be > 0"),
                Err(e) => e,
            },
            "probe_limit" => match parse_u64(value) {
                Ok(t) if t > 0 => {
                    self.rt.set_probe_limit(t as usize);
                    ack(t)
                }
                Ok(_) => Response::err("probe_limit must be > 0"),
                Err(e) => e,
            },
            "sense_interval_ms" => match (&self.sense, parse_u64(value)) {
                (None, _) => Response::err("sensing off (MESH_SENSE_INTERVAL_MS=0)"),
                (Some(_), Err(e)) => e,
                (Some(sense), Ok(ms)) => {
                    sense.set_interval(Duration::from_millis(ms));
                    ack(sense.interval().as_millis() as u64)
                }
            },
            "trace" => match (self.counters.trace_set(), parse_flag(value)) {
                (None, _) => Response::err("tracing off (set MESH_TRACE=1)"),
                (Some(_), Err(e)) => e,
                (Some(trace), Ok(on)) => {
                    trace.set_enabled(on);
                    ack(on as u64)
                }
            },
            "prof_sample_bytes" => match (&self.telemetry, parse_u64(value)) {
                (None, _) => Response::err("profiling off (set MESH_PROF=1)"),
                (Some(_), Err(e)) => e,
                (Some(t), Ok(bytes)) => {
                    t.set_sample_bytes(bytes as usize);
                    ack(t.sample_bytes() as u64)
                }
            },
            "transfer_batch" => match parse_u64(value) {
                Ok(n) => {
                    self.transfer.set_batch(n as usize);
                    ack(self.transfer.batch() as u64)
                }
                Err(e) => e,
            },
            _ => Response::err("unknown knob (try: help)"),
        }
    }

    /// The meshing-effectiveness ledger as a standalone JSON envelope
    /// (the same rows `sense` embeds, available even with sensing off).
    pub(crate) fn ledger_json(&self) -> String {
        let totals = self.ledger.reject_totals();
        let mut reject_rows = String::new();
        for (i, r) in crate::telemetry::ALL_REJECT_REASONS.iter().enumerate() {
            if i > 0 {
                reject_rows.push(',');
            }
            reject_rows.push_str(&format!("\"{}\":{}", r.name(), totals[i]));
        }
        let passes: Vec<String> = self.ledger.recent().iter().map(|p| p.json()).collect();
        format!(
            "{{\"mesh_ledger_version\":1,\"uptime_ms\":{},\"passes_recorded\":{},\
             \"rejected_total\":{{{}}},\"passes\":[{}]}}",
            self.counters.uptime_ms(),
            self.ledger.passes_recorded(),
            reject_rows,
            passes.join(","),
        )
    }
}

/// Renders a [`crate::telemetry::HeapSpectrum`] as the `spectrum`
/// envelope.
pub(crate) fn spectrum_json(spec: &crate::telemetry::HeapSpectrum, uptime_ms: u64) -> String {
    let mut classes = String::new();
    for (i, c) in spec.classes.iter().enumerate() {
        if i > 0 {
            classes.push(',');
        }
        let bins: Vec<String> = c.bins.iter().map(|b| b.to_string()).collect();
        classes.push_str(&format!(
            "{{\"object_size\":{},\"attached_spans\":{},\"bins\":[{}],\
             \"live_objects\":{},\"total_slots\":{},\"est_meshable_pairs\":{},\
             \"meshable\":{}}}",
            c.object_size,
            c.attached_spans,
            bins.join(","),
            c.live_objects,
            c.total_slots,
            c.est_meshable_pairs,
            c.meshable,
        ));
    }
    format!(
        "{{\"mesh_spectrum_version\":1,\"uptime_ms\":{uptime_ms},\"classes\":[{}],\
         \"large_spans\":{},\"large_bytes\":{}}}",
        classes, spec.large_spans, spec.large_bytes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sock_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mesh-ctl-test-{tag}-{}.sock", std::process::id()))
    }

    #[test]
    fn frames_round_trip() {
        assert_eq!(Response::ok_str("abc".into()).frame(), b"ok 3\nabc\n");
        assert_eq!(Response::err("nope").frame(), b"err nope\n");
        assert_eq!(Response::Ok(vec![0, 1, 2]).frame(), b"ok 3\n\x00\x01\x02\n");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(matches!(parse("stats"), Ok(Request::Envelope("stats"))));
        assert!(matches!(
            parse("set trace 1"),
            Ok(Request::Set { knob: "trace", value: "1" })
        ));
        assert!(parse("set trace").is_err());
        assert!(parse("set trace 1 2").is_err());
        assert!(parse("stats now").is_err());
    }

    #[test]
    fn bind_serves_and_reclaims_stale_sockets() {
        let path = sock_path("bind");
        let _ = std::fs::remove_file(&path);
        let ctl = CtlState::bind(&path, 2);
        assert!(ctl.is_listening());
        // A second server on the same live path must stand down.
        let loser = CtlState::bind(&path, 2);
        assert!(!loser.is_listening());
        drop(loser);
        assert!(path.exists(), "loser's drop must not unlink the winner's socket");
        drop(ctl);
        assert!(!path.exists(), "shutdown unlinks the socket path");
        // A stale path (owner died without unlinking) is reclaimed.
        drop(UnixListener::bind(&path).unwrap());
        assert!(path.exists());
        let stale = CtlState::bind(&path, 2);
        assert!(stale.is_listening(), "stale socket is unlinked and re-bound");
        drop(stale);
    }

    #[test]
    fn tick_accepts_greets_and_answers() {
        let path = sock_path("tick");
        let _ = std::fs::remove_file(&path);
        let ctl = CtlState::bind(&path, 1);
        let mut client = UnixStream::connect(&path).unwrap();
        // Over-cap client: accepted then dropped.
        let mut extra = UnixStream::connect(&path).unwrap();
        ctl.tick(&mut |_| Response::err("unreached"));
        let mut greeting = [0u8; GREETING.len()];
        client.read_exact(&mut greeting).unwrap();
        assert_eq!(&greeting, GREETING);
        assert_eq!(extra.read(&mut [0u8; 8]).unwrap(), 0, "over-cap sees EOF");
        client.write_all(b"ping\n").unwrap();
        ctl.tick(&mut |line| {
            assert_eq!(line, "ping");
            Response::ok_str("pong".into())
        });
        let mut reply = [0u8; 10];
        client.read_exact(&mut reply).unwrap();
        assert_eq!(&reply, b"ok 4\npong\n");
        // Client EOF retires the connection on the next tick.
        drop(client);
        ctl.tick(&mut |_| Response::err("unreached"));
        assert!(ctl.io.lock().conns.is_empty());
        drop(ctl);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oversized_request_is_rejected() {
        let path = sock_path("oversize");
        let _ = std::fs::remove_file(&path);
        let ctl = CtlState::bind(&path, 1);
        let mut client = UnixStream::connect(&path).unwrap();
        ctl.tick(&mut |_| Response::err("unreached"));
        client.write_all(&vec![b'x'; MAX_REQUEST_BYTES + 1]).unwrap();
        ctl.tick(&mut |_| Response::err("unreached"));
        let mut out = Vec::new();
        client.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        client.read_to_end(&mut out).unwrap(); // greeting + err + EOF
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("err request line too long"), "got {text:?}");
        drop(ctl);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oversized_complete_line_is_rejected() {
        let path = sock_path("oversize-line");
        let _ = std::fs::remove_file(&path);
        let ctl = CtlState::bind(&path, 1);
        let mut client = UnixStream::connect(&path).unwrap();
        ctl.tick(&mut |_| Response::err("unreached"));
        let mut big = vec![b'x'; MAX_REQUEST_BYTES + 1];
        big.push(b'\n');
        client.write_all(&big).unwrap();
        ctl.tick(&mut |_| Response::err("unreached"));
        let mut out = Vec::new();
        client.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        client.read_to_end(&mut out).unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("err request line too long"), "got {text:?}");
        drop(ctl);
        let _ = std::fs::remove_file(&path);
    }

    /// The per-line cap must not punish pipelining: many individually
    /// valid short commands whose total exceeds `MAX_REQUEST_BYTES` in
    /// one burst are all answered.
    #[test]
    fn pipelined_burst_exceeding_line_cap_is_answered() {
        let path = sock_path("pipeline");
        let _ = std::fs::remove_file(&path);
        let ctl = CtlState::bind(&path, 1);
        let mut client = UnixStream::connect(&path).unwrap();
        ctl.tick(&mut |_| Response::err("unreached"));
        let mut greeting = [0u8; GREETING.len()];
        client.read_exact(&mut greeting).unwrap();
        let n = 2 * MAX_REQUEST_BYTES / 5; // "ping\n" ×n ≈ 2× the cap
        client.write_all("ping\n".repeat(n).as_bytes()).unwrap();
        let mut served = 0;
        ctl.tick(&mut |line| {
            assert_eq!(line, "ping");
            served += 1;
            Response::ok_str("pong".into())
        });
        assert_eq!(served, n, "every pipelined command is dispatched");
        let mut reply = vec![0u8; b"ok 4\npong\n".len() * n];
        client.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        client.read_exact(&mut reply).unwrap();
        assert!(reply.chunks(10).all(|c| c == b"ok 4\npong\n"));
        drop(ctl);
        let _ = std::fs::remove_file(&path);
    }

    /// Regression test for the fork lock-order inversion: the dispatcher
    /// (which takes class/arena locks ordered *before* the ctl lock in
    /// `GlobalHeap::lock_all`) must run with the I/O lock dropped, or a
    /// concurrent `fork_prepare` holding shard locks and waiting on the
    /// ctl lock would ABBA-deadlock against this thread.
    #[test]
    fn dispatch_runs_with_io_lock_dropped() {
        let path = sock_path("lockfree-dispatch");
        let _ = std::fs::remove_file(&path);
        let ctl = CtlState::bind(&path, 1);
        let mut client = UnixStream::connect(&path).unwrap();
        ctl.tick(&mut |_| Response::err("unreached"));
        client.write_all(b"ping\n").unwrap();
        let mut dispatched = false;
        ctl.tick(&mut |_| {
            assert!(
                ctl.io.try_lock().is_some(),
                "I/O lock held across dispatch: fork lock-order inversion"
            );
            dispatched = true;
            Response::ok_str("pong".into())
        });
        assert!(dispatched);
        drop(ctl);
        let _ = std::fs::remove_file(&path);
    }

    /// A client that stops reading forfeits its connection once the
    /// whole-frame deadline expires — the background thread must not be
    /// wedged by a full socket buffer.
    #[test]
    fn stalled_reader_is_dropped_at_frame_deadline() {
        let path = sock_path("stall");
        let _ = std::fs::remove_file(&path);
        let ctl = CtlState::bind(&path, 1);
        let mut client = UnixStream::connect(&path).unwrap();
        ctl.tick(&mut |_| Response::err("unreached"));
        client.write_all(b"big\n").unwrap();
        // Never read the response: an 8 MiB payload overflows both
        // socket buffers, so the write hits the deadline.
        let started = Instant::now();
        ctl.tick(&mut |_| Response::Ok(vec![b'z'; 8 << 20]));
        assert!(
            started.elapsed() < WRITE_TIMEOUT + Duration::from_secs(5),
            "tick must give up on a stalled reader near the frame deadline"
        );
        assert!(
            ctl.io.lock().conns.is_empty(),
            "stalled connection is dropped"
        );
        drop(client);
        drop(ctl);
        let _ = std::fs::remove_file(&path);
    }

    /// Two processes racing to reclaim the same stale path must elect
    /// exactly one winner, and the loser's drop must not unlink the
    /// winner's live socket (the sidecar flock serializes
    /// probe-unlink-bind).
    #[test]
    fn concurrent_stale_reclaim_elects_one_winner() {
        let path = sock_path("reclaim-race");
        let _ = std::fs::remove_file(&path);
        // Fabricate a stale socket: bound, then owner gone, path left.
        drop(UnixListener::bind(&path).unwrap());
        assert!(path.exists());
        let racers: Vec<_> = (0..2)
            .map(|_| {
                let p = path.clone();
                std::thread::spawn(move || CtlState::bind(&p, 2))
            })
            .collect();
        let states: Vec<CtlState> = racers.into_iter().map(|h| h.join().unwrap()).collect();
        let listening = states.iter().filter(|s| s.is_listening()).count();
        assert_eq!(listening, 1, "exactly one racer may reclaim the stale path");
        let (winner, loser): (Vec<CtlState>, Vec<CtlState>) =
            states.into_iter().partition(|s| s.is_listening());
        drop(loser);
        assert!(path.exists(), "loser's drop must not unlink the winner's socket");
        UnixStream::connect(&path).expect("winner still serving after loser drop");
        drop(winner);
        assert!(!path.exists());
    }
}
