//! mesh-ctl: the opt-in (`MESH_CTL=/path/sock`) Unix-domain control
//! socket — live out-of-process introspection and control for a running
//! heap.
//!
//! ## Protocol (version 1)
//!
//! Line-oriented over `SOCK_STREAM`. On connect the server sends one
//! greeting line, `mesh-ctl 1\n`. Each request is one line; each
//! response is either
//!
//! ```text
//! ok <len>\n<len payload bytes>\n
//! err <message>\n
//! ```
//!
//! The length-prefixed framing keeps the payload binary-safe (the
//! `pprof` envelope is a protobuf, not text). Commands:
//!
//! | request | payload |
//! |---|---|
//! | `stats` | `mesh: key=value` text block (the exit-dump format) |
//! | `prom` | Prometheus text exposition |
//! | `profile` | version-1 heap-profile JSON (`err` when `MESH_PROF` off) |
//! | `pprof` | pprof protobuf of the live-heap profile (binary) |
//! | `trace` | Chrome trace-event JSON (`err` when `MESH_TRACE` off) |
//! | `sense` | version-1 mesh-sense JSON (`err` when sensing off) |
//! | `ledger` | meshing-effectiveness ledger JSON (always available) |
//! | `spectrum` | per-class occupancy-spectrum JSON |
//! | `mesh_now` | runs one meshing pass; summary JSON |
//! | `madvise_now` | purges dirty pages + retires segments; `{}` |
//! | `set <knob> <value>` | applies a whitelisted knob; ack JSON |
//! | `help` | this command list |
//!
//! ## The knob whitelist
//!
//! `set` accepts only knobs whose application is a single atomic store
//! on state that every reader already tolerates changing between two
//! loads: `meshing`, `mesh_period_ms`, `probe_limit`,
//! `sense_interval_ms`, `trace`, `prof_sample_bytes`, `transfer_batch`.
//! Structural configuration (arena size, size classes, hardening,
//! enabling a subsystem that was built disabled) is rejected — those
//! choices sized tables and spawned state at heap birth, and no lock
//! ordering lets a socket command rebuild them under live traffic.
//!
//! ## Threading and fork safety
//!
//! The socket is served entirely by the existing background thread: the
//! listener is non-blocking, [`CtlState::tick`] accepts/reads/responds
//! during the telemetry beat, and `GlobalHeap::next_park` bounds the
//! park at [`CTL_PARK`] while the socket is live. The malloc fast path
//! never touches any of this. All server allocations happen inside the
//! tick's `with_internal_alloc` scope (the mesher wraps the whole beat).
//!
//! The single I/O mutex joins `GlobalHeap::lock_all`'s fork-quiescence
//! set, so `fork()` cannot land mid-response: a client sees either a
//! complete envelope or a clean EOF, never a torn frame. The child drops
//! every inherited connection and the inherited listener, unlinks the
//! path, and re-binds it ([`CtlState::rebind_for_child`]) — the path
//! follows the newest process, so operators who fork should configure
//! per-process socket paths (e.g. with `$$` in the wrapper).

use crate::sync::{Mutex, MutexGuard};
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Park bound for the background thread while the socket is live: the
/// worst-case latency from request to response. Large enough to keep an
/// idle-but-enabled socket near-free, small enough that `mesh-top`
/// refreshes feel live.
pub(crate) const CTL_PARK: Duration = Duration::from_millis(50);

/// Longest accepted request line, bytes. Every real command fits in a
/// fraction of this; anything longer is a confused (or hostile) client.
const MAX_REQUEST_BYTES: usize = 256;

/// Per-response write timeout. A client that stops reading for this long
/// forfeits its connection rather than wedging the background thread.
const WRITE_TIMEOUT: Duration = Duration::from_secs(1);

/// The greeting sent on accept: protocol name + version.
const GREETING: &[u8] = b"mesh-ctl 1\n";

/// One accepted client connection and its partial-request buffer.
#[derive(Debug)]
struct CtlConn {
    stream: UnixStream,
    buf: Vec<u8>,
}

/// The mutable socket state: the listener and the accepted connections.
/// One mutex guards it all so exactly one guard joins the fork-
/// quiescence set.
#[derive(Debug)]
pub(crate) struct CtlIo {
    /// `None` when binding failed (another live process owns the path) —
    /// the heap then runs with the socket disabled rather than failing
    /// construction.
    listener: Option<UnixListener>,
    conns: Vec<CtlConn>,
}

/// The control-socket server state hung off the global heap.
#[derive(Debug)]
pub(crate) struct CtlState {
    path: PathBuf,
    max_clients: usize,
    io: Mutex<CtlIo>,
}

/// A parsed request.
enum Request<'a> {
    Envelope(&'a str),
    Set { knob: &'a str, value: &'a str },
}

/// What the dispatcher answered with.
pub(crate) enum Response {
    Ok(Vec<u8>),
    Err(String),
}

impl Response {
    fn ok_str(s: String) -> Response {
        Response::Ok(s.into_bytes())
    }

    fn err(msg: &str) -> Response {
        Response::Err(msg.to_string())
    }

    /// Serializes the wire frame: `ok <len>\n<payload>\n` / `err <msg>\n`.
    fn frame(&self) -> Vec<u8> {
        match self {
            Response::Ok(payload) => {
                let mut out = format!("ok {}\n", payload.len()).into_bytes();
                out.extend_from_slice(payload);
                out.push(b'\n');
                out
            }
            Response::Err(msg) => format!("err {msg}\n").into_bytes(),
        }
    }
}

impl CtlState {
    /// Binds the socket at `path`, handling the stale-socket case: a
    /// leftover path whose owner is gone (connect refused) is unlinked
    /// and re-bound; a path with a *live* owner is left alone and this
    /// heap runs with the socket disabled (two processes cannot share
    /// one listener, and stealing a running server's socket out from
    /// under it would be worse than a warning).
    pub(crate) fn bind(path: &Path, max_clients: usize) -> CtlState {
        let listener = Self::bind_listener(path);
        CtlState {
            path: path.to_path_buf(),
            max_clients: max_clients.max(1),
            io: Mutex::new(CtlIo {
                listener,
                conns: Vec::new(),
            }),
        }
    }

    fn bind_listener(path: &Path) -> Option<UnixListener> {
        let listener = match UnixListener::bind(path) {
            Ok(l) => Some(l),
            Err(e) if e.kind() == ErrorKind::AddrInUse => {
                // Probe: a refused connect means the previous owner died
                // without unlinking — reclaim the path.
                match UnixStream::connect(path) {
                    Err(pe) if pe.kind() == ErrorKind::ConnectionRefused => {
                        let _ = std::fs::remove_file(path);
                        match UnixListener::bind(path) {
                            Ok(l) => Some(l),
                            Err(e2) => {
                                eprintln!(
                                    "mesh: ctl rebind of stale socket {} failed ({e2}); \
                                     control socket disabled",
                                    path.display()
                                );
                                None
                            }
                        }
                    }
                    _ => {
                        eprintln!(
                            "mesh: ctl socket {} has a live owner; control socket disabled \
                             for this process",
                            path.display()
                        );
                        None
                    }
                }
            }
            Err(e) => {
                eprintln!(
                    "mesh: ctl bind at {} failed ({e}); control socket disabled",
                    path.display()
                );
                None
            }
        };
        if let Some(l) = &listener {
            // The background thread must never block in accept().
            let _ = l.set_nonblocking(true);
        }
        listener
    }

    /// The socket path this server was configured with.
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the listener actually bound (false: a live owner held the
    /// path, or bind failed).
    pub(crate) fn is_listening(&self) -> bool {
        self.io.lock().listener.is_some()
    }

    /// Holds the I/O lock (fork quiescence: no response write may be in
    /// flight across `fork`). Ordered after every other `lock_all` guard.
    pub(crate) fn lock_io(&self) -> MutexGuard<'_, CtlIo> {
        self.io.lock()
    }

    /// Child-side fork recovery: every inherited connection and the
    /// inherited listener belong to the parent — drop them (the parent
    /// keeps serving its accepted clients), unlink the path, and bind a
    /// fresh listener so the child answers on the same address.
    pub(crate) fn rebind_for_child(&self) {
        let mut io = self.io.lock();
        io.conns.clear();
        io.listener = None;
        let _ = std::fs::remove_file(&self.path);
        io.listener = Self::bind_listener(&self.path);
    }

    /// Stops serving: drops all connections (clients see EOF) and the
    /// listener, and unlinks the path. Idempotent.
    pub(crate) fn shutdown(&self) {
        let mut io = self.io.lock();
        if io.listener.is_some() || !io.conns.is_empty() {
            io.conns.clear();
            io.listener = None;
            let _ = std::fs::remove_file(&self.path);
        }
    }

    /// One background-thread beat: accepts pending connections (greeting
    /// each; over-cap connections are accepted and immediately dropped),
    /// reads request lines from every client, and answers them through
    /// `dispatch`. Runs under the caller's `with_internal_alloc` scope.
    pub(crate) fn tick(&self, dispatch: &mut dyn FnMut(&str) -> Response) {
        let mut io = self.io.lock();
        let CtlIo { listener, conns } = &mut *io;
        if let Some(listener) = listener {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if conns.len() >= self.max_clients {
                            drop(stream);
                            continue;
                        }
                        let _ = stream.set_nonblocking(true);
                        let mut conn = CtlConn {
                            stream,
                            buf: Vec::new(),
                        };
                        if write_frame(&mut conn.stream, GREETING) {
                            conns.push(conn);
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        conns.retain_mut(|conn| serve_conn(conn, dispatch));
    }
}

impl Drop for CtlState {
    fn drop(&mut self) {
        // Best-effort path cleanup on heap teardown. A forked child that
        // re-bound the same path races this when the parent exits first;
        // per-process paths avoid that (see module docs).
        self.shutdown();
    }
}

/// Reads whatever the client has sent, answers every complete line, and
/// says whether the connection should be kept.
fn serve_conn(conn: &mut CtlConn, dispatch: &mut dyn FnMut(&str) -> Response) -> bool {
    let mut chunk = [0u8; 512];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return false, // client hung up
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                if conn.buf.len() > MAX_REQUEST_BYTES {
                    let _ = write_frame(
                        &mut conn.stream,
                        &Response::err("request line too long").frame(),
                    );
                    return false;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    while let Some(pos) = conn.buf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = conn.buf.drain(..=pos).collect();
        let Ok(line) = std::str::from_utf8(&line[..pos]) else {
            let _ = write_frame(&mut conn.stream, &Response::err("request not UTF-8").frame());
            return false;
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let response = dispatch(line);
        if !write_frame(&mut conn.stream, &response.frame()) {
            return false;
        }
    }
    true
}

/// Writes one frame with a bounded blocking write (the stream is
/// otherwise non-blocking). Returns whether the client is still good.
fn write_frame(stream: &mut UnixStream, bytes: &[u8]) -> bool {
    if stream.set_nonblocking(false).is_err() {
        return false;
    }
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let ok = stream.write_all(bytes).and_then(|()| stream.flush()).is_ok();
    ok && stream.set_nonblocking(true).is_ok()
}

/// Parses one request line into a [`Request`], or an error message.
fn parse(line: &str) -> Result<Request<'_>, &'static str> {
    let mut words = line.split_whitespace();
    let cmd = words.next().ok_or("empty request")?;
    if cmd == "set" {
        let knob = words.next().ok_or("usage: set <knob> <value>")?;
        let value = words.next().ok_or("usage: set <knob> <value>")?;
        if words.next().is_some() {
            return Err("usage: set <knob> <value>");
        }
        return Ok(Request::Set { knob, value });
    }
    if words.next().is_some() {
        return Err("unexpected argument");
    }
    Ok(Request::Envelope(cmd))
}

/// The command list returned by `help`.
const HELP: &str = "stats prom profile pprof trace sense ledger spectrum \
mesh_now madvise_now set help\nknobs: meshing mesh_period_ms probe_limit \
sense_interval_ms trace prof_sample_bytes transfer_batch";

impl crate::global_heap::GlobalHeap {
    /// Serves one beat of the control socket, if one is configured.
    /// Called from the background thread's telemetry beat, inside its
    /// `with_internal_alloc` scope, with no shard locks held (both
    /// `mesh_now` and the envelope renderers take their own).
    pub(crate) fn ctl_tick(&self) {
        let Some(ctl) = &self.ctl else { return };
        ctl.tick(&mut |line| self.ctl_dispatch(line));
    }

    /// Answers one request line. Every envelope is rendered on demand
    /// from the same code paths the dump files use; every `set` is a
    /// single atomic store (see the module docs for the whitelist
    /// argument).
    pub(crate) fn ctl_dispatch(&self, line: &str) -> Response {
        let request = match parse(line) {
            Ok(r) => r,
            Err(msg) => return Response::err(msg),
        };
        match request {
            Request::Envelope("stats") => {
                self.drain_all();
                let mut stats = self.counters.snapshot();
                stats.spectrum = self.occupancy_spectrum();
                Response::ok_str(stats.render())
            }
            Request::Envelope("prom") => {
                self.drain_all();
                let mut stats = self.counters.snapshot();
                stats.spectrum = self.occupancy_spectrum();
                let prof = self.telemetry.as_ref().map(|t| t.stats());
                let sense = self.sense.as_ref().and_then(|s| s.latest());
                let rejects = self.ledger.reject_totals();
                Response::ok_str(crate::telemetry::prom_text(
                    &stats,
                    prof.as_ref(),
                    sense.as_ref(),
                    &rejects,
                ))
            }
            Request::Envelope("profile") => match self.profile_json() {
                Some(json) => Response::ok_str(json),
                None => Response::err("profiling off (set MESH_PROF=1)"),
            },
            Request::Envelope("pprof") => match self.pprof_profile() {
                Some(bytes) => Response::Ok(bytes),
                None => Response::err("profiling off (set MESH_PROF=1)"),
            },
            Request::Envelope("trace") => match self.counters.trace_set() {
                Some(trace) => Response::ok_str(trace.chrome_json(self.counters.uptime_ms())),
                None => Response::err("tracing off (set MESH_TRACE=1)"),
            },
            Request::Envelope("sense") => {
                if self.sense.is_none() {
                    return Response::err("sensing off (MESH_SENSE_INTERVAL_MS=0)");
                }
                self.sense_poll();
                match self.sense_json() {
                    Some(json) => Response::ok_str(json),
                    None => Response::err("sensing off (MESH_SENSE_INTERVAL_MS=0)"),
                }
            }
            Request::Envelope("ledger") => Response::ok_str(self.ledger_json()),
            Request::Envelope("spectrum") => {
                self.drain_all();
                Response::ok_str(spectrum_json(
                    &self.occupancy_spectrum(),
                    self.counters.uptime_ms(),
                ))
            }
            Request::Envelope("mesh_now") => {
                let s = self.mesh_now();
                Response::ok_str(format!(
                    "{{\"pairs_meshed\":{},\"pages_released\":{},\"bytes_copied\":{},\
                     \"pairs_probed\":{},\"meshing_enabled\":{}}}",
                    s.pairs_meshed,
                    s.pages_released,
                    s.bytes_copied,
                    s.pairs_probed,
                    self.rt.meshing(),
                ))
            }
            Request::Envelope("madvise_now") => {
                self.purge_and_retire();
                Response::ok_str("{\"purged\":true}".to_string())
            }
            Request::Envelope("help") => Response::ok_str(HELP.to_string()),
            Request::Envelope(_) => Response::err("unknown command (try: help)"),
            Request::Set { knob, value } => self.ctl_set(knob, value),
        }
    }

    /// Applies one whitelisted knob. Each arm is a single atomic store;
    /// a knob whose subsystem was built disabled is an error, not a
    /// silent no-op.
    fn ctl_set(&self, knob: &str, value: &str) -> Response {
        fn parse_u64(value: &str) -> Result<u64, Response> {
            value
                .parse::<u64>()
                .map_err(|_| Response::err("value must be an unsigned integer"))
        }
        fn parse_flag(value: &str) -> Result<bool, Response> {
            crate::config::parse_bool(value).ok_or_else(|| Response::err("value must be 0 or 1"))
        }
        let ack = |v: u64| Response::ok_str(format!("{{\"knob\":\"{knob}\",\"value\":{v}}}"));
        match knob {
            "meshing" => match parse_flag(value) {
                Ok(on) => {
                    self.rt.set_meshing(on);
                    ack(on as u64)
                }
                Err(e) => e,
            },
            "mesh_period_ms" => match parse_u64(value) {
                Ok(ms) if ms > 0 => {
                    self.rt.set_mesh_period(Duration::from_millis(ms));
                    ack(ms)
                }
                Ok(_) => Response::err("mesh_period_ms must be > 0"),
                Err(e) => e,
            },
            "probe_limit" => match parse_u64(value) {
                Ok(t) if t > 0 => {
                    self.rt.set_probe_limit(t as usize);
                    ack(t)
                }
                Ok(_) => Response::err("probe_limit must be > 0"),
                Err(e) => e,
            },
            "sense_interval_ms" => match (&self.sense, parse_u64(value)) {
                (None, _) => Response::err("sensing off (MESH_SENSE_INTERVAL_MS=0)"),
                (Some(_), Err(e)) => e,
                (Some(sense), Ok(ms)) => {
                    sense.set_interval(Duration::from_millis(ms));
                    ack(sense.interval().as_millis() as u64)
                }
            },
            "trace" => match (self.counters.trace_set(), parse_flag(value)) {
                (None, _) => Response::err("tracing off (set MESH_TRACE=1)"),
                (Some(_), Err(e)) => e,
                (Some(trace), Ok(on)) => {
                    trace.set_enabled(on);
                    ack(on as u64)
                }
            },
            "prof_sample_bytes" => match (&self.telemetry, parse_u64(value)) {
                (None, _) => Response::err("profiling off (set MESH_PROF=1)"),
                (Some(_), Err(e)) => e,
                (Some(t), Ok(bytes)) => {
                    t.set_sample_bytes(bytes as usize);
                    ack(t.sample_bytes() as u64)
                }
            },
            "transfer_batch" => match parse_u64(value) {
                Ok(n) => {
                    self.transfer.set_batch(n as usize);
                    ack(self.transfer.batch() as u64)
                }
                Err(e) => e,
            },
            _ => Response::err("unknown knob (try: help)"),
        }
    }

    /// The meshing-effectiveness ledger as a standalone JSON envelope
    /// (the same rows `sense` embeds, available even with sensing off).
    pub(crate) fn ledger_json(&self) -> String {
        let totals = self.ledger.reject_totals();
        let mut reject_rows = String::new();
        for (i, r) in crate::telemetry::ALL_REJECT_REASONS.iter().enumerate() {
            if i > 0 {
                reject_rows.push(',');
            }
            reject_rows.push_str(&format!("\"{}\":{}", r.name(), totals[i]));
        }
        let passes: Vec<String> = self.ledger.recent().iter().map(|p| p.json()).collect();
        format!(
            "{{\"mesh_ledger_version\":1,\"uptime_ms\":{},\"passes_recorded\":{},\
             \"rejected_total\":{{{}}},\"passes\":[{}]}}",
            self.counters.uptime_ms(),
            self.ledger.passes_recorded(),
            reject_rows,
            passes.join(","),
        )
    }
}

/// Renders a [`crate::telemetry::HeapSpectrum`] as the `spectrum`
/// envelope.
pub(crate) fn spectrum_json(spec: &crate::telemetry::HeapSpectrum, uptime_ms: u64) -> String {
    let mut classes = String::new();
    for (i, c) in spec.classes.iter().enumerate() {
        if i > 0 {
            classes.push(',');
        }
        let bins: Vec<String> = c.bins.iter().map(|b| b.to_string()).collect();
        classes.push_str(&format!(
            "{{\"object_size\":{},\"attached_spans\":{},\"bins\":[{}],\
             \"live_objects\":{},\"total_slots\":{},\"est_meshable_pairs\":{},\
             \"meshable\":{}}}",
            c.object_size,
            c.attached_spans,
            bins.join(","),
            c.live_objects,
            c.total_slots,
            c.est_meshable_pairs,
            c.meshable,
        ));
    }
    format!(
        "{{\"mesh_spectrum_version\":1,\"uptime_ms\":{uptime_ms},\"classes\":[{}],\
         \"large_spans\":{},\"large_bytes\":{}}}",
        classes, spec.large_spans, spec.large_bytes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sock_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mesh-ctl-test-{tag}-{}.sock", std::process::id()))
    }

    #[test]
    fn frames_round_trip() {
        assert_eq!(Response::ok_str("abc".into()).frame(), b"ok 3\nabc\n");
        assert_eq!(Response::err("nope").frame(), b"err nope\n");
        assert_eq!(Response::Ok(vec![0, 1, 2]).frame(), b"ok 3\n\x00\x01\x02\n");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(matches!(parse("stats"), Ok(Request::Envelope("stats"))));
        assert!(matches!(
            parse("set trace 1"),
            Ok(Request::Set { knob: "trace", value: "1" })
        ));
        assert!(parse("set trace").is_err());
        assert!(parse("set trace 1 2").is_err());
        assert!(parse("stats now").is_err());
    }

    #[test]
    fn bind_serves_and_reclaims_stale_sockets() {
        let path = sock_path("bind");
        let _ = std::fs::remove_file(&path);
        let ctl = CtlState::bind(&path, 2);
        assert!(ctl.is_listening());
        // A second server on the same live path must stand down.
        let loser = CtlState::bind(&path, 2);
        assert!(!loser.is_listening());
        drop(loser);
        assert!(path.exists(), "loser's drop must not unlink the winner's socket");
        drop(ctl);
        assert!(!path.exists(), "shutdown unlinks the socket path");
        // A stale path (owner died without unlinking) is reclaimed.
        drop(UnixListener::bind(&path).unwrap());
        assert!(path.exists());
        let stale = CtlState::bind(&path, 2);
        assert!(stale.is_listening(), "stale socket is unlinked and re-bound");
        drop(stale);
    }

    #[test]
    fn tick_accepts_greets_and_answers() {
        let path = sock_path("tick");
        let _ = std::fs::remove_file(&path);
        let ctl = CtlState::bind(&path, 1);
        let mut client = UnixStream::connect(&path).unwrap();
        // Over-cap client: accepted then dropped.
        let mut extra = UnixStream::connect(&path).unwrap();
        ctl.tick(&mut |_| Response::err("unreached"));
        let mut greeting = [0u8; GREETING.len()];
        client.read_exact(&mut greeting).unwrap();
        assert_eq!(&greeting, GREETING);
        assert_eq!(extra.read(&mut [0u8; 8]).unwrap(), 0, "over-cap sees EOF");
        client.write_all(b"ping\n").unwrap();
        ctl.tick(&mut |line| {
            assert_eq!(line, "ping");
            Response::ok_str("pong".into())
        });
        let mut reply = [0u8; 10];
        client.read_exact(&mut reply).unwrap();
        assert_eq!(&reply, b"ok 4\npong\n");
        // Client EOF retires the connection on the next tick.
        drop(client);
        ctl.tick(&mut |_| Response::err("unreached"));
        assert!(ctl.io.lock().conns.is_empty());
        drop(ctl);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oversized_request_is_rejected() {
        let path = sock_path("oversize");
        let _ = std::fs::remove_file(&path);
        let ctl = CtlState::bind(&path, 1);
        let mut client = UnixStream::connect(&path).unwrap();
        ctl.tick(&mut |_| Response::err("unreached"));
        client.write_all(&vec![b'x'; MAX_REQUEST_BYTES + 1]).unwrap();
        ctl.tick(&mut |_| Response::err("unreached"));
        let mut out = Vec::new();
        client.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        client.read_to_end(&mut out).unwrap(); // greeting + err + EOF
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("err request line too long"), "got {text:?}");
        drop(ctl);
        let _ = std::fs::remove_file(&path);
    }
}
